"""Ablation bench: closed-form hierarchy model vs trace-driven simulator.

DESIGN.md's first ablation: quantify what the analytic capacity model
gives up relative to the cycle-level trace simulation, and what it buys
in speed.  The analytic model must stay within 40% on every plateau
while being orders of magnitude faster.
"""

import time

from repro.bench.latency import traced_latency_ns
from repro.mem.analytic import AnalyticHierarchy

KIB = 1024
MIB = 1024 * KIB
PLATEAUS = [32 * KIB, 256 * KIB, 2 * MIB]


def test_analytic_speed(benchmark, system):
    model = AnalyticHierarchy(system.chip)

    def sweep():
        return [model.latency_ns(w) for w in PLATEAUS]

    values = benchmark(sweep)
    assert values == sorted(values)


def test_trace_speed_and_fidelity(benchmark, system):
    analytic = AnalyticHierarchy(system.chip)

    def traced_sweep():
        return [traced_latency_ns(system, w, passes=2) for w in PLATEAUS]

    traced = benchmark.pedantic(traced_sweep, rounds=1, iterations=1)
    for w, t in zip(PLATEAUS, traced):
        a = analytic.latency_ns(w)
        assert abs(a - t) / t < 0.4, (w, t, a)


def test_analytic_is_much_faster(benchmark, system):
    """The reason the sweeps use the analytic model: >100x speedup."""
    analytic = AnalyticHierarchy(system.chip)

    def timed_comparison():
        t0 = time.perf_counter()
        for _ in range(100):
            analytic.latency_ns(2 * MIB)
        analytic_time = (time.perf_counter() - t0) / 100
        t0 = time.perf_counter()
        traced_latency_ns(system, 2 * MIB, passes=2)
        traced_time = time.perf_counter() - t0
        return analytic_time, traced_time

    analytic_time, traced_time = benchmark.pedantic(
        timed_comparison, rounds=1, iterations=1
    )
    assert traced_time > 100 * analytic_time
