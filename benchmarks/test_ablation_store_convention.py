"""Ablation bench: why STREAM had to be "modified" for POWER8 (§III-A).

With naive write-allocate stores, STREAM Add's 2 reads + 1 write turn
into 3 link-level read streams + 1 write stream — the mix leaves the
2:1 link optimum and a third of the read bandwidth hauls useless
allocate traffic.  Establishing output lines with DCBZ restores the
paper's 1,472 GB/s.
"""

import pytest

from repro.mem.traffic import (
    StoreConvention,
    dcbz_gain,
    effective_traffic,
    system_goodput,
)

GB = 1e9

# STREAM Add: 2 bytes read per byte written.
ADD_READS, ADD_WRITES = 2.0, 1.0


def test_naive_write_allocate(benchmark, system):
    bw = benchmark(
        system_goodput, system, ADD_READS, ADD_WRITES, StoreConvention.WRITE_ALLOCATE
    )
    # The allocate turns the mix into 3:1 and wastes a quarter of the
    # traffic: goodput lands well below the paper's 1,472 GB/s.
    assert bw / GB < 1200


def test_dcbz_optimised(benchmark, system):
    bw = benchmark(system_goodput, system, ADD_READS, ADD_WRITES, StoreConvention.DCBZ)
    assert bw / GB == pytest.approx(1475, rel=0.01)  # Table III's peak


def test_dcbz_gain_is_substantial(benchmark, system):
    gain = benchmark(dcbz_gain, system, ADD_READS, ADD_WRITES)
    assert gain > 0.25  # the modification buys >25% goodput on Add


def test_effective_mix_shapes(benchmark, system):
    naive = benchmark(effective_traffic, 2.0, 1.0, StoreConvention.WRITE_ALLOCATE)
    tuned = effective_traffic(2.0, 1.0, StoreConvention.DCBZ)
    assert naive.read_fraction == pytest.approx(3 / 4)
    assert tuned.read_fraction == pytest.approx(2 / 3)
    assert naive.useful_fraction == pytest.approx(3 / 4)
    assert tuned.useful_fraction == 1.0


def test_write_heavy_kernels_gain_most(benchmark, system):
    """Write-allocate doubles pure-store traffic (~40% goodput lost);
    mostly-read kernels barely notice."""
    gain = benchmark(dcbz_gain, system, 0.0, 1.0)
    assert gain > 0.35
    assert dcbz_gain(system, 0.0, 1.0) > 3 * dcbz_gain(system, 8.0, 1.0)
