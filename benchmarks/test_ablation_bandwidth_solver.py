"""Ablation bench: max-min fair solver vs naive equal-split allocation.

DESIGN.md's second ablation: the Table IV aggregates depend on
progressive-filling max-min fairness.  A naive allocator that splits
every link evenly among its flows (ignoring each flow's other
bottlenecks) wastes capacity and breaks the all-to-all number.
"""

from typing import Dict

from repro.engine.resources import max_min_fair
from repro.interconnect.bandwidth import BandwidthModel
from repro.interconnect.topology import SMPTopology


def naive_equal_split(flows, capacities) -> Dict:
    """Each flow gets min over its links of capacity / users."""
    users: Dict = {}
    for path in flows.values():
        for link in path:
            users[link] = users.get(link, 0) + 1
    return {
        f: min(capacities[l] / users[l] for l in path) if path else 0.0
        for f, path in flows.items()
    }


def build_all_to_all_flows(system):
    topo = SMPTopology(system)
    model = BandwidthModel(topo)
    flows = {}
    for src in range(system.num_chips):
        for dst in range(system.num_chips):
            if src == dst:
                continue
            for ridx, route in enumerate(topo.routes(src, dst)[:2]):
                flows[(src, dst, ridx)] = topo.with_endpoints(src, dst, route)
    return model, flows


def test_maxmin_solver(benchmark, system):
    model, flows = build_all_to_all_flows(system)
    caps = model._link_capacities(fabric_eff=0.528)

    alloc = benchmark(max_min_fair, flows, caps)
    maxmin_total = sum(alloc.values())
    naive_total = sum(naive_equal_split(flows, caps).values())
    # Max-min refills slack that the naive split strands: it must find
    # strictly more aggregate bandwidth, and land near the paper's 380.
    assert maxmin_total > 1.05 * naive_total
    assert 300e9 < maxmin_total < 460e9


def test_naive_split_speed(benchmark, system):
    model, flows = build_all_to_all_flows(system)
    caps = model._link_capacities(fabric_eff=0.528)
    benchmark(naive_equal_split, flows, caps)
