"""Bench: ``predict_batch`` vs a scalar ``predict`` loop (the >=5x gate).

The batched oracle's acceptance bar: on serve-shaped workloads the big
sweep kinds (``lat_mem``, ``stream_sweep``, ``prefetch_sweep``) must
answer >= 5x faster through one ``predict_batch`` call than through the
equivalent ``predict`` loop, on every sampled zoo machine, with every
batched payload bit-identical to its scalar twin — and a real daemon
with ``--batch-window-ms`` armed must coalesce a miss-heavy replay into
batches averaging more than one request without changing a byte of any
response.  The measured numbers are written to
``BENCH_oracle_batch.json`` at the repo root — the same artifact
``python -m repro.bench --oracle-batch-perf`` produces.
"""

from pathlib import Path

from repro.bench.oracle_batch_perf import (
    DEFAULT_MACHINES,
    SWEEP_KINDS,
    run_oracle_batch_bench,
    write_oracle_batch_bench,
)

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_oracle_batch.json"

#: The ISSUE's acceptance criterion for the big sweep kinds; measured
#: speedups run 5.8-56x on the dev box.
SWEEP_SPEEDUP_FLOOR = 5.0


def test_oracle_batch_speedups(benchmark):
    result = benchmark.pedantic(
        run_oracle_batch_bench,
        rounds=1,
        iterations=1,
    )
    write_oracle_batch_bench(str(BENCH_JSON), result=result)

    assert result["bit_identical"], (
        "a batched payload diverged from its scalar twin; see the "
        "per-lane mismatch counts in BENCH_oracle_batch.json"
    )
    for machine in DEFAULT_MACHINES:
        lanes = result["single_process"][machine]
        for kind in SWEEP_KINDS:
            lane = lanes[kind]
            assert lane["mismatches"] == 0, f"{machine}/{kind}: payload mismatch"
            assert lane["speedup"] >= SWEEP_SPEEDUP_FLOOR, (
                f"{machine}/{kind}: batch only {lane['speedup']:.1f}x over "
                f"the predict loop ({lane['loop_us_per_req']:.2f} vs "
                f"{lane['batch_us_per_req']:.2f} us/req), floor "
                f"{SWEEP_SPEEDUP_FLOOR:.0f}x"
            )
        # The non-gated kinds must still never lose to the loop.
        for kind, lane in lanes.items():
            assert lane["speedup"] >= 1.0, (
                f"{machine}/{kind}: batching slower than the scalar loop "
                f"({lane['speedup']:.2f}x)"
            )

    serve = result["serve_coalescing"]
    assert serve["payloads_match"], (
        "a coalesced daemon served a payload that differs from the direct "
        "in-process prediction"
    )
    assert serve["coalesced"] and serve["mean_batch_size"] > 1.0, (
        f"daemon failed to coalesce: mean batch size "
        f"{serve['mean_batch_size']:.2f} over {serve['batches']} batches"
    )
    assert serve["failures"] == 0
