"""Bench: Figure 3 — STREAM bandwidth scaling (threads/core, cores/chip)."""

from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_fig3(benchmark, system, report):
    result = benchmark(run_experiment, "fig3", system)
    report(result)
    assert within_factor(result.metrics["core_peak_gbs"], 26.0, 1.05)
    assert within_factor(result.metrics["chip_peak_gbs"], 189.0, 1.05)
    # Bandwidth grows monotonically with threads at one core.
    one_core = [r[2] for r in result.rows if r[0] == "1 core"]
    assert one_core == sorted(one_core)
