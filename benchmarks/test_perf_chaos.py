"""Bench: availability and integrity of the daemon under injected chaos.

The acceptance bar for the resilience layer (``repro.serve.chaos`` plus
the daemon's admission/breaker/drain machinery) is availability >= 99%
under the mixed-fault plan with **zero** invariant violations — every
response is either a structured error row or a payload bit-identical to
the direct run, never a corrupt result.  The deterministic probes must
each demonstrate their mechanism: a corrupt disk entry quarantined and
healed bit-identically, the overloaded heavy pool shedding with pacing
hints, and SIGTERM draining to exit code 0.  The measured run is
written to ``BENCH_chaos.json`` at the repo root — the same artifact
``python -m repro.bench --chaos-perf`` produces.
"""

from pathlib import Path

from repro.bench.chaos_perf import write_chaos_bench
from repro.serve.loadgen import run_chaos_bench

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"

#: The gated availability floor under the mixed-fault plan.
MIN_AVAILABILITY = 0.99


def test_chaos_availability_and_invariants(benchmark):
    result = benchmark.pedantic(
        run_chaos_bench,
        rounds=1,
        iterations=1,
    )
    write_chaos_bench(str(BENCH_JSON), result=result)
    mixed = result["mixed_fault"]
    # The invariant: never a corrupt or misattributed payload — every
    # non-ok response carried a structured error row.
    assert mixed["violations"] == 0, f"{mixed['violations']} invariant violations"
    assert mixed["availability"] >= MIN_AVAILABILITY, (
        f"availability {mixed['availability']:.4f} under mixed faults "
        f"is below the {MIN_AVAILABILITY:.0%} floor"
    )
    # Chaos actually fired — an idle plan would gate nothing.
    assert mixed["server_chaos_counts"], "no server-side faults were injected"
    # Self-healing: the corrupted entry was quarantined and the payload
    # recomputed bit-identically.
    quarantine = result["quarantine"]
    assert quarantine["payload_identical"], "healed payload differs from original"
    assert quarantine["quarantined"] >= 1
    assert quarantine["healed_source"] == "computed"
    # Backpressure: the overloaded heavy pool shed rather than queueing
    # without bound, and still served everything it admitted.
    overload = result["overload"]
    assert overload["total_shed"] >= 1
    assert overload["ok"] >= 1
    # Graceful drain: SIGTERM ended the daemon cleanly with the banner.
    drain = result["drain"]
    assert drain["exit_code"] == 0
    assert drain["drained_line_present"]
