"""Bench: live PMU counters must not blunt the batch engine's edge.

The counter design is hybrid — hot paths only increment genuinely new
information (store refs, dirty castouts), everything else is harvested
from existing statistics at read time — precisely so observability can
stay on in production.  The acceptance bar: with counters enabled, the
pointer-chase speedup of ``BENCH_trace.json`` degrades by at most 20%
relative to counters-off, and still clears the 10x bar outright.
"""

from repro.bench.trace_perf import run_trace_bench


def _compare(system, **kwargs):
    off = run_trace_bench(system=system, counters=False, **kwargs)
    on = run_trace_bench(system=system, counters=True, **kwargs)
    return {"off": off, "on": on}


def test_pmu_overhead_headline(benchmark, system):
    """1M-access L1-resident chase: the fast path carries zero live cost."""
    result = benchmark.pedantic(
        _compare, kwargs={"system": system, "repeats": 3}, rounds=1, iterations=1
    )
    speedup_off = result["off"]["speedup"]
    speedup_on = result["on"]["speedup"]
    assert result["on"]["simulated_mean_latency_ns"] == result["off"][
        "simulated_mean_latency_ns"
    ]
    assert speedup_on >= 10.0, f"counters-on speedup {speedup_on:.1f}x under the bar"
    assert speedup_on >= 0.8 * speedup_off, (
        f"enabling counters cost {(1 - speedup_on / speedup_off) * 100:.0f}% "
        f"of the speedup ({speedup_off:.1f}x -> {speedup_on:.1f}x)"
    )


def test_pmu_overhead_scalar_path(benchmark, system):
    """Out-of-L1 chase (scalar fallback, live increments actually run)."""
    result = benchmark.pedantic(
        _compare,
        kwargs={
            "system": system,
            "working_set": 2 << 20,
            "n_accesses": 100_000,
            "repeats": 3,
        },
        rounds=1,
        iterations=1,
    )
    assert result["on"]["speedup"] >= 0.8 * result["off"]["speedup"]
