"""Bench: Table V — molecular systems and their ERI statistics."""

from repro.bench.runner import run_experiment


def test_table5(benchmark, system, report):
    result = benchmark(run_experiment, "table5", system)
    report(result)
    assert len(result.rows) == 5
    # Storage per surviving ERI is consistent (~7.4 B) across molecules.
    per_eri = [r[5] for r in result.rows]
    assert max(per_eri) - min(per_eri) < 0.1
    # Screening keeps only a few percent of the n^4/8 quartets.
    assert all(r[6] < 7.0 for r in result.rows)
