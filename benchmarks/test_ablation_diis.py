"""Ablation bench: DIIS acceleration vs plain SCF iteration (§V-C).

The paper's Table VI uses plain fixed-point SCF.  DIIS cuts the
iteration count roughly in half, which shrinks HF-Comp's bill (it pays
the full ERI evaluation every iteration) much more than HF-Mem's —
narrowing, but not closing, the HF-Mem advantage.
"""

import pytest

from repro.apps.hf.basis import h_chain
from repro.apps.hf.molecules import GRAPHENE_252
from repro.apps.hf.perf import HFPerfModel
from repro.apps.hf.scf import SCFDriver


def run_scf(accelerator):
    return SCFDriver(h_chain(8), convergence=1e-9, accelerator=accelerator).run()


def test_plain_scf(benchmark):
    result = benchmark.pedantic(run_scf, args=(None,), rounds=1, iterations=1)
    assert result.converged


def test_diis_scf(benchmark):
    result = benchmark.pedantic(run_scf, args=("diis",), rounds=1, iterations=1)
    assert result.converged


def test_diis_cuts_iterations_and_narrows_table6(benchmark, system):
    plain, accel = benchmark.pedantic(
        lambda: (run_scf(None), run_scf("diis")), rounds=1, iterations=1
    )
    assert accel.energy == pytest.approx(plain.energy, abs=1e-7)
    assert accel.iterations <= 0.7 * plain.iterations

    # Project the iteration saving onto the Table VI cost model.
    model = HFPerfModel(system)
    base = model.estimate(GRAPHENE_252)
    scale = accel.iterations / plain.iterations
    import dataclasses

    fewer_iters = dataclasses.replace(
        GRAPHENE_252, scf_iterations=max(1, round(GRAPHENE_252.scf_iterations * scale))
    )
    accel_est = model.estimate(fewer_iters)
    # DIIS helps HF-Comp proportionally more than HF-Mem...
    assert accel_est.speedup < base.speedup
    # ...but HF-Mem still wins comfortably.
    assert accel_est.speedup > 2.0
