"""Bench: Figure 9 — the E870 roofline with the asymmetric write roof."""

from repro.bench.runner import run_experiment


def test_fig9(benchmark, system, report):
    result = benchmark(run_experiment, "fig9", system)
    report(result)
    assert abs(result.metrics["balance"] - 1.2) < 0.05
    rows = {r[0]: r for r in result.rows}
    assert abs(rows["LBMHD"][2] - 1843.2) < 25
    assert abs(rows["LBMHD (write-only mix)"][2] - 614.4) < 10
    assert rows["SpMV"][3] == "memory"
    assert rows["3D FFT"][3] == "compute"
