"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via
the experiment registry, times it with pytest-benchmark, prints the
reproduced rows, and asserts the paper's shape criteria.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.arch import e870


@pytest.fixture(scope="session")
def system():
    return e870()


@pytest.fixture(scope="session")
def report(request):
    """Print a reproduced table once, at the end of the run."""

    def _print(result):
        capmanager = request.config.pluginmanager.getplugin("capturemanager")
        with capmanager.global_and_fixture_disabled():
            print()
            print(result.render())

    return _print
