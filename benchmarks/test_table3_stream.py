"""Bench: Table III — STREAM bandwidth vs read:write ratio."""

from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_table3(benchmark, system, report):
    result = benchmark(run_experiment, "table3", system)
    report(result)
    rows = {r[0]: (r[1], r[2]) for r in result.rows}
    # Peak at 2:1; write-only is the weakest mix; all rows within 10%.
    assert max(rows, key=lambda k: rows[k][0]) == "2:1"
    assert min(rows, key=lambda k: rows[k][0]) == "Write Only"
    for label, (model, paper) in rows.items():
        assert within_factor(model, paper, 1.10), label
