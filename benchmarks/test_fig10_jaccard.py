"""Bench: Figure 10 — all-pairs Jaccard time/memory vs R-MAT scale.

Two parts: the figure regeneration through the calibrated model, and a
real execution of the locality-aware algorithm at container scale.
"""

import numpy as np

from repro.apps.jaccard import all_pairs_jaccard
from repro.bench.runner import run_experiment
from repro.workloads.rmat import RMATConfig, rmat_adjacency


def test_fig10(benchmark, system, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig10", system), rounds=1, iterations=1
    )
    report(result)
    times = [r[1] for r in result.rows]
    ratios = [r[4] for r in result.rows]
    assert times == sorted(times)
    assert all(r > 10 for r in ratios), "output must dwarf the input"


def test_jaccard_real_execution(benchmark):
    """Time the real sparse-algebra kernel on an R-MAT scale-11 graph."""
    adj = rmat_adjacency(RMATConfig(scale=11, edge_factor=8, seed=1))

    result = benchmark(all_pairs_jaccard, adj)
    assert result.output_nnz > adj.nnz
    assert np.all(result.similarity.data <= 1.0 + 1e-12)
