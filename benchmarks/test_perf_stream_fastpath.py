"""Bench: steady-state bulk regime paths vs the scalar-chunk baseline.

The acceptance bar for the fast paths is a >=5x wall-clock win on a
prefetcher-on sequential STREAM-style trace, with the streaming and
write regimes clearing conservative floors of their own.  Every lane
cross-checks that ``fast_paths=True`` and ``fast_paths=False`` simulate
the identical mean latency, so the speedups are for bit-identical
results.  The measured numbers are written to
``BENCH_stream_fastpath.json`` at the repo root — the same artifact
``python -m repro.bench --stream-fastpath-perf`` produces.
"""

from pathlib import Path

from repro.bench.stream_fastpath_perf import (
    run_stream_fastpath_bench,
    write_stream_fastpath_bench,
)

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_stream_fastpath.json"

#: Conservative floors well under the measured speedups (prefetch ~6x,
#: streaming ~4x, resident writes ~9x on the dev box); the prefetch
#: floor is the ISSUE's acceptance criterion.
SPEEDUP_FLOORS = {
    "prefetch": 5.0,
    "stream_read": 2.5,
    "stream_write": 2.5,
    "resident_write": 4.0,
}


def test_stream_fastpath_speedups(benchmark, system):
    result = benchmark.pedantic(
        run_stream_fastpath_bench,
        kwargs={"system": system, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    write_stream_fastpath_bench(str(BENCH_JSON), result=result)
    lanes = result["lanes"]
    assert set(lanes) == set(SPEEDUP_FLOORS)
    for name, floor in SPEEDUP_FLOORS.items():
        lane = lanes[name]
        # The bench itself raises if the two settings disagree; keep a
        # visible cross-check that a simulation actually happened.
        assert lane["simulated_mean_latency_ns"] > 0
        assert lane["speedup"] >= floor, (
            f"{name}: fast paths only {lane['speedup']:.2f}x over the "
            f"scalar-chunk baseline ({lane['fast_ns_per_access']:.0f} vs "
            f"{lane['scalar_ns_per_access']:.0f} ns/access), "
            f"floor {floor}x"
        )
