"""Bench: Figure 11 — CSR SpMV across the (synthetic) UF matrix suite."""

import numpy as np

from repro.apps.spmv import CSRSpMV
from repro.bench.runner import run_experiment
from repro.workloads.suitesparse import by_name, generate


def test_fig11(benchmark, system, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig11", system), rounds=1, iterations=1
    )
    report(result)
    rows = {r[0]: r for r in result.rows}
    dense = rows["Dense"][1]
    assert all(r[1] <= dense * 1.001 for r in rows.values())
    # Most of the suite tracks Dense; the scattered tail does not.
    near = [name for name, r in rows.items() if r[2] > 0.85]
    assert len(near) >= 6
    assert rows["Webbase"][2] < 0.85


def test_csr_real_execution(benchmark):
    """Time the real partitioned CSR kernel on a generated FEM matrix."""
    matrix = generate(by_name("FEM/Cantilever"), rows=20_000, seed=7)
    x = np.random.default_rng(0).standard_normal(matrix.shape[1])
    kernel = CSRSpMV(matrix, num_threads=64, num_sockets=8)

    y = benchmark(kernel.multiply, x)
    np.testing.assert_allclose(y, matrix @ x, rtol=1e-10)
