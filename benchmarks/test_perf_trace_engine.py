"""Bench: batched trace engine vs per-access reference simulator.

The acceptance bar for the vectorized engine is a >=10x throughput win
on a 1M-access pointer chase over a 32 KB working set (the L1-resident
lmbench plateau).  The measured result is written to
``BENCH_trace.json`` at the repo root — the same artifact
``python -m repro.bench --trace-perf`` produces.
"""

from pathlib import Path

from repro.bench.trace_perf import run_trace_bench, write_trace_bench

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_trace.json"


def test_trace_engine_speedup(benchmark, system):
    result = benchmark.pedantic(
        run_trace_bench,
        kwargs={"system": system, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    write_trace_bench(str(BENCH_JSON), result=result)
    # Engines must agree exactly on the simulated latency...
    assert result["simulated_mean_latency_ns"] > 0
    # ...and the batch engine must clear the 10x acceptance bar.
    assert result["speedup"] >= 10.0, (
        f"batch engine only {result['speedup']:.1f}x faster "
        f"({result['batch_ns_per_access']:.0f} ns/access vs "
        f"{result['reference_ns_per_access']:.0f})"
    )


def test_trace_engine_large_working_set(benchmark, system):
    """Out-of-L1 working set still wins (scalar-path speedup, no fast path)."""
    result = benchmark.pedantic(
        run_trace_bench,
        kwargs={
            "system": system,
            "working_set": 2 << 20,
            "n_accesses": 100_000,
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    assert result["speedup"] >= 1.5
