"""Ablation bench: replicated vs distributed SpMV input vector (§V-B.1).

The paper's CSR SpMV replicates the input vector once per socket
because distributing it "will significantly lower the bandwidth".
This ablation quantifies that choice through the NUMA traffic model:
with per-socket replicas every x-read is chip-local; with a single
distributed copy 7/8 of the reads cross the SMP fabric.
"""

import pytest

from repro.numa import AffinityMap, Allocation, InterleavePolicy, LocalPolicy, NumaModel

MB = 1 << 20
GB = 1e9


@pytest.fixture(scope="module")
def setup(system):
    model = NumaModel(system)
    affinity = AffinityMap.compact(system, 512, smt=8)
    return system, model, affinity


def replicated_estimate(system, model, affinity):
    """One x replica per socket: every thread reads its local copy.

    Modelled as each chip's threads reading a chip-local allocation —
    per-chip flows are independent, so the aggregate is 8x one chip.
    """
    one_chip = AffinityMap.compact(system, 64, smt=8)
    est = model.estimate(
        one_chip, [(Allocation("x-replica", 0, 16 * MB, LocalPolicy(0)), 1.0)]
    )
    return est.bandwidth * system.num_chips, est


def distributed_estimate(system, model, affinity):
    """A single x interleaved across all sockets: 7/8 remote reads."""
    est = model.estimate(
        affinity, [(Allocation("x-dist", 0, 16 * MB, InterleavePolicy(range(8))), 1.0)]
    )
    return est.bandwidth, est


def test_replicated_vector(benchmark, setup, report):
    system, model, affinity = setup
    bw, est = benchmark(replicated_estimate, system, model, affinity)
    assert est.local_fraction == pytest.approx(1.0)
    assert bw / GB > 800  # all sockets stream locally


def test_distributed_vector(benchmark, setup):
    system, model, affinity = setup
    bw, est = benchmark(distributed_estimate, system, model, affinity)
    assert est.local_fraction == pytest.approx(1 / 8, abs=0.01)
    assert bw / GB < 500  # fabric-bound


def test_replication_wins_big(benchmark, setup):
    """The paper's design point: replication is worth >2x bandwidth,
    at a memory cost of at most one vector copy per socket."""
    system, model, affinity = setup

    def both():
        return (
            replicated_estimate(system, model, affinity)[0],
            distributed_estimate(system, model, affinity)[0],
        )

    replicated, distributed = benchmark(both)
    assert replicated > 2.0 * distributed
    # Replication cost: 8 copies of x (tiny next to the matrix).
    copies = system.num_chips
    assert copies <= 16  # the paper's "at most 16 copies" bound
