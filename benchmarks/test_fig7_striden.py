"""Bench: Figure 7 — stride-256 latency with stride-N detection on/off."""

from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_fig7(benchmark, system, report):
    result = benchmark(run_experiment, "fig7", system)
    report(result)
    disabled = [r[1] for r in result.rows]
    enabled = [r[2] for r in result.rows]
    # Disabled: flat around ~50 ns; enabled: drops to the paper's ~14 ns.
    assert within_factor(disabled[0], 50.0, 1.2)
    assert within_factor(min(enabled), 14.0, 1.5)
    assert min(enabled) < 0.5 * disabled[0]
