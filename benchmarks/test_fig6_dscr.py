"""Bench: Figure 6 — latency/bandwidth vs DSCR prefetch depth."""

from repro.bench.runner import run_experiment


def test_fig6(benchmark, system, report):
    result = benchmark(run_experiment, "fig6", system)
    report(result)
    lats = [r[2] for r in result.rows]
    bws = [r[3] for r in result.rows]
    assert lats == sorted(lats, reverse=True)
    assert bws == sorted(bws)
    # Deepest prefetch: latency collapses by >10x vs prefetch-off.
    assert lats[-1] < lats[0] / 10
