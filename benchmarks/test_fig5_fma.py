"""Bench: Figure 5 — FMA throughput vs threads/core and loop length."""

from repro.bench.runner import run_experiment


def test_fig5(benchmark, system, report):
    result = benchmark(run_experiment, "fig5", system)
    report(result)
    by_key = {(r[0], r[1]): r[3] for r in result.rows}
    # Peak needs threads x FMAs >= 12.
    assert by_key[(2, 6)] == 100.0
    assert by_key[(1, 12)] == 100.0
    assert by_key[(1, 6)] < 60.0
    # Register cliff on the 12-FMA curve beyond 6 threads.
    assert by_key[(8, 12)] < by_key[(6, 12)]
    # Odd-thread imbalance.
    assert by_key[(3, 2)] < by_key[(4, 2)]
