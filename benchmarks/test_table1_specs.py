"""Bench: Table I — POWER7 vs POWER8 spec comparison."""

from repro.bench.runner import run_experiment


def test_table1(benchmark, system, report):
    result = benchmark(run_experiment, "table1", system)
    report(result)
    rows = {r[0]: (r[1], r[2]) for r in result.rows}
    assert rows["Threads/core"] == (4, 8)
    assert rows["L2 cache/core (KB)"] == (256, 512)
    assert rows["Instruction issue/cycle"] == (8, 10)
