"""Bench: the serve daemon's hot path vs cold-start process launches.

The acceptance bar for the serving layer (``repro.serve``) is a >=100x
throughput win for LRU-hot requests over the cold-start rate (one
``python -c`` oracle query per process) — the whole point of keeping a
daemon resident.  The measured run is written to ``BENCH_serve.json``
at the repo root — the same artifact ``python -m repro.bench
--serve-perf`` produces — and refuses to pass unless the conformance
pass inside the harness found every served payload bit-identical to
the direct in-process computation.
"""

from pathlib import Path

from repro.bench.serve_perf import write_serve_bench
from repro.serve.loadgen import run_serve_bench

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def test_serve_hot_path_speedup(benchmark):
    result = benchmark.pedantic(
        run_serve_bench,
        rounds=1,
        iterations=1,
    )
    write_serve_bench(str(BENCH_JSON), result=result)
    # Served payloads must be bit-identical to direct runs on every
    # temperature (the harness ran the conformance pass already)...
    assert result["bit_identical"], "\n".join(result["conformance"])
    # ...identical concurrent requests must have computed once...
    assert result["dedup_executions"] == 1
    assert result["dedup_ratio"] >= (result["dedup_clients"] - 1) / result["dedup_clients"]
    # ...the mixed-phase hit rate must match the schedule's hot fraction...
    assert result["lru_hit_rate"] >= result["hot_fraction"] - 0.01
    # ...and the LRU-hot path must clear the 100x acceptance bar.
    assert result["hot"]["rps"] >= 100.0 * result["cold_start_rps"], (
        f"hot path only {result['hot_rps_over_cold']:.1f}x the cold-start "
        f"rate ({result['hot']['rps']:.0f} vs {result['cold_start_rps']:.2f} req/s)"
    )
