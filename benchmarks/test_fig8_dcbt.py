"""Bench: Figure 8 — DCBT gains for randomly-ordered block scans."""

from repro.bench.runner import run_experiment


def test_fig8(benchmark, system, report):
    result = benchmark(run_experiment, "fig8", system)
    report(result)
    small = [r for r in result.rows if r[0] <= 2048]
    large = [r for r in result.rows if r[0] >= (1 << 20)]
    assert any(r[3] > 25.0 for r in small), "small blocks must gain >25%"
    assert all(r[3] < 5.0 for r in large), "large blocks must gain ~nothing"
