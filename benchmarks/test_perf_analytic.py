"""Bench: the analytic oracle vs the trace engine (the >=1000x gate).

The acceptance bar for the oracle is a >=1000x wall-clock win over the
trace-driven batch engine on every prediction lane — lat_mem chase
points, cold STREAM sweeps, and the full traced DSCR depth sweep —
with every prediction inside its golden differential tolerance.  The
measured numbers are written to ``BENCH_analytic.json`` at the repo
root — the same artifact ``python -m repro.bench --analytic-perf``
produces.
"""

from pathlib import Path

from repro.bench.analytic_perf import run_analytic_bench, write_analytic_bench

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_analytic.json"

#: The ISSUE's acceptance criterion; measured speedups run 4-5 orders
#: of magnitude (tens of thousands on the dev box).
SPEEDUP_FLOOR = 1000.0

LANES = ("lat_mem", "stream", "prefetch")


def test_analytic_oracle_speedups(benchmark, system):
    result = benchmark.pedantic(
        run_analytic_bench,
        kwargs={"system": system},
        rounds=1,
        iterations=1,
    )
    write_analytic_bench(str(BENCH_JSON), result=result)
    lanes = result["lanes"]
    assert set(lanes) == set(LANES)
    for name in LANES:
        lane = lanes[name]
        assert lane["speedup"] >= SPEEDUP_FLOOR, (
            f"{name}: oracle only {lane['speedup']:.0f}x over the trace "
            f"engine ({lane['trace_s']:.3f} s vs {1e6 * lane['oracle_s']:.1f} us), "
            f"floor {SPEEDUP_FLOOR:.0f}x"
        )
        assert lane["within_tolerance"], (
            f"{name}: max rel err {lane['max_rel_err']:.3e} exceeds the "
            f"golden tolerance {lane['tolerance']:.3e}"
        )
    # The deterministic lanes must reproduce the trace exactly, counters
    # included — an approximation creeping in is a regression even if it
    # stays under the chase-model tolerance.
    assert lanes["prefetch"]["counters_exact"]
    assert lanes["stream"]["max_rel_err"] < 1e-9
    assert result["all_within_tolerance"]
