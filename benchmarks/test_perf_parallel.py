"""Bench: sharded multiprocess trace execution vs the serial engine.

The acceptance bar for the sharded layer (``repro.parallel``) is a
>=2x wall-clock win on a 4-worker pointer chase whose working set
exceeds the modelled L1 — the serial engine falls off the vectorized
fast path while each shard's hashed slice stays L1-resident.  The
measured result is written to ``BENCH_parallel.json`` at the repo root
— the same artifact ``python -m repro.bench --parallel-perf`` produces.
The pooled run must also match the in-process oracle bit-for-bit.
"""

from pathlib import Path

from repro.bench.parallel_perf import run_parallel_bench, write_parallel_bench

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def test_parallel_shard_speedup(benchmark):
    result = benchmark.pedantic(
        run_parallel_bench,
        rounds=1,
        iterations=1,
    )
    write_parallel_bench(str(BENCH_JSON), result=result)
    # The pooled run and the workers=1 oracle must agree bit-for-bit...
    assert result["bit_identical"], "pooled run diverged from the serial oracle"
    # ...the shard plan must actually restore the L1-resident fast path...
    assert result["sharded_l1_hit_fraction"] > result["serial_l1_hit_fraction"]
    # ...and the sharded run must clear the 2x acceptance bar.
    assert result["speedup"] >= 2.0, (
        f"sharded run only {result['speedup']:.2f}x faster "
        f"({result['parallel_s']:.2f}s vs serial {result['serial_s']:.2f}s)"
    )
