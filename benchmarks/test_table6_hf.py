"""Bench: Table VI — HF-Comp vs HF-Mem timings.

The figure regeneration uses the calibrated timing model; a second
benchmark runs the *real* SCF both ways on an H8 chain and checks the
recompute-vs-store trade shows up in genuine integral-evaluation
counts.
"""

from repro.apps.hf.scf import SCFDriver
from repro.apps.hf.basis import h_chain
from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_table6(benchmark, system, report):
    result = benchmark(run_experiment, "table6", system)
    report(result)
    for row in result.rows:
        assert row[12] > 2.5, (row[0], "HF-Mem must win by >2.5x")
        assert within_factor(row[2], row[3], 1.35), (row[0], "HF-Comp total")
        assert within_factor(row[10], row[11], 1.35), (row[0], "HF-Mem total")


def test_hf_mem_real_execution(benchmark):
    def run_mem():
        return SCFDriver(h_chain(6), mode="mem").run()

    result = benchmark(run_mem)
    assert result.converged


def test_hf_comp_real_execution(benchmark):
    def run_comp():
        return SCFDriver(h_chain(6), mode="comp").run()

    result = benchmark(run_comp)
    assert result.converged
