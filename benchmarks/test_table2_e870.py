"""Bench: Table II — E870 characteristics."""

from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_table2(benchmark, system, report):
    result = benchmark(run_experiment, "table2", system)
    report(result)
    for name, model, paper in result.rows:
        assert within_factor(float(model), float(paper), 1.02), name
