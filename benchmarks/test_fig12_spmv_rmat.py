"""Bench: Figure 12 — two-scan SpMV on R-MAT graphs up to scale 31."""

import numpy as np

from repro.apps.spmv import TwoScanSpMV
from repro.bench.runner import run_experiment
from repro.workloads.rmat import RMATConfig, rmat_adjacency


def test_fig12(benchmark, system, report):
    result = benchmark(run_experiment, "fig12", system)
    report(result)
    gflops = [r[1] for r in result.rows]
    assert gflops == sorted(gflops, reverse=True)
    assert gflops[0] > 1.3 * gflops[-1]


def test_twoscan_real_execution(benchmark):
    """Time the real two-scan kernel on an R-MAT scale-13 graph."""
    adj = rmat_adjacency(RMATConfig(scale=13, edge_factor=16, seed=1))
    x = np.random.default_rng(0).standard_normal(adj.shape[1])
    kernel = TwoScanSpMV(adj, block_width=2048)

    y = benchmark(kernel.multiply, x)
    np.testing.assert_allclose(y, adj @ x, rtol=1e-9, atol=1e-9)
