"""Bench: Figure 4 — random-access bandwidth vs SMT level and streams."""

from repro.bench.runner import run_experiment
from repro.reporting.compare import within_factor


def test_fig4(benchmark, system, report):
    result = benchmark(run_experiment, "fig4", system)
    report(result)
    assert within_factor(result.metrics["peak_gbs"], 500.0, 1.10)
    assert abs(result.metrics["fraction_of_read_peak"] - 0.41) < 0.03
    # SMT8 with 4 streams per thread reaches >90% of the ceiling.
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    assert by_key[(8, 4)] > 0.9 * result.metrics["peak_gbs"]
