"""Bench: Figure 2 — memory read latency vs working set (both page sizes)."""

from repro.bench.runner import run_experiment


def test_fig2(benchmark, system, report):
    result = benchmark(run_experiment, "fig2", system)
    report(result)
    m = result.metrics
    # The staircase: L1 < L2 < L3 < remote L3 < L4 < DRAM.
    assert (
        m["plateau_l1"] < m["plateau_l2"] < m["plateau_l3"]
        < m["plateau_l3_remote"] < m["plateau_l4"] < m["plateau_dram"]
    )
    # Huge pages never slower than 64 KB pages.
    assert all(r[2] <= r[1] + 1e-9 for r in result.rows)


def test_fig2_trace_driven_point(benchmark, system):
    """Time one trace-driven latency measurement (1 MB working set)."""
    from repro.bench.latency import traced_latency_ns

    latency = benchmark.pedantic(
        traced_latency_ns, args=(system, 1 << 20), rounds=1, iterations=1
    )
    # 1 MB working set sits on the L3 plateau.
    assert 3.0 < latency < 30.0
