"""Bench: Table IV — SMP interconnect latency and bandwidth."""

from repro.bench.runner import run_experiment
from repro.reporting import paper_values as paper
from repro.reporting.compare import within_factor


def test_table4(benchmark, system, report):
    result = benchmark(run_experiment, "table4", system)
    report(result)
    for row in result.rows:
        name, lat, lat_p, _, _, uni, uni_p, bi, bi_p = row
        assert within_factor(lat, lat_p, 1.10), (name, "latency")
        assert within_factor(uni, uni_p, 1.10), (name, "uni bw")
        assert within_factor(bi, bi_p, 1.10), (name, "bi bw")
    for key, value in paper.TABLE4_AGGREGATES_GBS.items():
        assert within_factor(result.metrics[f"agg_{key}"], value, 1.15), key
