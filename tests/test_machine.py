"""Tests for the P8Machine facade (the library's public entry point)."""

import pytest

from repro import KernelProfile, P8Machine, __version__


class TestConstruction:
    def test_e870(self, e870_machine):
        assert e870_machine.spec.num_chips == 8
        assert "E870" in e870_machine.spec.name

    def test_largest(self):
        m = P8Machine.largest_smp()
        assert m.spec.num_cores == 192

    def test_version(self):
        assert __version__


class TestQueries:
    def test_summary(self, e870_machine):
        s = e870_machine.summary()
        assert s["cores"] == 64
        assert s["balance"] == pytest.approx(1.21, abs=0.02)

    def test_stream_bandwidth_peak_at_2_1(self, e870_machine):
        best = e870_machine.stream_bandwidth(2, 1)
        assert best > e870_machine.stream_bandwidth(1, 1)
        assert best > e870_machine.stream_bandwidth(1, 0)

    def test_chip_bandwidth(self, e870_machine):
        assert e870_machine.chip_bandwidth(8, 8) > e870_machine.chip_bandwidth(1, 8)

    def test_random_read_bandwidth(self, e870_machine):
        assert e870_machine.random_read_bandwidth(8, 4) > e870_machine.random_read_bandwidth(1, 1)

    def test_remote_latency(self, e870_machine):
        cold = e870_machine.remote_latency_ns(0, 4)
        warm = e870_machine.remote_latency_ns(0, 4, prefetch=True)
        assert warm < cold / 5

    def test_attainable_gflops(self, e870_machine):
        assert e870_machine.attainable_gflops(1.0) == pytest.approx(1843.2, rel=0.01)
        assert e870_machine.attainable_gflops(1.0, write_only=True) == pytest.approx(
            614.4, rel=0.01
        )

    def test_time_kernel(self, e870_machine):
        k = KernelProfile("k", flops=0, bytes_read=2e9, bytes_written=1e9)
        t = e870_machine.time_kernel(k)
        assert 0.001 < t < 0.01  # ~3 GB at ~1.5 TB/s

    def test_hierarchy_model(self, e870_machine):
        h = e870_machine.hierarchy()
        assert h.latency_ns(1 << 30) > h.latency_ns(32 * 1024)

    def test_models_are_cached(self, e870_machine):
        assert e870_machine.topology is e870_machine.topology
        assert e870_machine.roofline is e870_machine.roofline
