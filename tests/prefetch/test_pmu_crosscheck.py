"""Cross-check: prefetch accuracy is one number, however you compute it.

Before the PMU layer, the stream engine and the hierarchies kept
separate prefetch tallies that could silently drift.  These tests pin
the unification: the engine's ``PM_PREF_LINES_EMITTED`` equals the
hierarchy's ``PM_PREF_ISSUED`` (every emitted line is installed exactly
once), the engine's legacy ``streams_confirmed`` attribute is a view of
its PMU bank, and the :func:`repro.prefetch.traced.traced_sequential_scan`
report is PMU-derived so it cannot disagree with either.
"""

import numpy as np
import pytest

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.pmu import events as ev, prefetch_accuracy, read_counters
from repro.prefetch import StreamPrefetcher, scaled_demo_chip, traced_sequential_scan

CHIP = e870().chip
LINE = CHIP.core.l1d.line_size


@pytest.mark.parametrize("engine_cls", [MemoryHierarchy, BatchMemoryHierarchy])
@pytest.mark.parametrize("depth", [2, 5, 7])
def test_emitted_equals_issued_on_streams(engine_cls, depth):
    pf = StreamPrefetcher(line_size=LINE, depth=depth)
    hier = engine_cls(CHIP, prefetcher=pf)
    hier.access_trace(np.arange(768, dtype=np.int64) * LINE)
    bank = read_counters(hier)
    assert bank[ev.PM_PREF_LINES_EMITTED] == bank[ev.PM_PREF_ISSUED]
    assert bank[ev.PM_PREF_ISSUED] > 0
    assert bank[ev.PM_PREF_USEFUL] <= bank[ev.PM_PREF_ISSUED]


def test_emitted_equals_issued_via_dcbt():
    """declare_stream's burst is installed line-for-line too."""
    pf = StreamPrefetcher(line_size=LINE, depth=7)
    hier = BatchMemoryHierarchy(CHIP, prefetcher=pf)
    block = 32 * LINE
    for start in (0, 1 << 20):
        for pf_addr in pf.declare_stream(start, block):
            hier._prefetch_fill(pf_addr // LINE)
        hier.access_trace(start + np.arange(32, dtype=np.int64) * LINE)
    bank = read_counters(hier)
    assert bank[ev.PM_PREF_LINES_EMITTED] == bank[ev.PM_PREF_ISSUED]
    assert bank[ev.PM_PREF_STREAM_CONFIRMED] >= 2  # the two declared streams


def test_streams_confirmed_is_a_bank_view():
    pf = StreamPrefetcher(line_size=LINE, depth=5)
    assert pf.streams_confirmed == 0
    pf.declare_stream(0, 16 * LINE)
    assert pf.streams_confirmed == 1
    assert pf.streams_confirmed == pf.bank[ev.PM_PREF_STREAM_CONFIRMED]
    assert pf.lines_emitted == pf.bank[ev.PM_PREF_LINES_EMITTED]


def test_traced_scan_reports_pmu_numbers():
    """The sweep row equals an independent PMU harvest of the same run."""
    chip = scaled_demo_chip(CHIP)
    row = traced_sequential_scan(chip, depth=5, n_lines=1024)

    line = chip.core.l1d.line_size
    pf = StreamPrefetcher(line_size=line, depth=5)
    hier = BatchMemoryHierarchy(chip, prefetcher=pf)
    hier.access_trace(np.arange(1024, dtype=np.int64) * line)
    bank = read_counters(hier)

    assert row["accesses"] == bank[ev.PM_MEM_REF]
    assert row["dram_misses"] == bank[ev.PM_DATA_FROM_MEM]
    assert row["prefetch_issued"] == bank[ev.PM_PREF_ISSUED]
    assert row["prefetch_useful"] == bank[ev.PM_PREF_USEFUL]
    assert row["prefetch_accuracy"] == pytest.approx(prefetch_accuracy(bank))
    assert 0.0 < row["prefetch_accuracy"] <= 1.0
