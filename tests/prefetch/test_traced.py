"""Trace-driven DSCR/DCBT sweeps over the batch engine."""

import pytest

from repro.arch import e870
from repro.prefetch import (
    scaled_demo_chip,
    traced_dcbt_compare,
    traced_dscr_sweep,
    traced_sequential_scan,
)


@pytest.fixture(scope="module")
def chip():
    return scaled_demo_chip(e870().chip)


def test_scaled_demo_chip_shrinks(chip):
    full = e870().chip
    assert chip.cores_per_chip == 1
    assert chip.core.l3_slice.capacity < full.core.l3_slice.capacity


def test_depth_one_disables_prefetching(chip):
    row = traced_sequential_scan(chip, depth=1, n_lines=512)
    assert row["prefetch_issued"] == 0
    assert row["dram_misses"] == row["accesses"]


def test_deeper_dscr_reduces_latency(chip):
    rows = traced_dscr_sweep(chip, depths=[1, 4, 7], n_lines=1024)
    lat = [r["mean_latency_ns"] for r in rows]
    assert lat[1] < lat[0]  # enabling the engine is a big win
    assert lat[2] <= lat[1] + 1e-9  # deeper never hurts a pure stream
    assert rows[2]["prefetch_useful"] > 0


def test_dcbt_beats_hardware_detection_on_small_blocks(chip):
    # The array must be comfortably out-of-cache (the scaled chip holds
    # ~3 MB across L3+L4) for stream restarts to dominate.
    cmp = traced_dcbt_compare(chip, array_bytes=4 << 20)
    assert cmp["dcbt_latency_ns"] < cmp["hw_latency_ns"]
    assert cmp["gain"] > 0.25  # the paper's ">25% on small arrays"
