"""Figure 6/7/8 reproduction tests: DSCR, stride-N, DCBT models."""

import pytest

from repro.prefetch.dcbt import block_scan_efficiency, dcbt_gain, dcbt_sweep
from repro.prefetch.dscr import (
    dscr_sweep,
    prefetch_distance,
    row_efficiency,
    sequential_latency_ns,
    stream_bandwidth,
    validate_depth,
)
from repro.prefetch.stride import strided_latency_ns, stride_sweep
from repro.reporting import paper_values as paper
from repro.reporting.compare import is_monotone, within_factor


class TestDSCRDepth:
    def test_depth_1_means_off(self):
        assert prefetch_distance(1) == 0

    def test_distances_increase(self):
        dists = [prefetch_distance(d) for d in range(1, 8)]
        assert dists == sorted(dists)
        assert dists[-1] > dists[1]

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_depth(0)
        with pytest.raises(ValueError):
            validate_depth(8)


class TestFig6Latency:
    def test_monotone_decreasing_with_depth(self, e870_system):
        lats = [sequential_latency_ns(e870_system.chip, d) for d in range(1, 8)]
        assert is_monotone(lats, increasing=False)

    def test_depth_off_close_to_dram(self, e870_system):
        off = sequential_latency_ns(e870_system.chip, 1)
        assert off == pytest.approx(e870_system.chip.centaur.dram_latency_ns, rel=0.05)

    def test_deepest_close_to_l1(self, e870_system):
        deepest = sequential_latency_ns(e870_system.chip, 7)
        assert deepest < 5.0


class TestFig6Bandwidth:
    def test_monotone_increasing_with_depth(self, e870_system):
        bws = [stream_bandwidth(e870_system, d) for d in range(1, 8)]
        assert is_monotone(bws, increasing=True)

    def test_deepest_reaches_table3_peak(self, e870_system):
        from repro.mem.centaur import MemoryLinkModel, optimal_read_fraction

        peak = MemoryLinkModel(e870_system.chip).system_bandwidth(
            e870_system, optimal_read_fraction()
        )
        assert stream_bandwidth(e870_system, 7) == pytest.approx(peak)

    def test_row_efficiency_bounds(self):
        for d in range(1, 8):
            assert 0.3 < row_efficiency(d) <= 1.0

    def test_sweep_rows(self, e870_system):
        points = dscr_sweep(e870_system)
        assert [p.depth for p in points] == list(range(1, 8))
        assert all(p.bandwidth > 0 and p.latency_ns > 0 for p in points)


class TestFig7StrideN:
    def test_disabled_flat_and_high(self, e870_system):
        rows = stride_sweep(e870_system.chip, 256)
        disabled = [r["latency_disabled_ns"] for r in rows]
        assert max(disabled) - min(disabled) < 1e-9
        assert within_factor(disabled[0], paper.FIG7["latency_disabled_ns"], 1.2)

    def test_enabled_drops_to_paper_band(self, e870_system):
        best = strided_latency_ns(e870_system.chip, 256, depth=7, stride_detection=True)
        assert within_factor(best, paper.FIG7["latency_enabled_ns"], 1.5)
        assert best < 0.5 * paper.FIG7["latency_disabled_ns"]

    def test_dense_stream_detected_even_without_stride_bit(self, e870_system):
        dense = strided_latency_ns(e870_system.chip, 1, depth=7, stride_detection=False)
        strided = strided_latency_ns(e870_system.chip, 256, depth=7, stride_detection=False)
        assert dense < strided

    def test_rejects_zero_stride(self, e870_system):
        with pytest.raises(ValueError):
            strided_latency_ns(e870_system.chip, 0, 4, True)


class TestFig8DCBT:
    def test_gain_exceeds_25pct_on_small_blocks(self, e870_system):
        gain = dcbt_gain(e870_system.chip, 1024)
        assert gain > paper.FIG8["min_small_block_gain"]

    def test_gain_negligible_on_large_blocks(self, e870_system):
        gain = dcbt_gain(e870_system.chip, 8 << 20)
        assert gain < 0.02

    def test_gain_monotone_decreasing_past_peak(self, e870_system):
        # The gain peaks once blocks exceed the confirm window (~4 lines)
        # and decays monotonically from there.
        sizes = [1 << s for s in range(9, 24)]
        gains = [dcbt_gain(e870_system.chip, b) for b in sizes]
        assert is_monotone(gains, increasing=False, tolerance=1e-9)

    def test_dcbt_always_at_least_as_good(self, e870_system):
        for b in (256, 4096, 1 << 20):
            hw = block_scan_efficiency(e870_system.chip, b, use_dcbt=False)
            sw = block_scan_efficiency(e870_system.chip, b, use_dcbt=True)
            assert sw >= hw

    def test_efficiency_bounded_by_one(self, e870_system):
        for b in (256, 65536, 1 << 22):
            assert block_scan_efficiency(e870_system.chip, b, True) <= 1.0

    def test_rejects_sub_line_block(self, e870_system):
        with pytest.raises(ValueError):
            block_scan_efficiency(e870_system.chip, 64, True)

    def test_sweep_structure(self, e870_system):
        rows = dcbt_sweep(e870_system.chip, [256, 1024])
        assert len(rows) == 2
        assert all(r["gain"] >= 0 for r in rows)
