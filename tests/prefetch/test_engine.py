"""Unit tests for the operational stream-prefetch engine."""

import pytest

from repro.prefetch.engine import CONFIRM_ACCESSES, StreamPrefetcher

LINE = 128


def feed(pf, lines):
    """Feed line numbers as byte addresses; return prefetched line numbers."""
    out = []
    for l in lines:
        out.extend(a // LINE for a in pf.observe(l * LINE, is_write=False))
    return out


class TestDenseStreams:
    def test_ascending_stream_confirmed_and_prefetched(self):
        pf = StreamPrefetcher(LINE, depth=5)
        issued = feed(pf, range(20))
        assert pf.streams_confirmed >= 1
        assert issued, "confirmed stream must issue prefetches"
        # Prefetches run ahead of the demand stream.
        assert max(issued) > 19

    def test_descending_stream_detected(self):
        pf = StreamPrefetcher(LINE, depth=5)
        issued = feed(pf, range(100, 80, -1))
        assert pf.streams_confirmed >= 1
        assert issued
        assert min(issued) < 81

    def test_no_duplicate_prefetches(self):
        pf = StreamPrefetcher(LINE, depth=5)
        issued = feed(pf, range(64))
        assert len(issued) == len(set(issued))

    def test_depth_one_disables(self):
        pf = StreamPrefetcher(LINE, depth=1)
        assert feed(pf, range(50)) == []
        assert pf.streams_confirmed == 0

    def test_deeper_setting_prefetches_farther(self):
        shallow = StreamPrefetcher(LINE, depth=3)
        deep = StreamPrefetcher(LINE, depth=7)
        far_shallow = max(feed(shallow, range(40)), default=0)
        far_deep = max(feed(deep, range(40)), default=0)
        assert far_deep > far_shallow


class TestStrideN:
    def test_strided_ignored_by_default(self):
        pf = StreamPrefetcher(LINE, depth=7, stride_n=False)
        assert feed(pf, range(0, 20 * 256, 256)) == []

    def test_strided_detected_when_enabled(self):
        pf = StreamPrefetcher(LINE, depth=7, stride_n=True)
        issued = feed(pf, range(0, 20 * 256, 256))
        assert pf.streams_confirmed >= 1
        assert issued
        assert all(l % 256 == 0 for l in issued)


class TestRandomTraffic:
    def test_random_lines_do_not_stream(self):
        import random

        rng = random.Random(9)
        pf = StreamPrefetcher(LINE, depth=7)
        lines = [rng.randrange(0, 1 << 20) * 7919 for _ in range(200)]
        issued = feed(pf, lines)
        # A few accidental pairs may look like strides; useful streams
        # should stay negligible.
        assert len(issued) < 50


class TestDCBTDeclaration:
    def test_declared_stream_prefetches_immediately(self):
        pf = StreamPrefetcher(LINE, depth=7)
        burst = pf.declare_stream(0, length_bytes=32 * LINE)
        assert burst, "DCBT must issue an initial burst"
        assert burst[0] == LINE  # first prefetch is the next line

    def test_burst_clipped_to_declared_length(self):
        pf = StreamPrefetcher(LINE, depth=7)
        burst = pf.declare_stream(0, length_bytes=4 * LINE)
        assert max(b // LINE for b in burst) <= 3

    def test_descending_declaration(self):
        pf = StreamPrefetcher(LINE, depth=7)
        burst = pf.declare_stream(10 * LINE, length_bytes=5 * LINE, descending=True)
        assert burst
        assert all(b // LINE < 10 for b in burst)
        assert min(b // LINE for b in burst) >= 6

    def test_declared_stream_continues_on_demand(self):
        pf = StreamPrefetcher(LINE, depth=4)
        pf.declare_stream(0, length_bytes=64 * LINE)
        issued = feed(pf, range(1, 10))
        assert issued  # the stream keeps running ahead

    def test_depth_off_ignores_dcbt(self):
        pf = StreamPrefetcher(LINE, depth=1)
        assert pf.declare_stream(0, 64 * LINE) == []


class TestCapacity:
    def test_stream_table_lru(self):
        pf = StreamPrefetcher(LINE, depth=7, max_streams=2)
        # Confirm three interleaved streams far apart; table holds two.
        bases = [0, 1 << 12, 1 << 14]
        for step in range(CONFIRM_ACCESSES + 2):
            for base in bases:
                pf.observe((base + step) * LINE, False)
        assert len(pf._streams) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(0, depth=5)
        with pytest.raises(ValueError):
            StreamPrefetcher(LINE, depth=9)
