"""Unit tests for the closed-form hierarchy model (Figure 2's engine)."""

import pytest

from repro.arch.power8 import PAGE_16M, PAGE_64K
from repro.mem.analytic import AnalyticHierarchy, resident_fraction

KIB = 1024
MIB = 1024 * KIB


class TestResidentFraction:
    def test_within_capacity(self):
        assert resident_fraction(100, 200, 2.0) == 1.0

    def test_beyond_capacity_decays(self):
        assert resident_fraction(400, 200, 1.0) == pytest.approx(0.5)
        assert resident_fraction(400, 200, 2.0) == pytest.approx(0.25)

    def test_zero_reach(self):
        assert resident_fraction(100, 0, 2.0) == 0.0

    def test_rejects_bad_working_set(self):
        with pytest.raises(ValueError):
            resident_fraction(0, 100, 2.0)


@pytest.fixture
def model(p8_chip):
    return AnalyticHierarchy(p8_chip, page_size=PAGE_64K)


class TestLevelFractions:
    def test_sum_to_one(self, model):
        for w in (16 * KIB, 1 * MIB, 64 * MIB, 1 << 30):
            fr = model.level_fractions(w)
            assert sum(fr.values()) == pytest.approx(1.0)
            assert all(v >= -1e-12 for v in fr.values())

    def test_small_set_all_l1(self, model):
        fr = model.level_fractions(32 * KIB)
        assert fr["L1"] == pytest.approx(1.0)

    def test_huge_set_mostly_dram(self, model):
        fr = model.level_fractions(8 << 30)
        assert fr["DRAM"] > 0.9


class TestLatencyCurve:
    def test_monotone_nondecreasing(self, model):
        sizes = [2 ** e for e in range(14, 34)]
        curve = model.curve(sizes)
        for a, b in zip(curve, curve[1:]):
            assert b >= a - 1e-9

    def test_plateau_values(self, model, p8_chip):
        # L1 plateau ~ L1 latency; DRAM tail ~ DRAM + TLB penalties.
        l1 = model.latency_ns(32 * KIB)
        assert l1 == pytest.approx(p8_chip.cycles_to_ns(3.0), rel=0.05)
        dram = model.latency_ns(4 << 30)
        assert dram > p8_chip.centaur.dram_latency_ns

    def test_l4_shoulder_visible(self, model, p8_chip):
        """Between the on-chip caches and DRAM there is an L4 regime."""
        l3r = model.latency_ns(48 * MIB)
        l4 = model.latency_ns(120 * MIB)
        dram = model.latency_ns(2 << 30)
        assert l3r < l4 < dram

    def test_erat_spike_at_3mb(self, model):
        """Figure 2: ERAT misses bump latency near 3 MB (48 x 64 KB)."""
        penalty_before = model.translation_penalty_ns(2 * MIB)
        penalty_after = model.translation_penalty_ns(6 * MIB)
        assert penalty_after > penalty_before


class TestPageSizeComparison:
    def test_huge_pages_cheaper_at_large_sets(self, p8_chip):
        """64 KB pages pay TLB misses beyond 128 MB; 16 MB pages do not."""
        regular = AnalyticHierarchy(p8_chip, page_size=PAGE_64K)
        huge = AnalyticHierarchy(p8_chip, page_size=PAGE_16M)
        w = 2 << 30
        assert huge.latency_ns(w) < regular.latency_ns(w)

    def test_both_page_sizes_see_erat_spike(self, p8_chip):
        """POWER8 fragments huge pages into 64 KB ERAT entries, so the
        3 MB ERAT spike appears on both curves (Figure 2)."""
        huge = AnalyticHierarchy(p8_chip, page_size=PAGE_16M)
        assert huge.translation_penalty_ns(6 * MIB) > huge.translation_penalty_ns(2 * MIB)

    def test_small_sets_identical(self, p8_chip):
        regular = AnalyticHierarchy(p8_chip, page_size=PAGE_64K)
        huge = AnalyticHierarchy(p8_chip, page_size=PAGE_16M)
        assert regular.latency_ns(64 * KIB) == pytest.approx(huge.latency_ns(64 * KIB))
