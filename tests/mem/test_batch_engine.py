"""Unit tests for the vectorized batch trace engine and its pieces."""

import dataclasses

import numpy as np
import pytest

from repro.arch import e870
from repro.arch.specs import CacheSpec
from repro.mem.batch import ArrayCache, BatchMemoryHierarchy, _last_occurrence_order
from repro.mem.cache import Cache
from repro.mem.hierarchy import MemoryHierarchy, TraceResult
from repro.mem.tlb import TLB
from repro.mem.trace import (
    blocked_random,
    blocked_random_addresses,
    random_chase,
    random_chase_addresses,
    sequential,
    sequential_addresses,
    uniform_random,
    uniform_random_addresses,
)


def make_pair(capacity=512, line=64, ways=2, policy="store-in"):
    spec = CacheSpec("t", capacity, line, ways, 1.0, policy)
    return Cache(spec), ArrayCache(spec)


def assert_same_state(ref: Cache, arr: ArrayCache):
    assert ref.dump_state() == arr.dump_state()
    assert dataclasses.asdict(ref.stats) == dataclasses.asdict(arr.stats)


class TestArrayCacheParity:
    """ArrayCache must behave identically to the OrderedDict Cache."""

    @pytest.mark.parametrize("policy", ["store-in", "store-through"])
    def test_random_op_sequence(self, policy):
        ref, arr = make_pair(policy=policy)
        rng = np.random.default_rng(42)
        for _ in range(2000):
            op = rng.integers(0, 6)
            line = int(rng.integers(0, 64))
            if op == 0:
                assert ref.lookup(line, False) == arr.lookup(line, False)
            elif op == 1:
                assert ref.lookup(line, True) == arr.lookup(line, True)
            elif op == 2:
                dirty = bool(rng.integers(0, 2))
                assert ref.fill(line, dirty) == arr.fill(line, dirty)
            elif op == 3:
                dirty = bool(rng.integers(0, 2))
                assert ref.insert_victim(line, dirty) == arr.insert_victim(line, dirty)
            elif op == 4:
                assert ref.invalidate(line) == arr.invalidate(line)
            else:
                assert (line in ref) == (line in arr)
                assert ref.is_dirty(line) == arr.is_dirty(line)
        assert_same_state(ref, arr)
        assert len(ref) == len(arr)
        assert sorted(ref.lines()) == sorted(arr.lines())

    def test_touch_dirty_and_flush(self):
        ref, arr = make_pair()
        for c in (ref, arr):
            c.fill(0)
            c.fill(1, dirty=True)
            c.touch_dirty(0)
        assert_same_state(ref, arr)
        assert ref.flush() == arr.flush()
        assert ref.dump_state() == arr.dump_state() == {}

    def test_touch_dirty_missing_raises(self):
        _, arr = make_pair()
        with pytest.raises(KeyError):
            arr.touch_dirty(99)

    def test_contains_all_and_commit_read_hits(self):
        ref, arr = make_pair(capacity=1024, ways=4)
        lines = [0, 16, 32, 48, 1, 17]
        for c in (ref, arr):
            for l in lines:
                c.fill(l)
        assert arr.contains_all(lines)
        assert not arr.contains_all(lines + [99])
        # Bulk commit == replaying the same hits one by one.
        trace = [0, 16, 0, 32, 0]
        for l in trace:
            assert ref.lookup(l, False)
        arr.commit_read_hits(len(trace), _last_occurrence_order(np.array(trace)))
        assert_same_state(ref, arr)

    def test_contains_none(self):
        _, arr = make_pair(capacity=1024, ways=4)
        for l in (0, 16, 32):
            arr.fill(l)
        assert arr.contains_none([1, 17, 99])
        assert not arr.contains_none([1, 16])
        assert arr.contains_none([])

    @pytest.mark.parametrize("policy", ["store-in", "store-through"])
    def test_commit_write_hits_matches_sequential(self, policy):
        ref, arr = make_pair(capacity=1024, ways=4, policy=policy)
        lines = [0, 16, 32, 48, 1]
        for c in (ref, arr):
            for l in lines:
                c.fill(l)
        trace = [16, 0, 16, 48, 0]
        for l in trace:
            assert ref.lookup(l, True)
        arr.commit_write_hits(len(trace), _last_occurrence_order(np.array(trace)))
        assert_same_state(ref, arr)

    def test_commit_fill_stream_matches_sequential(self):
        ref, arr = make_pair(capacity=512, ways=2)
        # Pre-dirty an old line so an eviction writeback is exercised.
        for c in (ref, arr):
            c.fill(0, dirty=True)
            c.fill(4, dirty=True)
        new = np.array([8, 12, 16, 20, 24], dtype=np.int64)
        for l in new.tolist():
            ref.fill(l)  # victims dropped on the floor (streaming L1)
        arr.commit_fill_stream(new)
        assert_same_state(ref, arr)

    def test_commit_fill_stream_empty(self):
        ref, arr = make_pair()
        arr.commit_fill_stream(np.array([], dtype=np.int64))
        assert_same_state(ref, arr)

    def test_state_arrays_shape(self):
        _, arr = make_pair(capacity=512, line=64, ways=2)
        arr.fill(0, dirty=True)
        tags, dirty, occ = arr.state_arrays()
        assert tags.shape == dirty.shape == (arr.spec.num_sets, 2)
        assert occ[0] == 1 and bool(dirty[0, occ[0] - 1])


class TestLastOccurrenceOrder:
    def test_order(self):
        assert _last_occurrence_order(np.array([3, 1, 3, 2, 1])) == [3, 2, 1]

    def test_lru_replay_matches_sequential(self):
        ref, arr = make_pair(capacity=1024, ways=8)
        lines = [0, 8, 16, 24]
        for c in (ref, arr):
            for l in lines:
                c.fill(l)
        trace = np.array([16, 0, 16, 8, 0, 24, 8])
        for l in trace.tolist():
            ref.lookup(l, False)
        arr.commit_read_hits(len(trace), _last_occurrence_order(trace))
        assert ref.dump_state() == arr.dump_state()


class TestTLBBatch:
    def test_translate_batch_matches_scalar(self):
        chip = e870().chip
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 30, 5000) * 8
        a = TLB(chip.core.tlb, 64 * 1024)
        b = TLB(chip.core.tlb, 64 * 1024)
        scalar = np.array([a.translate(int(x)) for x in addrs])
        batch = b.translate_batch(addrs)
        assert np.array_equal(scalar, batch)
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        assert a._erat.state() == b._erat.state()
        assert a._tlb.state() == b._tlb.state()

    def test_pages_resident(self):
        chip = e870().chip
        t = TLB(chip.core.tlb, 64 * 1024)
        t.translate_page(5)
        assert t.pages_resident([5])
        assert not t.pages_resident([5, 6])

    def test_translate_monotone_chunk_matches_scalar(self):
        chip = e870().chip
        a = TLB(chip.core.tlb, 64 * 1024)
        b = TLB(chip.core.tlb, 64 * 1024)
        pages = np.repeat(np.arange(200, dtype=np.int64), 3)
        scalar = np.array([a.translate_page(int(p)) for p in pages])
        starts, penalties = b.translate_monotone_chunk(pages)
        expect = np.zeros(pages.size)
        expect[starts] = penalties
        assert np.array_equal(scalar, expect)
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        assert a._erat.state() == b._erat.state()
        assert a._tlb.state() == b._tlb.state()

    def test_translate_monotone_chunk_empty(self):
        chip = e870().chip
        t = TLB(chip.core.tlb, 64 * 1024)
        starts, penalties = t.translate_monotone_chunk(
            np.array([], dtype=np.int64)
        )
        assert starts.size == 0 and penalties.size == 0
        assert t.stats.accesses == 0


class TestTraceGenerators:
    def test_arrays_match_iterators(self):
        line = 128
        cases = [
            (sequential(0, 64 * line, line), sequential_addresses(0, 64 * line, line)),
            (random_chase(1 << 16, line, passes=2, seed=3),
             random_chase_addresses(1 << 16, line, passes=2, seed=3)),
            (uniform_random(1 << 16, line, 500, seed=4),
             uniform_random_addresses(1 << 16, line, 500, seed=4)),
            (blocked_random(1 << 16, 16 * line, line, seed=5),
             blocked_random_addresses(1 << 16, 16 * line, line, seed=5)),
        ]
        for it, arr in cases:
            assert isinstance(arr, np.ndarray)
            assert list(it) == arr.tolist()


class TestTraceResult:
    def test_helpers(self):
        res = TraceResult(
            latency_ns=np.array([1.0, 2.0, 3.0]),
            level_codes=np.array([0, 0, 5], dtype=np.uint8),
            translation_cycles=np.zeros(3),
        )
        assert len(res) == 3
        assert res.mean_latency_ns == pytest.approx(2.0)
        assert res.levels() == ["L1", "L1", "DRAM"]
        counts = res.level_counts()
        assert counts["L1"] == 2 and counts["DRAM"] == 1


class TestEngineParity:
    """Focused parity checks (the property suite does the heavy fuzzing)."""

    def _compare(self, addrs, is_write=False):
        chip = e870().chip
        ref = MemoryHierarchy(chip, record_victims=True)
        bat = BatchMemoryHierarchy(chip, record_victims=True, chunk=512)
        r = ref.access_trace(addrs, is_write)
        b = bat.access_trace(addrs, is_write)
        assert np.array_equal(r.latency_ns, b.latency_ns)
        assert np.array_equal(r.level_codes, b.level_codes)
        assert np.array_equal(r.translation_cycles, b.translation_cycles)
        assert ref.victim_log == bat.victim_log
        r_stats = dataclasses.asdict(ref.stats)
        b_stats = dataclasses.asdict(bat.stats)
        # The fast path commits n*L1 latency in one multiply; the summation
        # order differs from one-by-one accumulation at the last ulp.
        assert b_stats.pop("total_latency_ns") == pytest.approx(
            r_stats.pop("total_latency_ns"), rel=1e-12
        )
        assert r_stats == b_stats
        for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
            assert getattr(ref, lvl).dump_state() == getattr(bat, lvl).dump_state(), lvl
        assert ref.tlb._erat.state() == bat.tlb._erat.state()
        assert ref.tlb._tlb.state() == bat.tlb._tlb.state()
        assert ref.dram._open_rows == bat.dram._open_rows

    def test_l1_resident_chase(self):
        self._compare(random_chase_addresses(16 << 10, 128, passes=8, seed=0))

    def test_out_of_cache_mixed_writes(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 26, 20000) * 8
        writes = rng.random(20000) < 0.3
        self._compare(addrs, writes)

    def test_empty_trace(self):
        chip = e870().chip
        res = BatchMemoryHierarchy(chip).access_trace(np.array([], dtype=np.int64))
        assert len(res) == 0 and res.mean_latency_ns == 0.0

    def test_scalar_access_api(self):
        chip = e870().chip
        ref = MemoryHierarchy(chip)
        bat = BatchMemoryHierarchy(chip)
        for addr in (0, 64, 128, 0, 1 << 20):
            assert ref.access(addr).latency_ns == bat.access(addr).latency_ns

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            BatchMemoryHierarchy(e870().chip, chunk=0)

    def test_warm_shields_stats_but_mutates_state(self):
        chip = e870().chip
        bat = BatchMemoryHierarchy(chip)
        ws = np.arange(0, 16 << 10, chip.core.l1d.line_size, dtype=np.int64)
        bat.warm(ws.tolist())  # any int array-like is accepted
        # Engine-level stats and the PMU bank are untouched...
        assert bat.stats.accesses == 0
        assert bat.stats.total_latency_ns == 0.0
        assert not any(bat.bank.values())
        # ...but the hierarchy state evolved: the set is now resident.
        assert len(bat.l1) == ws.size
        assert bat.tlb.stats.accesses == ws.size
        assert bat.dram.stats.accesses == ws.size
        # A recorded run after warm-up sees all-L1 hits.
        res = bat.access_trace(ws)
        assert res.level_counts()["L1"] == ws.size
        assert bat.stats.accesses == ws.size

    def test_warm_stats_restored_on_error(self):
        chip = e870().chip
        bat = BatchMemoryHierarchy(chip)
        stats, bank = bat.stats, bat.bank
        with pytest.raises(ValueError):
            bat.warm(np.zeros(3), is_write=np.zeros(2, dtype=bool))
        assert bat.stats is stats and bat.bank is bank
