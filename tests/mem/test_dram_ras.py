"""DRAM RAS regressions: in-place reset, validation, bank retirement."""

import pytest

from repro.mem.dram import DRAMModel, DRAMStats


class TestResetKeepsHarvestReferences:
    def test_reset_zeroes_stats_in_place(self):
        """Regression: ``reset()`` used to replace ``stats``, orphaning
        any PMU-harvest reference taken before the reset."""
        dram = DRAMModel()
        harvest_ref = dram.stats  # what a PMU holds across a reset
        for a in range(10):
            dram.access(a * 128)
        dram.reset()
        assert dram.stats is harvest_ref
        assert harvest_ref.accesses == 0
        assert harvest_ref.row_hits == 0
        # The harvested view stays live for post-reset traffic too.
        dram.access(0)
        assert harvest_ref.accesses == 1

    def test_stats_clear_is_in_place(self):
        stats = DRAMStats(accesses=5, row_hits=3)
        stats.clear()
        assert (stats.accesses, stats.row_hits, stats.row_misses) == (0, 0, 0)


class TestValidation:
    def test_negative_hit_latency_rejected(self):
        with pytest.raises(ValueError, match="hit latency"):
            DRAMModel(hit_latency_ns=-1.0)

    def test_negative_miss_penalty_rejected(self):
        with pytest.raises(ValueError, match="row-miss penalty"):
            DRAMModel(miss_extra_ns=-0.5)

    def test_non_positive_row_size_rejected(self):
        with pytest.raises(ValueError, match="row size"):
            DRAMModel(row_size=0)
        with pytest.raises(ValueError, match="row size"):
            DRAMModel(row_size=-8192)

    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError, match="at least one bank"):
            DRAMModel(num_banks=0)


class TestBankRetirement:
    def test_retire_shrinks_interleave_and_drops_open_rows(self):
        dram = DRAMModel(num_banks=4)
        dram.access(0)
        assert dram._open_rows
        assert dram.retire_bank()
        assert dram.num_banks == 3
        assert not dram._open_rows

    def test_last_bank_survives(self):
        dram = DRAMModel(num_banks=1)
        assert not dram.retire_bank()
        assert dram.num_banks == 1

    def test_retirement_worsens_row_locality(self):
        """Fewer banks -> fewer open rows -> more row misses for the
        same access pattern (the degraded mode the sweep shows)."""
        def row_hits(num_banks):
            dram = DRAMModel(num_banks=num_banks, row_size=1024)
            # Round-robin over 8 rows: hits require 8 open rows.
            for i in range(64):
                dram.access((i % 8) * 1024)
            return dram.stats.row_hits

        assert row_hits(8) > row_hits(2)

    def test_ras_hook_latency_added(self):
        class Hook:
            def on_dram_access(self, dram, addr, bank_idx, row):
                return 7.5

        dram = DRAMModel(ras=Hook())
        base = DRAMModel()
        assert dram.access(0) == base.access(0) + 7.5
