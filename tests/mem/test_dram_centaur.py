"""Unit tests for the DRAM row model and the Centaur link model."""

import pytest

from repro.arch.specs import GB
from repro.mem.centaur import (
    MemoryLinkModel,
    link_bound,
    mix_efficiency,
    optimal_read_fraction,
    read_fraction,
)
from repro.mem.dram import DRAMModel
from repro.reporting import paper_values as paper
from repro.reporting.compare import within_factor


class TestDRAMModel:
    def test_sequential_hits_rows(self):
        d = DRAMModel(num_banks=4, row_size=1024, hit_latency_ns=60.0, miss_extra_ns=35.0)
        first = d.access(0)
        second = d.access(128)
        assert first == pytest.approx(95.0)
        assert second == pytest.approx(60.0)
        assert d.stats.row_hit_rate == pytest.approx(0.5)

    def test_bank_conflict_row_change(self):
        d = DRAMModel(num_banks=2, row_size=1024)
        d.access(0)  # row 0, bank 0
        assert d.access(2 * 1024) == pytest.approx(d.hit_latency_ns + d.miss_extra_ns)

    def test_distinct_banks_keep_rows_open(self):
        d = DRAMModel(num_banks=2, row_size=1024)
        d.access(0)       # bank 0
        d.access(1024)    # bank 1
        assert d.access(64) == pytest.approx(d.hit_latency_ns)
        assert d.access(1024 + 64) == pytest.approx(d.hit_latency_ns)

    def test_reset(self):
        d = DRAMModel()
        d.access(0)
        d.reset()
        assert d.stats.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMModel(num_banks=0)
        with pytest.raises(ValueError):
            DRAMModel(row_size=1000)


class TestReadFraction:
    def test_two_to_one(self):
        assert read_fraction(2, 1) == pytest.approx(2 / 3)

    def test_read_only(self):
        assert read_fraction(1, 0) == 1.0

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            read_fraction(0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            read_fraction(-1, 2)


class TestLinkBound:
    def test_peak_at_optimal_mix(self, p8_chip):
        f_opt = optimal_read_fraction()
        peak = link_bound(p8_chip, f_opt)
        assert peak == pytest.approx(p8_chip.peak_memory_bandwidth)
        for f in (0.0, 0.3, 0.5, 0.8, 1.0):
            assert link_bound(p8_chip, f) <= peak + 1e-6

    def test_read_only_and_write_only(self, p8_chip):
        assert link_bound(p8_chip, 1.0) == pytest.approx(p8_chip.read_bandwidth)
        assert link_bound(p8_chip, 0.0) == pytest.approx(p8_chip.write_bandwidth)

    def test_rejects_out_of_range(self, p8_chip):
        with pytest.raises(ValueError):
            link_bound(p8_chip, 1.5)


class TestMixEfficiency:
    def test_bounds(self):
        for f in (0.0, 0.25, 0.5, 2 / 3, 0.9, 1.0):
            assert 0.5 < mix_efficiency(f) <= 1.0

    def test_worst_near_symmetric_mix(self):
        assert mix_efficiency(0.5) < mix_efficiency(1.0)
        assert mix_efficiency(0.5) < mix_efficiency(0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mix_efficiency(-0.1)


class TestAgainstTable3:
    """Every Table III row must reproduce within 10%."""

    @pytest.mark.parametrize("ratio,expected", sorted(paper.TABLE3_GBS.items()))
    def test_row(self, e870_system, ratio, expected):
        model = MemoryLinkModel(e870_system.chip)
        f = read_fraction(*ratio)
        got = model.system_bandwidth(e870_system, f) / GB
        assert within_factor(got, expected, 1.10), (ratio, got, expected)

    def test_peak_row_is_2_to_1(self, e870_system):
        model = MemoryLinkModel(e870_system.chip)
        rows = {
            ratio: model.system_bandwidth(e870_system, read_fraction(*ratio))
            for ratio in paper.TABLE3_GBS
        }
        assert max(rows, key=rows.get) == (2, 1)

    def test_random_efficiency_matches_fig4(self, e870_system):
        model = MemoryLinkModel(e870_system.chip)
        frac = model.system_random_read_bandwidth(e870_system) / e870_system.peak_read_bandwidth
        assert frac == pytest.approx(paper.FIG4["fraction_of_read_peak"], abs=0.02)

    def test_mismatched_system_rejected(self, e870_system):
        from repro.arch import power7_chip

        model = MemoryLinkModel(power7_chip())
        with pytest.raises(ValueError, match="different chip"):
            model.system_bandwidth(e870_system, 1.0)
