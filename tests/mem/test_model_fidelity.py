"""Cross-validation: the closed-form model vs the trace-driven simulator.

DESIGN.md commits to checking the analytic capacity model against the
real cache simulator on configurations small enough to trace.  The
criterion is coarse (the analytic knees are smooth, LRU knees are
sharp) but the plateau levels and the ordering must agree.
"""

import pytest

from repro.arch.power8 import power8_chip
from repro.bench.latency import traced_latency_ns
from repro.mem.analytic import AnalyticHierarchy

KIB = 1024
MIB = 1024 * KIB


@pytest.fixture(scope="module")
def chip():
    return power8_chip()


@pytest.fixture(scope="module")
def analytic(chip):
    return AnalyticHierarchy(chip)


@pytest.mark.slow
@pytest.mark.parametrize(
    "working_set,level",
    [
        (32 * KIB, "L1"),
        (256 * KIB, "L2"),
        (4 * MIB, "L3"),
    ],
)
def test_plateau_agreement(chip, analytic, working_set, level):
    """On each plateau the two models agree within 40%."""
    system = power8_chip()
    traced = traced_latency_ns(_wrap(system), working_set, passes=3)
    closed = analytic.latency_ns(working_set)
    assert closed == pytest.approx(traced, rel=0.4), (level, traced, closed)


@pytest.mark.slow
def test_ordering_agreement(chip, analytic):
    """Latency grows with working set in both models, in the same order."""
    sizes = [32 * KIB, 256 * KIB, 2 * MIB, 16 * MIB]
    traced = [traced_latency_ns(_wrap(chip), s, passes=2) for s in sizes]
    closed = [analytic.latency_ns(s) for s in sizes]
    assert traced == sorted(traced)
    assert closed == sorted(closed)


def test_trace_sim_requires_warmup_pass():
    with pytest.raises(ValueError):
        traced_latency_ns(_wrap(power8_chip()), 64 * KIB, passes=1)


def _wrap(chip):
    """traced_latency_ns takes a SystemSpec-like object exposing .chip."""

    class _Sys:
        def __init__(self, c):
            self.chip = c

    return _Sys(chip)
