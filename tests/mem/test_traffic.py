"""Unit tests for store-convention traffic accounting."""

import pytest

from repro.mem.traffic import (
    StoreConvention,
    dcbz_gain,
    effective_traffic,
    goodput,
    system_goodput,
)


class TestEffectiveTraffic:
    def test_write_allocate_adds_ownership_reads(self):
        mix = effective_traffic(2.0, 1.0, StoreConvention.WRITE_ALLOCATE)
        assert mix.link_read_bytes == 3.0
        assert mix.link_write_bytes == 1.0

    def test_dcbz_moves_only_program_bytes(self):
        mix = effective_traffic(2.0, 1.0, StoreConvention.DCBZ)
        assert mix.total_link_bytes == 3.0
        assert mix.useful_fraction == 1.0

    def test_cache_bypass_same_link_traffic_as_dcbz(self):
        a = effective_traffic(1.0, 1.0, StoreConvention.DCBZ)
        b = effective_traffic(1.0, 1.0, StoreConvention.CACHE_BYPASS)
        assert a.total_link_bytes == b.total_link_bytes

    def test_read_only_unaffected(self):
        for conv in StoreConvention:
            mix = effective_traffic(4.0, 0.0, conv)
            assert mix.read_fraction == 1.0
            assert mix.useful_fraction == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            effective_traffic(-1.0, 0.0)


class TestGoodput:
    def test_dcbz_beats_write_allocate_on_add(self, e870_system):
        naive = goodput(e870_system.chip, 2.0, 1.0, StoreConvention.WRITE_ALLOCATE)
        tuned = goodput(e870_system.chip, 2.0, 1.0, StoreConvention.DCBZ)
        assert tuned > 1.25 * naive

    def test_add_with_dcbz_hits_table3_peak(self, e870_system):
        bw = system_goodput(e870_system, 2.0, 1.0, StoreConvention.DCBZ)
        assert bw == pytest.approx(1474.8e9, rel=0.01)

    def test_copy_mix_shift(self, e870_system):
        """Copy (1:1) under write-allocate behaves like the 2:1 link mix
        but with only half the read traffic useful."""
        mix = effective_traffic(1.0, 1.0, StoreConvention.WRITE_ALLOCATE)
        assert mix.read_fraction == pytest.approx(2 / 3)
        assert mix.useful_fraction == pytest.approx(2 / 3)

    def test_gain_largest_for_write_heavy(self, e870_system):
        assert dcbz_gain(e870_system, 0.0, 1.0) > dcbz_gain(e870_system, 4.0, 1.0)

    def test_gain_zero_for_read_only(self, e870_system):
        assert dcbz_gain(e870_system, 1.0, 0.0) == pytest.approx(0.0)
