"""Differential tests: ``DRAMModel.access_batch`` vs the scalar loop.

The batch entry point must be bit-identical to calling
:meth:`DRAMModel.access` once per address, in order — latencies, row-hit
counts, and the final open-row state — including the scalar fallback it
takes when a RAS injector is attached.
"""

import dataclasses

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.mem.dram import DRAMModel


def make_pair(num_banks=4, row_size=1024):
    return (
        DRAMModel(num_banks=num_banks, row_size=row_size),
        DRAMModel(num_banks=num_banks, row_size=row_size),
    )


def assert_same(ref: DRAMModel, bat: DRAMModel):
    assert dataclasses.asdict(ref.stats) == dataclasses.asdict(bat.stats)
    assert ref._open_rows == bat._open_rows


addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 22) - 1), min_size=0, max_size=300
)


@given(addrs=addresses, num_banks=st.sampled_from([1, 3, 16]))
@settings(max_examples=80, deadline=None)
def test_access_batch_matches_scalar(addrs, num_banks):
    ref, bat = make_pair(num_banks=num_banks)
    scalar = np.array([ref.access(a) for a in addrs], dtype=np.float64)
    batch = bat.access_batch(np.array(addrs, dtype=np.int64))
    assert np.array_equal(scalar, batch)
    assert_same(ref, bat)


@given(
    chunks=st.lists(addresses, min_size=1, max_size=4),
    scalar_between=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_batches_share_row_state(chunks, scalar_between):
    """Back-to-back batches (with scalar calls between) stay exact."""
    ref, bat = make_pair()
    for chunk in chunks:
        scalar = np.array([ref.access(a) for a in chunk], dtype=np.float64)
        batch = bat.access_batch(np.array(chunk, dtype=np.int64))
        assert np.array_equal(scalar, batch)
        if scalar_between and chunk:
            assert ref.access(chunk[0]) == bat.access(chunk[0])
    assert_same(ref, bat)


def test_empty_batch():
    ref, bat = make_pair()
    out = bat.access_batch(np.array([], dtype=np.int64))
    assert out.size == 0
    assert_same(ref, bat)


def test_streaming_trace_is_mostly_row_hits():
    dram = DRAMModel(num_banks=8, row_size=8192)
    addrs = np.arange(0, 1 << 20, 128, dtype=np.int64)
    lat = dram.access_batch(addrs)
    assert dram.stats.row_hit_rate > 0.95
    assert lat.min() == dram.hit_latency_ns
    assert lat.max() == dram.hit_latency_ns + dram.miss_extra_ns


class _CountingInjector:
    """Deterministic per-site injector: order-sensitive on purpose."""

    def __init__(self):
        self.sites = []

    def on_dram_access(self, dram, addr, bank_idx, row):
        self.sites.append((addr, bank_idx, row))
        n = len(self.sites)
        if n % 7 == 0:
            return 25.0  # recovery penalty on every 7th site
        if n == 11:
            dram.retire_bank()  # remaps all later rows
        return 0.0


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_ras_attached_falls_back_to_scalar_order(addrs):
    """With RAS attached the batch path must preserve per-site order."""
    ref, bat = make_pair(num_banks=4)
    ref.ras, bat.ras = _CountingInjector(), _CountingInjector()
    scalar = np.array([ref.access(a) for a in addrs], dtype=np.float64)
    batch = bat.access_batch(np.array(addrs, dtype=np.int64))
    assert np.array_equal(scalar, batch)
    assert ref.ras.sites == bat.ras.sites
    assert ref.num_banks == bat.num_banks
    assert_same(ref, bat)
