"""Unit tests for the trace-driven memory hierarchy."""

import pytest

from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.trace import random_chase, sequential
from repro.prefetch.engine import StreamPrefetcher


@pytest.fixture
def hier(p8_chip):
    return MemoryHierarchy(p8_chip)


class TestLevelsServiceInOrder:
    def test_cold_access_hits_dram(self, hier):
        res = hier.access(0)
        assert res.level == "DRAM"
        assert res.latency_ns > 50.0

    def test_immediate_reuse_hits_l1(self, hier):
        hier.access(0)
        res = hier.access(64)  # same 128B line
        assert res.level == "L1"
        assert res.latency_ns < 2.0

    def test_l1_overflow_hits_l2(self, hier, p8_chip):
        line = hier.line_size
        l1_lines = p8_chip.core.l1d.capacity // line
        # Touch 2x the L1 capacity, then re-touch the first line: it has
        # been pushed out of L1 but stays in the (larger) L2.
        for i in range(2 * l1_lines):
            hier.access(i * line)
        res = hier.access(0)
        assert res.level == "L2"

    def test_l2_overflow_castout_hits_l3(self, hier, p8_chip):
        line = hier.line_size
        l2_lines = p8_chip.core.l2.capacity // line
        for i in range(2 * l2_lines):
            hier.access(i * line)
        res = hier.access(0)
        assert res.level in ("L3", "L3R")

    def test_latency_ordering(self, hier):
        assert hier._lat_l1 < hier._lat_l2 < hier._lat_l3 < hier._lat_l3r
        assert hier._lat_l3r < hier._lat_l4


class TestWrites:
    def test_write_allocates(self, hier):
        hier.write(0)
        res = hier.read(0)
        assert res.level == "L1"

    def test_write_marks_l2_dirty(self, hier):
        hier.write(0)
        line = 0
        assert hier.l2.is_dirty(line)

    def test_l1_is_never_dirty(self, hier):
        hier.write(0)
        assert not hier.l1.is_dirty(0)


class TestPrefetcherIntegration:
    def test_sequential_stream_gets_prefetched(self, p8_chip):
        pf = StreamPrefetcher(line_size=128, depth=7)
        hier = MemoryHierarchy(p8_chip, prefetcher=pf)
        levels = []
        for addr in sequential(0, 256 * 128, 128, count=64):
            levels.append(hier.access(addr).level)
        # After the confirmation window, demand accesses should hit the
        # prefetched lines in L2 instead of DRAM.
        assert levels[0] == "DRAM"
        assert levels.count("DRAM") < 8
        assert "L2" in levels[4:]
        assert hier.stats.prefetch_issued > 0

    def test_random_traffic_not_prefetched(self, p8_chip):
        pf = StreamPrefetcher(line_size=128, depth=7)
        hier = MemoryHierarchy(p8_chip, prefetcher=pf)
        n = 0
        for addr in random_chase(1 << 20, 128, passes=1, seed=3):
            hier.access(addr)
            n += 1
        # Random lines rarely form streams: most issued prefetches never
        # happen and demand misses dominate.
        assert hier.stats.level_hits["DRAM"] > 0.8 * n


class TestStats:
    def test_mean_latency_accumulates(self, hier):
        hier.access(0)
        hier.access(0)
        assert hier.stats.accesses == 2
        assert hier.stats.mean_latency_ns > 0

    def test_warm_does_not_count(self, hier):
        hier.warm([0, 128, 256])
        assert hier.stats.accesses == 0
        # ...but it does populate the caches.
        assert hier.access(0).level == "L1"

    def test_hit_fraction(self, hier):
        hier.access(0)
        hier.access(0)
        assert hier.stats.hit_fraction("L1") == pytest.approx(0.5)


class TestSingleCoreChip:
    def test_no_remote_l3(self):
        from repro.arch.power8 import power8_chip

        chip = power8_chip(cores=1)
        hier = MemoryHierarchy(chip)
        res = hier.access(0)
        assert res.level == "DRAM"
        assert hier.l3_remote is None
