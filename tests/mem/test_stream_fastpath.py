"""Differential tests for the steady-state bulk regime paths.

Each test simulates the same trace on the per-access reference
:class:`~repro.mem.hierarchy.MemoryHierarchy` and on the batch engine
(whose bulk streaming / resident-write / prefetcher paths must engage),
and checks *bit* equality of everything observable: per-access
latencies, levels and translation penalties, every cache's LRU+dirty
state and stats, TLB state/stats, DRAM stats and open rows, hierarchy
stats (including prefetch issued/useful credit), both PMU banks, the
prefetcher's stream table, and the pending-prefetch set.
"""

import dataclasses

import numpy as np
import pytest

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.prefetch.engine import StreamPrefetcher

CHIP = e870().chip
LINE = CHIP.core.l1d.line_size


def nonzero(bank):
    return {k: v for k, v in bank.items() if v}


def compare(
    addrs,
    is_write=False,
    depth=None,
    stride_n=False,
    warm=None,
    chunk=1024,
    fast_paths=True,
):
    ref_pf = bat_pf = None
    if depth is not None:
        ref_pf = StreamPrefetcher(LINE, depth=depth, stride_n=stride_n)
        bat_pf = StreamPrefetcher(LINE, depth=depth, stride_n=stride_n)
    ref = MemoryHierarchy(CHIP, prefetcher=ref_pf)
    bat = BatchMemoryHierarchy(
        CHIP, prefetcher=bat_pf, chunk=chunk, fast_paths=fast_paths
    )
    if warm is not None:
        ref.warm(warm)
        bat.warm(warm)
    r = ref.access_trace(addrs, is_write)
    b = bat.access_trace(addrs, is_write)
    assert np.array_equal(r.latency_ns, b.latency_ns)
    assert np.array_equal(r.level_codes, b.level_codes)
    assert np.array_equal(r.translation_cycles, b.translation_cycles)
    r_stats = dataclasses.asdict(ref.stats)
    b_stats = dataclasses.asdict(bat.stats)
    assert b_stats.pop("total_latency_ns") == pytest.approx(
        r_stats.pop("total_latency_ns"), rel=1e-12
    )
    assert r_stats == b_stats
    for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
        assert getattr(ref, lvl).dump_state() == getattr(bat, lvl).dump_state(), lvl
        assert dataclasses.asdict(getattr(ref, lvl).stats) == dataclasses.asdict(
            getattr(bat, lvl).stats
        ), lvl
    assert ref.tlb._erat.state() == bat.tlb._erat.state()
    assert ref.tlb._tlb.state() == bat.tlb._tlb.state()
    assert dataclasses.asdict(ref.tlb.stats) == dataclasses.asdict(bat.tlb.stats)
    assert ref.dram._open_rows == bat.dram._open_rows
    assert dataclasses.asdict(ref.dram.stats) == dataclasses.asdict(bat.dram.stats)
    assert nonzero(ref.bank) == nonzero(bat.bank)
    assert ref._pf_pending == bat._pf_pending
    if ref_pf is not None:
        assert nonzero(ref_pf.bank) == nonzero(bat_pf.bank)
        assert list(ref_pf._streams) == list(bat_pf._streams)
        for rv, bv in zip(
            ref_pf._streams.values(), bat_pf._streams.values()
        ):
            assert dataclasses.asdict(rv) == dataclasses.asdict(bv)
        assert ref_pf._last_lines == bat_pf._last_lines
    return bat


class TestStreamingPath:
    def test_line_granular_reads(self):
        compare(np.arange(12000, dtype=np.int64) * LINE)

    def test_element_granular_mixed_writes(self):
        rng = np.random.default_rng(0)
        n = 20000
        addrs = np.arange(n, dtype=np.int64) * 8
        compare(addrs, rng.random(n) < 0.3)

    def test_all_writes(self):
        compare(np.arange(8000, dtype=np.int64) * LINE, True)

    @pytest.mark.parametrize("chunk", [64, 1000, 16384])
    def test_chunk_boundaries(self, chunk):
        compare(np.arange(9000, dtype=np.int64) * LINE, chunk=chunk)

    def test_wide_stride_reads(self):
        # 3-line stride: still monotone/all-miss but bank-hopping DRAM.
        compare(np.arange(8000, dtype=np.int64) * 3 * LINE)

    def test_revisit_leaves_watermark_path(self):
        seq = np.arange(9000, dtype=np.int64) * LINE
        compare(np.concatenate((seq, seq[:2048], seq)))

    def test_random_prefix_then_stream(self):
        rng = np.random.default_rng(1)
        base = rng.integers(0, 1 << 22, 2500) * 8
        stream = (np.arange(12000, dtype=np.int64) + (1 << 16)) * LINE
        compare(np.concatenate((base, stream)), chunk=777)

    def test_descending_falls_back_scalar(self):
        compare(np.arange(6000, dtype=np.int64)[::-1].copy() * LINE)


class TestResidentWritePath:
    def test_warmed_write_chase(self):
        ws = np.arange(0, 16 << 10, LINE, dtype=np.int64)
        chase = np.tile(ws, 30)
        w = np.zeros(chase.size, dtype=bool)
        w[::3] = True
        compare(chase, w, warm=ws)

    def test_write_only_resident(self):
        ws = np.arange(0, 8 << 10, LINE, dtype=np.int64)
        compare(np.tile(ws, 20), True, warm=ws)


class TestPrefetcherPath:
    @pytest.mark.parametrize("depth", list(range(1, 8)))
    def test_sequential_depths(self, depth):
        compare(np.arange(8000, dtype=np.int64) * LINE, depth=depth)

    def test_stride_n_stream(self):
        compare(
            np.arange(6000, dtype=np.int64) * 3 * LINE, depth=7, stride_n=True
        )

    def test_prefetch_with_revisit(self):
        seq = np.arange(6000, dtype=np.int64) * LINE
        compare(np.concatenate((seq, seq[:1024])), depth=5)

    @pytest.mark.parametrize("chunk", [257, 4096])
    def test_chunk_boundaries(self, chunk):
        compare(np.arange(7000, dtype=np.int64) * LINE, depth=7, chunk=chunk)

    def test_two_interleaved_streams_fall_back(self):
        a = np.arange(3000, dtype=np.int64) * LINE
        b = a + (1 << 24)
        inter = np.empty(a.size * 2, dtype=np.int64)
        inter[0::2] = a
        inter[1::2] = b
        compare(inter, depth=7)


class TestFastPathsToggle:
    def test_fast_paths_off_is_identical(self):
        """``fast_paths=False`` must match the reference too (baseline)."""
        n = 6000
        addrs = np.arange(n, dtype=np.int64) * LINE
        compare(addrs, fast_paths=False)
        compare(addrs, depth=7, fast_paths=False)

    def test_fast_and_slow_settings_agree(self):
        rng = np.random.default_rng(2)
        n = 10000
        addrs = np.arange(n, dtype=np.int64) * 8
        writes = rng.random(n) < 0.2
        fast = BatchMemoryHierarchy(CHIP, fast_paths=True, chunk=512)
        slow = BatchMemoryHierarchy(CHIP, fast_paths=False, chunk=512)
        rf = fast.access_trace(addrs, writes)
        rs = slow.access_trace(addrs, writes)
        assert np.array_equal(rf.latency_ns, rs.latency_ns)
        assert np.array_equal(rf.level_codes, rs.level_codes)
        for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
            assert (
                getattr(fast, lvl).dump_state() == getattr(slow, lvl).dump_state()
            )
