"""Unit tests for address helpers and trace generators."""

import numpy as np
import pytest

from repro.mem.line import (
    check_power_of_two,
    line_base,
    line_index,
    page_index,
    set_index,
    span_lines,
)
from repro.mem.trace import blocked_random, random_chase, sequential, uniform_random


class TestLineHelpers:
    def test_line_index_and_base(self):
        assert line_index(300, 128) == 2
        assert line_base(300, 128) == 256

    def test_page_index(self):
        assert page_index(65536, 65536) == 1

    def test_set_index(self):
        assert set_index(10, 4) == 2

    def test_span_lines_single(self):
        assert list(span_lines(0, 8, 128)) == [0]

    def test_span_lines_straddle(self):
        assert list(span_lines(120, 16, 128)) == [0, 1]

    def test_span_rejects_zero(self):
        with pytest.raises(ValueError):
            span_lines(0, 0, 128)

    def test_check_power_of_two(self):
        check_power_of_two(64, "x")
        with pytest.raises(ValueError):
            check_power_of_two(48, "x")


class TestSequential:
    def test_walks_with_stride(self):
        assert list(sequential(0, 512, 128)) == [0, 128, 256, 384]

    def test_wraps(self):
        assert list(sequential(0, 256, 128, count=4)) == [0, 128, 0, 128]

    def test_offset_start(self):
        assert list(sequential(1000, 256, 128))[0] == 1000

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            list(sequential(0, 512, 0))


class TestRandomChase:
    def test_visits_every_line_once_per_pass(self):
        addrs = list(random_chase(1024, 128, passes=1, seed=1))
        assert sorted(addrs) == [i * 128 for i in range(8)]

    def test_deterministic(self):
        a = list(random_chase(2048, 128, seed=42))
        b = list(random_chase(2048, 128, seed=42))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(random_chase(4096, 128, seed=1))
        b = list(random_chase(4096, 128, seed=2))
        assert a != b

    def test_passes_repeat_order(self):
        two = list(random_chase(1024, 128, passes=2, seed=5))
        assert two[:8] == two[8:]

    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            list(random_chase(64, 128))


class TestUniformRandom:
    def test_count_and_alignment(self):
        addrs = list(uniform_random(4096, 128, count=100, seed=0))
        assert len(addrs) == 100
        assert all(a % 128 == 0 for a in addrs)
        assert all(0 <= a < 4096 for a in addrs)

    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            list(uniform_random(64, 128, count=1))


class TestBlockedRandom:
    def test_sequential_within_block(self):
        addrs = list(blocked_random(1024, 256, 64, seed=0))
        assert len(addrs) == 16
        # Within each run of 4 (=256/64) addresses, offsets ascend.
        for i in range(0, 16, 4):
            block = addrs[i : i + 4]
            assert block == sorted(block)
            assert block[-1] - block[0] == 192

    def test_every_block_visited(self):
        addrs = list(blocked_random(2048, 512, 128, seed=3))
        starts = sorted(set(a - a % 512 for a in addrs))
        assert starts == [0, 512, 1024, 1536]

    def test_rejects_misaligned_block(self):
        with pytest.raises(ValueError):
            list(blocked_random(1024, 100, 64))
