"""Unit tests for the ERAT/TLB translation model."""

import pytest

from repro.arch.specs import TLBSpec
from repro.mem.tlb import TLB


def make_tlb(erat=4, tlb=16, page=4096):
    return TLB(TLBSpec(erat_entries=erat, tlb_entries=tlb,
                       erat_miss_penalty_cycles=10.0,
                       tlb_miss_penalty_cycles=100.0), page)


class TestTranslate:
    def test_first_access_misses_both(self):
        t = make_tlb()
        assert t.translate(0) == pytest.approx(110.0)
        assert t.stats.erat_misses == 1
        assert t.stats.tlb_misses == 1

    def test_second_access_same_page_free(self):
        t = make_tlb()
        t.translate(0)
        assert t.translate(100) == 0.0

    def test_erat_capacity_eviction(self):
        t = make_tlb(erat=2, tlb=16, page=4096)
        t.translate(0 * 4096)
        t.translate(1 * 4096)
        t.translate(2 * 4096)  # evicts page 0 from ERAT (still in TLB)
        penalty = t.translate(0 * 4096)
        assert penalty == pytest.approx(10.0)  # ERAT miss, TLB hit

    def test_tlb_capacity_eviction(self):
        t = make_tlb(erat=1, tlb=2, page=4096)
        for p in range(3):
            t.translate(p * 4096)
        # Page 0 evicted from both levels: full walk again.
        assert t.translate(0) == pytest.approx(110.0)

    def test_working_set_within_erat_reach_is_free(self):
        t = make_tlb(erat=8, tlb=64, page=4096)
        pages = list(range(8))
        for p in pages:
            t.translate(p * 4096)
        for p in pages:
            assert t.translate(p * 4096 + 64) == 0.0

    def test_reach_properties(self):
        t = make_tlb(erat=4, tlb=16, page=4096)
        assert t.erat_reach == 4 * 4096
        assert t.tlb_reach == 16 * 4096

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError, match="power of two"):
            make_tlb(page=1000)

    def test_stats_rates(self):
        t = make_tlb()
        t.translate(0)
        t.translate(64)
        assert t.stats.accesses == 2
        assert t.stats.erat_miss_rate == pytest.approx(0.5)
