"""Unit tests for the set-associative LRU cache simulator."""

import pytest

from repro.arch.specs import CacheSpec
from repro.mem.cache import Cache


def make_cache(capacity=512, line=64, ways=2, policy="store-in"):
    return Cache(CacheSpec("t", capacity, line, ways, 1.0, policy))


class TestLookupAndFill:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0, is_write=False)
        c.fill(0)
        assert c.lookup(0, is_write=False)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_contains(self):
        c = make_cache()
        c.fill(7)
        assert 7 in c
        assert 8 not in c

    def test_len_counts_lines(self):
        c = make_cache()
        for line in range(5):
            c.fill(line)
        assert len(c) == 5

    def test_lru_eviction_order(self):
        # 2-way: lines 0 and 4 map to set 0 (4 sets); adding 8 evicts LRU 0.
        c = make_cache()
        sets = c.spec.num_sets
        c.fill(0)
        c.fill(sets)
        evicted = c.fill(2 * sets)
        assert evicted == (0, False)
        assert 0 not in c and sets in c and 2 * sets in c

    def test_hit_refreshes_lru(self):
        c = make_cache()
        sets = c.spec.num_sets
        c.fill(0)
        c.fill(sets)
        c.lookup(0, is_write=False)  # 0 becomes MRU
        evicted = c.fill(2 * sets)
        assert evicted == (sets, False)

    def test_refill_resident_line_is_not_eviction(self):
        c = make_cache()
        c.fill(0)
        assert c.fill(0) is None
        assert c.stats.evictions == 0


class TestWritePolicies:
    def test_store_in_marks_dirty(self):
        c = make_cache(policy="store-in")
        c.fill(0)
        c.lookup(0, is_write=True)
        assert c.is_dirty(0)

    def test_store_through_never_dirty(self):
        c = make_cache(policy="store-through")
        c.fill(0, dirty=True)
        c.lookup(0, is_write=True)
        assert not c.is_dirty(0)

    def test_dirty_eviction_counts_writeback(self):
        c = make_cache(policy="store-in")
        sets = c.spec.num_sets
        c.fill(0, dirty=True)
        c.fill(sets)
        evicted = c.fill(2 * sets)
        assert evicted == (0, True)
        assert c.stats.writebacks == 1

    def test_touch_dirty_requires_residency(self):
        c = make_cache()
        with pytest.raises(KeyError):
            c.touch_dirty(42)

    def test_touch_dirty_marks(self):
        c = make_cache()
        c.fill(3)
        c.touch_dirty(3)
        assert c.is_dirty(3)


class TestInvalidateAndFlush:
    def test_invalidate(self):
        c = make_cache()
        c.fill(1)
        assert c.invalidate(1)
        assert not c.invalidate(1)
        assert 1 not in c

    def test_flush_reports_dirty_count(self):
        c = make_cache()
        c.fill(0, dirty=True)
        c.fill(1, dirty=False)
        assert c.flush() == 1
        assert len(c) == 0

    def test_flush_empty_cache(self):
        c = make_cache()
        assert c.flush() == 0
        assert len(c) == 0

    def test_flush_preserves_stats_and_cache_stays_usable(self):
        c = make_cache()
        c.fill(0, dirty=True)
        c.lookup(0, is_write=False)
        hits, fills = c.stats.hits, c.stats.fills
        c.flush()
        assert (c.stats.hits, c.stats.fills) == (hits, fills)
        assert not c.lookup(0, is_write=False)  # flushed line is gone
        c.fill(0)
        assert 0 in c

    def test_flush_store_through_never_counts_dirty(self):
        c = make_cache(policy="store-through")
        c.fill(0, dirty=True)
        c.fill(1, dirty=True)
        assert c.flush() == 0

    def test_touch_dirty_store_through_is_noop_when_resident(self):
        c = make_cache(policy="store-through")
        c.fill(2)
        c.touch_dirty(2)  # must not raise, must not dirty
        assert not c.is_dirty(2)

    def test_touch_dirty_does_not_refresh_lru(self):
        c = make_cache()
        sets = c.spec.num_sets
        c.fill(0)
        c.fill(sets)
        c.touch_dirty(0)  # 0 stays LRU despite being touched
        evicted = c.fill(2 * sets)
        assert evicted == (0, True)


class TestVictimInsert:
    def test_counts_victims(self):
        c = make_cache()
        c.insert_victim(5, dirty=True)
        assert c.stats.victim_inserts == 1
        assert c.is_dirty(5)

    def test_victim_insert_can_cascade_an_eviction(self):
        c = make_cache()
        sets = c.spec.num_sets
        c.fill(0, dirty=True)
        c.fill(sets)
        evicted = c.insert_victim(2 * sets, dirty=False)
        assert evicted == (0, True)
        assert c.stats.victim_inserts == 1
        assert c.stats.writebacks == 1

    def test_victim_insert_into_store_through_drops_dirty(self):
        c = make_cache(policy="store-through")
        c.insert_victim(5, dirty=True)
        assert 5 in c and not c.is_dirty(5)

    def test_victim_insert_of_resident_line_merges_dirty(self):
        c = make_cache()
        c.fill(3, dirty=True)
        assert c.insert_victim(3, dirty=False) is None
        assert c.is_dirty(3)  # residency's dirty bit survives the merge
        assert c.stats.evictions == 0


class TestStats:
    def test_rates(self):
        c = make_cache()
        c.lookup(0, False)
        c.fill(0)
        c.lookup(0, False)
        c.lookup(0, False)
        assert c.stats.hit_rate == pytest.approx(2 / 3)
        assert c.stats.miss_rate == pytest.approx(1 / 3)

    def test_empty_rates(self):
        c = make_cache()
        assert c.stats.hit_rate == 0.0
        assert c.stats.miss_rate == 0.0

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = make_cache(capacity=1024, line=64, ways=4)
        lines = list(range(c.spec.num_lines))
        for l in lines:
            c.fill(l)
        for l in lines:
            assert c.lookup(l, is_write=False)
