"""Hypothesis properties over *random* well-formed machine specs.

The zoo conformance suite pins three named machines; these properties
pin the claim behind it — "adding a machine is data, not code" — by
drawing random spec mutations (SMT width, non-power-of-two cache
geometries, core counts, clocks, page sizes) from each zoo base and
checking that every engine stays healthy on machines nobody wrote:

* PMU counter banks balance (conservation invariants) on random traces;
* analytic chase latency is monotone non-decreasing in working-set;
* the roofline is well-formed (positive ridge, attainable caps at the
  peak, memory-bound below the ridge);
* ``thread_sweep`` always spans exactly 1..smt_ways.
"""

from dataclasses import replace

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.arch import broadwell_2s, cascade_lake_2s, e870, sparc_t3_4
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.trace import random_chase_addresses
from repro.perfmodel.oracle import AnalyticOracle
from repro.pmu import assert_conservation, events as ev, read_counters
from repro.roofline.model import Roofline

BASES = (e870, sparc_t3_4, broadwell_2s, cascade_lake_2s)

KIB = 1024
WORKING_SETS = tuple(16 * KIB << (2 * i) for i in range(8))  # 16K..256M


@st.composite
def systems(draw):
    """A random well-formed SystemSpec: a zoo base with mutated geometry."""
    base = draw(st.sampled_from(BASES))()
    core = base.chip.core
    line = core.l1d.line_size
    smt = draw(st.sampled_from((1, 2, 4, 8)))
    l1_ways = draw(st.sampled_from((2, 3, 4, 6, 8)))
    l1_sets = draw(st.sampled_from((16, 32, 64, 96)))
    l1d = replace(
        core.l1d, capacity=l1_ways * l1_sets * line, associativity=l1_ways
    )
    l2_ways = draw(st.sampled_from((4, 6, 8, 12, 24)))
    l2_sets = draw(st.sampled_from((1024, 1536, 2048)))
    l2 = replace(
        core.l2, capacity=l2_ways * l2_sets * line, associativity=l2_ways
    )
    core = replace(core, smt_ways=smt, l1d=l1d, l2=l2)
    chip = replace(
        base.chip,
        core=core,
        cores_per_chip=draw(st.integers(min_value=2, max_value=12)),
        frequency_hz=draw(st.sampled_from((1.65e9, 2.5e9, 4.1e9))),
    )
    return replace(base, chip=chip)


@given(system=systems(), seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_random_spec_counters_conserve(system, seed):
    chip = system.chip
    line = chip.core.l1d.line_size
    addrs = random_chase_addresses(512 * line, line, passes=2, seed=seed)
    rng = np.random.default_rng(seed)
    writes = rng.random(addrs.size) < 0.3
    hier = BatchMemoryHierarchy(chip)
    hier.access_trace(addrs, writes)
    bank = read_counters(hier)
    assert_conservation(bank)
    assert bank[ev.PM_LD_REF] + bank[ev.PM_ST_REF] == bank[ev.PM_MEM_REF]
    assert bank[ev.PM_ST_REF] == int(writes.sum())


@given(system=systems())
@settings(max_examples=15, deadline=None)
def test_random_spec_latency_monotone(system):
    oracle = AnalyticOracle(system)
    page = system.chip.page_size
    lats = [oracle.chase_latency_ns(ws, page) for ws in WORKING_SETS]
    assert all(lat > 0 for lat in lats)
    for lo, hi in zip(lats, lats[1:]):
        assert hi >= lo * (1 - 1e-9), (
            f"latency not monotone on {system.name}: {lats}"
        )


@given(system=systems(), oi=st.floats(min_value=0.01, max_value=1000.0))
@settings(max_examples=30, deadline=None)
def test_random_spec_roofline_well_formed(system, oi):
    roof = Roofline(system)
    ridge = roof.balance
    assert roof.peak_gflops > 0 and roof.memory_bandwidth > 0
    assert ridge > 0
    got = roof.attainable_gflops(oi)
    assert 0 < got <= roof.peak_gflops * (1 + 1e-12)
    assert got <= oi * roof.memory_bandwidth / 1e9 * (1 + 1e-12)
    assert roof.is_memory_bound(ridge * 0.5)
    assert not roof.is_memory_bound(ridge * 2.0)
    # Attainable performance is non-decreasing in intensity.
    assert roof.attainable_gflops(oi * 2) >= got * (1 - 1e-12)


@given(system=systems())
@settings(max_examples=25, deadline=None)
def test_thread_sweep_spans_smt(system):
    core = system.chip.core
    sweep = core.thread_sweep
    assert sweep[0] == 1
    assert sweep[-1] == core.smt_ways
    assert all(t <= core.smt_ways for t in sweep)
    assert sweep == tuple(sorted(set(sweep)))
