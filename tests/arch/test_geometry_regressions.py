"""Regressions for the POWER8-isms the machine zoo flushed out.

Each test pins one assumption that used to be hardcoded into an engine
and is now spec data: power-of-two memory-side-cache geometry, the
asymmetric-link bandwidth mix, the X-bus layout skew, the SMT-8 sweep
grids, and the 64 KB page default in the shard runner.  Every test also
asserts the POWER8 behaviour is bit-for-bit what it was, so these
double as the "no regression on the paper machine" gate.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import MIB, broadwell_2s, e870, get_system, power8_chip, sparc_t3_4
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import SMPTopology
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.centaur import link_bound, optimal_read_fraction
from repro.mem.hierarchy import memory_side_cache_spec
from repro.mem.trace import random_chase_addresses
from repro.parallel import plan_trace_tasks, run_trace_sharded
from repro.perfmodel.littles_law import RandomAccessModel
from repro.perfmodel.stream_model import fig3a_points, fig3b_points, table3_rows


class TestMemorySideCacheGeometry:
    """L4 geometry derives from the spec instead of assuming 16 ways fit."""

    def test_power8_keeps_its_16_ways(self):
        spec = memory_side_cache_spec(power8_chip())
        assert spec.associativity == 16
        assert spec.capacity == power8_chip().l4_capacity

    def test_non_divisible_line_count_degrades_associativity(self):
        # 33 lines per Centaur x 8 Centaurs = 264 lines: 16 does not
        # divide it, 12 is the largest associativity that does.
        chip = power8_chip()
        chip = replace(chip, centaur=replace(chip.centaur, l4_capacity=33 * 128))
        spec = memory_side_cache_spec(chip)
        assert spec.num_lines == 264
        assert spec.associativity == 12
        assert spec.num_lines % spec.associativity == 0

    def test_zero_capacity_floors_at_16_lines(self):
        spec = memory_side_cache_spec(sparc_t3_4().chip)
        assert spec.num_lines == 16
        # The floored geometry must still build a working hierarchy.
        BatchMemoryHierarchy(sparc_t3_4().chip)

    @pytest.mark.parametrize("l4_mib", (1, 3, 5, 7, 11))
    def test_arbitrary_capacities_stay_well_formed(self, l4_mib):
        chip = power8_chip()
        chip = replace(
            chip, centaur=replace(chip.centaur, l4_capacity=l4_mib * MIB)
        )
        spec = memory_side_cache_spec(chip)
        assert spec.num_lines % spec.associativity == 0
        assert 1 <= spec.associativity <= 16


class TestSharedBusMix:
    """A shared bidirectional bus is mix-independent; Centaur links aren't."""

    def test_shared_bus_link_bound_is_flat(self):
        chip = sparc_t3_4().chip
        bounds = {link_bound(chip, f) for f in (0.0, 0.25, 0.5, 2 / 3, 1.0)}
        assert bounds == {chip.read_bandwidth}

    def test_power8_link_bound_still_peaks_at_two_to_one(self):
        chip = power8_chip()
        f_opt = optimal_read_fraction(chip)
        assert f_opt == pytest.approx(2.0 / 3.0)
        assert link_bound(chip, f_opt) > link_bound(chip, 1.0)
        assert link_bound(chip, f_opt) > link_bound(chip, 0.0)

    def test_shared_bus_optimal_mix_is_read_only(self):
        assert optimal_read_fraction(sparc_t3_4().chip) == pytest.approx(1.0)


class TestSymmetricLinks:
    """Layout skew is spec data; a symmetric machine has none."""

    def test_sparc_pairs_are_symmetric(self):
        sys = sparc_t3_4()
        model = LatencyModel(SMPTopology(sys))
        lats = {
            model.pair_latency_ns(a, b)
            for a in range(sys.num_chips)
            for b in range(sys.num_chips)
            if a != b
        }
        assert len(lats) == 1

    def test_power8_keeps_its_layout_skew(self):
        sys = e870()
        model = LatencyModel(SMPTopology(sys))
        in_group = {
            model.pair_latency_ns(0, b) for b in range(1, sys.group_size)
        }
        assert len(in_group) > 1  # the Figure-6 position-dependent deltas

    def test_layout_delta_defaults_to_zero_beyond_table(self):
        sys = sparc_t3_4()
        assert sys.x_layout_delta(0) == 0.0
        assert sys.x_layout_delta(3) == 0.0


class TestSMTGrids:
    """Sweep grids clamp to the machine's SMT level instead of assuming 8."""

    def test_table3_runs_on_ht2(self):
        rows = table3_rows(broadwell_2s())
        assert len(rows) == 9
        assert all(row["bandwidth"] > 0 for row in rows)

    def test_fig3a_defaults_to_machine_grid(self):
        bdw = broadwell_2s().chip
        assert [p.threads_per_core for p in fig3a_points(bdw)] == [1, 2]
        p8 = power8_chip()
        assert [p.threads_per_core for p in fig3a_points(p8)] == [1, 2, 4, 8]

    def test_fig3a_skips_infeasible_explicit_counts(self):
        bdw = broadwell_2s().chip
        pts = fig3a_points(bdw, thread_counts=(1, 2, 4, 8))
        assert [p.threads_per_core for p in pts] == [1, 2]

    def test_fig3b_clamps_both_axes(self):
        chip = replace(broadwell_2s().chip, cores_per_chip=6)
        pts = fig3b_points(chip)
        assert {p.cores for p in pts} == {1, 2, 4}
        assert {p.threads_per_core for p in pts} == {1, 2}

    def test_random_access_sweep_clamps(self):
        pts = RandomAccessModel(broadwell_2s()).sweep()
        assert {p.threads_per_core for p in pts} == {1, 2}


class TestShardRunnerPageSize:
    """The shard runner follows the chip's base page, not POWER8's 64 K."""

    def test_default_plan_uses_chip_page(self):
        chip = sparc_t3_4().chip
        addrs = np.arange(64, dtype=np.int64) * chip.core.l1d.line_size
        tasks, _ = plan_trace_tasks(chip, addrs, shards=2)
        assert all(t.page_size is None for t in tasks)

    def test_sharded_translation_matches_direct_engine(self):
        chip = sparc_t3_4().chip  # 8 K pages: 64 K default would diverge
        line = chip.core.l1d.line_size
        addrs = random_chase_addresses(2048 * line, line, passes=2, seed=4)
        sharded = run_trace_sharded(chip, addrs, shards=1, workers=1)
        direct = BatchMemoryHierarchy(chip).access_trace(addrs)
        assert np.array_equal(
            sharded.trace.translation_cycles, direct.translation_cycles
        )
        assert np.array_equal(sharded.trace.latency_ns, direct.latency_ns)

    def test_explicit_page_still_honoured(self):
        chip = power8_chip()
        line = chip.core.l1d.line_size
        addrs = random_chase_addresses(4096 * line, line, passes=2, seed=4)
        base = run_trace_sharded(chip, addrs, shards=1, workers=1)
        huge = run_trace_sharded(
            chip, addrs, shards=1, workers=1, page_size=16 * MIB
        )
        assert huge.trace.translation_cycles.sum() < (
            base.trace.translation_cycles.sum()
        )


def test_zoo_registry_round_trip():
    """Aliases and case/underscore forms resolve to one spec object."""
    assert get_system("SPARC_T3_4") is get_system("sparc-t3-4")
    assert get_system("e870") is get_system("power8")
    with pytest.raises(KeyError):
        get_system("cray")
