"""Golden headline-table generator for the machine zoo.

Pins each zoo machine's Table-III-style headline numbers (peak flops,
STREAM bandwidths, latency plateaus, prefetch and roofline figures) at
``tests/arch/golden_zoo.json``, together with *published* anchors from
the source characterizations the specs were built from.  The zoo
selftest (``python -m repro.bench --zoo-selftest``) and
``tests/arch/test_zoo_conformance.py`` check the live model against
both: the pinned model numbers exactly (an unintended change to any
engine trips the gate) and the published anchors within a
per-machine factor (the specs stay honest to their sources).

After an *intentional* model or spec change, regenerate with::

    PYTHONPATH=src python -m tests.arch.regen_golden

and commit the updated JSON together with the change that motivated it.
The ``published`` sections are code in this file, not regenerated data
— edit them here when a source adds a better anchor.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.compare import characterize

GOLDEN_ZOO_PATH = Path(__file__).resolve().parent / "golden_zoo.json"

#: Headline keys pinned per machine (a stable subset of
#: :func:`repro.bench.compare.characterize`).
PINNED_KEYS = (
    "peak_gflops",
    "peak_memory_bandwidth_gbs",
    "stream_read_only_gbs",
    "stream_optimal_gbs",
    "optimal_read_write",
    "random_access_peak_gbs",
    "latency_l1_ns",
    "latency_dram_ns",
    "prefetch_latency_off_ns",
    "prefetch_latency_deep_ns",
    "ridge_oi_flops_per_byte",
    "write_roof_gbs",
)

#: Published anchors and the per-machine agreement factor.
#:
#: * POWER8/E870 — the source paper's Table III measured STREAM rows.
#: * SPARC T3-4 — van Tol's characterization plus the T3 datasheet:
#:   4 DDR3-1066 channels/socket = 34.1 GB/s raw, 136.4 GB/s system.
#:   The published peak is 105.6 GFLOP/s (one non-FMA FPU per core at
#:   1.65 GHz); the generic mul+add peak model doubles scalar-FPU
#:   machines, hence the looser factor.
#: * Broadwell-EP / Cascade Lake-SP — Alappat et al.: measured
#:   per-socket STREAM ~66 and ~113 GB/s, nominal AVX2/AVX-512 peaks.
PUBLISHED = {
    "power8": {
        "factor": 1.25,
        "anchors": {
            "stream_read_only_gbs": 1141.0,
            "stream_optimal_gbs": 1472.0,
            "peak_memory_bandwidth_gbs": 1843.2,
        },
    },
    "sparc-t3-4": {
        "factor": 2.5,
        "anchors": {
            "peak_gflops": 105.6,
            "peak_memory_bandwidth_gbs": 136.4,
            "stream_read_only_gbs": 100.0,
        },
    },
    "broadwell": {
        "factor": 1.25,
        "anchors": {
            "peak_gflops": 1324.8,
            "stream_read_only_gbs": 132.0,
            "peak_memory_bandwidth_gbs": 153.6,
        },
    },
    "cascade-lake": {
        "factor": 1.25,
        "anchors": {
            "peak_gflops": 3200.0,
            "stream_read_only_gbs": 226.0,
            "peak_memory_bandwidth_gbs": 281.6,
        },
    },
}


def golden_payload() -> dict:
    machines = {}
    for machine, published in PUBLISHED.items():
        report = characterize(machine)
        machines[machine] = {
            "model": {key: report[key] for key in PINNED_KEYS},
            "published": published["anchors"],
            "factor": published["factor"],
        }
    return {
        "generated_by": "tests/arch/regen_golden.py",
        "machines": machines,
    }


def main() -> None:
    payload = golden_payload()
    GOLDEN_ZOO_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {GOLDEN_ZOO_PATH} ({len(payload['machines'])} machines)")
    for machine, section in payload["machines"].items():
        model = section["model"]
        print(
            f"  {machine:14s} peak={model['peak_gflops']:.1f}GF "
            f"read-only={model['stream_read_only_gbs']:.1f}GB/s "
            f"dram={model['latency_dram_ns']:.1f}ns"
        )


if __name__ == "__main__":
    main()
