"""Differential conformance across the machine zoo.

Every machine in the zoo must clear the same gates POWER8 does:

* the trace-driven engines and the analytic oracle agree on every
  differential case within that machine's golden tolerance
  (``golden_tolerances.json`` → ``machines`` section);
* the scalar reference hierarchy, the vectorized batch engine, and the
  sharded pool produce bit-identical traces and PMU banks;
* the pinned headline table (``golden_zoo.json``) matches the live
  model exactly and stays within the per-machine factor of the
  published figures.

Figure cases are exact by construction and run in the quick lane; the
replayed trace cases and the full selftest are marked slow.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.arch import get_system
from repro.bench.compare import characterize, zoo_selftest
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.trace import random_chase_addresses, sequential_addresses
from repro.parallel import run_trace_sharded
from repro.perfmodel.differential import (
    CASES,
    FIGURE_CASES,
    load_golden_tolerances,
    run_differential,
    selftest,
)
from repro.pmu import read_counters
from tests.arch.regen_golden import GOLDEN_ZOO_PATH, PINNED_KEYS, PUBLISHED

ZOO = ("sparc-t3-4", "broadwell", "cascade-lake")
TRACE_CASES = tuple(name for name in CASES if name not in FIGURE_CASES)


@pytest.fixture(scope="module", params=ZOO)
def machine(request):
    return request.param


@pytest.fixture(scope="module")
def system(machine):
    return get_system(machine)


@pytest.fixture(scope="module")
def tolerances(machine):
    return load_golden_tolerances(machine=machine)


@pytest.fixture(scope="module")
def golden_zoo():
    return json.loads(GOLDEN_ZOO_PATH.read_text(encoding="utf-8"))


def test_golden_file_covers_every_case(tolerances):
    assert set(tolerances) == set(CASES), (
        "golden_tolerances.json lacks a machine section; regenerate with "
        "PYTHONPATH=src python -m tests.oracle.regen_golden"
    )


@pytest.mark.parametrize("name", FIGURE_CASES)
def test_figure_case(system, tolerances, machine, name):
    (result,) = run_differential(system, names=[name], tolerances=tolerances)
    assert result.passed, f"[{machine}] {result.line()}"


@pytest.mark.slow
@pytest.mark.parametrize("name", TRACE_CASES)
def test_trace_case(system, tolerances, machine, name):
    (result,) = run_differential(system, names=[name], tolerances=tolerances)
    assert result.passed, f"[{machine}] {result.line()}"


@pytest.mark.slow
def test_selftest_passes(machine):
    ok, lines = selftest(machine=machine)
    assert ok, "\n".join(lines)


class TestBitIdentity:
    """Scalar, batch, and sharded engines agree bit-for-bit per machine."""

    def _traces(self, system, seed):
        chip = system.chip
        line = chip.core.l1d.line_size
        chase = random_chase_addresses(
            2048 * line, line, passes=2, seed=seed
        )
        stream = sequential_addresses(0, 512 * line, line, count=1536)
        return chase, stream

    def test_scalar_vs_batch(self, system, machine):
        for addrs in self._traces(system, seed=1):
            scalar = MemoryHierarchy(system.chip)
            batch = BatchMemoryHierarchy(system.chip)
            ref = scalar.access_trace(addrs)
            vec = batch.access_trace(addrs)
            assert np.array_equal(ref.latency_ns, vec.latency_ns), machine
            assert np.array_equal(ref.level_codes, vec.level_codes), machine
            assert dict(read_counters(scalar)) == dict(read_counters(batch))
            ds = dataclasses.asdict(scalar.stats)
            db = dataclasses.asdict(batch.stats)
            # Per-access arrays are bit-identical; the running total is
            # summed in a different order (scalar loop vs np.sum).
            total_s = ds.pop("total_latency_ns")
            total_b = db.pop("total_latency_ns")
            assert ds == db, machine
            assert math.isclose(total_s, total_b, rel_tol=1e-12)

    @pytest.mark.parametrize("shards", (1, 3))
    def test_batch_vs_sharded(self, system, machine, shards):
        chase, _ = self._traces(system, seed=2)
        writes = np.zeros(chase.size, dtype=bool)
        writes[::5] = True
        serial = run_trace_sharded(
            system.chip, chase, writes, shards=shards, workers=1
        )
        pooled = run_trace_sharded(
            system.chip, chase, writes, shards=shards, workers=2
        )
        assert np.array_equal(
            serial.trace.latency_ns, pooled.trace.latency_ns
        ), machine
        assert np.array_equal(
            serial.trace.level_codes, pooled.trace.level_codes
        ), machine
        assert dict(serial.bank) == dict(pooled.bank)
        assert serial.stats == pooled.stats
        if shards == 1:
            direct = BatchMemoryHierarchy(system.chip).access_trace(
                chase, writes
            )
            assert np.array_equal(serial.trace.latency_ns, direct.latency_ns)


class TestGoldenZoo:
    """The pinned headline tables stay live and honest."""

    def test_covers_every_zoo_machine(self, golden_zoo):
        assert set(golden_zoo["machines"]) == set(PUBLISHED)
        for section in golden_zoo["machines"].values():
            assert set(section["model"]) == set(PINNED_KEYS)
            assert section["published"]
            assert section["factor"] >= 1.0

    @pytest.mark.slow
    def test_model_matches_pinned(self, golden_zoo, machine):
        report = characterize(machine)
        for key, pinned in golden_zoo["machines"][machine]["model"].items():
            got = report[key]
            if isinstance(pinned, str):
                assert got == pinned, f"[{machine}] {key}"
            else:
                rel = abs(got - pinned) / max(abs(pinned), 1e-12)
                assert rel <= 1e-6, f"[{machine}] {key}: {got} vs {pinned}"

    @pytest.mark.slow
    def test_published_anchors_within_factor(self, golden_zoo, machine):
        report = characterize(machine)
        section = golden_zoo["machines"][machine]
        factor = section["factor"]
        for key, published in section["published"].items():
            got = report[key]
            ratio = max(got, published) / max(min(got, published), 1e-12)
            assert ratio <= factor, (
                f"[{machine}] {key}: model {got} vs published {published} "
                f"outside {factor}x"
            )

    @pytest.mark.slow
    def test_zoo_selftest_end_to_end(self):
        ok, lines = zoo_selftest(ZOO)
        assert ok, "\n".join(lines)
