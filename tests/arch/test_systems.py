"""Tests for the canned POWER7/POWER8/E870 descriptions (Tables I & II)."""

import pytest

from repro.arch import GB, TIB, e870, power7_core, power8_192way, power8_core
from repro.reporting import paper_values as paper


class TestTable1Comparison:
    """Every Table I row must hold between the two canned cores."""

    def test_threads_per_core_doubled(self):
        assert power7_core().smt_ways == 4
        assert power8_core().smt_ways == 8

    def test_l1d_doubled(self):
        assert power8_core().l1d.capacity == 2 * power7_core().l1d.capacity

    def test_l1i_unchanged(self):
        assert power8_core().l1i.capacity == power7_core().l1i.capacity

    def test_l2_doubled(self):
        assert power8_core().l2.capacity == 2 * power7_core().l2.capacity

    def test_l3_doubled(self):
        assert power8_core().l3_slice.capacity == 2 * power7_core().l3_slice.capacity

    def test_issue_and_commit_widths(self):
        p7, p8 = power7_core(), power8_core()
        assert (p7.issue_width, p8.issue_width) == (8, 10)
        assert (p7.commit_width, p8.commit_width) == (6, 8)

    def test_load_store_ports(self):
        p7, p8 = power7_core(), power8_core()
        assert (p7.load_ports, p7.store_ports) == (2, 2)
        assert (p8.load_ports, p8.store_ports) == (4, 2)

    def test_per_thread_cache_footprint_constant(self):
        """The paper's design rationale: cache per thread stays constant."""
        p7, p8 = power7_core(), power8_core()
        assert p7.l1d.capacity / p7.smt_ways == p8.l1d.capacity / p8.smt_ways
        assert p7.l2.capacity / p7.smt_ways == p8.l2.capacity / p8.smt_ways
        assert p7.l3_slice.capacity / p7.smt_ways == p8.l3_slice.capacity / p8.smt_ways


class TestE870:
    def test_matches_paper_headline(self):
        sys = e870()
        assert sys.num_chips == paper.TABLE2["sockets"]
        assert sys.num_threads == paper.TABLE2["threads"]
        assert sys.peak_gflops == pytest.approx(paper.TABLE2["peak_gflops"], rel=0.01)
        assert sys.peak_memory_bandwidth / GB == pytest.approx(
            paper.TABLE2["peak_memory_bw_gbs"], rel=0.01
        )
        assert sys.peak_write_bandwidth / GB == pytest.approx(
            paper.TABLE2["write_only_bw_gbs"], rel=0.01
        )
        assert sys.balance == pytest.approx(paper.TABLE2["balance"], rel=0.02)

    def test_truncated_variant(self):
        assert e870(num_chips=4).num_groups == 1

    def test_memory_capacity_is_4tb_per_socket_class(self):
        # 8 Centaurs x 128 GiB = 1 TiB per socket.
        sys = e870()
        assert sys.chip.dram_capacity == TIB


class TestLargestSMP:
    """The introduction's 192-way SMP headline numbers."""

    def test_headline_flops(self):
        sys = power8_192way()
        assert sys.num_cores == 192
        assert sys.peak_gflops == pytest.approx(paper.LARGEST_SMP["peak_gflops"], rel=0.01)

    def test_headline_bandwidth(self):
        sys = power8_192way()
        assert sys.peak_memory_bandwidth / GB == pytest.approx(
            paper.LARGEST_SMP["peak_memory_bw_gbs"], rel=0.01
        )

    def test_memory_capacity_16tb(self):
        sys = power8_192way()
        assert sys.dram_capacity == 16 * TIB

    def test_l4_aggregate(self):
        sys = power8_192way()
        assert sys.l4_capacity == 16 * 128 * 1024 * 1024
