"""Unit tests for the machine-description dataclasses."""

import math

import pytest

from repro.arch.specs import (
    GB,
    KIB,
    MIB,
    BusSpec,
    CacheSpec,
    CentaurSpec,
    ChipSpec,
    SpecError,
    SystemSpec,
    TLBSpec,
)
from repro.arch.power8 import power8_chip, power8_core


class TestCacheSpec:
    def test_geometry(self):
        spec = CacheSpec("L1", 64 * KIB, 128, 8, 3.0)
        assert spec.num_lines == 512
        assert spec.num_sets == 64

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(SpecError, match="power of two"):
            CacheSpec("bad", 64 * KIB, 96, 8, 3.0)

    def test_rejects_capacity_not_multiple_of_line(self):
        with pytest.raises(SpecError, match="multiple"):
            CacheSpec("bad", 1000, 128, 8, 3.0)

    def test_rejects_indivisible_sets(self):
        with pytest.raises(SpecError, match="sets"):
            CacheSpec("bad", 3 * 128, 128, 2, 1.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SpecError):
            CacheSpec("bad", 0, 128, 8, 3.0)

    def test_rejects_unknown_write_policy(self):
        with pytest.raises(SpecError, match="write policy"):
            CacheSpec("bad", 64 * KIB, 128, 8, 3.0, write_policy="write-back")

    def test_scaled_doubles_capacity(self):
        spec = CacheSpec("L2", 256 * KIB, 128, 8, 12.0)
        assert spec.scaled(2).capacity == 512 * KIB
        assert spec.scaled(2).associativity == spec.associativity


class TestTLBSpec:
    def test_reach(self):
        tlb = TLBSpec(erat_entries=48, tlb_entries=2048)
        assert tlb.erat_reach(64 * KIB) == 3 * MIB
        assert tlb.tlb_reach(64 * KIB) == 128 * MIB


class TestCoreSpec:
    def test_power8_peak_flops_per_cycle(self):
        # 2 pipes x 2 DP lanes x 2 flops (FMA) = 8
        assert power8_core().peak_flops_per_cycle() == 8

    def test_rejects_bad_smt(self):
        import dataclasses

        with pytest.raises(SpecError, match="SMT"):
            dataclasses.replace(power8_core(), smt_ways=3)


class TestCentaurSpec:
    def test_peak_is_read_plus_write(self):
        c = CentaurSpec()
        assert c.peak_bandwidth == pytest.approx(28.8 * GB)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecError):
            CentaurSpec(read_bandwidth=0.0)


class TestChipSpec:
    def test_e870_chip_numbers(self):
        chip = power8_chip()
        assert chip.threads_per_chip == 64
        assert chip.l3_capacity == 64 * MIB
        assert chip.l4_capacity == 128 * MIB
        assert chip.read_bandwidth == pytest.approx(8 * 19.2 * GB)
        assert chip.write_bandwidth == pytest.approx(8 * 9.6 * GB)
        assert chip.peak_memory_bandwidth == pytest.approx(230.4 * GB)

    def test_peak_gflops(self):
        chip = power8_chip()
        assert chip.peak_gflops == pytest.approx(8 * 8 * 4.35, rel=1e-12)

    def test_cycle_ns_roundtrip(self):
        chip = power8_chip()
        assert chip.ns_to_cycles(chip.cycles_to_ns(13.0)) == pytest.approx(13.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(SpecError):
            power8_chip(cores=0)


class TestSystemSpec:
    def test_grouping(self, e870_system):
        assert e870_system.num_groups == 2
        assert e870_system.group_of(0) == 0
        assert e870_system.group_of(5) == 1
        assert e870_system.position_in_group(5) == 1
        assert e870_system.same_group(0, 3)
        assert not e870_system.same_group(3, 4)

    def test_chip_range_check(self, e870_system):
        with pytest.raises(SpecError, match="out of range"):
            e870_system.group_of(8)

    def test_derived_totals(self, e870_system):
        assert e870_system.num_cores == 64
        assert e870_system.num_threads == 512
        assert e870_system.peak_gflops == pytest.approx(2227.2)
        assert e870_system.peak_memory_bandwidth == pytest.approx(1843.2 * GB)
        assert e870_system.balance == pytest.approx(1.208, rel=1e-3)

    def test_wiring_validation(self):
        chip = power8_chip()
        with pytest.raises(SpecError, match="X-links"):
            SystemSpec("bad", chip, num_chips=8, group_size=5)

    def test_a_link_validation(self):
        chip = power8_chip()
        # 5 groups would need 4 A-links per chip; POWER8 has 3.
        with pytest.raises(SpecError, match="A-links"):
            SystemSpec("bad", chip, num_chips=20, group_size=4)

    def test_bus_defaults(self, e870_system):
        assert e870_system.x_bus.bandwidth == pytest.approx(39.2 * GB)
        assert e870_system.a_bus.bandwidth == pytest.approx(12.8 * GB)


class TestBusSpec:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecError):
            BusSpec("X", 0.0, 30.0)
