"""Tests for the experiment registry and the bench drivers."""

import pytest

from repro.bench.latency import default_working_sets, fig2_rows, plateau_summary
from repro.bench.runner import ExperimentResult, experiment_ids, run_experiment

EXPECTED_IDS = {
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12",
}


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        """One experiment per table AND figure in the paper."""
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    @pytest.mark.parametrize("eid", sorted(EXPECTED_IDS - {"fig10", "fig11"}))
    def test_runs_and_renders(self, eid, e870_system):
        result = run_experiment(eid, e870_system)
        assert isinstance(result, ExperimentResult)
        assert result.rows, eid
        text = result.render()
        assert result.title in text
        assert len(text.splitlines()) >= 3

    def test_fig10_runs(self, e870_system):
        result = run_experiment("fig10", e870_system)
        assert len(result.rows) == 7  # scales 17-23

    def test_fig11_runs(self, e870_system):
        result = run_experiment("fig11", e870_system)
        names = [row[0] for row in result.rows]
        assert "Dense" in names
        assert len(names) == 12


class TestFig2Driver:
    def test_default_working_sets_log_spaced(self):
        sizes = default_working_sets(1024, 8192)
        assert sizes[0] == 1024
        assert sizes[-1] <= 8192
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(1.1 < r < 1.3 for r in ratios)

    def test_rows_cover_both_page_sizes(self, e870_system):
        rows = fig2_rows(e870_system, [32 * 1024, 1 << 30])
        assert len(rows) == 2
        assert rows[0]["latency_64k_ns"] <= rows[1]["latency_64k_ns"]
        assert rows[1]["latency_16m_ns"] < rows[1]["latency_64k_ns"]

    def test_plateau_summary_ordering(self, e870_system):
        summary = plateau_summary(fig2_rows(e870_system))
        assert (
            summary["l1"] < summary["l2"] < summary["l3"]
            < summary["l3_remote"] < summary["l4"] < summary["dram"]
        )
