"""Tests for the executable STREAM kernels."""

import numpy as np
import pytest

from repro.bench.stream_kernels import (
    StreamKernels,
    best_kernel_for_machine,
    kernel_mix_table,
)

GB = 1e9


@pytest.fixture
def kernels(e870_system):
    return StreamKernels(e870_system, elements=4096, seed=1)


class TestKernelCorrectness:
    def test_copy(self, kernels):
        res = kernels.copy()
        np.testing.assert_array_equal(kernels.c, kernels.a)
        assert res.read_ratio == 1.0

    def test_scale(self, kernels):
        kernels.c[:] = 2.0
        kernels.scale()
        np.testing.assert_allclose(kernels.b, 6.0)

    def test_add(self, kernels):
        res = kernels.add()
        np.testing.assert_allclose(kernels.c, kernels.a + kernels.b)
        assert res.read_ratio == 2.0

    def test_triad(self, kernels):
        b0, c0 = kernels.b.copy(), kernels.c.copy()
        kernels.triad()
        np.testing.assert_allclose(kernels.a, b0 + 3.0 * c0)


class TestByteAccounting:
    def test_copy_mix(self, kernels):
        res = kernels.copy()
        assert res.bytes_read == res.bytes_written == 4096 * 8
        assert res.read_byte_fraction == pytest.approx(0.5)

    def test_add_mix_is_power8_optimal(self, kernels):
        res = kernels.add()
        assert res.read_byte_fraction == pytest.approx(2 / 3)

    def test_ratio_kernel(self, kernels):
        res = kernels.ratio_kernel(4, 1)
        assert res.bytes_read == 4 * 4096 * 8
        assert res.bytes_written == 4096 * 8

    def test_ratio_validation(self, kernels):
        with pytest.raises(ValueError):
            kernels.ratio_kernel(0, 0)


class TestModeledRates:
    def test_add_beats_copy_on_power8(self, kernels):
        """The asymmetric links favour the 2:1 kernels (Table III)."""
        copy = kernels.copy().modeled_bandwidth
        add = kernels.add().modeled_bandwidth
        assert add > 1.5 * copy

    def test_add_matches_table3_peak(self, kernels, e870_system):
        res = kernels.add()
        assert res.modeled_bandwidth / GB == pytest.approx(1475, rel=0.01)

    def test_time_consistent(self, kernels):
        res = kernels.add()
        total = res.bytes_read + res.bytes_written
        assert res.modeled_time == pytest.approx(total / res.modeled_bandwidth)

    def test_best_kernel_is_a_two_to_one_mix(self, e870_system):
        assert best_kernel_for_machine(e870_system) in ("Add", "Triad")

    def test_mix_table(self, e870_system):
        rows = kernel_mix_table(e870_system)
        assert [r["kernel"] for r in rows] == ["Copy", "Scale", "Add", "Triad"]
        assert all(r["bandwidth"] > 0 for r in rows)

    def test_validation(self, e870_system):
        with pytest.raises(ValueError):
            StreamKernels(e870_system, elements=0)
