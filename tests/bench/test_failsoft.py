"""Fail-soft execution: timeouts, retries, and error rows.

A deliberately failing experiment must no longer abort the bench suite
— the acceptance criterion of the RAS/robustness PR.  Temporary
experiments are registered directly in the registry dict and removed in
``finally`` blocks so the registry (and the EXPECTED_IDS test) stays
clean.
"""

import time

import pytest

from repro.bench.runner import (
    ExperimentResult,
    ExperimentTimeout,
    RunPolicy,
    _REGISTRY,
    error_result,
    experiment_timeout_s,
    run_suite,
    run_with_policy,
)

FAST = RunPolicy(retries=0, backoff_s=0.0)


def _register(eid, fn):
    assert eid not in _REGISTRY
    _REGISTRY[eid] = fn


def _ok_result(eid):
    return ExperimentResult(eid, "ok", ("x",), [(1,)])


class TestRunPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RunPolicy(retries=-1)
        with pytest.raises(ValueError):
            RunPolicy(backoff_factor=0.9)

    def test_backoff_grows_exponentially(self):
        policy = RunPolicy(backoff_s=0.5, backoff_factor=2.0)
        assert [policy.backoff_after(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_declared_timeouts_registered(self):
        # Heavy trace-driven figures declare budgets; analytic tables don't.
        assert experiment_timeout_s("fig10") is not None
        assert experiment_timeout_s("table1") is None


class TestFailSoft:
    def test_failing_experiment_yields_error_row(self, e870_system):
        def boom(system):
            raise RuntimeError("deliberate failure")

        _register("boom", boom)
        try:
            result = run_with_policy("boom", e870_system, FAST)
        finally:
            del _REGISTRY["boom"]
        assert not result.ok
        assert "deliberate failure" in result.error
        assert result.attempts == 1
        assert "FAILED" in result.render()

    def test_suite_continues_past_failure(self, e870_system):
        """The acceptance criterion: one bad experiment, full suite output."""
        def boom(system):
            raise RuntimeError("deliberate failure")

        _register("boom", boom)
        try:
            results = run_suite(["table1", "boom", "table2"], e870_system, FAST)
        finally:
            del _REGISTRY["boom"]
        assert [r.experiment_id for r in results] == ["table1", "boom", "table2"]
        assert results[0].ok and results[2].ok
        assert not results[1].ok

    def test_retry_recovers_flaky_experiment(self, e870_system):
        calls = []

        def flaky(system):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return _ok_result("flaky")

        _register("flaky", flaky)
        try:
            result = run_with_policy(
                "flaky", e870_system, RunPolicy(retries=2, backoff_s=0.0)
            )
        finally:
            del _REGISTRY["flaky"]
        assert result.ok
        assert result.attempts == 3

    def test_timeout_produces_error_row(self, e870_system):
        def sleepy(system):
            time.sleep(5.0)
            return _ok_result("sleepy")

        _register("sleepy", sleepy)
        try:
            start = time.monotonic()
            result = run_with_policy(
                "sleepy", e870_system, RunPolicy(timeout_s=0.2, retries=0)
            )
            elapsed = time.monotonic() - start
        finally:
            del _REGISTRY["sleepy"]
        assert not result.ok
        assert "ExperimentTimeout" in result.error
        assert elapsed < 4.0  # the suite did not wait out the sleep

    def test_timed_out_experiment_leaves_only_daemon_threads(self, e870_system):
        # A wedged experiment thread must not block interpreter (or
        # multiprocessing pool worker) shutdown: whatever the timeout
        # path leaves behind has to be a daemon.  A non-daemon leak here
        # turns one timeout into a hung pool in repro.parallel.
        import threading

        release = threading.Event()

        def wedged(system):
            release.wait(30.0)
            return _ok_result("wedged")

        _register("wedged", wedged)
        try:
            before = set(threading.enumerate())
            result = run_with_policy(
                "wedged", e870_system, RunPolicy(timeout_s=0.1, retries=0)
            )
            leaked = [t for t in threading.enumerate() if t not in before]
        finally:
            release.set()  # let the wedged thread finish promptly
            del _REGISTRY["wedged"]
        assert not result.ok
        assert leaked, "the wedged experiment thread should still be alive"
        assert all(t.daemon for t in leaked)

    def test_fail_fast_raises(self, e870_system):
        def boom(system):
            raise RuntimeError("deliberate failure")

        _register("boom", boom)
        try:
            with pytest.raises(RuntimeError, match="deliberate failure"):
                run_with_policy(
                    "boom", e870_system,
                    RunPolicy(retries=0, backoff_s=0.0, fail_soft=False),
                )
        finally:
            del _REGISTRY["boom"]

    def test_unknown_id_still_raises(self, e870_system):
        # A typo is a caller bug, not a benchmark failure.
        with pytest.raises(KeyError, match="unknown experiment"):
            run_with_policy("fig99", e870_system, FAST)

    def test_error_result_shape(self):
        row = error_result("x", "broke", attempts=2, elapsed_s=1.5)
        assert not row.ok
        assert row.rows == [("error", "broke")]
        assert ExperimentTimeout.__mro__  # exported type is importable

    def test_successful_run_records_attempts_and_elapsed(self, e870_system):
        result = run_with_policy("table1", e870_system, FAST)
        assert result.ok
        assert result.attempts == 1
        assert result.elapsed_s >= 0.0

    def test_pooled_suite_matches_serial_suite(self, e870_system):
        ids = ["table1", "table2"]
        serial = run_suite(ids, e870_system, FAST, workers=1)
        pooled = run_suite(ids, e870_system, FAST, workers=2)
        assert [r.experiment_id for r in pooled] == ids
        for s, p in zip(serial, pooled):
            assert s.ok and p.ok
            assert s.headers == p.headers
            assert s.rows == p.rows
