"""Unit tests for SMT modes, thread-sets and the register-file model."""

import pytest

from repro.arch.specs import RegisterFileSpec
from repro.core.registers import registers_used, spill_factor
from repro.core.smt import SMTMode, split_threads


class TestSMTMode:
    @pytest.mark.parametrize(
        "threads,mode",
        [(1, SMTMode.ST), (2, SMTMode.SMT2), (3, SMTMode.SMT4),
         (4, SMTMode.SMT4), (5, SMTMode.SMT8), (8, SMTMode.SMT8)],
    )
    def test_mode_selection(self, threads, mode):
        assert SMTMode.for_threads(threads) is mode

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            SMTMode.for_threads(0)

    def test_rejects_nine(self):
        with pytest.raises(ValueError):
            SMTMode.for_threads(9)


class TestSplitThreads:
    def test_even_split_balanced(self):
        sets = split_threads(8)
        assert (sets.set_a, sets.set_b) == (4, 4)
        assert sets.balanced

    @pytest.mark.parametrize("threads", [3, 5, 7])
    def test_odd_split_imbalanced(self, threads):
        sets = split_threads(threads)
        assert sets.set_a == sets.set_b + 1
        assert not sets.balanced

    def test_st_mode_special(self):
        sets = split_threads(1)
        assert tuple(sets) == (1, 0)

    def test_iteration(self):
        assert list(split_threads(6)) == [3, 3]


class TestRegistersUsed:
    def test_paper_example(self):
        """12 FMAs x 2 registers x 6 threads = 144 (the paper's cliff)."""
        assert registers_used(12, 6) == 144

    def test_single(self):
        assert registers_used(1, 1) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            registers_used(0, 1)


class TestSpillFactor:
    def test_within_architected_no_penalty(self):
        spec = RegisterFileSpec()
        assert spill_factor(128, spec) == 1.0
        assert spill_factor(64, spec) == 1.0

    def test_beyond_architected_penalised(self):
        spec = RegisterFileSpec()
        f144 = spill_factor(144, spec)
        f192 = spill_factor(192, spec)
        assert f192 < f144 < 1.0

    def test_monotone_decreasing(self):
        spec = RegisterFileSpec()
        factors = [spill_factor(r, spec) for r in range(2, 512, 2)]
        assert factors == sorted(factors, reverse=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spill_factor(0, RegisterFileSpec())
