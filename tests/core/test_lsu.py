"""Unit tests for the LSU / core memory-interface limits (Figure 3a)."""

import pytest

from repro.core.lsu import (
    CORE_MEMORY_BYTES_PER_CYCLE,
    core_stream_bandwidth,
    lsu_issue_bandwidth,
)
from repro.reporting import paper_values as paper


class TestCoreStreamBandwidth:
    def test_saturates_near_26_gbs(self, p8_chip):
        got = core_stream_bandwidth(p8_chip, threads=8) / 1e9
        assert got == pytest.approx(paper.FIG3["single_core_peak_gbs"], rel=0.05)

    def test_monotone_in_threads(self, p8_chip):
        bws = [core_stream_bandwidth(p8_chip, t) for t in range(1, 9)]
        assert bws == sorted(bws)

    def test_single_thread_well_below_peak(self, p8_chip):
        one = core_stream_bandwidth(p8_chip, 1)
        full = core_stream_bandwidth(p8_chip, 8)
        assert one < 0.5 * full

    def test_cap_is_nest_interface(self, p8_chip):
        cap = CORE_MEMORY_BYTES_PER_CYCLE * p8_chip.frequency_hz
        assert core_stream_bandwidth(p8_chip, 8) == pytest.approx(cap)

    def test_rejects_bad_thread_count(self, p8_chip):
        with pytest.raises(ValueError):
            core_stream_bandwidth(p8_chip, 0)
        with pytest.raises(ValueError):
            core_stream_bandwidth(p8_chip, 9)


class TestLSUIssueBound:
    def test_above_nest_limit(self, p8_chip):
        """Raw LSU issue is far above the sustainable interface rate —
        the NEST interface, not the LSU, is the core-level bottleneck."""
        issue = lsu_issue_bandwidth(p8_chip.core, p8_chip.frequency_hz)
        nest = CORE_MEMORY_BYTES_PER_CYCLE * p8_chip.frequency_hz
        assert issue > 5 * nest
