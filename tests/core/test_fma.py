"""Figure 5 reproduction tests: the FMA saturation model."""

import pytest

from repro.arch.power8 import power8_chip, power8_core
from repro.core.fma import fma_efficiency, fma_gflops, fma_sweep
from repro.core.pipeline import core_utilization_st, pipe_utilization
from repro.reporting import paper_values as paper


@pytest.fixture(scope="module")
def core():
    return power8_core()


class TestPipeUtilization:
    def test_saturates_at_latency(self):
        assert pipe_utilization(6, 6) == 1.0
        assert pipe_utilization(12, 6) == 1.0

    def test_linear_below(self):
        assert pipe_utilization(3, 6) == pytest.approx(0.5)

    def test_st_mode_splits_across_pipes(self):
        assert core_utilization_st(12, 2, 6) == 1.0
        assert core_utilization_st(6, 2, 6) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            pipe_utilization(1, 0)
        with pytest.raises(ValueError):
            core_utilization_st(1, 0, 6)


class TestPeakCondition:
    """The paper: peak needs threads x FMAs >= 12 (2 pipes x 6 cycles)."""

    @pytest.mark.parametrize("threads,fmas", [(1, 12), (2, 6), (4, 3), (6, 2), (4, 6), (8, 4)])
    def test_at_or_above_threshold_hits_peak(self, core, threads, fmas):
        assert threads * fmas >= paper.FIG5["inflight_for_peak"]
        assert fma_efficiency(core, threads, fmas) == pytest.approx(1.0)

    @pytest.mark.parametrize("threads,fmas", [(1, 6), (2, 3), (1, 1), (2, 2)])
    def test_below_threshold_misses_peak(self, core, threads, fmas):
        assert threads * fmas < paper.FIG5["inflight_for_peak"]
        assert fma_efficiency(core, threads, fmas) < 0.99

    def test_linear_in_flight_dependence(self, core):
        """Well below saturation efficiency scales with in-flight count."""
        assert fma_efficiency(core, 1, 6) == pytest.approx(0.5)
        assert fma_efficiency(core, 1, 3) == pytest.approx(0.25)


class TestOddThreadImbalance:
    """Odd thread counts under-fill one thread-set (Figure 5 dips)."""

    def test_three_vs_four_threads(self, core):
        # Same total in-flight (12) but 3 threads split {2,1}.
        assert fma_efficiency(core, 3, 4) < fma_efficiency(core, 4, 3)

    def test_five_vs_six_threads_small_loop(self, core):
        assert fma_efficiency(core, 5, 2) < fma_efficiency(core, 6, 2)

    def test_seven_vs_eight_threads_one_fma(self, core):
        assert fma_efficiency(core, 7, 1) < fma_efficiency(core, 8, 1)


class TestRegisterCliff:
    """The 12-FMA curve degrades beyond 6 threads (144 > 128 registers)."""

    def test_twelve_fma_degrades_past_six_threads(self, core):
        e6 = fma_efficiency(core, 6, 12)   # 144 regs: mild
        e7 = fma_efficiency(core, 7, 12)   # 168 regs
        e8 = fma_efficiency(core, 8, 12)   # 192 regs
        assert e6 > e7 > e8

    def test_six_fma_does_not_degrade(self, core):
        """2 x 6 x 8 = 96 registers stays under 128 at SMT8."""
        assert fma_efficiency(core, 8, 6) == pytest.approx(1.0)

    def test_twentyfour_fma_degrades_earlier(self, core):
        # 2 x 24 x 3 = 144 regs already at 3 threads.
        assert fma_efficiency(core, 3, 24) < fma_efficiency(core, 3, 12)


class TestAbsoluteRates:
    def test_peak_gflops_per_core(self):
        chip = power8_chip()
        got = fma_gflops(chip.core, chip.frequency_hz, threads=2, fmas_per_loop=6)
        assert got == pytest.approx(8 * 4.35, rel=1e-6)

    def test_validation(self, core):
        with pytest.raises(ValueError):
            fma_efficiency(core, 0, 1)
        with pytest.raises(ValueError):
            fma_efficiency(core, 9, 1)
        with pytest.raises(ValueError):
            fma_efficiency(core, 1, 0)


class TestSweep:
    def test_grid_shape(self, core):
        rows = fma_sweep(core, [1, 2], [1, 12])
        assert len(rows) == 4
        assert {r["threads"] for r in rows} == {1, 2}
        assert all(0 < r["efficiency"] <= 1 for r in rows)

    def test_registers_column(self, core):
        rows = fma_sweep(core, [6], [12])
        assert rows[0]["registers"] == 144
