"""End-to-end bit-identity: served payloads vs direct in-process runs.

For every request kind the daemon routes — analytic oracle, registry
experiment, plain trace, sharded trace, RAS-injected trace — the
payload that crosses the socket must equal the result of computing the
same thing directly, bit for bit, on all three temperature paths:

* **cold**: fresh daemon, fresh cache directory (source ``computed``);
* **LRU-hot**: the repeat on the same daemon (source ``lru``);
* **disk-hot**: a *new* daemon over the same cache directory, so the
  in-memory tier is empty and the entry comes off disk (source
  ``disk``), then once more to prove the promotion back into the LRU.

"Direct" is spelled with the public APIs a script would use —
``AnalyticOracle.predict``, ``run_with_policy``,
``sharded_traced_latency`` — projected through the same served-payload
definition (:func:`~repro.serve.protocol.experiment_payload`,
:func:`~repro.serve.protocol.trace_payload`, one JSON round-trip).
"""

import pytest

from repro.arch import e870
from repro.bench.runner import run_with_policy
from repro.parallel.runner import sharded_traced_latency
from repro.perfmodel.oracle import AnalyticOracle, OracleRequest
from repro.serve import (
    ServeClient,
    ServerThread,
    canonical,
    experiment_payload,
    trace_payload,
)

INJECT = "dram_bit:rate=0.001;tlb_parity:rate=0.0005;ecc:chipkill"
WS = 64 * 1024


def direct_analytic(request):
    oracle = AnalyticOracle(e870())
    return canonical(oracle.predict(OracleRequest.from_dict(dict(request))).to_dict())


def direct_experiment(experiment_id):
    return experiment_payload(run_with_policy(experiment_id, e870()))


def direct_trace(**kwargs):
    _, result = sharded_traced_latency(e870(), **kwargs)
    return trace_payload(result)


CASES = [
    pytest.param(
        {"kind": "analytic", "request": {"kind": "chase", "working_set": 1 << 20}},
        lambda: direct_analytic({"kind": "chase", "working_set": 1 << 20}),
        id="analytic-chase",
    ),
    pytest.param(
        {"kind": "analytic", "request": {"kind": "stream_table3"}},
        lambda: direct_analytic({"kind": "stream_table3"}),
        id="analytic-table3",
    ),
    pytest.param(
        {"kind": "experiment", "experiment": "table1"},
        lambda: direct_experiment("table1"),
        id="experiment-table1",
    ),
    pytest.param(
        {"kind": "trace", "working_set": WS},
        lambda: direct_trace(working_set=WS),
        id="trace-serial",
    ),
    pytest.param(
        {"kind": "trace", "working_set": WS, "shards": 4, "seed": 5},
        lambda: direct_trace(working_set=WS, shards=4, seed=5),
        id="trace-sharded",
    ),
    pytest.param(
        {"kind": "trace", "working_set": WS, "shards": 2, "seed": 7, "inject": INJECT},
        lambda: direct_trace(working_set=WS, shards=2, seed=7, inject=INJECT),
        id="trace-ras-injected",
    ),
]


@pytest.mark.parametrize("spec,direct_fn", CASES)
def test_served_equals_direct_on_every_temperature(spec, direct_fn, tmp_path):
    direct = direct_fn()
    cache_dir = str(tmp_path / "cache")

    with ServerThread(cache_dir=cache_dir, lru_capacity=32) as st:
        with ServeClient(st.host, st.port) as client:
            cold = client.run(**spec)
            assert cold["source"] == "computed"
            assert cold["payload"] == direct

            hot = client.run(**spec)
            assert hot["source"] == "lru"
            assert hot["payload"] == direct
            assert hot["key"] == cold["key"]

    # A fresh daemon over the same cache directory: disk tier answers,
    # then the promoted entry serves the fourth request from memory.
    with ServerThread(cache_dir=cache_dir, lru_capacity=32) as st:
        with ServeClient(st.host, st.port) as client:
            disk = client.run(**spec)
            assert disk["source"] == "disk"
            assert disk["payload"] == direct

            promoted = client.run(**spec)
            assert promoted["source"] == "lru"
            assert promoted["payload"] == direct


def test_spelling_variants_share_one_entry(tmp_path):
    """Omitted defaults normalize away: one key, one computation."""
    with ServerThread(cache_dir=str(tmp_path / "cache")) as st:
        with ServeClient(st.host, st.port) as client:
            sparse = client.run(kind="trace", working_set=WS)
            explicit = client.run(
                kind="trace", working_set=WS, page_size=64 * 1024,
                passes=3, shards=1, seed=0, machine="e870",
            )
            assert sparse["source"] == "computed"
            assert explicit["source"] == "lru"
            assert explicit["key"] == sparse["key"]
            assert explicit["payload"] == sparse["payload"]


def test_machines_do_not_share_entries(tmp_path):
    """Same workload on a different preset is a different result."""
    spec = {"kind": "analytic", "request": {"kind": "stream_table3"}}
    with ServerThread(cache_dir=str(tmp_path / "cache")) as st:
        with ServeClient(st.host, st.port) as client:
            first = client.run(**spec)
            other = client.run(machine="power8_192way", **spec)
            assert other["source"] == "computed"
            assert other["key"] != first["key"]


def test_experiment_error_rows_serve_but_do_not_cache(tmp_path, monkeypatch):
    """A failing experiment serves its fail-soft error row; the next
    request retries instead of replaying the cached failure."""
    from repro.bench import runner as bench_runner
    from repro.serve import daemon as serve_daemon

    calls = {"n": 0}
    real = bench_runner.run_with_policy

    def flaky(experiment_id, system=None, policy=bench_runner.DEFAULT_POLICY):
        calls["n"] += 1
        if calls["n"] == 1:
            return bench_runner.error_result(experiment_id, "synthetic failure")
        return real(experiment_id, system, policy)

    monkeypatch.setattr(serve_daemon, "run_with_policy", flaky)
    with ServerThread(cache_dir=str(tmp_path / "cache")) as st:
        with ServeClient(st.host, st.port) as client:
            first = client.run(kind="experiment", experiment="table1")
            assert first["payload"]["error"] == "synthetic failure"
            second = client.run(kind="experiment", experiment="table1")
            assert second["source"] == "computed"  # not served from a cache
            assert second["payload"]["error"] == ""
            assert second["payload"] == direct_experiment("table1")
            third = client.run(kind="experiment", experiment="table1")
            assert third["source"] == "lru"  # the good row did get cached
    assert calls["n"] == 2
