"""Client timeouts against a wedged daemon (satellite d).

A hung compute lane must cost the timed-out client exactly one
reconnect — and nothing else: the shared in-flight computation keeps
running for (and stays joinable by) everyone else, so a client giving
up can never poison the dedup future other waiters hold.
"""

import time

import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServeTimeout,
    ServerThread,
    build_chaos,
)

HUNG_TRACE = {"kind": "trace", "working_set": 64 * 1024, "seed": 9}


def hang_first_trace(hang_s=1.2):
    return build_chaos(f"hang_lane:at=1,hang_s={hang_s},lane=trace", seed=0)


def test_timeout_raises_and_reconnects_transparently():
    with ServerThread(lru_capacity=8, chaos=hang_first_trace()) as st:
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeTimeout):
                client.run(_timeout=0.3, **HUNG_TRACE)
            # The old socket can no longer pair responses to requests;
            # the next call must transparently use a fresh connection.
            assert client.ping() is True
            assert client.reconnects == 1


def test_timed_out_client_does_not_poison_the_shared_future():
    """Client A times out on the hung compute; client B, asking the
    identical question, must still receive the full payload from the
    very computation A abandoned."""
    with ServerThread(lru_capacity=8, chaos=hang_first_trace()) as st:
        with ServeClient(st.host, st.port) as a, ServeClient(st.host, st.port) as b:
            with pytest.raises(ServeTimeout):
                a.run(_timeout=0.3, **HUNG_TRACE)
            # B joins (or, post-completion, hits the cache of) the same
            # computation A walked away from.
            response = b.run(**HUNG_TRACE)
            assert response["ok"] is True
            assert response["source"] in ("inflight", "computed", "lru")
            # And A, reconnected, sees the cached bit-identical result.
            again = a.run(**HUNG_TRACE)
            assert again["source"] == "lru"
            assert again["payload"] == response["payload"]


def test_server_side_deadline_then_cached_retry():
    """deadline_ms bounds the wait server-side: the daemon answers with
    a structured ``deadline`` error, the computation still completes and
    lands in the cache, and the retry is a hit with the same payload."""
    with ServerThread(lru_capacity=8, chaos=hang_first_trace(hang_s=0.8)) as st:
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.run(deadline_ms=150, **HUNG_TRACE)
            assert excinfo.value.code == "deadline"
            assert client.reconnects == 0  # structured error, socket fine
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                response = client.run(**HUNG_TRACE)
                if response["source"] in ("lru", "disk"):
                    break
                time.sleep(0.05)
            assert response["source"] in ("lru", "disk", "inflight", "computed")
            assert response["payload"]
            assert client.stats()["stats"]["deadline_misses"] == 1


def test_request_timeout_override_restores_default():
    with ServerThread(lru_capacity=8, chaos=hang_first_trace()) as st:
        client = ServeClient(st.host, st.port, timeout=60.0)
        try:
            with pytest.raises(ServeTimeout):
                client.run(_timeout=0.2, **HUNG_TRACE)
            # The per-request override must not stick to the socket.
            assert client.timeout == 60.0
            assert client.ping() is True
            assert client._sock.gettimeout() == 60.0
        finally:
            client.close()
