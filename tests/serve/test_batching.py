"""Analytic micro-batching: coalescing is transport-only.

Drives :meth:`ReproServer.handle_request` directly (no socket), same as
the dedup suite.  The contracts:

* concurrent analytic misses on a batching daemon return payloads
  byte-identical to an unbatched daemon's (golden) responses;
* a full window flushes early at ``batch_max`` waiters — a huge window
  must not delay a full batch;
* LRU hits and non-analytic lanes never enter the batcher;
* a batch containing a request whose computation raises falls back to
  per-request computation: good requests still succeed, the bad one
  gets a structured error, nothing hangs;
* ``stats`` exposes the ``batches``/``batched_requests`` counters and
  the ``batching`` section (histogram, mean size, coalesce wait);
* chaos-armed daemons bypass batching (fault injection targets single
  computations);
* ``drain()`` flushes a pending partial batch instead of abandoning it.
"""

import asyncio
import time

from repro.serve import ReproServer
from repro.serve.chaos import build_chaos

_WS_BASE = 32 << 20


def spec(i=0, request_id=None, working_set=None):
    return {
        "op": "run",
        "id": request_id,
        "kind": "analytic",
        "request": {
            "kind": "chase",
            "working_set": _WS_BASE + i * 4096 if working_set is None else working_set,
        },
    }


async def _gather_concurrent(server, specs):
    return await asyncio.gather(
        *(server.handle_request(s) for s in specs), return_exceptions=False
    )


def test_batched_payloads_match_unbatched_golden():
    async def scenario():
        golden_server = ReproServer()
        golden = [
            await golden_server.handle_request(spec(i, request_id=i))
            for i in range(12)
        ]

        server = ReproServer(batch_window_ms=20.0, batch_max=64)
        responses = await _gather_concurrent(
            server, [spec(i, request_id=i) for i in range(12)]
        )
        assert [r["ok"] for r in responses] == [True] * 12
        for got, want in zip(responses, golden):
            assert got["payload"] == want["payload"]
        assert server.stats.batched_requests == 12
        assert server.stats.batches >= 1
        # All 12 arrived inside one window: they coalesced.
        assert server.stats.batches < 12

    asyncio.run(scenario())


def test_full_batch_flushes_before_the_window():
    async def scenario():
        # A window long enough to fail the test if it is ever waited on.
        server = ReproServer(batch_window_ms=60_000.0, batch_max=4)
        start = time.monotonic()
        responses = await _gather_concurrent(
            server, [spec(i, request_id=i) for i in range(8)]
        )
        elapsed = time.monotonic() - start
        assert [r["ok"] for r in responses] == [True] * 8
        assert elapsed < 30.0  # nowhere near the 60 s window
        assert server.stats.batches == 2
        assert server.stats.batched_requests == 8
        assert server.batcher.size_counts[2] == 2  # two "4-7" buckets

    asyncio.run(scenario())


def test_lru_hits_and_other_lanes_bypass_the_batcher():
    async def scenario():
        server = ReproServer(batch_window_ms=1.0, batch_max=64)
        first = await server.handle_request(spec(0))
        assert first["source"] == "computed"
        assert server.stats.batched_requests == 1

        repeat = await server.handle_request(spec(0))
        assert repeat["source"] == "lru"
        assert repeat["payload"] == first["payload"]
        assert server.stats.batched_requests == 1  # hit never parked

        server._compute = lambda normalized: ({"lane": normalized.kind}, True)
        trace = await server.handle_request(
            {"op": "run", "kind": "trace", "working_set": 4096, "seed": 1}
        )
        assert trace["ok"] is True
        assert server.stats.batched_requests == 1  # trace lane untouched

    asyncio.run(scenario())


def test_failing_request_in_a_batch_degrades_to_per_request_compute():
    async def scenario():
        server = ReproServer(batch_window_ms=20.0, batch_max=64)
        specs = [spec(i, request_id=i) for i in range(4)]
        # working_set <= 0 is rejected by the oracle at compute time.
        specs.append(spec(request_id=99, working_set=-4096))
        responses = await _gather_concurrent(server, specs)
        assert [r["ok"] for r in responses[:4]] == [True] * 4
        bad = responses[4]
        assert bad["ok"] is False
        assert bad.get("error")

        golden_server = ReproServer()
        for got, want_spec in zip(responses[:4], specs[:4]):
            want = await golden_server.handle_request(want_spec)
            assert got["payload"] == want["payload"]

    asyncio.run(scenario())


def test_stats_expose_the_batching_section():
    async def scenario():
        server = ReproServer(batch_window_ms=20.0, batch_max=64)
        await _gather_concurrent(server, [spec(i) for i in range(6)])
        stats = await server.handle_request({"op": "stats"})
        assert stats["stats"]["batches"] == server.stats.batches
        assert stats["stats"]["batched_requests"] == 6
        batching = stats["batching"]
        assert batching["max_batch"] == 64
        assert batching["window_ms"] == 20.0
        assert batching["batched_requests"] == 6
        assert batching["mean_batch_size"] > 1.0
        assert sum(batching["size_histogram"].values()) == batching["batches"]
        assert batching["mean_coalesce_wait_ms"] >= 0.0

        unbatched = ReproServer()
        stats = await unbatched.handle_request({"op": "stats"})
        assert stats["batching"] is None
        assert stats["stats"]["batches"] == 0

    asyncio.run(scenario())


def test_chaos_armed_daemon_bypasses_batching():
    async def scenario():
        server = ReproServer(
            batch_window_ms=20.0,
            batch_max=64,
            chaos=build_chaos("lane_error:rate=0", seed=0),
        )
        responses = await _gather_concurrent(
            server, [spec(i, request_id=i) for i in range(6)]
        )
        assert [r["ok"] for r in responses] == [True] * 6
        assert server.stats.batches == 0
        assert server.stats.batched_requests == 0

    asyncio.run(scenario())


def test_drain_flushes_a_pending_partial_batch():
    async def scenario():
        server = ReproServer(batch_window_ms=60_000.0, batch_max=64)
        waiter = asyncio.create_task(server.handle_request(spec(0)))
        # Let the request park in the batcher, then drain: the partial
        # batch must flush rather than wait out the 60 s window.
        while not server.batcher._pending:
            await asyncio.sleep(0.005)
        start = time.monotonic()
        await server.drain()
        response = await waiter
        assert time.monotonic() - start < 30.0
        assert response["ok"] is True
        assert server.stats.batches == 1

    asyncio.run(scenario())
