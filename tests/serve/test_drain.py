"""Graceful drain: SIGTERM / ``shutdown`` end the daemon cleanly.

A draining daemon stops accepting work, settles (or cancels, against
the drain timeout) what is already in flight, prints its flushed final
stats as a ``drained {...}`` banner, and exits 0 — so orchestrators can
tell a clean rollover from a crash by exit code alone.
"""

import json
import threading
import time

import pytest

from repro.serve import ServeClient, ServeError, ServerThread, build_chaos
from repro.serve.loadgen import DaemonProcess


def parse_drained_banner(out):
    for line in out.splitlines():
        if line.startswith("drained "):
            return json.loads(line.partition("drained ")[2])
    return None


def test_sigterm_drains_and_exits_zero(tmp_path):
    daemon = DaemonProcess(str(tmp_path), lru_capacity=8)
    try:
        with ServeClient(daemon.host, daemon.port) as client:
            response = client.run(
                kind="analytic", request={"kind": "chase", "working_set": 4 << 20}
            )
            assert response["ok"] is True
        exit_code, out = daemon.terminate_and_wait()
    finally:
        daemon.stop()
    assert exit_code == 0
    stats = parse_drained_banner(out)
    assert stats is not None, f"no drained banner in {out!r}"
    assert stats["requests"] == 1 and stats["ok"] == 1


def test_shutdown_op_drains_and_exits_zero(tmp_path):
    daemon = DaemonProcess(str(tmp_path), lru_capacity=8)
    try:
        with ServeClient(daemon.host, daemon.port) as client:
            client.shutdown()
        exit_code = daemon.proc.wait(timeout=30)
        out = daemon.proc.stdout.read()
    finally:
        daemon.stop()
    assert exit_code == 0
    assert parse_drained_banner(out) is not None


def test_sigterm_lets_inflight_work_finish(tmp_path):
    """A trace started before SIGTERM completes during the drain window
    and its client receives the full payload."""
    daemon = DaemonProcess(
        str(tmp_path),
        lru_capacity=8,
        extra_args=[
            "--chaos", "slow_lane:rate=1,delay_ms=400,lane=trace",
            "--drain-timeout", "10",
        ],
    )
    results = []

    def work():
        with ServeClient(daemon.host, daemon.port) as client:
            results.append(client.run(kind="trace", working_set=64 * 1024, seed=3))

    try:
        thread = threading.Thread(target=work)
        thread.start()
        time.sleep(0.15)  # the slow trace is now in flight
        exit_code, out = daemon.terminate_and_wait()
        thread.join()
    finally:
        daemon.stop()
    assert exit_code == 0
    assert results and results[0]["ok"] is True
    stats = parse_drained_banner(out)
    assert stats["computed"] == 1


def test_draining_server_rejects_new_runs():
    """In-process flavour: after request_shutdown, run requests get a
    structured ``draining`` error while ops still answer."""
    with ServerThread(lru_capacity=8) as st:
        with ServeClient(st.host, st.port) as client:
            st._loop.call_soon_threadsafe(st.server.request_shutdown)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    client.run(kind="analytic", request={"kind": "chase"})
                except ServeError as exc:
                    assert exc.code == "draining"
                    break
                time.sleep(0.01)
            else:
                pytest.fail("daemon never started draining")
            # Ops keep answering so orchestrators can watch the drain.
            assert client.stats()["resilience"]["draining"] is True
