"""Property tests for the in-memory LRU tier and the tiered overlay.

Hypothesis drives :class:`~repro.serve.lru.LRUTier` against a
reference model (a plain dict plus an explicit recency list) and checks
the laws the daemon relies on:

* the tier never holds more than ``capacity`` entries;
* eviction removes exactly the least-recently-*used* key (``get`` and
  ``put`` both freshen recency; ``in`` does not);
* a ``put`` followed by ``get`` round-trips the payload unchanged;
* :class:`~repro.serve.lru.TieredResultCache` is a transparent overlay:
  reads through it return exactly what a bare on-disk
  :class:`~repro.parallel.cache.ResultCache` would, regardless of the
  interleaving that got the entry there.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.cache import ResultCache
from repro.serve.lru import LRUTier, TieredResultCache

# Small alphabets force collisions, evictions and re-insertions.
keys = st.integers(min_value=0, max_value=11).map(lambda i: f"k{i:02d}")
payloads = st.fixed_dictionaries(
    {"v": st.integers(), "rows": st.lists(st.integers(), max_size=3)}
)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, payloads),
        st.tuples(st.just("get"), keys, st.none()),
        st.tuples(st.just("contains"), keys, st.none()),
    ),
    max_size=60,
)


class ModelLRU:
    """The executable spec: dict + recency list, no cleverness."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = {}
        self.recency = []  # LRU ... MRU

    def _touch(self, key):
        if key in self.recency:
            self.recency.remove(key)
        self.recency.append(key)

    def put(self, key, payload):
        self.data[key] = payload
        self._touch(key)
        while len(self.data) > self.capacity:
            victim = self.recency.pop(0)
            del self.data[victim]

    def get(self, key):
        if key not in self.data:
            return None
        self._touch(key)
        return self.data[key]


@given(capacity=st.integers(min_value=1, max_value=6), script=ops)
def test_lru_matches_reference_model(capacity, script):
    real = LRUTier(capacity)
    model = ModelLRU(capacity)
    for op, key, payload in script:
        if op == "put":
            real.put(key, payload)
            model.put(key, payload)
        elif op == "get":
            assert real.get(key) == model.get(key)
        else:
            # Membership is recency-neutral by contract.
            assert (key in real) == (key in model.data)
        assert len(real) == len(model.data) <= capacity
        assert list(real.keys()) == model.recency


@given(capacity=st.integers(min_value=1, max_value=8), script=ops)
def test_capacity_is_a_hard_bound(capacity, script):
    tier = LRUTier(capacity)
    for op, key, payload in script:
        if op == "put":
            tier.put(key, payload)
        assert len(tier) <= capacity
    stats = tier.stats()
    assert stats["entries"] <= capacity
    assert stats["evictions"] >= 0


@given(key=keys, payload=payloads)
def test_put_get_round_trip(key, payload):
    tier = LRUTier(4)
    tier.put(key, payload)
    assert tier.get(key) == payload
    assert tier.stats()["hits"] == 1


def test_eviction_order_is_least_recently_used():
    tier = LRUTier(2)
    tier.put("a", {"v": 1})
    tier.put("b", {"v": 2})
    assert tier.get("a") == {"v": 1}  # freshen "a"; "b" is now LRU
    tier.put("c", {"v": 3})  # evicts "b"
    assert "b" not in tier
    assert tier.get("a") == {"v": 1}
    assert tier.get("c") == {"v": 3}
    assert tier.stats()["evictions"] == 1


@settings(deadline=None, max_examples=25)
@given(script=ops)
def test_tiered_overlay_is_transparent(script):
    """Writes through the overlay and reads answer exactly like a bare
    ResultCache fed the same puts — whatever tier they come from."""
    with tempfile.TemporaryDirectory() as tmp_a, tempfile.TemporaryDirectory() as tmp_b:
        tiered = TieredResultCache(LRUTier(2), ResultCache(tmp_a))
        bare = ResultCache(tmp_b)
        for op, key, payload in script:
            if op == "put":
                tiered.put(key, payload)
                bare.put(key, payload)
            else:
                got, source = tiered.get(key)
                assert got == bare.get(key)
                if got is not None:
                    assert source in ("lru", "disk")
                    # A disk hit must have been promoted.
                    assert key in tiered.lru
                else:
                    assert source is None


def test_overlay_survives_lru_eviction_via_disk():
    with tempfile.TemporaryDirectory() as tmp:
        tiered = TieredResultCache(LRUTier(1), ResultCache(tmp))
        tiered.put("x", {"v": 1})
        tiered.put("y", {"v": 2})  # evicts "x" from the LRU
        assert "x" not in tiered.lru
        got, source = tiered.get("x")
        assert got == {"v": 1}
        assert source == "disk"
        # ... and the read promoted it back into memory.
        got, source = tiered.get("x")
        assert source == "lru"


def test_overlay_without_disk_is_just_the_lru():
    tiered = TieredResultCache(LRUTier(1), None)
    tiered.put("x", {"v": 1})
    tiered.put("y", {"v": 2})
    assert tiered.get("x") == (None, None)
    assert tiered.get("y") == ({"v": 2}, "lru")


# -- integrity (self-healing cache) ------------------------------------------


def test_lru_hit_verifies_digest_and_falls_back_to_disk():
    """A payload mutated in memory after insertion fails its SHA-256
    check on the next hit: the poisoned entry is discarded, the
    integrity counter bumps, and the read falls through to disk."""
    with tempfile.TemporaryDirectory() as tmp:
        tiered = TieredResultCache(LRUTier(4), ResultCache(tmp))
        tiered.put("x", {"v": 1, "rows": [1, 2]})
        stored_payload, _ = tiered.lru._data["x"]
        stored_payload["v"] = 999  # memory corruption stand-in
        got, source = tiered.get("x")
        assert got == {"v": 1, "rows": [1, 2]}  # healed from disk
        assert source == "disk"
        assert tiered.integrity_failures == 1
        assert tiered.stats()["integrity_failures"] == 1
        # The disk copy re-promoted a good entry; subsequent hits are clean.
        assert tiered.get("x") == ({"v": 1, "rows": [1, 2]}, "lru")
        assert tiered.integrity_failures == 1


def test_lru_integrity_failure_without_disk_is_a_miss():
    tiered = TieredResultCache(LRUTier(4), None)
    tiered.put("x", {"v": 1})
    payload, _ = tiered.lru._data["x"]
    payload["v"] = 2
    assert tiered.get("x") == (None, None)
    assert tiered.integrity_failures == 1
    assert "x" not in tiered.lru  # the poisoned entry was dropped


def test_tiered_put_returns_the_disk_path():
    with tempfile.TemporaryDirectory() as tmp:
        tiered = TieredResultCache(LRUTier(2), ResultCache(tmp))
        path = tiered.put("x", {"v": 1})
        assert path is not None and path.is_file()
    assert TieredResultCache(LRUTier(2), None).put("x", {"v": 1}) is None


def test_lru_tier_discard():
    tier = LRUTier(2)
    tier.put("a", {"v": 1})
    assert tier.discard("a") is True
    assert tier.discard("a") is False
    assert "a" not in tier
    assert tier.get("a") is None


def test_quarantined_disk_entry_surfaces_in_tier_stats():
    from repro.parallel.cache import payload_digest  # noqa: F401 - import guard

    with tempfile.TemporaryDirectory() as tmp:
        disk = ResultCache(tmp)
        tiered = TieredResultCache(LRUTier(1), disk)
        path = tiered.put("x", {"v": 1})
        tiered.put("y", {"v": 2})  # evict "x" from memory
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert tiered.get("x") == (None, None)  # truncated -> quarantined miss
        assert tiered.stats()["disk"]["quarantined"] == 1
