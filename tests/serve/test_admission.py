"""Admission control: bounded in-flight, quotas, and lane priority.

The daemon sheds *new compute starts* when its pools are full — cache
hits and in-flight joins always pass, so load shedding can never make a
previously-answerable question unanswerable.  The heavy pool (trace /
experiment) and the fast analytic pool are separate: a saturated trace
lane must not take the O(1) oracle down with it.
"""

import socket
import threading
import time

import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServerThread,
    build_chaos,
    decode_message,
    encode_message,
)
from repro.serve.daemon import RETRY_AFTER_S, ResilienceConfig

#: Every trace here is slowed to 300 ms so a second request reliably
#: arrives while the first still occupies its heavy slot.
SLOW_TRACE = "slow_lane:rate=1,delay_ms=300,lane=trace"


def trace_spec(seed):
    return {"kind": "trace", "working_set": 64 * 1024, "seed": seed}


def start_background_run(host, port, spec, results):
    def work():
        with ServeClient(host, port) as client:
            try:
                results.append(client.run(**spec))
            except ServeError as exc:  # pragma: no cover - surfaced by caller
                results.append(exc)

    thread = threading.Thread(target=work)
    thread.start()
    return thread


def test_full_heavy_pool_sheds_with_retry_after():
    config = ResilienceConfig(max_heavy=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        results = []
        thread = start_background_run(st.host, st.port, trace_spec(1), results)
        time.sleep(0.1)  # let the first trace occupy the only heavy slot
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.run(**trace_spec(2))
            assert excinfo.value.code == "busy"
            assert excinfo.value.response["retry_after"] == RETRY_AFTER_S["heavy"]
        thread.join()
        assert results[0]["ok"] is True  # the occupant was never disturbed
        with ServeClient(st.host, st.port) as client:
            assert client.stats()["stats"]["shed"] == 1
            # With the slot free again the shed request now succeeds.
            assert client.run(**trace_spec(2))["ok"] is True


def test_shed_client_can_retry_through_the_helper():
    config = ResilienceConfig(max_heavy=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        results = []
        thread = start_background_run(st.host, st.port, trace_spec(1), results)
        time.sleep(0.1)
        with ServeClient(st.host, st.port) as client:
            # _busy_retries sleeps the daemon's retry_after hint between
            # attempts; the slot frees within 300 ms so 8 paced retries
            # (>= 8 * 0.25 s) are ample.
            response = client.run(_busy_retries=8, **trace_spec(2))
            assert response["ok"] is True
        thread.join()
        assert results[0]["ok"] is True


def test_dedup_join_bypasses_admission():
    """An identical in-flight request joins the running computation even
    when the heavy pool is full — dedup is not a new compute start."""
    config = ResilienceConfig(max_heavy=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        results = []
        thread = start_background_run(st.host, st.port, trace_spec(1), results)
        time.sleep(0.1)
        with ServeClient(st.host, st.port) as client:
            joined = client.run(**trace_spec(1))  # same spec -> join, not shed
            assert joined["source"] == "inflight"
        thread.join()
        assert joined["payload"] == results[0]["payload"]
        with ServeClient(st.host, st.port) as client:
            stats = client.stats()["stats"]
            assert stats["deduped"] == 1
            assert stats["shed"] == 0


def test_analytic_lane_stays_available_under_heavy_saturation():
    config = ResilienceConfig(max_heavy=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        results = []
        thread = start_background_run(st.host, st.port, trace_spec(1), results)
        time.sleep(0.1)
        with ServeClient(st.host, st.port) as client:
            # The fast pool is untouched by the saturated heavy pool.
            response = client.run(
                kind="analytic", request={"kind": "chase", "working_set": 4 << 20}
            )
            assert response["ok"] is True
            assert client.stats()["resilience"]["active"]["heavy"] == 1
        thread.join()
        assert results[0]["ok"] is True


def test_per_client_quota_sheds_second_pipelined_heavy():
    """One connection pipelining two distinct traces with a quota of 1:
    the second gets a ``quota`` error, and responses stay in request
    order despite concurrent processing."""
    config = ResilienceConfig(max_heavy=4, client_heavy_quota=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        with socket.create_connection((st.host, st.port), timeout=30.0) as sock:
            frames = [
                encode_message({"op": "run", "id": i, **trace_spec(10 + i)})
                for i in range(2)
            ]
            sock.sendall(b"".join(frames))
            reader = sock.makefile("rb")
            first = decode_message(reader.readline())
            second = decode_message(reader.readline())
        assert [first["id"], second["id"]] == [0, 1]
        assert first["ok"] is True
        assert second["ok"] is False
        assert second["code"] == "quota"
        assert second["retry_after"] == RETRY_AFTER_S["heavy"]
        with ServeClient(st.host, st.port) as client:
            assert client.stats()["stats"]["quota_shed"] == 1


def test_quota_is_per_connection_not_global():
    config = ResilienceConfig(max_heavy=4, client_heavy_quota=1)
    with ServerThread(
        lru_capacity=8, chaos=build_chaos(SLOW_TRACE), resilience=config
    ) as st:
        results = []
        threads = [
            start_background_run(st.host, st.port, trace_spec(20 + i), results)
            for i in range(3)
        ]
        for thread in threads:
            thread.join()
        # Three connections, one heavy each: nobody hit the quota.
        assert all(r["ok"] is True for r in results)
        with ServeClient(st.host, st.port) as client:
            stats = client.stats()["stats"]
            assert stats["quota_shed"] == 0 and stats["shed"] == 0


def test_resilience_config_validation():
    with pytest.raises(ValueError):
        ResilienceConfig(max_heavy=0)
    with pytest.raises(ValueError):
        ResilienceConfig(client_window=0)
    with pytest.raises(ValueError):
        ResilienceConfig(breaker_threshold=0)
    with pytest.raises(ValueError):
        ResilienceConfig(drain_timeout_s=-1.0)
