"""Protocol unit tests: framing, normalization, strict validation.

Normalization *is* the dedup relation, so most of these tests are about
keys: specs that differ only in spelling must share one, specs that
differ in meaning must not, and anything unknown or ill-typed must be
rejected loudly (a typo that silently kept the same key would silently
dedup onto the wrong result).  The tail of the file checks the failure
modes over a live socket — a malformed line gets a structured error
response and the daemon keeps serving.
"""

import json
import socket

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServerThread,
    canonical,
    decode_message,
    encode_message,
    normalize_request,
)
from repro.serve.protocol import ProtocolError


def key_of(**spec):
    return normalize_request(spec).key()


# -- framing -----------------------------------------------------------------


def test_encode_decode_round_trip():
    message = {"op": "run", "id": 7, "kind": "trace", "working_set": 4096}
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_message(line) == message


def test_encode_collapses_numpy_scalars():
    line = encode_message({"v": np.int64(3), "f": np.float64(1.5)})
    assert decode_message(line) == {"v": 3, "f": 1.5}


def test_decode_rejects_junk_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_message(b"{not json\n")
    with pytest.raises(ProtocolError):
        decode_message(b"[1,2,3]\n")


def test_canonical_is_the_wire_form():
    assert canonical({"t": (1, 2), "x": np.int64(5)}) == {"t": [1, 2], "x": 5}
    payload = {"nested": {"tuple": ((1,), 2.0)}}
    assert canonical(payload) == json.loads(json.dumps({"nested": {"tuple": [[1], 2.0]}}))


# -- normalization: spelling never matters, meaning always does --------------


def test_defaults_fill_to_the_same_key():
    sparse = key_of(kind="trace", working_set=1 << 20)
    explicit = key_of(
        kind="trace", working_set=1 << 20, page_size=64 * 1024,
        passes=3, shards=1, seed=0, machine="e870",
    )
    assert sparse == explicit


def test_request_id_and_op_do_not_enter_the_key():
    a = normalize_request({"op": "run", "id": 1, "kind": "trace", "working_set": 4096})
    b = normalize_request({"op": "run", "id": 999, "kind": "trace", "working_set": 4096})
    assert a == b
    assert a.key() == b.key()


def test_meaningful_fields_all_change_the_key():
    base = dict(kind="trace", working_set=1 << 20)
    reference = key_of(**base)
    for delta in (
        {"working_set": 2 << 20},
        {"seed": 1},
        {"shards": 2},
        {"passes": 4},
        {"page_size": 4096},
        {"inject": "dram_bit:rate=0.001"},
        {"machine": "power8_192way"},
    ):
        assert key_of(**{**base, **delta}) != reference, delta


def test_analytic_request_normalizes_through_oracle_schema():
    sparse = key_of(kind="analytic", request={"kind": "chase"})
    # OracleRequest fills its own defaults; spelling them out is a no-op.
    explicit = key_of(
        kind="analytic", request={"kind": "chase", "working_set": 4 << 20}
    )
    assert sparse == explicit


def test_kinds_are_namespaced_apart():
    # A trace and an experiment can never collide: the workload carries
    # a serve-kind marker into the key material.
    trace = normalize_request({"kind": "trace", "working_set": 4096})
    assert json.loads(trace.workload_json)["serve"] == "trace"


# -- strict rejection ---------------------------------------------------------


@pytest.mark.parametrize(
    "spec,fragment",
    [
        ({"kind": "nope"}, "unknown run kind"),
        ({}, "unknown run kind"),
        ({"kind": "trace", "working_set": 4096, "machine": "cray"}, "unknown machine"),
        ({"kind": "trace", "working_set": 4096, "wrkng_set": 1}, "unknown field"),
        ({"kind": "analytic", "request": {"kind": "chase"}, "working_set": 1}, "unknown field"),
        ({"kind": "analytic"}, "'request' object"),
        ({"kind": "analytic", "request": {"kind": "warp_drive"}}, "bad oracle request"),
        ({"kind": "experiment", "experiment": "table99"}, "unknown experiment"),
        ({"kind": "experiment", "experiment": "table1", "seed": 3}, "seedless"),
        ({"kind": "trace"}, "working_set"),
        ({"kind": "trace", "working_set": -4}, "positive"),
        ({"kind": "trace", "working_set": True}, "integer"),
        ({"kind": "trace", "working_set": 4096, "passes": 1}, "passes"),
        ({"kind": "trace", "working_set": 4096, "seed": -1}, "seed"),
        ({"kind": "trace", "working_set": 4096, "inject": 7}, "fault-plan"),
    ],
)
def test_normalize_rejects(spec, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        normalize_request(spec)


# -- failure modes over a live socket ----------------------------------------


@pytest.fixture(scope="module")
def live_server():
    with ServerThread(lru_capacity=8) as st:
        yield st


def test_bad_spec_gets_error_response_and_daemon_survives(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        with pytest.raises(ServeError) as excinfo:
            client.run(kind="trace")  # missing working_set
        assert "working_set" in str(excinfo.value)
        assert excinfo.value.response["ok"] is False
        # Same connection still serves real work afterwards.
        response = client.run(kind="analytic", request={"kind": "chase"})
        assert response["ok"] is True


def test_malformed_line_gets_error_response_and_daemon_survives(live_server):
    raw = socket.create_connection(
        (live_server.host, live_server.port), timeout=30
    )
    try:
        reader = raw.makefile("rb")
        raw.sendall(b"this is not json\n")
        response = decode_message(reader.readline())
        assert response["ok"] is False
        assert "undecodable" in response["error"]
        # The connection is intact: a good request on the same socket works.
        raw.sendall(encode_message({"op": "ping", "id": 1}))
        assert decode_message(reader.readline()) == {"id": 1, "ok": True, "op": "ping"}
    finally:
        raw.close()


def test_unknown_op_is_an_error_response(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        response = client.request({"op": "dance"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]


def test_ping_and_stats_ops(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        assert client.ping() is True
        stats = client.stats()
        assert stats["ok"] is True
        for field in ("requests", "lru_hits", "computed", "deduped"):
            assert field in stats["stats"]
        assert "lru" in stats["tiers"]
        assert stats["uptime_s"] >= 0


# -- line-length cap and LineReader (satellite c) ----------------------------


def test_oversized_line_gets_error_and_connection_survives(live_server):
    """A line beyond MAX_LINE_BYTES is answered with a structured
    ``oversized`` error, discarded, and the same socket keeps working."""
    from repro.serve import MAX_LINE_BYTES

    raw = socket.create_connection((live_server.host, live_server.port), timeout=30)
    try:
        reader = raw.makefile("rb")
        padding = "x" * (MAX_LINE_BYTES + 1024)
        raw.sendall(json.dumps({"op": "run", "pad": padding}).encode() + b"\n")
        response = decode_message(reader.readline())
        assert response["ok"] is False
        assert response["code"] == "oversized"
        assert str(MAX_LINE_BYTES) in response["error"]
        # Resync worked: the next well-formed frame round-trips.
        raw.sendall(encode_message({"op": "ping", "id": 2}))
        assert decode_message(reader.readline()) == {"id": 2, "ok": True, "op": "ping"}
    finally:
        raw.close()


def test_oversized_then_pipelined_good_line_in_one_write(live_server):
    from repro.serve import MAX_LINE_BYTES

    raw = socket.create_connection((live_server.host, live_server.port), timeout=30)
    try:
        reader = raw.makefile("rb")
        blob = b"y" * (2 * MAX_LINE_BYTES) + b"\n" + encode_message({"op": "ping", "id": 3})
        raw.sendall(blob)
        first = decode_message(reader.readline())
        assert first["ok"] is False and first["code"] == "oversized"
        assert decode_message(reader.readline()) == {"id": 3, "ok": True, "op": "ping"}
    finally:
        raw.close()


def test_line_reader_units():
    import asyncio

    from repro.serve import LineReader, OversizedLineError

    async def scenario():
        reader = asyncio.StreamReader()
        lines = LineReader(reader, limit=16)
        reader.feed_data(b"short\n" + b"z" * 40 + b"\nafter\n")
        reader.feed_eof()
        got = []
        while True:
            try:
                line = await lines.readline()
            except OversizedLineError as exc:
                got.append(("oversized", exc))
                continue
            if line is None:
                break
            got.append(("line", line))
        return got

    got = asyncio.run(scenario())
    assert [tag for tag, _ in got] == ["line", "oversized", "line"]
    assert got[0][1] == b"short" and got[2][1] == b"after"


def test_line_reader_handles_split_frames():
    import asyncio

    from repro.serve import LineReader

    async def scenario():
        reader = asyncio.StreamReader()
        lines = LineReader(reader)
        reader.feed_data(b'{"op": "pi')
        reader.feed_data(b'ng"}\n')
        reader.feed_eof()
        first = await lines.readline()
        second = await lines.readline()
        return first, second

    first, second = asyncio.run(scenario())
    assert first == b'{"op": "ping"}'
    assert second is None


# -- deadline field ----------------------------------------------------------


def test_request_deadline_parses_and_validates():
    from repro.serve import request_deadline

    assert request_deadline({"kind": "trace"}) is None
    assert request_deadline({"deadline_ms": 250}) == 0.25
    with pytest.raises(ProtocolError):
        request_deadline({"deadline_ms": 0})
    with pytest.raises(ProtocolError):
        request_deadline({"deadline_ms": -5})
    with pytest.raises(ProtocolError):
        request_deadline({"deadline_ms": "soon"})
    with pytest.raises(ProtocolError):
        request_deadline({"deadline_ms": True})


def test_deadline_ms_is_transport_only_never_in_the_key():
    base = dict(kind="analytic", request={"kind": "chase", "working_set": 1 << 20})
    assert key_of(**base) == key_of(deadline_ms=50, **base)


def test_bad_deadline_gets_protocol_error_over_the_wire(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        with pytest.raises(ServeError) as excinfo:
            client.run(kind="analytic", request={"kind": "chase"}, deadline_ms=-1)
        assert excinfo.value.code == "protocol"


# -- structured error rows ---------------------------------------------------


def test_error_response_shape():
    from repro.serve import ERROR_CODES, error_response

    row = error_response(5, "too busy", code="busy", retry_after=0.25)
    assert row == {
        "id": 5,
        "ok": False,
        "error": "too busy",
        "code": "busy",
        "retry_after": 0.25,
    }
    assert "busy" in ERROR_CODES and "oversized" in ERROR_CODES
    with pytest.raises(ValueError):
        error_response(5, "nope", code="not-a-code")
