"""Protocol unit tests: framing, normalization, strict validation.

Normalization *is* the dedup relation, so most of these tests are about
keys: specs that differ only in spelling must share one, specs that
differ in meaning must not, and anything unknown or ill-typed must be
rejected loudly (a typo that silently kept the same key would silently
dedup onto the wrong result).  The tail of the file checks the failure
modes over a live socket — a malformed line gets a structured error
response and the daemon keeps serving.
"""

import json
import socket

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServerThread,
    canonical,
    decode_message,
    encode_message,
    normalize_request,
)
from repro.serve.protocol import ProtocolError


def key_of(**spec):
    return normalize_request(spec).key()


# -- framing -----------------------------------------------------------------


def test_encode_decode_round_trip():
    message = {"op": "run", "id": 7, "kind": "trace", "working_set": 4096}
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_message(line) == message


def test_encode_collapses_numpy_scalars():
    line = encode_message({"v": np.int64(3), "f": np.float64(1.5)})
    assert decode_message(line) == {"v": 3, "f": 1.5}


def test_decode_rejects_junk_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_message(b"{not json\n")
    with pytest.raises(ProtocolError):
        decode_message(b"[1,2,3]\n")


def test_canonical_is_the_wire_form():
    assert canonical({"t": (1, 2), "x": np.int64(5)}) == {"t": [1, 2], "x": 5}
    payload = {"nested": {"tuple": ((1,), 2.0)}}
    assert canonical(payload) == json.loads(json.dumps({"nested": {"tuple": [[1], 2.0]}}))


# -- normalization: spelling never matters, meaning always does --------------


def test_defaults_fill_to_the_same_key():
    sparse = key_of(kind="trace", working_set=1 << 20)
    explicit = key_of(
        kind="trace", working_set=1 << 20, page_size=64 * 1024,
        passes=3, shards=1, seed=0, machine="e870",
    )
    assert sparse == explicit


def test_request_id_and_op_do_not_enter_the_key():
    a = normalize_request({"op": "run", "id": 1, "kind": "trace", "working_set": 4096})
    b = normalize_request({"op": "run", "id": 999, "kind": "trace", "working_set": 4096})
    assert a == b
    assert a.key() == b.key()


def test_meaningful_fields_all_change_the_key():
    base = dict(kind="trace", working_set=1 << 20)
    reference = key_of(**base)
    for delta in (
        {"working_set": 2 << 20},
        {"seed": 1},
        {"shards": 2},
        {"passes": 4},
        {"page_size": 4096},
        {"inject": "dram_bit:rate=0.001"},
        {"machine": "power8_192way"},
    ):
        assert key_of(**{**base, **delta}) != reference, delta


def test_analytic_request_normalizes_through_oracle_schema():
    sparse = key_of(kind="analytic", request={"kind": "chase"})
    # OracleRequest fills its own defaults; spelling them out is a no-op.
    explicit = key_of(
        kind="analytic", request={"kind": "chase", "working_set": 4 << 20}
    )
    assert sparse == explicit


def test_kinds_are_namespaced_apart():
    # A trace and an experiment can never collide: the workload carries
    # a serve-kind marker into the key material.
    trace = normalize_request({"kind": "trace", "working_set": 4096})
    assert json.loads(trace.workload_json)["serve"] == "trace"


# -- strict rejection ---------------------------------------------------------


@pytest.mark.parametrize(
    "spec,fragment",
    [
        ({"kind": "nope"}, "unknown run kind"),
        ({}, "unknown run kind"),
        ({"kind": "trace", "working_set": 4096, "machine": "cray"}, "unknown machine"),
        ({"kind": "trace", "working_set": 4096, "wrkng_set": 1}, "unknown field"),
        ({"kind": "analytic", "request": {"kind": "chase"}, "working_set": 1}, "unknown field"),
        ({"kind": "analytic"}, "'request' object"),
        ({"kind": "analytic", "request": {"kind": "warp_drive"}}, "bad oracle request"),
        ({"kind": "experiment", "experiment": "table99"}, "unknown experiment"),
        ({"kind": "experiment", "experiment": "table1", "seed": 3}, "seedless"),
        ({"kind": "trace"}, "working_set"),
        ({"kind": "trace", "working_set": -4}, "positive"),
        ({"kind": "trace", "working_set": True}, "integer"),
        ({"kind": "trace", "working_set": 4096, "passes": 1}, "passes"),
        ({"kind": "trace", "working_set": 4096, "seed": -1}, "seed"),
        ({"kind": "trace", "working_set": 4096, "inject": 7}, "fault-plan"),
    ],
)
def test_normalize_rejects(spec, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        normalize_request(spec)


# -- failure modes over a live socket ----------------------------------------


@pytest.fixture(scope="module")
def live_server():
    with ServerThread(lru_capacity=8) as st:
        yield st


def test_bad_spec_gets_error_response_and_daemon_survives(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        with pytest.raises(ServeError) as excinfo:
            client.run(kind="trace")  # missing working_set
        assert "working_set" in str(excinfo.value)
        assert excinfo.value.response["ok"] is False
        # Same connection still serves real work afterwards.
        response = client.run(kind="analytic", request={"kind": "chase"})
        assert response["ok"] is True


def test_malformed_line_gets_error_response_and_daemon_survives(live_server):
    raw = socket.create_connection(
        (live_server.host, live_server.port), timeout=30
    )
    try:
        reader = raw.makefile("rb")
        raw.sendall(b"this is not json\n")
        response = decode_message(reader.readline())
        assert response["ok"] is False
        assert "undecodable" in response["error"]
        # The connection is intact: a good request on the same socket works.
        raw.sendall(encode_message({"op": "ping", "id": 1}))
        assert decode_message(reader.readline()) == {"id": 1, "ok": True, "op": "ping"}
    finally:
        raw.close()


def test_unknown_op_is_an_error_response(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        response = client.request({"op": "dance"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]


def test_ping_and_stats_ops(live_server):
    with ServeClient(live_server.host, live_server.port) as client:
        assert client.ping() is True
        stats = client.stats()
        assert stats["ok"] is True
        for field in ("requests", "lru_hits", "computed", "deduped"):
            assert field in stats["stats"]
        assert "lru" in stats["tiers"]
        assert stats["uptime_s"] >= 0
