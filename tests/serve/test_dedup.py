"""In-flight dedup: identical concurrent requests compute exactly once.

These tests drive :meth:`ReproServer.handle_request` directly (no
socket) with ``server._compute`` replaced by a spy that counts
executions and blocks on an event, so the tests control exactly when
the "simulation" finishes.  The contracts:

* N identical concurrent requests → one ``_compute`` execution, N
  identical payloads, ``stats.deduped == N - 1``;
* requests differing only in seed do **not** dedup — one execution
  each;
* cancelling one waiter (client gone mid-request) must not cancel the
  shared computation the other waiters are shielded behind;
* a computation that raises fails *all* current waiters with an error
  response, then clears the in-flight slot so the next request retries
  fresh.
"""

import asyncio
import threading
import time

import pytest

from repro.serve import ReproServer


def spec(seed=0, request_id=None):
    return {
        "op": "run",
        "id": request_id,
        "kind": "trace",
        "working_set": 4096,
        "seed": seed,
    }


class ComputeSpy:
    """Stands in for ``ReproServer._compute``; blocks until released."""

    def __init__(self, fail_first=False):
        self.calls = []
        self.release = threading.Event()
        self.fail_first = fail_first
        self._lock = threading.Lock()

    def __call__(self, normalized):
        with self._lock:
            self.calls.append(normalized.key())
            ordinal = len(self.calls)
        assert self.release.wait(timeout=30), "spy never released"
        if self.fail_first and ordinal == 1:
            raise RuntimeError("synthetic lane failure")
        return {"execution": ordinal, "seed": normalized.seed}, True


async def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for daemon state")
        await asyncio.sleep(0.005)


def test_identical_concurrent_requests_execute_once():
    async def scenario():
        server = ReproServer()
        spy = ComputeSpy()
        server._compute = spy
        n = 8

        waiters = [
            asyncio.create_task(server.handle_request(spec(request_id=i)))
            for i in range(n)
        ]
        # All but the first join the in-flight task instead of spawning.
        await wait_until(lambda: server.stats.deduped == n - 1)
        assert len(spy.calls) == 1
        assert len(server._inflight) == 1
        spy.release.set()
        responses = await asyncio.gather(*waiters)

        assert [r["ok"] for r in responses] == [True] * n
        assert {r["payload"]["execution"] for r in responses} == {1}
        assert {r["key"] for r in responses} == {spy.calls[0]}
        assert server.stats.computed == 1
        assert server.stats.deduped == n - 1
        # The in-flight slot is cleared once the task resolves.
        await wait_until(lambda: not server._inflight)

    asyncio.run(scenario())


def test_distinct_seeds_fan_out():
    async def scenario():
        server = ReproServer()
        spy = ComputeSpy()
        server._compute = spy
        spy.release.set()  # no gating needed — just count executions

        responses = await asyncio.gather(
            *(server.handle_request(spec(seed=s)) for s in range(5))
        )
        assert len(spy.calls) == len(set(spy.calls)) == 5
        assert server.stats.deduped == 0
        assert server.stats.computed == 5
        assert {r["payload"]["seed"] for r in responses} == set(range(5))

    asyncio.run(scenario())


def test_cancelled_waiter_does_not_poison_the_shared_future():
    async def scenario():
        server = ReproServer()
        spy = ComputeSpy()
        server._compute = spy

        first = asyncio.create_task(server.handle_request(spec(request_id=1)))
        await wait_until(lambda: len(spy.calls) == 1)
        second = asyncio.create_task(server.handle_request(spec(request_id=2)))
        await wait_until(lambda: server.stats.deduped == 1)

        # The first client hangs up; its waiter is cancelled.
        first.cancel()
        with pytest.raises(asyncio.CancelledError):
            await first

        # The shared computation must still be alive for the survivor.
        spy.release.set()
        response = await second
        assert response["ok"] is True
        assert response["payload"]["execution"] == 1
        assert len(spy.calls) == 1  # never re-executed

        # And the result was cached on the way out.
        third = await server.handle_request(spec(request_id=3))
        assert third["source"] == "lru"
        assert third["payload"] == response["payload"]

    asyncio.run(scenario())


def test_compute_failure_fails_all_waiters_then_clears_the_slot():
    async def scenario():
        server = ReproServer()
        spy = ComputeSpy(fail_first=True)
        server._compute = spy

        waiters = [
            asyncio.create_task(server.handle_request(spec(request_id=i)))
            for i in range(3)
        ]
        await wait_until(lambda: server.stats.deduped == 2)
        spy.release.set()
        responses = await asyncio.gather(*waiters)

        # One failed execution poisons every waiter of THAT attempt...
        assert [r["ok"] for r in responses] == [False] * 3
        assert all("synthetic lane failure" in r["error"] for r in responses)
        assert len(spy.calls) == 1
        assert server.stats.errors == 3

        # ...but not the key: the next request computes fresh.
        await wait_until(lambda: not server._inflight)
        retry = await server.handle_request(spec(request_id=99))
        assert retry["ok"] is True
        assert retry["source"] == "computed"
        assert len(spy.calls) == 2

    asyncio.run(scenario())
