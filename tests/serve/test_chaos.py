"""Chaos suite: deterministic service faults and the daemon's invariant.

The invariant under every injected fault class — crashing or wedged
compute lanes, corrupted disk entries, dropped connections — is that
the daemon serves either a structured error row or a payload
bit-identical to the direct in-process run, never a corrupt result, and
that the daemon itself keeps serving afterwards.

The injector half mirrors the :mod:`repro.ras` tests: plans parse the
compact grammar, draws are pure functions of (seed, site, counter), and
raising a rate strictly grows the fired set.
"""

import time

import pytest

from repro.serve import ServeClient, ServeError, ServerThread
from repro.serve.chaos import (
    ChaosClause,
    ChaosError,
    ChaosInjector,
    ChaosPlan,
    build_chaos,
)
from repro.serve.daemon import ResilienceConfig

TRACE_SPEC = {"kind": "trace", "working_set": 64 * 1024, "seed": 5}


def direct_trace_payload(spec):
    from repro.arch import e870
    from repro.parallel.runner import sharded_traced_latency
    from repro.serve.protocol import trace_payload

    _, result = sharded_traced_latency(
        e870(), spec["working_set"], shards=spec.get("shards", 1), seed=spec["seed"]
    )
    return trace_payload(result)


# -- plan parsing ------------------------------------------------------------


def test_plan_parse_round_trip():
    plan = ChaosPlan.parse(
        "slow_lane:rate=0.1,delay_ms=5;corrupt_disk:at=2,mode=bitflip;"
        "hang_lane:at=1,hang_s=0.5,lane=trace"
    )
    assert len(plan.clauses) == 3
    slow, corrupt, hang = plan.clauses
    assert slow.kind == "slow_lane" and slow.rate == 0.1 and slow.delay_ms == 5
    assert corrupt.at == 2 and corrupt.mode == "bitflip"
    assert hang.lane == "trace" and hang.hang_s == 0.5
    assert "slow_lane:rate=0.1" in plan.describe()
    assert ChaosPlan.parse("").describe() == "(no chaos)"


@pytest.mark.parametrize(
    "spec,fragment",
    [
        ("explode:rate=1", "unknown chaos kind"),
        ("slow_lane:rate=2", "rate must be in"),
        ("slow_lane:at=0", "1-based"),
        ("slow_lane:delay_ms=-1", "delays must be"),
        ("corrupt_disk:mode=melt", "unknown corrupt mode"),
        ("corrupt_disk:lane=trace", "lane= only applies"),
        ("slow_lane:lane=warp", "unknown lane"),
        ("slow_lane:rate", "key=value"),
        ("slow_lane:speed=9", "unknown key"),
    ],
)
def test_plan_rejects(spec, fragment):
    with pytest.raises(ValueError, match=fragment):
        ChaosPlan.parse(spec)


def test_build_chaos_passthrough():
    assert build_chaos(None) is None
    injector = build_chaos("lane_error:at=1", seed=3)
    assert injector.seed == 3


# -- deterministic draws -----------------------------------------------------


def test_at_trigger_fires_exactly_once():
    clause = ChaosClause(kind="lane_error", at=3)
    fired = [n for n in range(1, 20) if clause.fires(0, 100, n)]
    assert fired == [3]


def test_draws_are_reproducible_and_monotone_in_rate():
    lo = ChaosClause(kind="lane_error", rate=0.1)
    hi = ChaosClause(kind="lane_error", rate=0.4)
    lo_fired = {n for n in range(1, 400) if lo.fires(7, 100, n)}
    assert lo_fired == {n for n in range(1, 400) if lo.fires(7, 100, n)}
    hi_fired = {n for n in range(1, 400) if hi.fires(7, 100, n)}
    assert lo_fired <= hi_fired  # same draws, bigger threshold
    assert len(lo_fired) < len(hi_fired)


def test_injector_replay_is_identical():
    plan = ChaosPlan.parse("lane_error:rate=0.3;slow_lane:rate=0.2,delay_ms=0")
    def run():
        injector = ChaosInjector(plan, seed=11)
        outcomes = []
        for _ in range(100):
            try:
                injector.on_lane("trace")
                outcomes.append("ok")
            except ChaosError:
                outcomes.append("err")
        return outcomes, injector.counts()
    assert run() == run()


def test_lane_filter_scopes_the_clause():
    injector = ChaosInjector(ChaosPlan.parse("lane_error:at=1,lane=trace"), seed=0)
    injector.on_lane("analytic")  # clause filtered out: no opportunity consumed
    with pytest.raises(ChaosError):
        injector.on_lane("trace")
    assert injector.counts() == {"lane_error": 1}


def test_corrupt_disk_damages_the_file(tmp_path):
    injector = ChaosInjector(ChaosPlan.parse("corrupt_disk:at=1,mode=truncate"), seed=0)
    path = tmp_path / "entry.json"
    original = b'{"payload": {"v": 1}, "sha256": "abc"}'
    path.write_bytes(original)
    assert injector.on_disk_put(path) is True
    assert path.read_bytes() != original
    # Second opportunity: at=1 already fired, file untouched.
    path.write_bytes(original)
    assert injector.on_disk_put(path) is False
    assert path.read_bytes() == original


# -- daemon under chaos ------------------------------------------------------


def test_lane_error_is_a_structured_row_then_recovers():
    """An injected worker crash serves an error row (code=lane), is not
    cached, and the identical retry serves the bit-identical payload."""
    chaos = build_chaos("lane_error:at=1", seed=0)
    with ServerThread(lru_capacity=8, chaos=chaos) as st:
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.run(**TRACE_SPEC)
            assert excinfo.value.code == "lane"
            assert "ChaosError" in str(excinfo.value)
            healed = client.run(**TRACE_SPEC)
            assert healed["source"] == "computed"  # error row was never cached
            assert healed["payload"] == direct_trace_payload(TRACE_SPEC)


def test_corrupt_disk_entry_is_quarantined_and_recomputed(tmp_path):
    """Tentpole part 4 end-to-end: the entry written for the first run
    is corrupted on disk; once evicted from the LRU, the next fetch must
    quarantine the bad file and recompute the identical payload."""
    chaos = build_chaos("corrupt_disk:at=1,mode=bitflip", seed=0)
    with ServerThread(lru_capacity=2, cache_dir=str(tmp_path), chaos=chaos) as st:
        with ServeClient(st.host, st.port) as client:
            first = client.run(**TRACE_SPEC)
            assert first["source"] == "computed"
            # Push the target out of the 2-entry LRU.
            for ws in (2 << 20, 3 << 20):
                client.run(kind="analytic", request={"kind": "chase", "working_set": ws})
            healed = client.run(**TRACE_SPEC)
            assert healed["source"] == "computed"  # disk hit was refused
            assert healed["payload"] == first["payload"]
            tiers = client.stats()["tiers"]
            assert tiers["disk"]["quarantined"] == 1
    assert len(list(tmp_path.glob("*.quarantined"))) == 1


def test_drop_conn_kills_one_connection_not_the_daemon():
    """Chaos aborts the first response mid-write; that client sees a
    dead socket, every other (and later) connection is unaffected."""
    chaos = build_chaos("drop_conn:at=1", seed=0)
    with ServerThread(lru_capacity=8, chaos=chaos) as st:
        with pytest.raises((ConnectionError, OSError)):
            with ServeClient(st.host, st.port) as victim:
                victim.run(kind="analytic", request={"kind": "chase"})
        with ServeClient(st.host, st.port) as survivor:
            response = survivor.run(kind="analytic", request={"kind": "chase"})
            assert response["ok"] is True
            assert survivor.stats()["stats"]["disconnects"] == 1


def test_slow_lane_delays_but_serves_identical_payload():
    chaos = build_chaos("slow_lane:at=1,delay_ms=150", seed=0)
    with ServerThread(lru_capacity=8, chaos=chaos) as st:
        with ServeClient(st.host, st.port) as client:
            start = time.perf_counter()
            response = client.run(**TRACE_SPEC)
            assert time.perf_counter() - start >= 0.15
            assert response["payload"] == direct_trace_payload(TRACE_SPEC)


def test_breaker_trips_serves_degraded_then_half_opens():
    """Consecutive trace-lane failures trip the breaker: trace requests
    degrade to the marked analytic stand-in (never cached); after the
    cooldown one probe goes through and closes the breaker again."""
    chaos = build_chaos("lane_error:at=1;lane_error:at=2,lane=trace", seed=0)
    config = ResilienceConfig(breaker_threshold=2, breaker_cooldown_s=0.3)
    with ServerThread(lru_capacity=8, chaos=chaos, resilience=config) as st:
        with ServeClient(st.host, st.port) as client:
            for seed in (101, 102):  # two distinct computes, two failures
                with pytest.raises(ServeError) as excinfo:
                    client.run(kind="trace", working_set=64 * 1024, seed=seed)
                assert excinfo.value.code == "lane"
            stats = client.stats()
            assert stats["resilience"]["breakers"]["trace"]["state"] == "open"
            assert stats["resilience"]["breakers"]["trace"]["trips"] == 1

            degraded = client.run(kind="trace", working_set=64 * 1024, seed=103)
            assert degraded["degraded"] is True
            assert degraded["source"] == "degraded"
            assert "latency" in str(degraded["payload"]).lower() or degraded["payload"]

            time.sleep(0.35)  # past the cooldown: next start is the probe
            probe = client.run(kind="trace", working_set=64 * 1024, seed=103)
            assert probe["source"] == "computed"
            assert probe["payload"] == direct_trace_payload(
                {"kind": "trace", "working_set": 64 * 1024, "seed": 103}
            )
            stats = client.stats()
            assert stats["resilience"]["breakers"]["trace"]["state"] == "closed"
            assert stats["stats"]["degraded"] == 1


def test_degraded_results_are_never_cached():
    chaos = build_chaos("lane_error:rate=1,lane=trace", seed=0)
    config = ResilienceConfig(breaker_threshold=1, breaker_cooldown_s=60.0)
    with ServerThread(lru_capacity=8, chaos=chaos, resilience=config) as st:
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeError):
                client.run(kind="trace", working_set=64 * 1024, seed=1)
            first = client.run(kind="trace", working_set=64 * 1024, seed=2)
            second = client.run(kind="trace", working_set=64 * 1024, seed=2)
            assert first["degraded"] and second["degraded"]
            # A cached degraded answer would have come back as an LRU hit.
            assert second["source"] == "degraded"
            assert client.stats()["stats"]["lru_hits"] == 0


def test_chaos_counts_surface_in_stats():
    chaos = build_chaos("lane_error:at=1", seed=0)
    with ServerThread(lru_capacity=8, chaos=chaos) as st:
        with ServeClient(st.host, st.port) as client:
            with pytest.raises(ServeError):
                client.run(**TRACE_SPEC)
            assert client.stats()["chaos"] == {"lane_error": 1}
