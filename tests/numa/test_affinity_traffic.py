"""Unit tests for affinity maps and the NUMA traffic model."""

import pytest

from repro.numa.affinity import AffinityMap, HardwareThread
from repro.numa.policy import Allocation, InterleavePolicy, LocalPolicy
from repro.numa.traffic import NumaModel, traffic_matrix

GB = 1e9
MB = 1 << 20


class TestAffinityMap:
    def test_compact_fills_cores_in_order(self, e870_system):
        aff = AffinityMap.compact(e870_system, 16, smt=8)
        assert aff.chip_of(0) == 0
        assert aff.chip_of(15) == 0  # 16 threads = 2 cores on chip 0
        assert aff.max_smt_level() == 8
        assert aff.cores_used() == 2

    def test_compact_spills_to_next_chip(self, e870_system):
        aff = AffinityMap.compact(e870_system, 72, smt=8)
        assert aff.chip_of(63) == 0
        assert aff.chip_of(64) == 1

    def test_scatter_round_robins_chips(self, e870_system):
        aff = AffinityMap.scatter(e870_system, 16)
        assert [aff.chip_of(t) for t in range(8)] == list(range(8))
        assert aff.max_smt_level() == 1

    def test_threads_on_chip(self, e870_system):
        aff = AffinityMap.scatter(e870_system, 16)
        assert aff.threads_on_chip(0) == [0, 8]

    def test_capacity_checks(self, e870_system):
        with pytest.raises(ValueError, match="capacity"):
            AffinityMap.compact(e870_system, 513, smt=8)
        with pytest.raises(ValueError, match="one thread per core"):
            AffinityMap.scatter(e870_system, 65)

    def test_double_booking_rejected(self, e870_system):
        hw = HardwareThread(0, 0, 0)
        with pytest.raises(ValueError, match="double-booked"):
            AffinityMap(e870_system, {0: hw, 1: hw})

    def test_validation(self, e870_system):
        with pytest.raises(ValueError, match="chip"):
            AffinityMap(e870_system, {0: HardwareThread(9, 0, 0)})
        with pytest.raises(ValueError, match="slot"):
            AffinityMap(e870_system, {0: HardwareThread(0, 0, 8)})


class TestTrafficMatrix:
    def test_local_placement_is_fully_local(self, e870_system):
        aff = AffinityMap.compact(e870_system, 64, smt=8)  # all on chip 0
        alloc = Allocation("x", 0, 64 * MB, LocalPolicy(0))
        m = traffic_matrix(e870_system, aff, [(alloc, 1.0)])
        assert m.local_fraction() == pytest.approx(1.0)

    def test_interleaved_placement_mostly_remote(self, e870_system):
        aff = AffinityMap.compact(e870_system, 64, smt=8)
        alloc = Allocation("x", 0, 64 * MB, InterleavePolicy(range(8)))
        m = traffic_matrix(e870_system, aff, [(alloc, 1.0)])
        assert m.local_fraction() == pytest.approx(1 / 8, abs=0.01)

    def test_shares_sum_to_one(self, e870_system):
        aff = AffinityMap.compact(e870_system, 512, smt=8)
        alloc = Allocation("x", 0, 64 * MB, InterleavePolicy(range(8)))
        m = traffic_matrix(e870_system, aff, [(alloc, 1.0)])
        assert sum(m.shares.values()) == pytest.approx(1.0)

    def test_weighted_allocations(self, e870_system):
        aff = AffinityMap.compact(e870_system, 64, smt=8)
        local = Allocation("l", 0, MB, LocalPolicy(0))
        remote = Allocation("r", 0, MB, LocalPolicy(4))
        m = traffic_matrix(e870_system, aff, [(local, 3.0), (remote, 1.0)])
        assert m.local_fraction() == pytest.approx(0.75)

    def test_validation(self, e870_system):
        aff = AffinityMap.compact(e870_system, 8)
        with pytest.raises(ValueError, match="allocation"):
            traffic_matrix(e870_system, aff, [])


class TestNumaModel:
    @pytest.fixture(scope="class")
    def model(self, e870_system):
        return NumaModel(e870_system)

    def test_local_beats_remote(self, model, e870_system):
        aff = AffinityMap.compact(e870_system, 64, smt=8)  # chip 0 only
        local = model.estimate(aff, [(Allocation("l", 0, MB, LocalPolicy(0)), 1.0)])
        remote = model.estimate(aff, [(Allocation("r", 0, MB, LocalPolicy(4)), 1.0)])
        assert local.bandwidth > 2.5 * remote.bandwidth
        assert local.mean_latency_ns < remote.mean_latency_ns

    def test_interleaved_matches_table4(self, model, e870_system):
        """One chip reading interleaved memory lands near 69 GB/s."""
        aff = AffinityMap.compact(e870_system, 64, smt=8)
        est = model.estimate(
            aff, [(Allocation("x", 0, 8 * MB, InterleavePolicy(range(8))), 1.0)]
        )
        assert 50 < est.bandwidth / GB < 90

    def test_all_chips_interleaved_near_all_to_all(self, model, e870_system):
        aff = AffinityMap.compact(e870_system, 512, smt=8)
        est = model.estimate(
            aff, [(Allocation("x", 0, 8 * MB, InterleavePolicy(range(8))), 1.0)]
        )
        assert 300 < est.bandwidth / GB < 460  # paper's 380 GB/s row

    def test_all_local_scales_with_chips(self, model, e870_system):
        """SpMV-style placement: every chip's threads read locally."""
        aff = AffinityMap.compact(e870_system, 512, smt=8)
        allocs = [
            (Allocation(f"part{c}", c * MB, MB, LocalPolicy(c)), 1.0)
            for c in range(8)
        ]
        est = model.estimate(aff, allocs)
        assert est.local_fraction == pytest.approx(1 / 8, abs=0.01)
        # NOTE: every thread reads every partition here, so 7/8 of the
        # traffic is remote; this is the "distributed vector" case.
        one_chip_local = model.estimate(
            AffinityMap.compact(e870_system, 64, smt=8),
            [(Allocation("l", 0, MB, LocalPolicy(0)), 1.0)],
        )
        assert one_chip_local.local_fraction == 1.0
