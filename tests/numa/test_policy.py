"""Unit tests for NUMA placement policies."""

import pytest

from repro.numa.policy import (
    Allocation,
    BlockCyclicPolicy,
    FirstTouchPolicy,
    InterleavePolicy,
    LocalPolicy,
)

PAGE = 64 * 1024


class TestLocalPolicy:
    def test_single_home(self):
        p = LocalPolicy(3)
        assert p.home(0) == 3
        assert p.home(999) == 3

    def test_homes_range(self):
        p = LocalPolicy(1)
        assert p.homes(0, 3 * PAGE, PAGE) == [1, 1, 1]


class TestInterleavePolicy:
    def test_round_robin(self):
        p = InterleavePolicy([0, 1, 2])
        assert [p.home(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InterleavePolicy([])

    def test_subset_of_chips(self):
        p = InterleavePolicy([4, 6])
        assert {p.home(i) for i in range(10)} == {4, 6}


class TestBlockCyclicPolicy:
    def test_blocks(self):
        p = BlockCyclicPolicy([0, 1], block_pages=2)
        assert [p.home(i) for i in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCyclicPolicy([], 2)
        with pytest.raises(ValueError):
            BlockCyclicPolicy([0], 0)


class TestFirstTouchPolicy:
    def test_first_toucher_wins(self):
        p = FirstTouchPolicy()
        assert p.touch(5, 2) == 2
        assert p.touch(5, 7) == 2  # second toucher does not move the page
        assert p.home(5) == 2

    def test_fallback_for_untouched(self):
        p = FirstTouchPolicy(fallback=6)
        assert p.home(0) == 6

    def test_touch_range(self):
        p = FirstTouchPolicy()
        p.touch_range(0, 3 * PAGE, chip=4, page_size=PAGE)
        assert p.touched_pages == 3
        assert all(p.home(i) == 4 for i in range(3))

    def test_parallel_init_pattern(self):
        """Each thread faults its own partition: pages spread over chips."""
        p = FirstTouchPolicy()
        for chip in range(4):
            p.touch_range(chip * 4 * PAGE, 4 * PAGE, chip, PAGE)
        homes = {p.home(i) for i in range(16)}
        assert homes == {0, 1, 2, 3}


class TestAllocation:
    def test_home_of(self):
        a = Allocation("x", base=PAGE, nbytes=2 * PAGE, policy=InterleavePolicy([0, 1]))
        assert a.home_of(PAGE) == 1  # page index 1
        assert a.home_of(2 * PAGE) == 0

    def test_out_of_range(self):
        a = Allocation("x", 0, PAGE, LocalPolicy(0))
        with pytest.raises(ValueError, match="outside"):
            a.home_of(PAGE)

    def test_chip_share_interleaved(self, e870_system):
        a = Allocation("x", 0, 8 * PAGE, InterleavePolicy(range(8)))
        share = a.chip_share(e870_system)
        assert all(v == pytest.approx(1 / 8) for v in share.values())

    def test_chip_share_local(self, e870_system):
        a = Allocation("x", 0, 8 * PAGE, LocalPolicy(2))
        share = a.chip_share(e870_system)
        assert share[2] == pytest.approx(1.0)
        assert share[0] == 0.0

    def test_rejects_chip_out_of_system(self, e870_system):
        a = Allocation("x", 0, PAGE, LocalPolicy(99))
        with pytest.raises(ValueError, match="chip 99"):
            a.chip_share(e870_system)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Allocation("x", 0, 0, LocalPolicy(0))

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            Allocation("x", 0, PAGE, LocalPolicy(0), page_size=1000)
