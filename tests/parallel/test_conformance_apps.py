"""Shard-vs-serial conformance for the three app kernels.

Each sharded driver must reproduce its serial kernel *exactly* —
``np.array_equal`` on dense arrays, zero-nonzero difference on sparse —
because the shard plans were designed to preserve the serial kernel's
floating-point accumulation order (or, for ERI, to partition disjoint
symmetry orbits).  Quick smokes run unmarked; wide sweeps are ``slow``.
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.hf.basis import h_chain, h_ring
from repro.apps.hf.integrals import eri_tensor
from repro.apps.hf.screening import SchwarzScreening
from repro.apps.jaccard.blocked import all_pairs_jaccard_blocked
from repro.apps.spmv.csr import CSRSpMV
from repro.apps.spmv.twoscan import TwoScanSpMV
from repro.parallel import (
    sharded_csr_spmv,
    sharded_eri_tensor,
    sharded_jaccard,
    sharded_twoscan_spmv,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
QUICK_SHARDS = (1, 2, 7)
DEEP_SHARDS = (16,)


def rmat(scale=8, seed=0):
    return rmat_adjacency(RMATConfig(scale=scale, edge_factor=8, seed=seed))


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(n, n, density=density, random_state=rng, format="csr")


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_jaccard_matches_serial_blocked_kernel(shards):
    adj = rmat(scale=8, seed=1)
    block_cols = 64
    ref = all_pairs_jaccard_blocked(adj, block_cols=block_cols).similarity
    got = sharded_jaccard(
        adj, shards=shards, workers=WORKERS, block_cols=block_cols
    )
    assert (ref != got).nnz == 0
    assert np.array_equal(ref.data, got.data)
    assert np.array_equal(ref.indices, got.indices)
    assert np.array_equal(ref.indptr, got.indptr)


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_csr_spmv_matches_serial_executor(shards):
    m = random_csr(500, 0.02, seed=2)
    x = np.random.default_rng(2).standard_normal(500)
    ref = CSRSpMV(m).multiply(x)
    got = sharded_csr_spmv(m, x, shards=shards, workers=WORKERS)
    assert np.array_equal(ref, got)


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_twoscan_spmv_matches_serial_executor(shards):
    m = random_csr(400, 0.03, seed=3)
    x = np.random.default_rng(3).standard_normal(400)
    ref = TwoScanSpMV(m).multiply(x)
    got = sharded_twoscan_spmv(m, x, shards=shards, workers=WORKERS)
    assert np.array_equal(ref, got)


def test_twoscan_custom_block_width_still_matches():
    m = random_csr(300, 0.05, seed=4)
    x = np.random.default_rng(4).standard_normal(300)
    ref = TwoScanSpMV(m, block_width=64).multiply(x)
    got = sharded_twoscan_spmv(m, x, shards=5, workers=WORKERS, block_width=64)
    assert np.array_equal(ref, got)


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_eri_tensor_matches_serial_loop(shards):
    mol = h_chain(4)
    ref = eri_tensor(mol)
    got = sharded_eri_tensor(mol, shards=shards, workers=WORKERS)
    assert np.array_equal(ref, got)


def test_eri_tensor_with_schwarz_screening():
    mol = h_chain(6, spacing=2.2)
    screen = SchwarzScreening(mol)
    ref = eri_tensor(mol, screening=screen)
    got = sharded_eri_tensor(mol, shards=3, workers=WORKERS, screening=screen)
    assert np.array_equal(ref, got)


def test_worker_count_never_changes_app_results():
    m = random_csr(350, 0.03, seed=6)
    x = np.random.default_rng(6).standard_normal(350)
    serial = sharded_csr_spmv(m, x, shards=6, workers=1)
    pooled = sharded_csr_spmv(m, x, shards=6, workers=WORKERS)
    assert np.array_equal(serial, pooled)


@pytest.mark.slow
@pytest.mark.parametrize("shards", DEEP_SHARDS)
def test_jaccard_deep_sweep(shards):
    adj = rmat(scale=10, seed=8)
    ref = all_pairs_jaccard_blocked(adj, block_cols=128).similarity
    got = sharded_jaccard(adj, shards=shards, workers=WORKERS, block_cols=128)
    assert (ref != got).nnz == 0


@pytest.mark.slow
@pytest.mark.parametrize("shards", DEEP_SHARDS)
@pytest.mark.parametrize("seed", [0, 21])
def test_spmv_deep_sweep(shards, seed):
    m = random_csr(2000, 0.01, seed=seed)
    x = np.random.default_rng(seed).standard_normal(2000)
    assert np.array_equal(
        CSRSpMV(m).multiply(x),
        sharded_csr_spmv(m, x, shards=shards, workers=WORKERS),
    )
    assert np.array_equal(
        TwoScanSpMV(m).multiply(x),
        sharded_twoscan_spmv(m, x, shards=shards, workers=WORKERS),
    )


@pytest.mark.slow
def test_eri_deep_sweep():
    mol = h_ring(6)
    ref = eri_tensor(mol)
    for shards in (2, 7, 16):
        assert np.array_equal(
            ref, sharded_eri_tensor(mol, shards=shards, workers=WORKERS)
        )
