"""Shard sub-seed derivation: deterministic, distinct, and 1-shard-neutral."""

import hypothesis.strategies as st
from hypothesis import given

from repro.parallel import shard_seed, shard_seeds

seeds = st.integers(min_value=0, max_value=(1 << 64) - 1)
shard_counts = st.integers(min_value=2, max_value=64)


def test_single_shard_keeps_the_plan_seed():
    # A 1-shard plan must degenerate to the plain serial engine, which
    # includes feeding it the unmodified plan seed.
    for seed in (0, 1, 42, (1 << 63) + 17):
        assert shard_seed(seed, 0, shards=1) == seed
        assert shard_seeds(seed, 1) == [seed]


@given(seed=seeds, shards=shard_counts)
def test_sub_seeds_are_deterministic_and_distinct(seed, shards):
    first = shard_seeds(seed, shards)
    assert first == shard_seeds(seed, shards)
    assert len(set(first)) == shards
    assert all(0 <= s < (1 << 64) for s in first)


@given(seed=seeds, shards=shard_counts)
def test_sub_seeds_depend_on_shard_count(seed, shards):
    # Folding the shard count in keeps (seed, shard_id) pairs from
    # colliding across different plans of the same trace.
    a = shard_seeds(seed, shards)
    b = shard_seeds(seed, shards + 1)
    assert a != b[: len(a)]


def test_shard_id_validation():
    import pytest

    with pytest.raises(ValueError):
        shard_seed(0, -1, shards=4)
    with pytest.raises(ValueError):
        shard_seed(0, 1, shards=1)
    with pytest.raises(ValueError):
        shard_seeds(0, 0)
