"""Merge semantics: scatter permutation, histogram reduction, RAS union."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from repro.parallel import (
    DEFAULT_LATENCY_EDGES,
    LatencyHistogram,
    interleave_trace,
    scatter_shard_arrays,
    union_ras_events,
)
from repro.pmu import CounterBank

# The default edges cover [0, inf), so every non-negative sample bins —
# including sub-ns modelled L1 hits.
latencies = st.lists(
    st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
    min_size=0, max_size=300,
)


@given(values=latencies, shards=st.integers(min_value=1, max_value=9))
def test_merged_histogram_equals_histogram_of_merged_array(values, shards):
    arr = np.asarray(values, dtype=np.float64)
    # Any partition works; reuse the line-interleave as a convenient one.
    indices = interleave_trace((arr * 128).astype(np.int64), 128, shards)
    parts = [LatencyHistogram.of(arr[ix]) for ix in indices]
    merged = LatencyHistogram.merge(parts)
    whole = LatencyHistogram.of(arr)
    assert np.array_equal(merged.counts, whole.counts)
    assert merged.total == arr.size


def test_histogram_merge_rejects_mismatched_edges():
    a = LatencyHistogram.of(np.array([1.0, 5.0]))
    b = LatencyHistogram.of(np.array([2.0]), edges=np.array([0.0, 10.0, np.inf]))
    with pytest.raises(ValueError):
        LatencyHistogram.merge([a, b])


def test_histogram_merge_of_nothing_is_empty():
    merged = LatencyHistogram.merge([])
    assert merged.total == 0
    assert np.array_equal(merged.edges, DEFAULT_LATENCY_EDGES)


@given(
    n=st.integers(min_value=0, max_value=200),
    shards=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=999),
)
def test_scatter_inverts_the_shard_gather(n, shards, seed):
    rng = np.random.default_rng(seed)
    original = rng.integers(0, 1 << 20, size=n).astype(np.int64)
    indices = interleave_trace(original, 128, shards)
    arrays = [original[ix] for ix in indices]
    merged = scatter_shard_arrays(n, indices, arrays, dtype=np.int64)
    assert np.array_equal(merged, original)


def test_scatter_rejects_size_mismatch():
    with pytest.raises(ValueError, match="size mismatch"):
        scatter_shard_arrays(
            2,
            [np.array([0, 1])],
            [np.array([5.0])],
            dtype=np.float64,
        )


def test_scatter_rejects_incomplete_coverage():
    with pytest.raises(ValueError, match="cover"):
        scatter_shard_arrays(
            3,
            [np.array([0, 1])],
            [np.array([5.0, 6.0])],
            dtype=np.float64,
        )


def test_ras_union_keeps_shard_then_event_order():
    events = [
        [("f0", "v0"), ("f1", "v1")],
        [],
        [("f2", "v2")],
    ]
    assert union_ras_events(events) == [
        (0, "f0", "v0"),
        (0, "f1", "v1"),
        (2, "f2", "v2"),
    ]


bank_dicts = st.dictionaries(
    st.sampled_from(["PM_LD_MISS_L1", "PM_DATA_FROM_L2", "PM_RUN_CYC",
                     "PM_DTLB_MISS", "PM_INST_CMPL"]),
    st.integers(min_value=0, max_value=1 << 40),
    max_size=5,
)


@given(banks=st.lists(bank_dicts, min_size=0, max_size=6))
def test_counterbank_merge_is_order_free(banks):
    forward = CounterBank.merge(banks)
    backward = CounterBank.merge(reversed(banks))
    assert dict(forward) == dict(backward)
    sequential = CounterBank()
    for bank in banks:
        sequential.add_events(bank)
    assert dict(forward) == dict(sequential)
