"""Seed-determinism regression: canonical sharded runs pinned to golden JSON.

These values were produced by ``tests/parallel/regen_golden.py`` — one
canonical sharded run per workload family.  A failure here means shard
planning, sub-seed folding, merge semantics, or an underlying engine
changed behaviour; if the change was intentional, regenerate with::

    PYTHONPATH=src python -m tests.parallel.regen_golden
"""

import json
from pathlib import Path

import pytest

from tests.parallel.regen_golden import GOLDEN_PATH, golden_payload


@pytest.fixture(scope="module")
def golden():
    return json.loads(Path(GOLDEN_PATH).read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def current():
    return golden_payload()


def test_golden_file_matches_generator_config(golden):
    assert golden["workload"]["seed"] == 2016
    assert golden["workload"]["shards"] == 7


def test_merged_memory_counters_are_pinned(golden, current):
    assert current["mem"] == golden["mem"]


def test_merged_chip_counters_are_pinned(golden, current):
    assert current["chip"] == golden["chip"]


def test_app_outputs_are_pinned(golden, current):
    assert current["apps"] == golden["apps"]
