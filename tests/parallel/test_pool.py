"""ShardPool behaviour: ordering, serial short-circuit, clamping."""

import os

import pytest

from repro.parallel import ShardPool
from repro.parallel.pool import default_workers


def _square(task):
    return (os.getpid(), task * task)


def _raise(task):
    raise RuntimeError(f"task {task} failed")


def test_results_come_back_in_task_order():
    tasks = list(range(17))
    results = ShardPool(2).map(_square, tasks)
    assert [value for _, value in results] == [t * t for t in tasks]


def test_serial_pool_runs_in_process():
    parent = os.getpid()
    for workers in (0, 1):
        results = ShardPool(workers).map(_square, [1, 2, 3])
        assert all(pid == parent for pid, _ in results)


def test_single_task_stays_in_process():
    # Pool start-up for one task is pure overhead; it runs inline.
    [(pid, value)] = ShardPool(4).map(_square, [9])
    assert pid == os.getpid()
    assert value == 81


def test_worker_exceptions_propagate():
    with pytest.raises(RuntimeError, match="task 2 failed"):
        ShardPool(2).map(_raise, [2, 3])


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        ShardPool(-1)


def test_pool_matches_serial_map():
    tasks = list(range(11))
    serial = [v for _, v in ShardPool(1).map(_square, tasks)]
    pooled = [v for _, v in ShardPool(3).map(_square, tasks)]
    assert pooled == serial


def test_default_workers_positive():
    assert default_workers() >= 1
