"""Content-addressed result cache: keys, round-trips, CLI integration."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.arch import e870
from repro.bench.__main__ import main as bench_main
from repro.parallel import ResultCache, cache_key
from repro.tools.lat_mem import main as lat_mem_main


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_round_trip(cache):
    key = cache.key(machine=e870(), workload={"experiment": "table1"})
    assert cache.get(key) is None
    cache.put(key, {"rows": [1, 2, 3]})
    assert cache.get(key) == {"rows": [1, 2, 3]}
    assert cache.misses == 1 and cache.hits == 1


def test_key_is_content_addressed(cache):
    base = dict(machine=e870(), workload={"experiment": "table1"}, seed=0)
    key = cache.key(**base)
    assert key == cache.key(**base)  # pure function of the content
    assert key != cache.key(**{**base, "seed": 1})
    assert key != cache.key(**{**base, "workload": {"experiment": "table2"}})
    other_machine = e870().chip  # different spec repr → different key
    assert key != cache.key(**{**base, "machine": other_machine})


def test_corrupt_entry_is_a_miss(cache):
    key = cache.key(machine=e870(), workload={"w": 1})
    path = cache.put(key, {"value": 7})
    path.write_text("{ not json")
    assert cache.get(key) is None


def test_version_mismatch_is_a_miss(cache):
    key = cache.key(machine=e870(), workload={"w": 2})
    path = cache.put(key, {"value": 9})
    entry = json.loads(path.read_text())
    entry["cache_version"] = -1
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None


def test_entry_is_self_describing(cache):
    key = cache.key(machine=e870(), workload={"w": 3})
    entry = json.loads(cache.put(key, {"value": 11}).read_text())
    assert entry["key"] == key
    assert entry["payload"] == {"value": 11}


def test_module_level_cache_key_matches_method(cache):
    kwargs = dict(machine=e870(), workload={"experiment": "table1"}, seed=2)
    assert cache_key(**kwargs) == cache.key(**kwargs)


def test_concurrent_puts_of_one_key_never_corrupt(cache):
    """Regression: the temp-file name used to be pid-only, so two
    threads storing the same key wrote through ONE temp file — torn
    JSON, or a rename racing a file that the other thread had already
    renamed away.  With the per-put sequence number every writer owns
    its temp file; hammering must end with a clean entry and no debris.
    """
    key = cache.key(machine=e870(), workload={"hammer": True})
    payloads = [{"value": i, "blob": "x" * 4096} for i in range(16)]

    def store(payload):
        for _ in range(20):
            cache.put(key, payload)

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(store, payloads))

    # The surviving entry is one of the writers' payloads, intact.
    assert cache.get(key) in payloads
    # No temp files leaked and no stray entries appeared.
    leftovers = [p.name for p in cache.root.iterdir() if p.suffix != ".json"]
    assert leftovers == []
    assert len(list(cache.root.glob("*.json"))) == 1


def test_concurrent_mixed_get_put_keeps_counters_exact(cache):
    """hits/misses are bumped under a lock; N threads doing one lookup
    each must account for exactly N lookups."""
    key = cache.key(machine=e870(), workload={"counted": 1})
    cache.put(key, {"v": 1})
    hits_before, misses_before = cache.hits, cache.misses

    def lookup(i):
        return cache.get(key if i % 2 == 0 else f"{'0' * 64}")

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(lookup, range(200)))

    assert results.count({"v": 1}) == 100
    assert cache.hits - hits_before == 100
    assert cache.misses - misses_before == 100


def test_bench_cli_second_run_hits_the_cache(tmp_path, capsys):
    argv = ["table1", "--cache-dir", str(tmp_path / "cache")]
    assert bench_main(argv) == 0
    first = capsys.readouterr().out
    assert "cache hit" not in first
    assert bench_main(argv) == 0
    second = capsys.readouterr().out
    assert "[cache hit table1]" in second
    # The cached render is the fresh render, byte for byte.
    stripped = "\n".join(
        line for line in second.splitlines() if "cache hit" not in line
    )
    assert stripped.strip() == first.strip()


def test_bench_cli_no_cache_flag_bypasses(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert bench_main(["table1", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert bench_main(["table1", "--cache-dir", cache_dir, "--no-cache"]) == 0
    assert "cache hit" not in capsys.readouterr().out


def test_lat_mem_cli_cache_hit(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = ["--trace", "--size", "64K"]
    assert lat_mem_main(argv) == 0
    first = capsys.readouterr()
    assert "cache hit" not in first.err
    assert lat_mem_main(argv) == 0
    second = capsys.readouterr()
    assert "cache hit" in second.err
    assert second.out == first.out


# -- integrity hardening (chaos PR) ------------------------------------------


def test_truncated_entry_is_a_miss_and_quarantined(cache):
    """Regression for the chaos ``corrupt_disk:mode=truncate`` class: an
    entry cut mid-JSON must read as a miss, not raise, and the damaged
    file is renamed aside so it cannot poison later reads."""
    key = cache.key(machine=e870(), workload={"w": 10})
    path = cache.put(key, {"rows": list(range(100))})
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert not path.exists()  # renamed aside, no longer a .json entry
    assert len(list(path.parent.glob("*.quarantined"))) == 1
    # The key is writable and readable again after the quarantine.
    cache.put(key, {"rows": [1]})
    assert cache.get(key) == {"rows": [1]}


def test_non_dict_json_entry_is_a_miss(cache):
    key = cache.key(machine=e870(), workload={"w": 11})
    path = cache.put(key, {"value": 1})
    path.write_text("[1, 2, 3]")
    assert cache.get(key) is None
    assert cache.quarantined == 1


def test_sha_mismatch_is_quarantined(cache):
    """A bit-flipped payload fails checksum verification even though the
    entry is perfectly well-formed JSON."""
    key = cache.key(machine=e870(), workload={"w": 12})
    path = cache.put(key, {"value": 7})
    entry = json.loads(path.read_text())
    entry["payload"]["value"] = 8  # flip a bit, keep the old sha256
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert not path.exists()


def test_unreadable_entry_is_a_plain_miss(cache):
    """I/O errors that are not corruption (here: the entry path is not
    even a regular file) are misses without quarantine — there is no
    evidence of bad bytes worth renaming aside."""
    key = cache.key(machine=e870(), workload={"w": 13})
    path = cache.put(key, {"value": 7})
    path.unlink()
    path.mkdir()  # open() now raises IsADirectoryError, an OSError
    assert cache.get(key) is None
    assert cache.quarantined == 0
    path.rmdir()
    cache.put(key, {"value": 7})
    assert cache.get(key) == {"value": 7}


def test_payload_digest_is_stable_across_json_round_trip():
    from repro.parallel import payload_digest

    payload = {"rows": [(1, 2), (3, 4)], "meta": {"b": 2, "a": 1}}
    round_tripped = json.loads(json.dumps({"rows": [[1, 2], [3, 4]],
                                           "meta": {"a": 1, "b": 2}}))
    assert payload_digest(payload) == payload_digest(round_tripped)
    assert payload_digest({"rows": []}) != payload_digest({"rows": [0]})


def test_entry_carries_its_checksum(cache):
    from repro.parallel import payload_digest

    key = cache.key(machine=e870(), workload={"w": 14})
    entry = json.loads(cache.put(key, {"value": 11}).read_text())
    assert entry["sha256"] == payload_digest({"value": 11})
