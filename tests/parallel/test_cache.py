"""Content-addressed result cache: keys, round-trips, CLI integration."""

import json

import pytest

from repro.arch import e870
from repro.bench.__main__ import main as bench_main
from repro.parallel import ResultCache
from repro.tools.lat_mem import main as lat_mem_main


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_round_trip(cache):
    key = cache.key(machine=e870(), workload={"experiment": "table1"})
    assert cache.get(key) is None
    cache.put(key, {"rows": [1, 2, 3]})
    assert cache.get(key) == {"rows": [1, 2, 3]}
    assert cache.misses == 1 and cache.hits == 1


def test_key_is_content_addressed(cache):
    base = dict(machine=e870(), workload={"experiment": "table1"}, seed=0)
    key = cache.key(**base)
    assert key == cache.key(**base)  # pure function of the content
    assert key != cache.key(**{**base, "seed": 1})
    assert key != cache.key(**{**base, "workload": {"experiment": "table2"}})
    other_machine = e870().chip  # different spec repr → different key
    assert key != cache.key(**{**base, "machine": other_machine})


def test_corrupt_entry_is_a_miss(cache):
    key = cache.key(machine=e870(), workload={"w": 1})
    path = cache.put(key, {"value": 7})
    path.write_text("{ not json")
    assert cache.get(key) is None


def test_version_mismatch_is_a_miss(cache):
    key = cache.key(machine=e870(), workload={"w": 2})
    path = cache.put(key, {"value": 9})
    entry = json.loads(path.read_text())
    entry["cache_version"] = -1
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None


def test_entry_is_self_describing(cache):
    key = cache.key(machine=e870(), workload={"w": 3})
    entry = json.loads(cache.put(key, {"value": 11}).read_text())
    assert entry["key"] == key
    assert entry["payload"] == {"value": 11}


def test_bench_cli_second_run_hits_the_cache(tmp_path, capsys):
    argv = ["table1", "--cache-dir", str(tmp_path / "cache")]
    assert bench_main(argv) == 0
    first = capsys.readouterr().out
    assert "cache hit" not in first
    assert bench_main(argv) == 0
    second = capsys.readouterr().out
    assert "[cache hit table1]" in second
    # The cached render is the fresh render, byte for byte.
    stripped = "\n".join(
        line for line in second.splitlines() if "cache hit" not in line
    )
    assert stripped.strip() == first.strip()


def test_bench_cli_no_cache_flag_bypasses(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert bench_main(["table1", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert bench_main(["table1", "--cache-dir", cache_dir, "--no-cache"]) == 0
    assert "cache hit" not in capsys.readouterr().out


def test_lat_mem_cli_cache_hit(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = ["--trace", "--size", "64K"]
    assert lat_mem_main(argv) == 0
    first = capsys.readouterr()
    assert "cache hit" not in first.err
    assert lat_mem_main(argv) == 0
    second = capsys.readouterr()
    assert "cache hit" in second.err
    assert second.out == first.out
