"""Golden-value generator for the sharded-execution regression test.

One canonical sharded run per workload family — memory chase with RAS
injection, multi-core chip trace, Jaccard, CSR SpMV, two-scan SpMV and
the HF ERI tensor — pinning the merged PMU counters, summary scalars
and a SHA-256 over each merged output array's bytes.  Everything is
seeded, so these values are stable across runs and worker counts; after
an *intentional* change to shard planning, sub-seed folding or merge
semantics, regenerate with::

    PYTHONPATH=src python -m tests.parallel.regen_golden

and commit the updated ``golden_sharded.json`` with the change that
motivated it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.apps.hf.basis import h_chain
from repro.apps.spmv.csr import CSRSpMV  # noqa: F401  (documents the oracle)
from repro.arch import e870
from repro.mem.trace import random_chase_addresses, uniform_random_addresses
from repro.parallel import (
    run_trace_sharded,
    sharded_csr_spmv,
    sharded_eri_tensor,
    sharded_jaccard,
    sharded_twoscan_spmv,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_sharded.json"

SEED = 2016
SHARDS = 7
INJECT = "dram_bit:rate=0.001;tlb_parity:rate=0.0005;ecc:chipkill"


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def golden_payload() -> dict:
    chip = e870().chip
    line = chip.core.l1d.line_size

    # Memory chase through the batch engine, with fault injection.
    chase = random_chase_addresses(4096 * line, line, passes=3, seed=SEED)
    mem = run_trace_sharded(chip, chase, shards=SHARDS, seed=SEED, inject=INJECT)

    # Interleaved multi-core trace through the chip simulator.
    addrs = uniform_random_addresses(2048 * line, line, count=12_000, seed=SEED)
    rng = np.random.default_rng(SEED)
    cores = rng.integers(0, chip.cores_per_chip, size=addrs.size)
    writes = rng.random(addrs.size) < 0.25
    sim = run_trace_sharded(
        chip, addrs, writes, cores=cores, shards=SHARDS, seed=SEED
    )

    adj = rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=SEED))
    jac = sharded_jaccard(adj, shards=SHARDS, block_cols=64)

    m = sp.random(
        500, 500, density=0.02,
        random_state=np.random.default_rng(SEED), format="csr",
    )
    x = np.random.default_rng(SEED).standard_normal(500)
    csr_y = sharded_csr_spmv(m, x, shards=SHARDS)
    two_y = sharded_twoscan_spmv(m, x, shards=SHARDS)

    eri = sharded_eri_tensor(h_chain(4), shards=SHARDS)

    return {
        "workload": {"seed": SEED, "shards": SHARDS, "inject": INJECT},
        "mem": {
            "counters": {k: int(v) for k, v in sorted(mem.bank.items()) if v},
            "mean_latency_ns": float(mem.mean_latency_ns),
            "latency_sha256": _sha(mem.trace.latency_ns),
            "level_codes_sha256": _sha(mem.trace.level_codes),
            "ras_event_count": len(mem.ras_events),
        },
        "chip": {
            "counters": {k: int(v) for k, v in sorted(sim.bank.items()) if v},
            "mean_latency_ns": float(sim.mean_latency_ns),
            "latency_sha256": _sha(sim.trace.latency_ns),
        },
        "apps": {
            "jaccard_nnz": int(jac.nnz),
            "jaccard_sha256": _sha(jac.data),
            "csr_sha256": _sha(csr_y),
            "twoscan_sha256": _sha(two_y),
            "eri_sha256": _sha(eri),
        },
    }


def main() -> None:
    payload = golden_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
