"""Shard-plan purity: every builder is a pure function of its inputs."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from repro.parallel import (
    interleave_trace,
    row_block_spans,
    shell_pair_batches,
    split_blocks,
    tile_column_spans,
)

shard_counts = st.integers(min_value=1, max_value=16)


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                   min_size=0, max_size=400),
    shards=shard_counts,
)
def test_interleave_partitions_the_trace(addrs, shards):
    arr = np.asarray(addrs, dtype=np.int64)
    indices = interleave_trace(arr, 128, shards)
    assert len(indices) == shards
    # A partition of range(n): disjoint, complete, order-preserving.
    merged = np.concatenate([ix for ix in indices]) if shards else arr
    assert sorted(merged.tolist()) == list(range(arr.size))
    for ix in indices:
        assert np.all(np.diff(ix) > 0) or ix.size <= 1


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                   min_size=1, max_size=400),
    shards=st.integers(min_value=2, max_value=16),
)
def test_interleave_keeps_lines_together(addrs, shards):
    # All accesses to one cache line must land in one shard, or the
    # per-shard simulated cache state would be inconsistent.
    arr = np.asarray(addrs, dtype=np.int64)
    line_size = 128
    indices = interleave_trace(arr, line_size, shards)
    owner = {}
    for s, ix in enumerate(indices):
        for ln in (arr[ix] // line_size).tolist():
            assert owner.setdefault(ln, s) == s


def test_interleave_single_shard_is_identity():
    arr = np.arange(10, dtype=np.int64) * 128
    (ix,) = interleave_trace(arr, 128, 1)
    assert np.array_equal(ix, np.arange(10))


@given(total=st.integers(min_value=0, max_value=2000), shards=shard_counts)
def test_split_blocks_partitions(total, shards):
    spans = split_blocks(total, shards)
    assert len(spans) == shards
    assert spans[0][0] == 0 and spans[-1][1] == total
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 == b0 and a0 <= a1
    sizes = [e - s for s, e in spans]
    assert max(sizes) - min(sizes) <= 1


@given(
    n_cols=st.integers(min_value=0, max_value=5000),
    block=st.integers(min_value=1, max_value=512),
    shards=shard_counts,
)
def test_tile_spans_fall_on_block_boundaries(n_cols, block, shards):
    spans = tile_column_spans(n_cols, block, shards)
    assert len(spans) == shards
    assert spans[-1][1] == n_cols or n_cols == 0
    for start, end in spans:
        # Starts are block-aligned except trailing empty shards, which
        # clamp to (n_cols, n_cols).
        assert start % block == 0 or start == end == n_cols
        assert start <= end <= n_cols


@given(n_rows=st.integers(min_value=0, max_value=5000), shards=shard_counts)
def test_row_block_spans_cover_all_rows(n_rows, shards):
    spans = row_block_spans(n_rows, shards)
    assert spans[0][0] == 0 and spans[-1][1] == n_rows


@given(nbf=st.integers(min_value=0, max_value=24), shards=shard_counts)
def test_shell_pair_batches_walk_the_canonical_loop(nbf, shards):
    batches = shell_pair_batches(nbf, shards)
    assert len(batches) == shards
    flat = [p for batch in batches for p in batch]
    assert flat == [(i, j) for i in range(nbf) for j in range(i + 1)]


def test_invalid_shard_counts_raise():
    with pytest.raises(ValueError):
        interleave_trace(np.zeros(1, dtype=np.int64), 128, 0)
    with pytest.raises(ValueError):
        split_blocks(10, 0)
    with pytest.raises(ValueError):
        tile_column_spans(10, 0, 2)
