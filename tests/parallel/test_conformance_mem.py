"""Shard-vs-serial conformance for the memory-hierarchy engines.

The serial oracle is the *same shard plan* executed in-process
(``workers=1``); multiprocess runs must match it bit-for-bit —
latencies, level codes, translation cycles, merged PMU banks, summed
stats, and RAS fault outcomes.  A 1-shard plan additionally matches the
plain unsharded engine.  Quick smokes run unmarked on small traces;
wider sweeps carry ``@pytest.mark.slow``.
"""

import os

import numpy as np
import pytest

from repro.coherence.chipsim import ChipSimulator
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.trace import random_chase_addresses, uniform_random_addresses
from repro.parallel import run_trace_sharded, sharded_traced_latency
from repro.pmu import read_counters

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
INJECT = "dram_bit:rate=0.001;tlb_parity:rate=0.0005;ecc:chipkill"

QUICK_SHARDS = (1, 2, 7)
DEEP_SHARDS = (16,)


def assert_results_identical(oracle, pooled):
    assert np.array_equal(oracle.trace.latency_ns, pooled.trace.latency_ns)
    assert np.array_equal(oracle.trace.level_codes, pooled.trace.level_codes)
    assert np.array_equal(
        oracle.trace.translation_cycles, pooled.trace.translation_cycles
    )
    assert dict(oracle.bank) == dict(pooled.bank)
    assert [dict(b) for b in oracle.shard_banks] == [
        dict(b) for b in pooled.shard_banks
    ]
    assert oracle.stats == pooled.stats
    assert oracle.ras_events == pooled.ras_events
    assert oracle.ras_derived == pooled.ras_derived


def chase(n_lines, chip, passes=2, seed=0):
    return random_chase_addresses(
        n_lines * chip.core.l1d.line_size, chip.core.l1d.line_size,
        passes=passes, seed=seed,
    )


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_batch_engine_pool_matches_serial_oracle(p8_chip, shards):
    addrs = chase(4096, p8_chip, passes=3)
    oracle = run_trace_sharded(p8_chip, addrs, shards=shards, workers=1)
    pooled = run_trace_sharded(p8_chip, addrs, shards=shards, workers=WORKERS)
    assert_results_identical(oracle, pooled)


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_batch_engine_with_ras_injection(p8_chip, shards):
    addrs = chase(4096, p8_chip, passes=3, seed=7)
    oracle = run_trace_sharded(
        p8_chip, addrs, shards=shards, workers=1, inject=INJECT, seed=7
    )
    pooled = run_trace_sharded(
        p8_chip, addrs, shards=shards, workers=WORKERS, inject=INJECT, seed=7
    )
    assert_results_identical(oracle, pooled)
    if shards > 1:
        # The fault plan actually fired somewhere, so the RAS half of
        # the conformance claim is non-vacuous.
        assert oracle.ras_events


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_chip_engine_pool_matches_serial_oracle(p8_chip, shards):
    line = p8_chip.core.l1d.line_size
    addrs = uniform_random_addresses(2048 * line, line, count=12_000, seed=3)
    rng = np.random.default_rng(3)
    cores = rng.integers(0, p8_chip.cores_per_chip, size=addrs.size)
    writes = rng.random(addrs.size) < 0.25
    oracle = run_trace_sharded(
        p8_chip, addrs, writes, cores=cores, shards=shards, workers=1
    )
    pooled = run_trace_sharded(
        p8_chip, addrs, writes, cores=cores, shards=shards, workers=WORKERS
    )
    assert_results_identical(oracle, pooled)


@pytest.mark.parametrize("shards", QUICK_SHARDS)
def test_sequential_stream_stays_bit_identical(p8_chip, shards):
    """STREAM-style sweeps (the new bulk regime paths) conform sharded.

    A sequential read+write mix drives the batch engine's streaming
    fast path inside every shard; pool runs must still merge
    bit-identically, and the 1-shard plan must match the plain engine.
    """
    line = p8_chip.core.l1d.line_size
    addrs = np.arange(20_000, dtype=np.int64) * line
    writes = np.zeros(addrs.size, dtype=bool)
    writes[::3] = True
    oracle = run_trace_sharded(p8_chip, addrs, writes, shards=shards, workers=1)
    pooled = run_trace_sharded(
        p8_chip, addrs, writes, shards=shards, workers=WORKERS
    )
    assert_results_identical(oracle, pooled)
    if shards == 1:
        hier = BatchMemoryHierarchy(p8_chip)
        direct = hier.access_trace(addrs, writes)
        assert np.array_equal(oracle.trace.latency_ns, direct.latency_ns)
        assert np.array_equal(oracle.trace.level_codes, direct.level_codes)
        assert dict(oracle.bank) == dict(read_counters(hier))


def test_single_shard_plan_is_the_plain_batch_engine(p8_chip):
    addrs = chase(2048, p8_chip, passes=2)
    sharded = run_trace_sharded(p8_chip, addrs, shards=1, workers=1)
    hier = BatchMemoryHierarchy(p8_chip)
    direct = hier.access_trace(addrs)
    assert np.array_equal(sharded.trace.latency_ns, direct.latency_ns)
    assert np.array_equal(sharded.trace.level_codes, direct.level_codes)
    assert dict(sharded.bank) == dict(read_counters(hier))
    assert sharded.stats == hier.stats


def test_single_shard_plan_is_the_plain_chip_engine(p8_chip):
    line = p8_chip.core.l1d.line_size
    addrs = uniform_random_addresses(512 * line, line, count=4_000, seed=5)
    cores = np.arange(addrs.size) % p8_chip.cores_per_chip
    sharded = run_trace_sharded(p8_chip, addrs, cores=cores, shards=1, workers=1)
    sim = ChipSimulator(p8_chip)
    direct = sim.access_trace(cores, addrs)
    assert np.array_equal(sharded.trace.latency_ns, direct.latency_ns)
    assert np.array_equal(sharded.trace.level_codes, direct.level_codes)
    assert dict(sharded.bank) == dict(read_counters(sim))
    assert sharded.stats == sim.stats


def test_sharded_traced_latency_is_worker_invariant(e870_system):
    serial_lat, serial = sharded_traced_latency(
        e870_system, 256 << 10, shards=4, workers=1
    )
    pooled_lat, pooled = sharded_traced_latency(
        e870_system, 256 << 10, shards=4, workers=WORKERS
    )
    assert serial_lat == pooled_lat
    assert_results_identical(serial, pooled)


@pytest.mark.slow
@pytest.mark.parametrize("shards", DEEP_SHARDS)
@pytest.mark.parametrize("seed", [0, 11, 12345])
def test_batch_engine_deep_sweep(p8_chip, shards, seed):
    addrs = chase(8192, p8_chip, passes=4, seed=seed)
    oracle = run_trace_sharded(
        p8_chip, addrs, shards=shards, workers=1, inject=INJECT, seed=seed
    )
    pooled = run_trace_sharded(
        p8_chip, addrs, shards=shards, workers=WORKERS, inject=INJECT, seed=seed
    )
    assert_results_identical(oracle, pooled)


@pytest.mark.slow
@pytest.mark.parametrize("shards", DEEP_SHARDS)
def test_chip_engine_deep_sweep(p8_chip, shards):
    line = p8_chip.core.l1d.line_size
    addrs = uniform_random_addresses(8192 * line, line, count=60_000, seed=9)
    rng = np.random.default_rng(9)
    cores = rng.integers(0, p8_chip.cores_per_chip, size=addrs.size)
    writes = rng.random(addrs.size) < 0.4
    oracle = run_trace_sharded(
        p8_chip, addrs, writes, cores=cores, shards=shards, workers=1,
        inject=INJECT, seed=9,
    )
    pooled = run_trace_sharded(
        p8_chip, addrs, writes, cores=cores, shards=shards, workers=WORKERS,
        inject=INJECT, seed=9,
    )
    assert_results_identical(oracle, pooled)
