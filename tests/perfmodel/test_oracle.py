"""Unit tests for the analytic steady-state oracle."""

import pytest

from repro.arch.power8 import PAGE_16M, PAGE_64K
from repro.perfmodel.oracle import (
    REQUEST_KINDS,
    AnalyticOracle,
    OracleRequest,
    default_working_sets,
)

KIB = 1024
MIB = 1024 * KIB


@pytest.fixture(scope="module")
def oracle(e870_system):
    return AnalyticOracle(e870_system)


class TestRequestSchema:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown oracle request kind"):
            OracleRequest(kind="teleport")

    def test_round_trips_through_dict(self):
        req = OracleRequest(kind="prefetch_sweep", depths=(2, 7), working_set=1 * MIB)
        assert OracleRequest.from_dict(req.to_dict()) == req

    @pytest.mark.parametrize("kind", sorted(REQUEST_KINDS))
    def test_every_kind_produces_rows(self, oracle, kind):
        result = oracle.predict(OracleRequest(kind=kind))
        assert result.kind == kind
        assert result.rows
        assert result.request is not None
        assert result.request.kind == kind

    @pytest.mark.parametrize("kind", sorted(REQUEST_KINDS))
    def test_every_result_serializes_and_renders(self, oracle, kind):
        result = oracle.predict(OracleRequest(kind=kind))
        payload = result.to_dict()
        assert payload["kind"] == kind
        assert len(payload["rows"]) == len(result.rows)
        assert f"oracle:{kind}" in result.render()


class TestLatencyCurve:
    def test_curve_is_monotone(self, oracle):
        curve = oracle.latency_curve([32 * KIB, 256 * KIB, 4 * MIB, 64 * MIB, 1 << 30])
        latencies = [lat for _, lat in curve]
        assert latencies == sorted(latencies)

    def test_huge_pages_cheaper_out_of_cache(self, oracle):
        regular = oracle.latency_ns(1 << 30, page_size=PAGE_64K)
        huge = oracle.latency_ns(1 << 30, page_size=PAGE_16M)
        assert huge < regular

    def test_default_working_sets_grid(self):
        sizes = default_working_sets(16 * KIB, 128 * KIB)
        assert sizes[0] == 16 * KIB
        assert len(sizes) == 13  # four points per octave over three octaves
        assert sizes == sorted(sizes)


class TestStreamSweepTwin:
    def test_depth_zero_all_accesses_miss(self, oracle):
        p = oracle.stream_sweep(working_set=1 * MIB, depth=0)
        assert p.dram_misses == p.accesses
        assert p.prefetch_issued == 0

    def test_deep_prefetch_leaves_three_cold_misses(self, oracle):
        p = oracle.stream_sweep(n_lines=4096, depth=7)
        assert p.dram_misses == 3
        assert p.prefetch_useful == 4093
        assert 0.9 < p.prefetch_accuracy < 1.0

    def test_depth_one_disables_engine(self, oracle):
        p = oracle.stream_sweep(n_lines=512, depth=1)
        assert p.dram_misses == 512
        assert p.prefetch_issued == 0

    def test_prefetch_cuts_latency(self, oracle):
        cold = oracle.stream_sweep(n_lines=4096, depth=0)
        deep = oracle.stream_sweep(n_lines=4096, depth=7)
        assert deep.mean_latency_ns < cold.mean_latency_ns / 5

    def test_tiny_sweeps_stay_consistent(self, oracle):
        for n in (1, 2, 3, 4):
            p = oracle.stream_sweep(n_lines=n, depth=7)
            assert p.accesses == n
            assert p.dram_misses == min(n, 3)
            assert p.prefetch_useful == max(0, n - 3)

    def test_rejects_empty_sweep(self, oracle):
        with pytest.raises(ValueError, match="at least one line"):
            oracle.stream_sweep(n_lines=0)
        with pytest.raises(ValueError, match="working_set bytes or n_lines"):
            oracle.stream_sweep()

    def test_bandwidth_matches_latency(self, oracle):
        p = oracle.stream_sweep(n_lines=1024, depth=7)
        line = oracle.chip.core.l1d.line_size
        assert p.per_stream_bandwidth == pytest.approx(
            line / (p.mean_latency_ns * 1e-9)
        )


class TestComposedModels:
    def test_models_are_cached(self, oracle):
        assert oracle.hierarchy() is oracle.hierarchy()
        assert oracle.random_access is oracle.random_access
        assert oracle.roofline is oracle.roofline

    def test_table3_peak_at_two_to_one(self, oracle):
        rows = oracle.table3()
        best = max(rows, key=lambda r: r["bandwidth"])
        assert (best["read"], best["write"]) == (2, 1)

    def test_stream_point_placement_vs_mix(self, oracle):
        by_mix = oracle.predict(OracleRequest(kind="stream_point", read_ratio=2.0))
        by_cores = oracle.predict(OracleRequest(kind="stream_point", cores=1))
        assert by_mix.metrics["bandwidth"] > by_cores.metrics["bandwidth"]

    def test_kernel_time_delegates(self, oracle):
        from repro.perfmodel.kernel_time import KernelProfile

        k = KernelProfile("k", flops=0, bytes_read=1e12, bytes_written=0)
        t = oracle.kernel_time(k)
        assert t == pytest.approx(1e12 / oracle.machine_model.effective_bandwidth(k))
        assert oracle.kernel_gflops(k) == 0.0
