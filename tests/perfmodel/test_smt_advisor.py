"""Tests for the SMT-level advisor (§III-C's 'fewer threads' insight)."""

import pytest

from repro.perfmodel.kernel_time import KernelProfile
from repro.perfmodel.smt_advisor import advise_smt


def memory_kernel(**kw):
    defaults = dict(name="stream", flops=1e9, bytes_read=2e12, bytes_written=1e12)
    defaults.update(kw)
    return KernelProfile(**defaults)


def compute_kernel(**kw):
    defaults = dict(name="gemm", flops=1e14, bytes_read=1e9, bytes_written=1e9,
                    flop_efficiency=1.0)
    defaults.update(kw)
    return KernelProfile(**defaults)


class TestAdvice:
    def test_memory_bound_wants_enough_threads(self, e870_system):
        """Memory-bound kernels need >= 4 threads to fill the core's
        memory interface (Figure 3a)."""
        advice = advise_smt(e870_system, memory_kernel(), ilp_per_thread=4)
        assert advice.best_threads_per_core >= 4
        assert "memory" in advice.reason

    def test_low_ilp_compute_needs_smt(self, e870_system):
        """2 independent ops/thread: needs 6 threads to reach 12 in flight."""
        advice = advise_smt(e870_system, compute_kernel(), ilp_per_thread=2)
        assert advice.best_threads_per_core >= 6

    def test_high_ilp_compute_prefers_fewer_threads(self, e870_system):
        """The paper's [4] observation: a register-hungry kernel runs
        best with FEWER threads per core."""
        advice = advise_smt(e870_system, compute_kernel(), ilp_per_thread=16)
        assert advice.best_threads_per_core <= 2

    def test_register_reason_reported(self, e870_system):
        advice = advise_smt(e870_system, compute_kernel(), ilp_per_thread=16)
        assert "register" in advice.reason

    def test_moderate_ilp_indifferent_but_minimal(self, e870_system):
        """12 independent ops saturate at any SMT level; ties resolve to
        the smallest thread count (cheapest)."""
        advice = advise_smt(e870_system, compute_kernel(), ilp_per_thread=12,
                            candidate_levels=[1, 2, 4])
        assert advice.best_threads_per_core == 1


class TestPoints:
    def test_points_cover_candidates(self, e870_system):
        advice = advise_smt(e870_system, memory_kernel(), candidate_levels=[1, 4, 8])
        assert [p.threads_per_core for p in advice.points] == [1, 4, 8]

    def test_memory_bandwidth_monotone_for_stream(self, e870_system):
        advice = advise_smt(e870_system, memory_kernel(), candidate_levels=[1, 2, 4, 8])
        bws = [p.memory_bandwidth for p in advice.points]
        assert bws == sorted(bws)

    def test_times_positive(self, e870_system):
        advice = advise_smt(e870_system, memory_kernel())
        assert all(p.time_seconds > 0 for p in advice.points)

    def test_compute_rate_drops_at_high_smt_high_ilp(self, e870_system):
        advice = advise_smt(e870_system, compute_kernel(), ilp_per_thread=16,
                            candidate_levels=[1, 8])
        by_t = {p.threads_per_core: p.compute_rate for p in advice.points}
        assert by_t[8] < by_t[1]


class TestValidation:
    def test_rejects_bad_ilp(self, e870_system):
        with pytest.raises(ValueError):
            advise_smt(e870_system, memory_kernel(), ilp_per_thread=0)

    def test_rejects_no_levels(self, e870_system):
        with pytest.raises(ValueError):
            advise_smt(e870_system, memory_kernel(), candidate_levels=[16])
