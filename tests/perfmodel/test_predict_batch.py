"""Property tests: ``predict_batch`` is bit-identical to a ``predict`` loop.

The batched oracle's only contract is *same bytes, sooner*: for any
list of requests — mixed kinds, mixed parameters, duplicates, empty,
single-element — ``predict_batch(reqs)[i]`` must serialize to exactly
the payload ``predict(reqs[i])`` produces (compared through the serve
protocol's :func:`repro.serve.protocol.canonical`, the same
round-tripped form a daemon caches and ships).  Randomization covers
every zoo machine plus a synthetic system with non-integral knee
exponents, so the ``np.power`` ufunc path is exercised alongside the
exact ``ratio*ratio`` / identity reductions.
"""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch.registry import available_machines, get_system
from repro.perfmodel.oracle import AnalyticOracle, OracleRequest, REQUEST_KINDS
from repro.serve.protocol import canonical

MACHINES = ("power8", "power8-192way", "broadwell", "sparc-t3-4")

#: A spec whose knee exponents hit neither of the exact reductions in
#: ``knee_pow`` (2.0 -> square, 1.0 -> identity), forcing the batch and
#: scalar paths through the same ``np.power`` ufunc.
_CURVY = "curvy-knee"


def _oracles():
    oracles = {name: AnalyticOracle(get_system(name)) for name in MACHINES}
    base = get_system("power8")
    chip = dataclasses.replace(
        base.chip, core_knee_exponent=1.7, memside_knee_exponent=0.8
    )
    oracles[_CURVY] = AnalyticOracle(dataclasses.replace(base, chip=chip))
    return oracles


ORACLES = _oracles()

_PAGE_SIZES = (4096, 64 * 1024, 16 << 20)
_WORKING_SETS = st.integers(min_value=4096, max_value=1 << 36)

# SMT-sensitive fields stay within every machine's smt_ways (broadwell
# has 2) so no request raises: a raising element aborts the whole batch
# call while the loop raises mid-iteration, and the equivalence below
# only quantifies over lists where both sides produce results.
_requests = st.one_of(
    st.builds(
        OracleRequest,
        kind=st.just("chase"),
        working_set=_WORKING_SETS,
        page_size=st.sampled_from(_PAGE_SIZES),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("lat_mem"),
        working_sets=st.one_of(
            st.just(()),  # the default Figure-2 sweep
            st.lists(_WORKING_SETS, min_size=1, max_size=12).map(tuple),
        ),
        page_size=st.sampled_from(_PAGE_SIZES),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("stream_sweep"),
        working_set=_WORKING_SETS,
        depth=st.integers(min_value=0, max_value=7),
        page_size=st.sampled_from(_PAGE_SIZES),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("prefetch_sweep"),
        working_set=st.integers(min_value=64 * 1024, max_value=64 << 20),
        depths=st.lists(
            st.integers(min_value=1, max_value=7),
            min_size=1, max_size=7, unique=True,
        ).map(tuple),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("stride"),
        stride_lines=st.integers(min_value=1, max_value=512),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("stream_scaling"),
        thread_counts=st.lists(
            st.sampled_from([1, 2]), min_size=1, max_size=2, unique=True
        ).map(tuple),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("random_access"),
        thread_counts=st.lists(
            st.sampled_from([1, 2]), min_size=1, max_size=2, unique=True
        ).map(tuple),
        stream_counts=st.lists(
            st.sampled_from([1, 2, 4, 8, 16]), min_size=1, max_size=4, unique=True
        ).map(tuple),
    ),
    st.builds(
        OracleRequest,
        kind=st.just("stream_point"),
        threads_per_core=st.sampled_from([1, 2]),
        read_ratio=st.sampled_from([0.5, 1.0, 2.0, 3.0]),
        write_ratio=st.sampled_from([0.0, 1.0, 2.0]),
    ),
    st.builds(
        OracleRequest,
        kind=st.sampled_from(["stream_table3", "dscr_model", "dcbt", "roofline"]),
    ),
)


def assert_batch_equals_loop(oracle, reqs):
    loop = [oracle.predict(r) for r in reqs]
    batch = oracle.predict_batch(reqs)
    assert len(batch) == len(reqs)
    for i, (a, b, req) in enumerate(zip(loop, batch, reqs)):
        assert canonical(a.to_dict()) == canonical(b.to_dict()), (
            f"element {i} ({req.kind}) diverged"
        )
        assert b.request is req  # results are scattered back in order
    # Duplicate requests may share template row/metric objects, but each
    # caller must get its own result instance to stamp/own.
    assert len({id(b) for b in batch}) == len(batch)


@given(
    machine=st.sampled_from(list(ORACLES)),
    reqs=st.lists(_requests, min_size=0, max_size=24),
)
@settings(max_examples=80, deadline=None)
def test_predict_batch_is_bit_identical(machine, reqs):
    assert_batch_equals_loop(ORACLES[machine], reqs)


@given(
    machine=st.sampled_from(list(ORACLES)),
    req=_requests,
    copies=st.integers(min_value=2, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_duplicate_heavy_batches(machine, req, copies):
    """All-duplicate batches (the serve daemon's common case)."""
    assert_batch_equals_loop(ORACLES[machine], [req] * copies)


def test_empty_batch():
    assert ORACLES["power8"].predict_batch([]) == []


def test_single_element_every_kind():
    """Deterministic single-request coverage of all 12 kinds."""
    oracle = ORACLES["power8"]
    for kind in sorted(REQUEST_KINDS):
        assert_batch_equals_loop(oracle, [OracleRequest(kind=kind)])


def test_every_zoo_machine_default_requests():
    """The full registry (not just the sampled subset) stays identical
    on one mixed default batch per machine."""
    reqs = [OracleRequest(kind=kind) for kind in sorted(REQUEST_KINDS)]
    for name in available_machines():
        assert_batch_equals_loop(AnalyticOracle(get_system(name)), reqs)
