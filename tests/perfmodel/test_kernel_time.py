"""Unit tests for the roofline-style kernel time estimator."""

import pytest

from repro.perfmodel.kernel_time import KernelProfile, MachineModel


@pytest.fixture(scope="module")
def model(e870_system):
    return MachineModel(e870_system)


def stream_kernel(**kw):
    defaults = dict(
        name="k", flops=1e12, bytes_read=2e12, bytes_written=1e12, pattern="stream"
    )
    defaults.update(kw)
    return KernelProfile(**defaults)


class TestKernelProfile:
    def test_operational_intensity(self):
        k = stream_kernel()
        assert k.operational_intensity == pytest.approx(1.0 / 3.0)

    def test_read_fraction(self):
        assert stream_kernel().read_byte_fraction == pytest.approx(2 / 3)

    def test_zero_bytes_infinite_oi(self):
        k = stream_kernel(bytes_read=0, bytes_written=0)
        assert k.operational_intensity == float("inf")

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            stream_kernel(flops=-1)

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            stream_kernel(pattern="zigzag")

    def test_blocked_requires_block_bytes(self):
        with pytest.raises(ValueError):
            stream_kernel(pattern="blocked")

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            stream_kernel(flop_efficiency=0.0)
        with pytest.raises(ValueError):
            stream_kernel(parallel_efficiency=1.5)


class TestTimeEstimates:
    def test_memory_bound_kernel_time(self, model, e870_system):
        """A zero-flop kernel takes bytes / bandwidth seconds."""
        k = stream_kernel(flops=0)
        t = model.time(k)
        bw = model.effective_bandwidth(k)
        assert t == pytest.approx(3e12 / bw)

    def test_compute_bound_kernel_time(self, model, e870_system):
        k = stream_kernel(flops=1e15, bytes_read=1e6, bytes_written=0,
                          flop_efficiency=1.0)
        t = model.time(k)
        assert t == pytest.approx(1e15 / (e870_system.peak_gflops * 1e9), rel=0.01)

    def test_roofline_max_semantics(self, model):
        """Time is the max of the two components, not the sum."""
        k = stream_kernel()
        t_mem_only = model.time(stream_kernel(flops=0))
        assert model.time(k) >= t_mem_only

    def test_parallel_efficiency_scales_time(self, model):
        fast = stream_kernel()
        slow = stream_kernel(parallel_efficiency=0.5)
        assert model.time(slow) == pytest.approx(2 * model.time(fast))

    def test_random_pattern_slower_than_stream(self, model):
        s = stream_kernel()
        r = stream_kernel(pattern="random")
        assert model.time(r) > model.time(s)

    def test_blocked_small_blocks_slower_than_large(self, model):
        small = stream_kernel(pattern="blocked", block_bytes=512)
        large = stream_kernel(pattern="blocked", block_bytes=1 << 20)
        assert model.time(small) > model.time(large)

    def test_fewer_cores_slower(self, model):
        full = stream_kernel(flops=1e14, bytes_read=1e9, bytes_written=0,
                             flop_efficiency=1.0)
        half = stream_kernel(flops=1e14, bytes_read=1e9, bytes_written=0,
                             flop_efficiency=1.0, cores=32)
        assert model.time(half) > model.time(full)

    def test_gflops_consistency(self, model):
        k = stream_kernel()
        assert model.gflops(k) == pytest.approx(k.flops / model.time(k) / 1e9)

    def test_zero_work_zero_time(self, model):
        k = stream_kernel(flops=0, bytes_read=0, bytes_written=0)
        assert model.time(k) == 0.0
        assert model.gflops(k) == 0.0

    def test_rejects_bad_core_count(self, model):
        with pytest.raises(ValueError):
            model.time(stream_kernel(cores=1000))


class TestEdgeCases:
    """Degenerate working sets and shapes the oracle may produce."""

    def test_write_only_kernel(self, model):
        k = stream_kernel(flops=0, bytes_read=0, bytes_written=1e12)
        assert k.read_byte_fraction == 0.0
        assert model.time(k) > 0.0

    def test_zero_byte_kernel_reads_like_pure_compute(self, model):
        k = stream_kernel(bytes_read=0, bytes_written=0)
        assert k.read_byte_fraction == 1.0
        assert model.time(k) == pytest.approx(
            k.flops / model.compute_rate(k)
        )

    def test_single_core_single_thread(self, model):
        k = stream_kernel(flops=0, cores=1, threads_per_core=1)
        bw = model.effective_bandwidth(k)
        assert 0 < bw < model.effective_bandwidth(stream_kernel(flops=0))

    def test_one_line_blocked_kernel(self, model, e870_system):
        """The smallest legal block (one cache line) still has positive
        efficiency — the degenerate all-cold-lines case."""
        line = e870_system.chip.core.l1d.line_size
        k = stream_kernel(flops=0, pattern="blocked", block_bytes=line)
        assert 0 < model.effective_bandwidth(k) < model.effective_bandwidth(
            stream_kernel(flops=0)
        )

    def test_time_monotone_in_bytes(self, model):
        """More traffic can never make a memory-bound kernel faster."""
        times = [
            model.time(stream_kernel(flops=0, bytes_read=b, bytes_written=0))
            for b in (1e9, 1e10, 1e11, 1e12)
        ]
        assert times == sorted(times)
