"""Table III / Figure 3 reproduction tests: STREAM scaling models."""

import pytest

from repro.perfmodel.stream_model import (
    chip_stream_bandwidth,
    fig3a_points,
    fig3b_points,
    system_stream_bandwidth,
    table3_rows,
)
from repro.reporting import paper_values as paper
from repro.reporting.compare import is_monotone, within_factor

GB = 1e9


class TestTable3:
    def test_every_row_within_10pct(self, e870_system):
        for row in table3_rows(e870_system):
            key = (int(row["read"]), int(row["write"]))
            assert within_factor(row["bandwidth"] / GB, paper.TABLE3_GBS[key], 1.10), key

    def test_peak_at_2_to_1(self, e870_system):
        rows = table3_rows(e870_system)
        best = max(rows, key=lambda r: r["bandwidth"])
        assert (best["read"], best["write"]) == (2, 1)

    def test_write_only_under_half_of_peak(self, e870_system):
        rows = {(r["read"], r["write"]): r["bandwidth"] for r in table3_rows(e870_system)}
        assert rows[(0, 1)] < 0.5 * rows[(2, 1)]

    def test_peak_is_80pct_of_theoretical(self, e870_system):
        """The paper: 1,472 GB/s is 80% of the 1,843 GB/s spec peak."""
        peak = max(r["bandwidth"] for r in table3_rows(e870_system))
        frac = peak / e870_system.peak_memory_bandwidth
        assert frac == pytest.approx(0.80, abs=0.03)


class TestFig3a:
    def test_single_core_saturation(self, e870_system):
        points = fig3a_points(e870_system.chip)
        bws = [p.bandwidth for p in points]
        assert is_monotone(bws, increasing=True)
        assert within_factor(bws[-1] / GB, paper.FIG3["single_core_peak_gbs"], 1.05)

    def test_needs_multithreading(self, e870_system):
        """One thread cannot reach the core's sustainable rate."""
        points = {p.threads_per_core: p.bandwidth for p in fig3a_points(e870_system.chip)}
        assert points[1] < 0.5 * points[8]


class TestFig3b:
    def test_chip_saturation_level(self, e870_system):
        points = fig3b_points(e870_system.chip)
        peak = max(p.bandwidth for p in points) / GB
        assert within_factor(peak, paper.FIG3["single_chip_peak_gbs"], 1.05)

    def test_monotone_in_cores(self, e870_system):
        for t in (1, 2, 4, 8):
            bws = [
                chip_stream_bandwidth(e870_system.chip, c, t) for c in (1, 2, 4, 8)
            ]
            assert is_monotone(bws, increasing=True)

    def test_full_chip_is_link_limited(self, e870_system):
        """8 cores x 26 GB/s exceeds the chip links: the link model caps it."""
        from repro.core.lsu import core_stream_bandwidth

        core_sum = 8 * core_stream_bandwidth(e870_system.chip, 8)
        chip = chip_stream_bandwidth(e870_system.chip, 8, 8)
        assert chip < core_sum

    def test_one_core_is_core_limited(self, e870_system):
        from repro.core.lsu import core_stream_bandwidth

        chip = chip_stream_bandwidth(e870_system.chip, 1, 8)
        assert chip == pytest.approx(core_stream_bandwidth(e870_system.chip, 8))


class TestValidation:
    def test_rejects_zero_cores(self, e870_system):
        with pytest.raises(ValueError):
            chip_stream_bandwidth(e870_system.chip, 0, 1)

    def test_rejects_too_many_cores(self, e870_system):
        with pytest.raises(ValueError):
            chip_stream_bandwidth(e870_system.chip, 9, 1)

    def test_system_stream_scaling(self, e870_system):
        full = system_stream_bandwidth(e870_system)
        per_chip = chip_stream_bandwidth(e870_system.chip, 8, 8)
        assert full == pytest.approx(8 * per_chip)
