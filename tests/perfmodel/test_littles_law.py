"""Figure 4 reproduction tests: the random-access bandwidth model."""

import pytest

from repro.perfmodel.littles_law import LMQ_ENTRIES, RandomAccessModel
from repro.reporting import paper_values as paper
from repro.reporting.compare import is_monotone, within_factor

GB = 1e9


@pytest.fixture(scope="module")
def model(e870_system):
    return RandomAccessModel(e870_system)


class TestCeiling:
    def test_peak_near_500_gbs(self, model):
        assert within_factor(model.peak_bandwidth / GB, paper.FIG4["peak_random_gbs"], 1.1)

    def test_fraction_of_read_peak(self, model, e870_system):
        frac = model.peak_bandwidth / e870_system.peak_read_bandwidth
        assert frac == pytest.approx(paper.FIG4["fraction_of_read_peak"], abs=0.02)

    def test_best_config_approaches_peak(self, model):
        best = model.bandwidth(8, 32)
        assert best > 0.95 * model.peak_bandwidth


class TestConcurrencyScaling:
    def test_nearly_linear_at_low_concurrency(self, model):
        """The paper: almost linear increase with threads below 4
        outstanding requests per thread."""
        b1 = model.bandwidth(1, 1)
        b2 = model.bandwidth(2, 1)
        b4 = model.bandwidth(4, 1)
        assert b2 / b1 == pytest.approx(2.0, rel=0.15)
        assert b4 / b1 == pytest.approx(4.0, rel=0.30)

    def test_monotone_in_threads(self, model):
        for s in (1, 2, 4):
            bws = [model.bandwidth(t, s) for t in (1, 2, 4, 8)]
            assert is_monotone(bws, increasing=True)

    def test_monotone_in_streams(self, model):
        for t in (1, 2, 4, 8):
            bws = [model.bandwidth(t, s) for s in (1, 2, 4, 8, 16)]
            assert is_monotone(bws, increasing=True)

    def test_smt8_reaches_peak_with_4_streams(self, model):
        """The paper's point: 8-way SMT needs only 4 concurrent lists,
        where 4-way SMT would need an impractical 16."""
        smt8 = model.bandwidth(8, 4)
        assert smt8 > 0.9 * model.peak_bandwidth

    def test_smt4_needs_16_streams_for_same(self, model):
        smt4_few = model.bandwidth(4, 4)
        smt4_many = model.bandwidth(4, 16)
        assert smt4_few < 0.9 * model.peak_bandwidth
        assert smt4_many > 0.9 * model.peak_bandwidth


class TestLMQCap:
    def test_streams_beyond_lmq_do_not_help(self, model):
        at_cap = model.bandwidth(8, LMQ_ENTRIES // 8 + 2)
        beyond = model.bandwidth(8, 64)
        assert beyond == pytest.approx(at_cap, rel=0.02)

    def test_core_concurrency_capped(self, model):
        assert model.core_concurrency(8, 64) == LMQ_ENTRIES
        assert model.core_concurrency(2, 2) == 4

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.core_concurrency(0, 1)
        with pytest.raises(ValueError):
            model.core_concurrency(1, 0)
        with pytest.raises(ValueError):
            model.core_concurrency(9, 1)


class TestEdgeCases:
    """Degenerate machines the oracle may hand the model."""

    def test_zero_latency_link_saturates_immediately(self, model, e870_system):
        """A zero-latency memory gives N_half = 0; any concurrency must
        return the ceiling rather than divide by zero."""
        class _ZeroLatency:
            def interleaved_latency_ns(self, home):
                return 0.0

        fast = RandomAccessModel(e870_system)
        fast._latency = _ZeroLatency()
        assert fast.bandwidth(1, 1) == pytest.approx(fast.peak_bandwidth)
        assert fast.bandwidth(8, 32) == pytest.approx(fast.peak_bandwidth)

    def test_single_thread_single_stream_floor(self, model, e870_system):
        """The minimum configuration still follows Little's law."""
        line = e870_system.chip.core.l1d.line_size
        n = e870_system.num_cores  # one in-flight line per core
        expected = n * line / (model.unloaded_latency_ns * 1e-9)
        assert model.bandwidth(1, 1) == pytest.approx(expected, rel=0.05)

    def test_lmq_of_one_serializes_everything(self, e870_system):
        tiny = RandomAccessModel(e870_system, lmq_entries=1)
        assert tiny.core_concurrency(8, 32) == 1
        assert tiny.bandwidth(8, 32) == pytest.approx(tiny.bandwidth(1, 1))

    def test_sweep_respects_custom_grids(self, model):
        points = model.sweep(thread_counts=(1,), stream_counts=(1,))
        assert len(points) == 1
        assert points[0].concurrency == model.system.num_cores


class TestSweep:
    def test_grid(self, model):
        points = model.sweep(thread_counts=(1, 8), stream_counts=(1, 4))
        assert len(points) == 4
        assert all(p.bandwidth > 0 for p in points)
        peak_point = max(points, key=lambda p: p.bandwidth)
        assert (peak_point.threads_per_core, peak_point.streams_per_thread) == (8, 4)
