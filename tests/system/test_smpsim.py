"""Tests for the full-SMP trace simulator."""

import pytest

from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import SMPTopology
from repro.mem.trace import random_chase, sequential
from repro.numa import AffinityMap, Allocation, InterleavePolicy, LocalPolicy
from repro.system import SMPSimulator

MB = 1 << 20


@pytest.fixture
def sim(e870_system):
    aff = AffinityMap.compact(e870_system, 16, smt=2)
    return SMPSimulator(e870_system, aff)


class TestAllocations:
    def test_register_and_home(self, sim):
        sim.register(Allocation("a", 0, MB, LocalPolicy(3)))
        assert sim.home_of(0) == 3
        assert sim.home_of(MB - 1) == 3
        assert sim.home_of(MB) is None

    def test_overlap_rejected(self, sim):
        sim.register(Allocation("a", 0, 2 * MB, LocalPolicy(0)))
        with pytest.raises(ValueError, match="overlaps"):
            sim.register(Allocation("b", MB, MB, LocalPolicy(1)))

    def test_adjacent_allowed(self, sim):
        sim.register(Allocation("a", 0, MB, LocalPolicy(0)))
        sim.register(Allocation("b", MB, MB, LocalPolicy(1)))
        assert sim.home_of(MB) == 1

    def test_unmapped_access_rejected(self, sim):
        with pytest.raises(KeyError):
            sim.read(0, 0)


class TestLatencyStructure:
    """The trace-driven machine reproduces Table IV's structure."""

    @pytest.fixture
    def chase(self, e870_system):
        aff = AffinityMap.compact(e870_system, 8, smt=1)
        sim = SMPSimulator(e870_system, aff)
        sim.register(Allocation("local", 0, 32 * MB, LocalPolicy(0)))
        sim.register(Allocation("intra", 64 * MB, 32 * MB, LocalPolicy(1)))
        sim.register(Allocation("inter", 128 * MB, 32 * MB, LocalPolicy(4)))

        def run(base):
            return sim.run_trace(
                random_chase(16 * MB, 128, passes=1, seed=2, start=base), thread=0
            )

        return {
            "local": run(0),
            "intra": run(64 * MB),
            "inter": run(128 * MB),
        }

    def test_ordering(self, chase):
        assert chase["local"] < chase["intra"] < chase["inter"]

    def test_matches_analytic_model(self, chase, e870_system):
        """Trace-measured remote penalties track the closed-form model."""
        lat = LatencyModel(SMPTopology(e870_system))
        measured_intra = chase["intra"] - chase["local"]
        measured_inter = chase["inter"] - chase["local"]
        model_intra = lat.pair_latency_ns(0, 1) - lat.local_latency_ns()
        model_inter = lat.pair_latency_ns(0, 4) - lat.local_latency_ns()
        assert measured_intra == pytest.approx(model_intra, rel=0.25)
        assert measured_inter == pytest.approx(model_inter, rel=0.25)

    def test_remote_fraction_tracked(self, e870_system):
        aff = AffinityMap.compact(e870_system, 8, smt=1)
        sim = SMPSimulator(e870_system, aff)
        sim.register(Allocation("r", 0, MB, LocalPolicy(5)))
        for addr in sequential(0, 64 * 1024, 128):
            sim.read(0, addr)
        assert sim.stats.remote_fraction == 1.0


class TestCaching:
    def test_remote_data_caches_locally(self, sim):
        sim.register(Allocation("r", 0, MB, LocalPolicy(7)))
        cold = sim.read(0, 0)
        warm = sim.read(0, 0)
        assert warm < 3.0 < cold

    def test_interleaved_allocation(self, sim, e870_system):
        sim.register(Allocation("i", 0, 16 * MB, InterleavePolicy(range(8))))
        homes = {sim.home_of(p * 64 * 1024) for p in range(16)}
        assert homes == set(range(8))

    def test_threads_use_their_own_chips(self, e870_system):
        aff = AffinityMap.scatter(e870_system, 8)  # one thread per chip
        sim = SMPSimulator(e870_system, aff)
        sim.register(Allocation("x", 0, MB, LocalPolicy(0)))
        for t in range(8):
            sim.read(t, 0)
        assert len(sim.stats.per_chip_accesses) == 8

    def test_empty_trace_rejected(self, sim):
        sim.register(Allocation("a", 0, MB, LocalPolicy(0)))
        with pytest.raises(ValueError, match="empty"):
            sim.run_trace([], thread=0)
