"""Tests for the explicit calibration pass."""

import pytest

from repro.calibration.fit import (
    fit_hop_latencies,
    fit_mix_efficiency,
    paper_table3_measurements,
    paper_table4_latencies,
    predict_bandwidth,
)
from repro.mem.centaur import (
    READ_LANE_EFFICIENCY,
    TURNAROUND_COEF,
    WRITE_LANE_EFFICIENCY,
    mix_efficiency,
    read_fraction,
)


class TestMixFit:
    @pytest.fixture(scope="class")
    def fit(self, e870_system):
        return fit_mix_efficiency(e870_system.chip, 8, paper_table3_measurements())

    def test_fit_quality(self, fit):
        """The three-parameter model explains Table III within a few %."""
        assert fit.max_relative_error < 0.05
        assert fit.mean_relative_error < 0.025

    def test_recovers_shipped_constants(self, fit):
        """The constants shipped in repro.mem.centaur are reproducible
        from the paper's data, not hand-picked."""
        assert fit.read_lane_efficiency == pytest.approx(READ_LANE_EFFICIENCY, abs=0.03)
        assert fit.write_lane_efficiency == pytest.approx(WRITE_LANE_EFFICIENCY, abs=0.04)
        assert fit.turnaround_coef == pytest.approx(TURNAROUND_COEF, abs=0.06)

    def test_fitted_efficiency_close_to_shipped(self, fit):
        for f in (0.0, 0.25, 0.5, 2 / 3, 1.0):
            assert fit.efficiency(f) == pytest.approx(mix_efficiency(f), abs=0.04)

    def test_turnaround_term_is_needed(self, e870_system):
        """Forcing the turnaround coefficient to ~0 fits much worse."""
        measured = paper_table3_measurements()

        def rms_with(coef):
            errs = []
            for ratio, target in measured.items():
                f = read_fraction(*ratio)
                pred = predict_bandwidth(
                    e870_system.chip, 8, f,
                    (READ_LANE_EFFICIENCY, WRITE_LANE_EFFICIENCY, coef),
                )
                errs.append(abs(pred - target) / target)
            return max(errs)

        assert rms_with(0.0) > 2 * rms_with(TURNAROUND_COEF)

    def test_needs_enough_points(self, e870_system):
        with pytest.raises(ValueError, match="at least 3"):
            fit_mix_efficiency(e870_system.chip, 8, {(2, 1): 1.4e12})


class TestLatencyFit:
    @pytest.fixture(scope="class")
    def fit(self):
        return fit_hop_latencies(paper_table4_latencies())

    def test_decomposition_sane(self, fit):
        assert 80 < fit.local_dram_ns < 130
        assert fit.a_hop_ns > fit.x_hop_ns  # inter-group hops cost more
        assert fit.transit_x_ns > 0

    def test_residual_bounded_by_layout_deltas(self, fit):
        """Layout noise in Table IV is a few ns; the fit absorbs the rest."""
        assert fit.max_abs_error_ns < 10.0

    def test_reconstructs_intra_group_latency(self, fit):
        reconstructed = fit.local_dram_ns + fit.x_hop_ns
        assert reconstructed == pytest.approx(127.0, abs=8.0)  # 123-133 band

    def test_reconstructs_inter_group_latency(self, fit):
        same_pos = fit.local_dram_ns + fit.a_hop_ns
        assert same_pos == pytest.approx(213.0, abs=8.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_hop_latencies({})


class TestCLITools:
    def test_lat_mem_single_point(self, capsys):
        from repro.tools.lat_mem import main

        assert main(["--size", "32M"]) == 0
        out = capsys.readouterr().out.split()
        assert int(out[0]) == 32 << 20
        assert 10 < float(out[1]) < 40

    def test_lat_mem_sweep_monotone(self, capsys):
        from repro.tools.lat_mem import main

        assert main(["--min-size", "64K", "--max-size", "1M"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        lats = [float(l.split()[1]) for l in lines]
        assert lats == sorted(lats)

    def test_lat_mem_trace_mode(self, capsys):
        from repro.tools.lat_mem import main

        assert main(["--size", "256K", "--trace"]) == 0
        out = capsys.readouterr().out.split()
        assert 1 < float(out[1]) < 20

    def test_lat_mem_size_parse(self):
        from repro.tools.lat_mem import parse_size

        assert parse_size("64K") == 64 << 10
        assert parse_size("16M") == 16 << 20
        assert parse_size("8G") == 8 << 30
        with pytest.raises(Exception):
            parse_size("lots")

    def test_stream_default(self, capsys):
        from repro.tools.stream import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Triad" in out

    def test_stream_table3(self, capsys):
        from repro.tools.stream import main

        assert main(["--table3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 9

    def test_stream_figure3_mode(self, capsys):
        from repro.tools.stream import main

        assert main(["--cores", "1", "--threads", "8"]) == 0
        assert "26." in capsys.readouterr().out

    def test_roofline_oi(self, capsys):
        from repro.tools.roofline_tool import main

        assert main(["--oi", "1.0"]) == 0
        assert float(capsys.readouterr().out) == pytest.approx(1843.2, rel=0.01)

    def test_roofline_kernel_analysis(self, capsys):
        from repro.tools.roofline_tool import main

        assert main(["--flops", "1e12", "--read", "1e11", "--write", "2e12"]) == 0
        out = capsys.readouterr().out
        assert "memory bound" in out
        assert "rebalance" in out

    def test_roofline_kernels_listing(self, capsys):
        from repro.tools.roofline_tool import main

        assert main(["--kernels"]) == 0
        assert "LBMHD" in capsys.readouterr().out
