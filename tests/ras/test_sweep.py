"""Degradation sweeps: monotonicity, zero-rate bit-exactness, selftest."""

import pytest

from repro.perfmodel.stream_model import table3_rows
from repro.ras import (
    FaultInjector,
    InjectionPlan,
    degraded_system_stream_bandwidth,
    format_sweep,
    ras_sweep,
)
from repro.ras.sweep import DEFAULT_SWEEP_SPEC, ras_selftest


@pytest.fixture(scope="module")
def sweep_points(e870_system):
    return ras_sweep(e870_system, rates=(0.0, 1e-4, 1e-3, 1e-2),
                     accesses=3000, working_set=4 << 20)


class TestSweep:
    def test_zero_rate_matches_nominal_bit_for_bit(self, sweep_points, e870_system):
        nominal = degraded_system_stream_bandwidth(e870_system, None)
        assert sweep_points[0].bandwidth == nominal
        assert sweep_points[0].bandwidth_fraction == 1.0
        assert sweep_points[0].counters == {}
        assert sweep_points[0].added_latency_ns == 0.0

    def test_bandwidth_monotone_nonincreasing(self, sweep_points):
        bw = [p.bandwidth for p in sweep_points]
        assert all(a >= b for a, b in zip(bw, bw[1:]))
        assert bw[0] > bw[-1]

    def test_latency_monotone_nondecreasing(self, sweep_points):
        lat = [p.latency_ns for p in sweep_points]
        assert all(a <= b for a, b in zip(lat, lat[1:]))
        assert lat[-1] > lat[0]

    def test_rate_out_of_range_rejected(self, e870_system):
        with pytest.raises(ValueError, match="rates must be in"):
            ras_sweep(e870_system, rates=(2.0,), accesses=10)

    def test_format_sweep_renders_table(self, sweep_points):
        text = format_sweep(sweep_points)
        assert "fault rate" in text
        assert "vs nominal" in text
        assert "100.00%" in text


class TestZeroRateTable3:
    def test_every_mix_bit_exact(self, e870_system):
        """Zero-rate injection reproduces the calibrated Table III numbers."""
        zero = InjectionPlan.parse(DEFAULT_SWEEP_SPEC).scaled(0.0)
        for row in table3_rows(e870_system):
            degraded = degraded_system_stream_bandwidth(
                e870_system, FaultInjector(zero),
                read_ratio=row["read"], write_ratio=row["write"],
            )
            assert degraded == row["bandwidth"], (row["read"], row["write"])


@pytest.mark.slow
class TestSelftest:
    def test_selftest_passes(self):
        ok, lines = ras_selftest(seed=7, n_accesses=3000)
        assert ok, "\n".join(lines)
        assert any("bit-exact" in line for line in lines)
