"""ECC classification: the verdict partition and its cost model."""

import pytest

from repro.ras import EccMode, EccModel, EccVerdict, FaultEvent, FaultKind, parse_ecc_mode


def fault(bits=1, symbols=1):
    return FaultEvent(kind=FaultKind.DRAM_BIT_FLIP, seq=1, bits=bits, symbols=symbols)


class TestParse:
    @pytest.mark.parametrize("text,mode", [
        ("secded", EccMode.SECDED),
        ("SEC-DED", EccMode.SECDED),
        ("chipkill", EccMode.CHIPKILL),
        (" none ", EccMode.NONE),
        ("off", EccMode.NONE),
    ])
    def test_aliases(self, text, mode):
        assert parse_ecc_mode(text) is mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown ECC mode"):
            parse_ecc_mode("raid5")


class TestSecded:
    model = EccModel(mode=EccMode.SECDED)

    def test_single_bit_corrected(self):
        assert self.model.classify(fault(bits=1)) is EccVerdict.CORRECTED

    def test_double_bit_detected(self):
        assert self.model.classify(fault(bits=2, symbols=1)) is EccVerdict.DETECTED_UE

    def test_triple_bit_silent(self):
        assert self.model.classify(fault(bits=3, symbols=1)) is EccVerdict.SILENT


class TestChipkill:
    model = EccModel(mode=EccMode.CHIPKILL)

    def test_one_symbol_corrected_regardless_of_bits(self):
        # A whole-device failure confined to one symbol is chipkill's
        # headline case: corrected even at 8 flipped bits.
        assert self.model.classify(fault(bits=8, symbols=1)) is EccVerdict.CORRECTED

    def test_two_symbols_detected(self):
        assert self.model.classify(fault(bits=2, symbols=2)) is EccVerdict.DETECTED_UE

    def test_three_symbols_silent(self):
        assert self.model.classify(fault(bits=3, symbols=3)) is EccVerdict.SILENT


class TestNone:
    def test_everything_silent(self):
        model = EccModel(mode=EccMode.NONE)
        for bits, symbols in ((1, 1), (2, 2), (8, 3)):
            assert model.classify(fault(bits, symbols)) is EccVerdict.SILENT


class TestRecoveryCost:
    def test_latency_ordering(self):
        model = EccModel()
        corrected = model.recovery_latency_ns(EccVerdict.CORRECTED)
        ue = model.recovery_latency_ns(EccVerdict.DETECTED_UE)
        assert 0 < corrected < ue

    def test_silent_faults_are_free(self):
        # By definition: the machine never notices silent corruption.
        assert EccModel().recovery_latency_ns(EccVerdict.SILENT) == 0.0


class TestFaultEventValidation:
    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError, match="at least one bit"):
            fault(bits=0)

    def test_symbols_cannot_exceed_bits(self):
        with pytest.raises(ValueError, match="symbols"):
            fault(bits=2, symbols=3)
