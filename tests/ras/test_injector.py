"""The injection-plan grammar and the FaultInjector's site semantics."""

import pytest

from repro.mem.dram import DRAMModel
from repro.pmu import events as ev
from repro.ras import (
    EccMode,
    FaultClause,
    FaultInjector,
    FaultKind,
    InjectionPlan,
    build_injector,
    deterministic_draw,
)


class TestDeterministicDraw:
    def test_pure_function(self):
        assert deterministic_draw(1, 2, 3) == deterministic_draw(1, 2, 3)

    def test_in_unit_interval(self):
        draws = [deterministic_draw(s, 0x100, n) for s in range(4) for n in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_sites_are_independent(self):
        a = [deterministic_draw(0, 0x100, n) for n in range(50)]
        b = [deterministic_draw(0, 0x200, n) for n in range(50)]
        assert a != b

    def test_empirical_rate_tracks_threshold(self):
        hits = sum(deterministic_draw(3, 0x100, n) < 0.1 for n in range(10_000))
        assert 800 <= hits <= 1200


class TestPlanParsing:
    def test_round_trip(self):
        plan = InjectionPlan.parse(
            "dram_bit:rate=1e-3,bits=2,symbols=2;link_crc:rate=5e-4;"
            "stuck_row:row=42;bank_fail:at=10;tlb_parity:rate=1e-4,penalty=200;"
            "ecc:secded"
        )
        assert plan.ecc is EccMode.SECDED
        kinds = [c.kind for c in plan.clauses]
        assert kinds == [
            FaultKind.DRAM_BIT_FLIP, FaultKind.LINK_CRC, FaultKind.DRAM_STUCK_ROW,
            FaultKind.DRAM_BANK_FAIL, FaultKind.TLB_PARITY,
        ]
        assert plan.clauses[0].bits == 2
        assert plan.clauses[2].row == 42
        assert plan.clauses[3].at == 10
        assert plan.clauses[4].penalty_cycles == 200.0
        assert "secded" in plan.describe()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            InjectionPlan.parse("cosmic_ray:rate=1")

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown key"):
            InjectionPlan.parse("dram_bit:chance=0.5")

    def test_rate_out_of_range_raises(self):
        with pytest.raises(ValueError, match="rate must be in"):
            InjectionPlan.parse("dram_bit:rate=1.5")

    def test_stuck_row_requires_row(self):
        with pytest.raises(ValueError, match="row="):
            InjectionPlan.parse("stuck_row:rate=0.1")

    def test_scaled_only_touches_rate_clauses(self):
        plan = InjectionPlan.parse("dram_bit:rate=0;bank_fail:at=5;link_crc:rate=0")
        scaled = plan.scaled(0.25)
        assert [c.rate for c in scaled.clauses] == [0.25, 0.0, 0.25]
        assert scaled.clauses[1].at == 5


class TestInjectorSites:
    def test_zero_rate_injects_nothing(self):
        injector = FaultInjector(InjectionPlan.parse("dram_bit:rate=0;link_crc:rate=0"))
        dram = DRAMModel(ras=injector)
        assert sum(injector.on_dram_access(dram, a * 128, 0, 0) for a in range(500)) == 0.0
        assert injector.bank.nonzero() == {}
        assert injector.added_dram_latency_ns == 0.0

    def test_trigger_clause_fires_exactly_once(self):
        injector = FaultInjector(InjectionPlan.parse("dram_bit:rate=0,bits=2;bank_fail:at=3"))
        dram = DRAMModel(num_banks=8)
        for a in range(10):
            injector.on_dram_access(dram, a * 128, 0, 0)
        assert dram.num_banks == 7
        assert injector.bank[ev.PM_DRAM_BANK_RETIRED] == 1
        assert injector.bank[ev.PM_RAS_FAULT_INJECTED] == 1

    def test_higher_rate_superset(self):
        """The fault set at a higher rate contains the lower-rate set."""
        def fired(rate):
            clause = FaultClause(kind=FaultKind.DRAM_BIT_FLIP, rate=rate)
            return {n for n in range(1, 2000) if clause.fires(seed=5, site=0x100, count=n)}

        low, high = fired(0.01), fired(0.05)
        assert low <= high
        assert len(low) < len(high)

    def test_stuck_row_hits_only_its_row(self):
        injector = FaultInjector(InjectionPlan.parse("stuck_row:row=7;ecc:secded"))
        dram = DRAMModel()
        assert injector.on_dram_access(dram, 0, 0, row=3) == 0.0
        assert injector.on_dram_access(dram, 0, 0, row=7) > 0.0
        assert injector.bank[ev.PM_MEM_ECC_CORRECTED] == 1

    def test_link_crc_replays_and_counts(self):
        injector = FaultInjector(InjectionPlan.parse("link_crc:rate=0.2"), seed=1)
        total = sum(injector.on_link_transfer() for _ in range(400))
        crc = injector.bank[ev.PM_LINK_CRC_ERROR]
        assert crc > 0
        assert injector.bank[ev.PM_LINK_REPLAY] >= crc
        assert total > 0.0
        assert injector.added_replay_latency_ns == pytest.approx(total)

    def test_erat_miss_parity_penalty(self):
        injector = FaultInjector(
            InjectionPlan.parse("tlb_parity:rate=1,penalty=123")
        )
        assert injector.on_erat_miss(page=0) == 123.0
        assert injector.bank[ev.PM_TLB_PARITY] == 1

    def test_recorded_events_match_counters(self):
        plan = InjectionPlan.parse("dram_bit:rate=0.05;ecc:chipkill")
        injector = FaultInjector(plan, seed=2, record_events=True)
        dram = DRAMModel()
        for a in range(300):
            injector.on_dram_access(dram, a * 128, 0, 0)
        assert len(injector.events) == injector.bank[ev.PM_RAS_FAULT_INJECTED]

    def test_derived_metrics_keys(self):
        injector = FaultInjector(InjectionPlan.parse("dram_bit:rate=0"))
        metrics = injector.derived_metrics()
        assert metrics["ras_read_bw_factor"] == 1.0
        assert metrics["ras_write_bw_factor"] == 1.0
        assert metrics["ras_added_dram_latency_ns"] == 0.0


class TestBuildInjector:
    def test_none_spec_passes_through(self):
        assert build_injector(None) is None

    def test_spec_builds_injector(self):
        injector = build_injector("dram_bit:rate=1e-3;ecc:none", seed=9)
        assert injector.seed == 9
        assert injector.ecc.mode is EccMode.NONE
