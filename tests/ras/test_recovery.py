"""Link replay backoff, lane sparing, and degraded chip specs."""

import pytest

from repro.arch import power8_chip
from repro.ras import LaneState, LinkRasState, ReplayPolicy
from repro.ras.recovery import bounded_backoff_schedule


class TestReplayPolicy:
    def test_backoff_ladder_is_bounded_exponential(self):
        policy = ReplayPolicy(base_ns=40.0, backoff_factor=2.0,
                              max_retries=6, max_backoff_ns=160.0)
        assert bounded_backoff_schedule(policy) == [40.0, 80.0, 160.0, 160.0, 160.0, 160.0]

    def test_first_retry_success(self):
        outcome = ReplayPolicy().replay(lambda k: False)
        assert outcome.retries == 1
        assert outcome.latency_ns == ReplayPolicy().base_ns
        assert not outcome.escalated

    def test_exhausted_budget_escalates(self):
        policy = ReplayPolicy(max_retries=3)
        outcome = policy.replay(lambda k: True)
        assert outcome.retries == 3
        assert outcome.latency_ns == sum(bounded_backoff_schedule(policy))
        assert outcome.escalated

    def test_partial_retry_latency_accumulates(self):
        policy = ReplayPolicy(base_ns=10.0, backoff_factor=2.0, max_retries=4)
        outcome = policy.replay(lambda k: k < 3)  # succeeds on retry 3
        assert outcome.retries == 3
        assert outcome.latency_ns == 10.0 + 20.0 + 40.0
        assert not outcome.escalated

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayPolicy(base_ns=-1.0)
        with pytest.raises(ValueError):
            ReplayPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ReplayPolicy(max_retries=0)


class TestLaneSparing:
    def test_spares_absorb_first_failures_for_free(self):
        lanes = LaneState(width=8, spares=2, errors_per_lane_fail=4)
        for _ in range(8):  # two wear-out failures, both absorbed
            lanes.record_crc_error()
        assert lanes.lanes_failed == 2
        assert lanes.lanes_spared == 2
        assert lanes.bandwidth_factor() == 1.0

    def test_exhausted_spares_degrade_bandwidth_permanently(self):
        lanes = LaneState(width=8, spares=1, errors_per_lane_fail=1)
        for _ in range(3):
            lanes.record_crc_error()
        assert lanes.active_lanes == 6
        assert lanes.bandwidth_factor() == pytest.approx(6 / 8)

    def test_escalated_replay_counts_as_lane_failure(self):
        lanes = LaneState(width=8, spares=0, errors_per_lane_fail=1000)
        assert lanes.record_crc_error(escalated=True)
        assert lanes.bandwidth_factor() == pytest.approx(7 / 8)

    def test_last_lane_never_dies(self):
        lanes = LaneState(width=2, spares=0, errors_per_lane_fail=1)
        for _ in range(10):
            lanes.record_crc_error()
        assert lanes.active_lanes == 1
        assert lanes.bandwidth_factor() == 0.5


class TestDegradedChip:
    def test_pristine_links_return_the_same_spec_object(self):
        chip = power8_chip()
        state = LinkRasState()
        assert state.degraded_chip(chip) is chip  # bit-identity at zero faults

    def test_lane_loss_scales_centaur_bandwidth(self):
        chip = power8_chip()
        state = LinkRasState(read_lanes=LaneState(width=8, spares=0,
                                                  errors_per_lane_fail=1))
        state.read_lanes.record_crc_error()
        degraded = state.degraded_chip(chip)
        assert degraded.centaur.read_bandwidth == pytest.approx(
            chip.centaur.read_bandwidth * 7 / 8
        )
        assert degraded.centaur.write_bandwidth == chip.centaur.write_bandwidth
