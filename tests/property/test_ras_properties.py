"""Property tests for the RAS fault-injection subsystem.

Four guarantees, fuzzed:

* **Partition** — every fault is classified into exactly one ECC
  verdict, and the verdict counters sum to the injected count
  (conservation, including the new RAS invariants).
* **Corrected is invisible** — corrected faults never alter the
  data-visible state: servicing levels and cache contents match a
  fault-free run exactly (only latency may differ).
* **Engine bit-identity** — under the same seed and plan, the scalar
  and batch engines report identical RAS counter banks and identical
  per-access latencies.
* **Monotone superset** — a higher injection rate fires a superset of
  the lower rate's fault events at every site.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.pmu import events as ev
from repro.pmu import read_counters
from repro.pmu.invariants import conservation_violations
from repro.ras import (
    EccMode,
    EccModel,
    EccVerdict,
    FaultClause,
    FaultEvent,
    FaultInjector,
    FaultKind,
    InjectionPlan,
)

CHIP = e870().chip

ecc_modes = st.sampled_from(list(EccMode))
severities = st.tuples(st.integers(1, 8), st.integers(1, 8)).map(
    lambda t: (max(t), min(t))  # bits >= symbols
)

plans = st.builds(
    lambda dram_rate, link_rate, tlb_rate, bits_symbols, mode: InjectionPlan(
        clauses=(
            FaultClause(kind=FaultKind.DRAM_BIT_FLIP, rate=dram_rate,
                        bits=bits_symbols[0], symbols=bits_symbols[1]),
            FaultClause(kind=FaultKind.LINK_CRC, rate=link_rate),
            FaultClause(kind=FaultKind.TLB_PARITY, rate=tlb_rate),
        ),
        ecc=mode,
    ),
    dram_rate=st.floats(0.0, 0.2),
    link_rate=st.floats(0.0, 0.1),
    tlb_rate=st.floats(0.0, 0.2),
    bits_symbols=severities,
    mode=ecc_modes,
)

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 16) - 1), st.booleans()),
    min_size=1,
    max_size=300,
)


def as_arrays(addr_writes, spread=1 << 24):
    scale = max(spread // (1 << 16), 1)
    addrs = np.array([(a * scale) % spread for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    return addrs, writes


@given(mode=ecc_modes, bits_symbols=severities)
@settings(max_examples=200, deadline=None)
def test_every_fault_classified_exactly_once(mode, bits_symbols):
    bits, symbols = bits_symbols
    model = EccModel(mode=mode)
    fault = FaultEvent(kind=FaultKind.DRAM_BIT_FLIP, seq=1, bits=bits, symbols=symbols)
    verdict = model.classify(fault)
    # Exactly one verdict: membership in the enum is the partition.
    assert verdict in EccVerdict
    assert sum(verdict is v for v in EccVerdict) == 1


@given(plan=plans, addr_writes=traces, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
@pytest.mark.slow
def test_injected_faults_conserve(plan, addr_writes, seed):
    """Verdict counters partition the injected count (plus conservation)."""
    addrs, writes = as_arrays(addr_writes)
    hier = BatchMemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=seed))
    hier.access_trace(addrs, writes)
    bank = read_counters(hier)
    assert conservation_violations(bank) == []
    injected = bank.get(ev.PM_RAS_FAULT_INJECTED, 0)
    classified = (
        bank.get(ev.PM_MEM_ECC_CORRECTED, 0)
        + bank.get(ev.PM_MEM_ECC_UE, 0)
        + bank.get(ev.PM_MEM_ECC_SILENT, 0)
        + bank.get(ev.PM_LINK_CRC_ERROR, 0)
        + bank.get(ev.PM_TLB_PARITY, 0)
        + bank.get(ev.PM_DRAM_BANK_RETIRED, 0)
    )
    assert injected == classified


@given(addr_writes=traces, seed=st.integers(0, 2**16), rate=st.floats(0.0, 0.3))
@settings(max_examples=30, deadline=None)
@pytest.mark.slow
def test_corrected_faults_never_alter_visible_state(addr_writes, seed, rate):
    """Single-bit faults under chipkill are always corrected, so the
    data-visible outcome (servicing levels, cache contents) must equal
    the fault-free run's — only latency may differ."""
    addrs, writes = as_arrays(addr_writes)
    plan = InjectionPlan(
        clauses=(FaultClause(kind=FaultKind.DRAM_BIT_FLIP, rate=rate,
                             bits=1, symbols=1),),
        ecc=EccMode.CHIPKILL,
    )
    clean = BatchMemoryHierarchy(CHIP)
    faulty = BatchMemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=seed))
    res_clean = clean.access_trace(addrs, writes)
    res_faulty = faulty.access_trace(addrs, writes)
    bank = read_counters(faulty)
    assert bank.get(ev.PM_MEM_ECC_UE, 0) == 0
    assert bank.get(ev.PM_MEM_ECC_SILENT, 0) == 0
    assert np.array_equal(res_clean.level_codes, res_faulty.level_codes)
    assert clean.l1.dump_state() == faulty.l1.dump_state()
    assert clean.l2.dump_state() == faulty.l2.dump_state()
    # Latency differs exactly by the injector's accounted recovery time.
    delta = float(res_faulty.latency_ns.sum() - res_clean.latency_ns.sum())
    assert delta == pytest.approx(faulty.ras.added_dram_latency_ns)


@given(plan=plans, addr_writes=traces, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
@pytest.mark.slow
def test_scalar_and_batch_report_identical_fault_outcomes(plan, addr_writes, seed):
    """The tentpole acceptance criterion, fuzzed over plans and traces."""
    addrs, writes = as_arrays(addr_writes)
    ref = MemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=seed))
    bat = BatchMemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=seed))
    res_ref = ref.access_trace(addrs, writes)
    res_bat = bat.access_trace(addrs, writes)
    assert read_counters(ref).nonzero() == read_counters(bat).nonzero()
    assert np.array_equal(res_ref.latency_ns, res_bat.latency_ns)


@given(
    seed=st.integers(0, 2**32 - 1),
    low=st.floats(0.001, 0.2),
    factor=st.floats(1.0, 20.0),
)
@settings(max_examples=100, deadline=None)
def test_higher_rate_fires_superset(seed, low, factor):
    high = min(low * factor, 1.0)
    lo_clause = FaultClause(kind=FaultKind.DRAM_BIT_FLIP, rate=low)
    hi_clause = FaultClause(kind=FaultKind.DRAM_BIT_FLIP, rate=high)
    fired_lo = {n for n in range(1, 500) if lo_clause.fires(seed, 0x100, n)}
    fired_hi = {n for n in range(1, 500) if hi_clause.fires(seed, 0x100, n)}
    assert fired_lo <= fired_hi


def test_quick_smoke_engines_agree_under_faults():
    """Quick-lane guard: one fixed plan/trace, identical RAS banks."""
    rng = np.random.default_rng(11)
    addrs = (rng.integers(0, 1 << 18, size=1500) * 128).astype(np.int64)
    plan = InjectionPlan.parse(
        "dram_bit:rate=5e-3;link_crc:rate=2e-3;tlb_parity:rate=5e-3;ecc:secded"
    )
    ref = MemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=3))
    bat = BatchMemoryHierarchy(CHIP, ras=FaultInjector(plan, seed=3))
    ref.access_trace(addrs)
    bat.access_trace(addrs)
    ref_bank, bat_bank = read_counters(ref), read_counters(bat)
    assert ref_bank.nonzero() == bat_bank.nonzero()
    assert ref_bank.get(ev.PM_RAS_FAULT_INJECTED, 0) > 0
    assert conservation_violations(ref_bank) == []
