"""Property-based tests for NUMA policies and traffic accounting."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import e870
from repro.numa.affinity import AffinityMap
from repro.numa.policy import (
    Allocation,
    BlockCyclicPolicy,
    FirstTouchPolicy,
    InterleavePolicy,
    LocalPolicy,
)
from repro.numa.traffic import traffic_matrix

SYSTEM = e870()
PAGE = 64 * 1024

policies = st.one_of(
    st.builds(LocalPolicy, st.integers(min_value=0, max_value=7)),
    st.builds(
        InterleavePolicy,
        st.lists(st.integers(0, 7), min_size=1, max_size=8, unique=True),
    ),
    st.builds(
        BlockCyclicPolicy,
        st.lists(st.integers(0, 7), min_size=1, max_size=8, unique=True),
        st.integers(min_value=1, max_value=16),
    ),
)


@given(policy=policies, pages=st.integers(min_value=1, max_value=256))
@settings(max_examples=100, deadline=None)
def test_chip_share_is_a_distribution(policy, pages):
    alloc = Allocation("a", 0, pages * PAGE, policy, PAGE)
    share = alloc.chip_share(SYSTEM)
    assert abs(sum(share.values()) - 1.0) < 1e-9
    assert all(v >= 0 for v in share.values())


@given(policy=policies, page=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=150, deadline=None)
def test_home_is_deterministic_and_in_range(policy, page):
    assert policy.home(page) == policy.home(page)
    assert 0 <= policy.home(page) < 8


@given(
    touches=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 7)), min_size=1, max_size=100
    )
)
@settings(max_examples=100, deadline=None)
def test_first_touch_is_sticky(touches):
    """A page's home never changes after its first touch."""
    policy = FirstTouchPolicy()
    first: dict[int, int] = {}
    for page, chip in touches:
        policy.touch(page, chip)
        first.setdefault(page, chip)
    for page, chip in first.items():
        assert policy.home(page) == chip


@given(
    policy=policies,
    threads=st.integers(min_value=1, max_value=64),
    smt=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_traffic_matrix_is_a_distribution(policy, threads, smt):
    capacity = SYSTEM.num_cores * smt
    if threads > capacity:
        threads = capacity
    affinity = AffinityMap.compact(SYSTEM, threads, smt=smt)
    alloc = Allocation("a", 0, 64 * PAGE, policy, PAGE)
    matrix = traffic_matrix(SYSTEM, affinity, [(alloc, 1.0)])
    assert abs(sum(matrix.shares.values()) - 1.0) < 1e-9
    assert -1e-9 <= matrix.local_fraction() <= 1.0 + 1e-9
    assert abs(matrix.local_fraction() + matrix.remote_fraction() - 1.0) < 1e-12


@given(threads=st.integers(min_value=1, max_value=512))
@settings(max_examples=60, deadline=None)
def test_compact_affinity_capacity_and_uniqueness(threads):
    aff = AffinityMap.compact(SYSTEM, threads, smt=8)
    assert len(aff) == threads
    placements = {(hw.chip, hw.core, hw.slot) for _, hw in aff.items()}
    assert len(placements) == threads  # no double-booking
    assert aff.max_smt_level() <= 8
