"""Property-based tests for the MESI directory and chip simulator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.coherence.mesi import Directory, State

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # core
        st.integers(min_value=0, max_value=7),  # line
        st.sampled_from(["read", "write", "evict"]),
    ),
    min_size=1,
    max_size=200,
)


def run_ops(d: Directory, sequence):
    for core, line, op in sequence:
        if op == "read":
            d.read(core, line)
        elif op == "write":
            d.write(core, line)
        else:
            d.evict(core, line)


@given(sequence=ops)
@settings(max_examples=150, deadline=None)
def test_invariants_always_hold(sequence):
    d = Directory(4)
    for core, line, op in sequence:
        if op == "read":
            d.read(core, line)
        elif op == "write":
            d.write(core, line)
        else:
            d.evict(core, line)
        d.check_invariants()


@given(sequence=ops)
@settings(max_examples=150, deadline=None)
def test_single_writer_multiple_readers(sequence):
    """SWMR: if any core holds M, no other core holds a valid copy."""
    d = Directory(4)
    run_ops(d, sequence)
    for line in range(8):
        states = [d.state(core, line) for core in range(4)]
        if State.MODIFIED in states:
            valid = [s for s in states if s is not State.INVALID]
            assert valid == [State.MODIFIED]


@given(sequence=ops)
@settings(max_examples=150, deadline=None)
def test_at_most_one_owner(sequence):
    d = Directory(4)
    run_ops(d, sequence)
    for line in range(8):
        owners = [
            c for c in range(4)
            if d.state(c, line) in (State.MODIFIED, State.EXCLUSIVE)
        ]
        assert len(owners) <= 1


@given(sequence=ops)
@settings(max_examples=100, deadline=None)
def test_last_writer_holds_modified(sequence):
    d = Directory(4)
    run_ops(d, sequence)
    # Apply one final write; that core must end in M regardless of history.
    d.write(2, 3)
    assert d.state(2, 3) is State.MODIFIED
    d.check_invariants()


@given(sequence=ops)
@settings(max_examples=100, deadline=None)
def test_write_then_read_roundtrip(sequence):
    """After arbitrary history, write(c) then read(c) keeps c a holder."""
    d = Directory(4)
    run_ops(d, sequence)
    d.write(0, 5)
    d.read(0, 5)
    assert d.state(0, 5) is not State.INVALID
