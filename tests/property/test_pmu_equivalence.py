"""Property tests: both engines produce identical PMU counter banks.

The PR-1 equivalence suite proves the batch engine reproduces the
reference simulator's latencies and replacement state bit-for-bit; this
suite extends that guarantee to the observability layer.  For any
randomized trace (addresses, read/write mix, page size, chunking) the
:func:`repro.pmu.read_counters` bank harvested from the two engines
must be *identical* — live events (store refs, castouts) and harvested
events (cache/TLB/DRAM tallies, derived byte counters) alike.

Comparisons go through ``CounterBank.nonzero()`` so a harvested zero
and an absent event are the same thing.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.pmu import PMU, read_counters
from repro.prefetch import StreamPrefetcher

CHIP = e870().chip

address_pools = st.sampled_from(
    [
        1 << 14,  # fits in L1: fast-path chunks
        1 << 17,  # fits in L2
        1 << 22,  # L3 territory
        1 << 28,  # out of cache, TLB pressure
    ]
)

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 20) - 1), st.booleans()),
    min_size=1,
    max_size=400,
)


def run_both(addr_writes, pool, page_size, chunk):
    scale = pool // (1 << 20) or 1
    addrs = np.array([(a * scale * 8) % pool for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    ref = MemoryHierarchy(CHIP, page_size=page_size)
    bat = BatchMemoryHierarchy(CHIP, page_size=page_size, chunk=chunk)
    ref.access_trace(addrs, writes)
    bat.access_trace(addrs, writes)
    return ref, bat


@given(
    addr_writes=traces,
    pool=address_pools,
    page_size=st.sampled_from([64 * 1024, 16 << 20]),
    chunk=st.sampled_from([1, 7, 64, 16384]),
)
@settings(max_examples=60, deadline=None)
@pytest.mark.slow
def test_counter_banks_identical(addr_writes, pool, page_size, chunk):
    ref, bat = run_both(addr_writes, pool, page_size, chunk)
    assert read_counters(ref).nonzero() == read_counters(bat).nonzero()


@given(
    n_lines=st.integers(min_value=1, max_value=600),
    depth=st.sampled_from([1, 3, 5, 7]),
    chunk=st.sampled_from([5, 100, 16384]),
)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_counter_banks_identical_with_prefetcher(n_lines, depth, chunk):
    """Prefetch events (issued/useful/emitted) agree across engines too."""
    line = CHIP.core.l1d.line_size
    addrs = np.arange(n_lines, dtype=np.int64) * line
    ref = MemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth)
    )
    bat = BatchMemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth), chunk=chunk
    )
    ref.access_trace(addrs)
    bat.access_trace(addrs)
    assert read_counters(ref).nonzero() == read_counters(bat).nonzero()


@given(
    addr_writes=traces,
    split=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_snapshot_diff_matches_split(addr_writes, split):
    """A PMU diff over the second half equals a fresh run's second half.

    Counter diffs are exact (every derived count event is linear in the
    raw ones), so measuring trace[split:] with snapshot/diff on a warm
    hierarchy must equal running trace[:split] then diffing by hand.
    """
    addrs = np.array([(a * 8) % (1 << 20) for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    split = min(split, addrs.size)
    hier = BatchMemoryHierarchy(CHIP)
    hier.access_trace(addrs[:split], writes[:split])
    base = read_counters(hier)
    pmu = PMU(hier)
    with pmu:
        hier.access_trace(addrs[split:], writes[split:])
    assert pmu.counters.nonzero() == (read_counters(hier) - base).nonzero()


def test_quick_smoke_banks_identical():
    """Quick-lane guard: one fixed mixed trace, identical banks."""
    rng = np.random.default_rng(42)
    addrs = (rng.integers(0, 1 << 17, size=2048) * 8).astype(np.int64)
    writes = rng.random(2048) < 0.3
    ref = MemoryHierarchy(CHIP)
    bat = BatchMemoryHierarchy(CHIP)
    ref.access_trace(addrs, writes)
    bat.access_trace(addrs, writes)
    ref_bank, bat_bank = read_counters(ref), read_counters(bat)
    assert ref_bank.nonzero() == bat_bank.nonzero()
    assert ref_bank.nonzero()  # the trace actually counted something
