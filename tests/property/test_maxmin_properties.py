"""Property-based tests for the max-min fair allocator."""

import hypothesis.strategies as st
from hypothesis import given, settings


from repro.engine.resources import max_min_fair


@st.composite
def flow_networks(draw):
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [f"l{i}" for i in range(n_links)]
    caps = {
        l: draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
        for l in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=6))
    flows = {}
    for f in range(n_flows):
        path = draw(
            st.lists(st.sampled_from(links), min_size=1, max_size=n_links, unique=True)
        )
        flows[f"f{f}"] = path
    return flows, caps


@given(net=flow_networks())
@settings(max_examples=100, deadline=None)
def test_no_link_oversubscribed(net):
    flows, caps = net
    alloc = max_min_fair(flows, caps)
    for link, cap in caps.items():
        load = sum(alloc[f] for f, path in flows.items() if link in path)
        assert load <= cap * (1 + 1e-6)


@given(net=flow_networks())
@settings(max_examples=100, deadline=None)
def test_all_flows_get_positive_rate(net):
    """Max-min fairness starves nobody."""
    flows, caps = net
    alloc = max_min_fair(flows, caps)
    for f in flows:
        assert alloc[f] > 0


@given(net=flow_networks())
@settings(max_examples=100, deadline=None)
def test_every_flow_has_a_saturated_bottleneck(net):
    """Pareto optimality: each flow crosses a link that is (nearly)
    fully utilised — otherwise its rate could be raised."""
    flows, caps = net
    alloc = max_min_fair(flows, caps)
    loads = {
        link: sum(alloc[f] for f, path in flows.items() if link in path)
        for link in caps
    }
    for f, path in flows.items():
        assert any(loads[l] >= caps[l] * (1 - 1e-6) for l in path), f


@given(net=flow_networks())
@settings(max_examples=100, deadline=None)
def test_scaling_capacities_scales_allocation(net):
    flows, caps = net
    alloc1 = max_min_fair(flows, caps)
    alloc2 = max_min_fair(flows, {l: 2 * c for l, c in caps.items()})
    for f in flows:
        assert alloc2[f] == max(alloc2[f], 2 * alloc1[f] * (1 - 1e-6))


@given(net=flow_networks(), seed=st.integers(min_value=0, max_value=10))
@settings(max_examples=50, deadline=None)
def test_deterministic(net, seed):
    del seed
    flows, caps = net
    assert max_min_fair(flows, caps) == max_min_fair(flows, caps)
