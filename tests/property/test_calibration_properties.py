"""Property-based test: calibration round-trips synthetic tables.

Generate a Table-III-like dataset from *known* constants, fit it, and
check the fit recovers the generating constants — the calibration
machinery is exact on its own model class.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import e870
from repro.calibration.fit import fit_mix_efficiency, predict_bandwidth
from repro.mem.centaur import read_fraction

SYSTEM = e870()
RATIOS = [(1, 0), (16, 1), (8, 1), (4, 1), (2, 1), (1, 1), (1, 2), (1, 4), (0, 1)]


@given(
    r_eff=st.floats(min_value=0.75, max_value=0.99),
    w_eff=st.floats(min_value=0.75, max_value=0.99),
    coef=st.floats(min_value=0.05, max_value=0.4),
)
@settings(max_examples=40, deadline=None)
def test_fit_recovers_generating_constants(r_eff, w_eff, coef):
    params = (r_eff, w_eff, coef)
    measured = {
        ratio: predict_bandwidth(SYSTEM.chip, 8, read_fraction(*ratio), params)
        for ratio in RATIOS
    }
    fit = fit_mix_efficiency(SYSTEM.chip, 8, measured)
    assert abs(fit.read_lane_efficiency - r_eff) < 0.02
    assert abs(fit.write_lane_efficiency - w_eff) < 0.02
    assert abs(fit.turnaround_coef - coef) < 0.05
    assert fit.max_relative_error < 1e-3


@given(
    r_eff=st.floats(min_value=0.8, max_value=0.95),
    w_eff=st.floats(min_value=0.8, max_value=0.95),
    coef=st.floats(min_value=0.1, max_value=0.3),
    noise_seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_fit_robust_to_measurement_noise(r_eff, w_eff, coef, noise_seed):
    import numpy as np

    rng = np.random.default_rng(noise_seed)
    params = (r_eff, w_eff, coef)
    measured = {}
    for ratio in RATIOS:
        clean = predict_bandwidth(SYSTEM.chip, 8, read_fraction(*ratio), params)
        measured[ratio] = clean * (1.0 + rng.normal(0, 0.01))
    fit = fit_mix_efficiency(SYSTEM.chip, 8, measured)
    # 1% measurement noise leaves the constants within a few percent.
    assert abs(fit.read_lane_efficiency - r_eff) < 0.05
    assert abs(fit.write_lane_efficiency - w_eff) < 0.05
    assert fit.max_relative_error < 0.05
