"""Property tests: the batch engine is bit-identical to the reference.

For randomized traces (addresses, read/write mix, page size, chunking),
:class:`repro.mem.batch.BatchMemoryHierarchy` must reproduce the
per-access reference :class:`repro.mem.hierarchy.MemoryHierarchy`
*exactly*: per-access latencies/levels/translation penalties, per-level
hit counts, the full LRU+dirty state of every cache, the ERAT/TLB
contents, the DRAM open rows, and the ordered victim/write-back stream.
"""

import dataclasses

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.prefetch import StreamPrefetcher

CHIP = e870().chip

# Address pools chosen to exercise distinct regimes: L1-resident reuse,
# set conflicts, out-of-cache misses, and ERAT/TLB churn.
address_pools = st.sampled_from(
    [
        1 << 14,  # fits in L1: fast-path chunks
        1 << 17,  # fits in L2
        1 << 22,  # L3 territory
        1 << 28,  # out of cache, TLB pressure
    ]
)

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 20) - 1), st.booleans()),
    min_size=1,
    max_size=400,
)


def run_both(addr_writes, pool, page_size, chunk):
    scale = pool // (1 << 20) or 1
    addrs = np.array([(a * scale * 8) % pool for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    ref = MemoryHierarchy(CHIP, page_size=page_size, record_victims=True)
    bat = BatchMemoryHierarchy(
        CHIP, page_size=page_size, record_victims=True, chunk=chunk
    )
    return ref, bat, ref.access_trace(addrs, writes), bat.access_trace(addrs, writes)


def assert_equivalent(ref, bat, r, b):
    assert np.array_equal(r.latency_ns, b.latency_ns)
    assert np.array_equal(r.level_codes, b.level_codes)
    assert np.array_equal(r.translation_cycles, b.translation_cycles)
    # Eviction/write-back streams, in program order.
    assert ref.victim_log == bat.victim_log
    # Full replacement state of every level.
    for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
        assert getattr(ref, lvl).dump_state() == getattr(bat, lvl).dump_state(), lvl
    assert ref.tlb._erat.state() == bat.tlb._erat.state()
    assert ref.tlb._tlb.state() == bat.tlb._tlb.state()
    assert dataclasses.asdict(ref.tlb.stats) == dataclasses.asdict(bat.tlb.stats)
    assert ref.dram._open_rows == bat.dram._open_rows
    assert dataclasses.asdict(ref.dram.stats) == dataclasses.asdict(bat.dram.stats)
    r_stats = dataclasses.asdict(ref.stats)
    b_stats = dataclasses.asdict(bat.stats)
    assert b_stats.pop("total_latency_ns") == pytest.approx(
        r_stats.pop("total_latency_ns"), rel=1e-12
    )
    assert r_stats == b_stats
    for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
        assert dataclasses.asdict(getattr(ref, lvl).stats) == dataclasses.asdict(
            getattr(bat, lvl).stats
        ), lvl


@given(
    addr_writes=traces,
    pool=address_pools,
    page_size=st.sampled_from([64 * 1024, 16 << 20]),
    chunk=st.sampled_from([1, 7, 64, 16384]),
)
@settings(max_examples=60, deadline=None)
@pytest.mark.slow
def test_batch_equals_reference(addr_writes, pool, page_size, chunk):
    ref, bat, r, b = run_both(addr_writes, pool, page_size, chunk)
    assert_equivalent(ref, bat, r, b)


@given(
    n_lines=st.integers(min_value=1, max_value=600),
    depth=st.sampled_from([1, 3, 5, 7]),
    chunk=st.sampled_from([5, 100, 16384]),
)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_batch_equals_reference_with_prefetcher(n_lines, depth, chunk):
    """Sequential scans through the stream prefetcher stay identical."""
    line = CHIP.core.l1d.line_size
    addrs = np.arange(n_lines, dtype=np.int64) * line
    ref = MemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth),
        record_victims=True,
    )
    bat = BatchMemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth),
        record_victims=True, chunk=chunk,
    )
    r = ref.access_trace(addrs)
    b = bat.access_trace(addrs)
    assert_equivalent(ref, bat, r, b)
    assert ref.stats.prefetch_issued == bat.stats.prefetch_issued
    assert ref.stats.prefetch_useful == bat.stats.prefetch_useful


@given(
    start=st.integers(min_value=0, max_value=1 << 16),
    stride_lines=st.integers(min_value=1, max_value=4),
    n_lines=st.integers(min_value=1, max_value=800),
    write_every=st.sampled_from([0, 2, 3]),
    chunk=st.sampled_from([33, 512, 16384]),
)
@settings(max_examples=40, deadline=None)
@pytest.mark.slow
def test_streaming_bulk_equals_reference(
    start, stride_lines, n_lines, write_every, chunk
):
    """Monotone miss streams (the bulk streaming path) stay identical.

    Without victim recording the batch engine takes its vectorized
    streaming commit; everything observable must still match the
    reference bit-for-bit, reads and writes alike.
    """
    line = CHIP.core.l1d.line_size
    addrs = (start + np.arange(n_lines, dtype=np.int64) * stride_lines) * line
    writes = np.zeros(n_lines, dtype=bool)
    if write_every:
        writes[::write_every] = True
    ref = MemoryHierarchy(CHIP)
    bat = BatchMemoryHierarchy(CHIP, chunk=chunk)
    r = ref.access_trace(addrs, writes)
    b = bat.access_trace(addrs, writes)
    assert_equivalent(ref, bat, r, b)


@given(
    n_lines=st.integers(min_value=1, max_value=800),
    depth=st.sampled_from([1, 4, 7]),
    chunk=st.sampled_from([17, 300, 16384]),
    revisit=st.booleans(),
)
@settings(max_examples=30, deadline=None)
@pytest.mark.slow
def test_prefetcher_bulk_equals_reference(n_lines, depth, chunk, revisit):
    """The closed-form prefetcher-advance path stays identical.

    Unlike ``test_batch_equals_reference_with_prefetcher`` (which
    records victims and so pins the scalar loop), this runs without
    victim logs, letting the bulk prefetcher path commit the steady
    state; an optional revisit forces it off the watermark screen.
    """
    line = CHIP.core.l1d.line_size
    addrs = np.arange(n_lines, dtype=np.int64) * line
    if revisit:
        addrs = np.concatenate((addrs, addrs[: max(1, n_lines // 2)]))
    ref = MemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth)
    )
    bat = BatchMemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth),
        chunk=chunk,
    )
    r = ref.access_trace(addrs)
    b = bat.access_trace(addrs)
    assert_equivalent(ref, bat, r, b)
    assert ref.stats.prefetch_issued == bat.stats.prefetch_issued
    assert ref.stats.prefetch_useful == bat.stats.prefetch_useful
    assert ref._pf_pending == bat._pf_pending


@given(
    addr_writes=traces,
    split=st.integers(min_value=0, max_value=400),
)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_trace_split_invariance(addr_writes, split):
    """Splitting one trace into two calls cannot change the outcome."""
    addrs = np.array([(a * 8) % (1 << 20) for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    split = min(split, addrs.size)
    whole = BatchMemoryHierarchy(CHIP, record_victims=True)
    r_whole = whole.access_trace(addrs, writes)
    parts = BatchMemoryHierarchy(CHIP, record_victims=True)
    r1 = parts.access_trace(addrs[:split], writes[:split])
    r2 = parts.access_trace(addrs[split:], writes[split:])
    assert np.array_equal(
        r_whole.latency_ns, np.concatenate([r1.latency_ns, r2.latency_ns])
    )
    assert whole.victim_log == parts.victim_log
    for lvl in ("l1", "l2", "l3", "l3_remote", "l4"):
        assert getattr(whole, lvl).dump_state() == getattr(parts, lvl).dump_state()
