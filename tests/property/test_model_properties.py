"""Property-based tests on the analytic performance models."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import e870, power8_chip
from repro.core.fma import fma_efficiency
from repro.mem.analytic import AnalyticHierarchy
from repro.mem.centaur import MemoryLinkModel, link_bound, mix_efficiency
from repro.perfmodel.littles_law import RandomAccessModel
from repro.prefetch.dcbt import block_scan_efficiency

CHIP = power8_chip()
SYSTEM = e870()
HIERARCHY = AnalyticHierarchy(CHIP)
RANDOM = RandomAccessModel(SYSTEM)
LINKS = MemoryLinkModel(CHIP)


@given(f=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_link_bound_never_exceeds_peak_mix(f):
    assert link_bound(CHIP, f) <= CHIP.peak_memory_bandwidth + 1e-6


@given(f=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_sustained_below_raw(f):
    assert LINKS.chip_bandwidth(f) <= link_bound(CHIP, f)
    assert 0.0 < mix_efficiency(f) <= 1.0


@given(
    w1=st.integers(min_value=1024, max_value=1 << 34),
    w2=st.integers(min_value=1024, max_value=1 << 34),
)
@settings(max_examples=200, deadline=None)
def test_latency_monotone_in_working_set(w1, w2):
    lo, hi = sorted((w1, w2))
    assert HIERARCHY.latency_ns(lo) <= HIERARCHY.latency_ns(hi) + 1e-9


@given(w=st.integers(min_value=1024, max_value=1 << 34))
@settings(max_examples=200, deadline=None)
def test_latency_bounded_by_extremes(w):
    l1 = CHIP.cycles_to_ns(CHIP.core.l1d.latency_cycles)
    worst = (
        CHIP.centaur.dram_latency_ns
        + CHIP.cycles_to_ns(
            CHIP.core.tlb.erat_miss_penalty_cycles + CHIP.core.tlb.tlb_miss_penalty_cycles
        )
    )
    assert l1 <= HIERARCHY.latency_ns(w) <= worst


@given(w=st.integers(min_value=1024, max_value=1 << 34))
@settings(max_examples=100, deadline=None)
def test_level_fractions_form_distribution(w):
    fr = HIERARCHY.level_fractions(w)
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    assert all(-1e-12 <= v <= 1.0 + 1e-12 for v in fr.values())


@given(
    t=st.integers(min_value=1, max_value=8),
    s=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_random_bandwidth_bounded_by_ceiling(t, s):
    bw = RANDOM.bandwidth(t, s)
    assert 0 < bw < RANDOM.peak_bandwidth


@given(
    t1=st.integers(min_value=1, max_value=8),
    t2=st.integers(min_value=1, max_value=8),
    s=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=200, deadline=None)
def test_random_bandwidth_monotone_in_threads(t1, t2, s):
    lo, hi = sorted((t1, t2))
    assert RANDOM.bandwidth(lo, s) <= RANDOM.bandwidth(hi, s) + 1e-6


@given(
    threads=st.integers(min_value=1, max_value=8),
    fmas=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=300, deadline=None)
def test_fma_efficiency_in_unit_interval(threads, fmas):
    eff = fma_efficiency(CHIP.core, threads, fmas)
    assert 0.0 < eff <= 1.0


@given(
    threads=st.integers(min_value=1, max_value=8),
    fmas=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=300, deadline=None)
def test_fma_peak_only_with_enough_inflight(threads, fmas):
    """efficiency == 1 implies threads x FMAs >= 12 (the paper's rule)."""
    if fma_efficiency(CHIP.core, threads, fmas) >= 0.999:
        assert threads * fmas >= 12


@given(b=st.integers(min_value=128, max_value=1 << 26))
@settings(max_examples=200, deadline=None)
def test_dcbt_efficiency_bounds_and_dominance(b):
    hw = block_scan_efficiency(CHIP, b, use_dcbt=False)
    sw = block_scan_efficiency(CHIP, b, use_dcbt=True)
    assert 0.0 < hw <= sw <= 1.0
