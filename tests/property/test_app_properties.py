"""Property-based tests on the applications (Jaccard, SpMV, HF)."""

import numpy as np
import hypothesis.strategies as st
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.apps.jaccard import all_pairs_jaccard
from repro.apps.spmv import CSRSpMV, TwoScanSpMV, imbalance, partition_rows
from repro.apps.hf.basis import contracted_s
from repro.apps.hf.integrals import eri_ssss, kinetic, overlap


@st.composite
def random_sparse(draw, max_n=40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    density = draw(st.floats(min_value=0.02, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=1000))
    rng = np.random.default_rng(seed)
    return sp.random(n, n, density=density, random_state=rng, format="csr")


@st.composite
def symmetric_adjacency(draw, max_n=30):
    m = draw(random_sparse(max_n))
    a = m + m.T
    a.data[:] = 1.0
    a.setdiag(0)
    a.eliminate_zeros()
    return a.tocsr()


class TestJaccardProperties:
    @given(adj=symmetric_adjacency())
    @settings(max_examples=50, deadline=None)
    def test_values_in_unit_interval(self, adj):
        res = all_pairs_jaccard(adj)
        assert np.all(res.similarity.data >= 0)
        assert np.all(res.similarity.data <= 1.0 + 1e-12)

    @given(adj=symmetric_adjacency())
    @settings(max_examples=50, deadline=None)
    def test_symmetric_output(self, adj):
        res = all_pairs_jaccard(adj)
        assert abs(res.similarity - res.similarity.T).max() < 1e-12

    @given(adj=symmetric_adjacency())
    @settings(max_examples=50, deadline=None)
    def test_diagonal_one_for_connected_vertices(self, adj):
        res = all_pairs_jaccard(adj)
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        diag = res.similarity.diagonal()
        for v in range(adj.shape[0]):
            if degrees[v] > 0:
                assert diag[v] == 1.0


class TestSpMVProperties:
    @given(m=random_sparse(), seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_csr_matches_scipy(self, m, seed):
        x = np.random.default_rng(seed).standard_normal(m.shape[1])
        threads = 1 + seed % 7
        y = CSRSpMV(m, num_threads=threads).multiply(x)
        np.testing.assert_allclose(y, m @ x, rtol=1e-10, atol=1e-10)

    @given(m=random_sparse(), seed=st.integers(0, 100),
           width=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_twoscan_matches_scipy(self, m, seed, width):
        x = np.random.default_rng(seed).standard_normal(m.shape[1])
        y = TwoScanSpMV(m, block_width=width).multiply(x)
        np.testing.assert_allclose(y, m @ x, rtol=1e-10, atol=1e-10)

    @given(m=random_sparse(), threads=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_partition_is_a_cover(self, m, threads):
        parts = partition_rows(m, threads)
        assert parts[0].row_start == 0
        assert parts[-1].row_end == m.shape[0]
        assert sum(p.nnz for p in parts) == m.nnz
        assert imbalance(parts) >= 1.0 or m.nnz == 0


class TestIntegralProperties:
    gaussians = st.builds(
        lambda alpha, z: contracted_s((0.0, 0.0, z), [(alpha, 1.0)]),
        alpha=st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
        z=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )

    @given(a=gaussians)
    @settings(max_examples=100, deadline=None)
    def test_normalised(self, a):
        assert abs(overlap(a, a) - 1.0) < 1e-8

    @given(a=gaussians, b=gaussians)
    @settings(max_examples=100, deadline=None)
    def test_overlap_cauchy_schwarz(self, a, b):
        assert abs(overlap(a, b)) <= 1.0 + 1e-9

    @given(a=gaussians, b=gaussians)
    @settings(max_examples=100, deadline=None)
    def test_kinetic_symmetric(self, a, b):
        assert abs(kinetic(a, b) - kinetic(b, a)) < 1e-9

    @given(a=gaussians, b=gaussians)
    @settings(max_examples=60, deadline=None)
    def test_eri_schwarz_inequality(self, a, b):
        """|(ab|ab)| <= sqrt((aa|aa)(bb|bb)) is implied by positivity."""
        aa = eri_ssss(a, a, a, a)
        bb = eri_ssss(b, b, b, b)
        ab = eri_ssss(a, b, a, b)
        assert ab >= -1e-12  # (ab|ab) is a self-repulsion: non-negative
        assert ab <= np.sqrt(aa * bb) + 1e-9

    @given(a=gaussians, b=gaussians, c=gaussians, d=gaussians)
    @settings(max_examples=40, deadline=None)
    def test_eri_bra_ket_symmetry(self, a, b, c, d):
        v1 = eri_ssss(a, b, c, d)
        v2 = eri_ssss(c, d, a, b)
        v3 = eri_ssss(b, a, c, d)
        assert abs(v1 - v2) < 1e-9
        assert abs(v1 - v3) < 1e-9
