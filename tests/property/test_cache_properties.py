"""Property-based tests for the cache simulator invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch.specs import CacheSpec
from repro.mem.cache import Cache

cache_geometries = st.sampled_from(
    [
        (512, 64, 2),
        (1024, 64, 4),
        (4096, 128, 8),
        (256, 64, 1),  # direct mapped
        (512, 64, 8),  # fully associative
    ]
)

access_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
    min_size=1,
    max_size=300,
)


@given(geometry=cache_geometries, accesses=access_sequences)
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(geometry, accesses):
    """No set ever holds more than `associativity` lines."""
    cap, line, ways = geometry
    cache = Cache(CacheSpec("p", cap, line, ways, 1.0))
    for addr, is_write in accesses:
        if not cache.lookup(addr, is_write):
            cache.fill(addr, dirty=is_write)
    for set_idx in range(cache.spec.num_sets):
        assert cache.set_occupancy(set_idx) <= ways
    assert len(cache) <= cache.spec.num_lines


@given(geometry=cache_geometries, accesses=access_sequences)
@settings(max_examples=60, deadline=None)
def test_accesses_equal_hits_plus_misses(geometry, accesses):
    cap, line, ways = geometry
    cache = Cache(CacheSpec("p", cap, line, ways, 1.0))
    for addr, is_write in accesses:
        if not cache.lookup(addr, is_write):
            cache.fill(addr)
    assert cache.stats.accesses == len(accesses)
    assert cache.stats.hits + cache.stats.misses == len(accesses)


@given(geometry=cache_geometries, accesses=access_sequences)
@settings(max_examples=60, deadline=None)
def test_filled_line_immediately_resident(geometry, accesses):
    cap, line, ways = geometry
    cache = Cache(CacheSpec("p", cap, line, ways, 1.0))
    for addr, is_write in accesses:
        if not cache.lookup(addr, is_write):
            cache.fill(addr)
        assert addr in cache  # the just-touched line is always resident


@given(geometry=cache_geometries, accesses=access_sequences)
@settings(max_examples=60, deadline=None)
def test_store_through_holds_no_dirty_lines(geometry, accesses):
    cap, line, ways = geometry
    cache = Cache(CacheSpec("p", cap, line, ways, 1.0, "store-through"))
    for addr, is_write in accesses:
        if not cache.lookup(addr, is_write):
            cache.fill(addr, dirty=is_write)
    assert all(not cache.is_dirty(l) for l in cache.lines())
    assert cache.flush() == 0


@given(accesses=access_sequences)
@settings(max_examples=60, deadline=None)
def test_lru_subset_property(accesses):
    """A larger cache of the same geometry class hits at least as often
    as a smaller one on every trace (LRU inclusion property holds for
    fully-associative caches)."""
    small = Cache(CacheSpec("s", 4 * 64, 64, 4, 1.0))  # 4 lines, fully assoc
    large = Cache(CacheSpec("l", 8 * 64, 64, 8, 1.0))  # 8 lines, fully assoc
    for addr, is_write in accesses:
        if not small.lookup(addr, is_write):
            small.fill(addr)
        if not large.lookup(addr, is_write):
            large.fill(addr)
    assert large.stats.hits >= small.stats.hits


@given(
    lines=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=64,
                   unique=True)
)
@settings(max_examples=40, deadline=None)
def test_working_set_within_capacity_never_misses_twice(lines):
    """Once a working set that fits is loaded, it never misses again."""
    cache = Cache(CacheSpec("c", 64 * 64, 64, 64, 1.0))  # 64 lines, fully assoc
    for l in lines:
        if not cache.lookup(l, False):
            cache.fill(l)
    before = cache.stats.misses
    for _ in range(3):
        for l in lines:
            assert cache.lookup(l, False)
    assert cache.stats.misses == before
