"""Hypothesis properties: counter conservation on every engine.

For any randomized workload the harvested bank must balance: demand
accesses equal the sum of per-level services, loads + stores equal
accesses, prefetch useful never exceeds issued, table-walk misses never
exceed ERAT reloads which never exceed translations, and the DRAM row
hit/miss counters partition the DRAM reads.  The invariants are checked
on the reference hierarchy, the batch engine (across chunkings), the
prefetcher-equipped hierarchy, and the coherent multi-core chip
simulator.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import e870
from repro.coherence.chipsim import ChipSimulator
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.pmu import assert_conservation, events as ev, read_counters
from repro.prefetch import StreamPrefetcher

CHIP = e870().chip

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 20) - 1), st.booleans()),
    min_size=1,
    max_size=300,
)


def _addr_arrays(addr_writes, pool):
    scale = pool // (1 << 20) or 1
    addrs = np.array([(a * scale * 8) % pool for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    return addrs, writes


@given(
    addr_writes=traces,
    pool=st.sampled_from([1 << 14, 1 << 22, 1 << 28]),
    engine=st.sampled_from(["reference", "batch"]),
    chunk=st.sampled_from([1, 64, 16384]),
)
@settings(max_examples=50, deadline=None)
@pytest.mark.slow
def test_hierarchy_banks_conserve(addr_writes, pool, engine, chunk):
    addrs, writes = _addr_arrays(addr_writes, pool)
    if engine == "reference":
        hier = MemoryHierarchy(CHIP)
    else:
        hier = BatchMemoryHierarchy(CHIP, chunk=chunk)
    hier.access_trace(addrs, writes)
    bank = read_counters(hier)
    assert_conservation(bank)
    # The load/store split must be present and exact on these engines.
    assert bank[ev.PM_LD_REF] + bank[ev.PM_ST_REF] == bank[ev.PM_MEM_REF]
    assert bank[ev.PM_ST_REF] == int(writes.sum())


@given(
    n_lines=st.integers(min_value=1, max_value=500),
    depth=st.sampled_from([1, 3, 5, 7]),
)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_prefetch_banks_conserve(n_lines, depth):
    """Useful <= issued == engine-emitted on prefetched sequential scans."""
    line = CHIP.core.l1d.line_size
    hier = BatchMemoryHierarchy(
        CHIP, prefetcher=StreamPrefetcher(line_size=line, depth=depth)
    )
    hier.access_trace(np.arange(n_lines, dtype=np.int64) * line)
    bank = read_counters(hier)
    assert_conservation(bank)
    assert bank[ev.PM_PREF_USEFUL] <= bank[ev.PM_PREF_ISSUED]
    assert bank[ev.PM_PREF_LINES_EMITTED] == bank[ev.PM_PREF_ISSUED]


@given(
    addr_writes=traces,
    n_cores=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=30, deadline=None)
@pytest.mark.slow
def test_chipsim_banks_conserve(addr_writes, n_cores):
    """The coherent chip's bank balances, including directory events."""
    import dataclasses

    chip = dataclasses.replace(CHIP, cores_per_chip=n_cores)
    sim = ChipSimulator(chip)
    addrs = np.array([(a * 8) % (1 << 20) for a, _ in addr_writes], dtype=np.int64)
    writes = np.array([w for _, w in addr_writes], dtype=bool)
    cores = np.array(
        [a % n_cores for a, _ in addr_writes], dtype=np.int64
    )
    sim.access_trace(cores, addrs, writes)
    bank = read_counters(sim)
    assert_conservation(bank)
    # Every private-cache miss consults the directory, so coherence
    # requests can never exceed demand accesses.
    assert (
        bank[ev.PM_COH_READ_REQ] + bank[ev.PM_COH_WRITE_REQ]
        <= bank[ev.PM_MEM_REF]
    )
    assert bank[ev.PM_ST_REF] == int(writes.sum())


def test_quick_smoke_conservation():
    """Quick-lane guard: fixed traces conserve on all three engines."""
    rng = np.random.default_rng(7)
    addrs = (rng.integers(0, 1 << 18, size=1024) * 8).astype(np.int64)
    writes = rng.random(1024) < 0.25

    for hier in (MemoryHierarchy(CHIP), BatchMemoryHierarchy(CHIP)):
        hier.access_trace(addrs, writes)
        assert_conservation(read_counters(hier))

    sim = ChipSimulator(CHIP)
    cores = rng.integers(0, CHIP.cores_per_chip, size=1024)
    sim.access_trace(cores, addrs, writes)
    assert_conservation(read_counters(sim))
