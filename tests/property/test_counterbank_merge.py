"""Hypothesis properties: CounterBank.merge is a lawful monoid reduction.

The sharded execution layer (:mod:`repro.parallel`) leans on three
algebraic facts — merge is commutative, associative, and has the empty
bank as identity — plus one physical one: merging banks harvested from
real engine runs preserves every linear conservation invariant, because
the invariants are linear in the counters and each shard's bank
satisfies them individually.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.pmu import CounterBank, assert_conservation, read_counters

CHIP = e870().chip

events = st.sampled_from([
    "PM_LD_REF", "PM_ST_REF", "PM_L1_HIT", "PM_LD_MISS_L1",
    "PM_DATA_FROM_L2", "PM_DATA_FROM_MEM", "PM_DTLB_MISS", "PM_RUN_CYC",
])
banks = st.dictionaries(events, st.integers(min_value=0, max_value=1 << 48),
                        max_size=8)


@given(a=banks, b=banks)
def test_merge_is_commutative(a, b):
    assert dict(CounterBank.merge([a, b])) == dict(CounterBank.merge([b, a]))


@given(a=banks, b=banks, c=banks)
def test_merge_is_associative(a, b, c):
    left = CounterBank.merge([CounterBank.merge([a, b]), c])
    right = CounterBank.merge([a, CounterBank.merge([b, c])])
    assert dict(left) == dict(right)


@given(bank=banks)
def test_empty_bank_is_the_identity(bank):
    assert dict(CounterBank.merge([CounterBank(), bank])) == \
        dict(CounterBank.merge([bank, CounterBank()])) == \
        dict(CounterBank.merge([bank]))


@given(parts=st.lists(banks, min_size=0, max_size=8))
def test_merge_equals_sequential_accumulation(parts):
    sequential = CounterBank()
    for part in parts:
        sequential.add_events(part)
    merged = CounterBank.merge(parts)
    assert dict(merged) == dict(sequential)
    # Event-wise totals are conserved: nothing appears or vanishes.
    keys = {k for part in parts for k in part}
    for key in keys:
        assert merged[key] == sum(part.get(key, 0) for part in parts)


@given(
    seeds=st.lists(st.integers(min_value=0, max_value=999),
                   min_size=1, max_size=4),
    n=st.integers(min_value=16, max_value=200),
)
@settings(max_examples=20, deadline=None)
@pytest.mark.slow
def test_merged_engine_banks_conserve(seeds, n):
    # Per-shard banks from real engine runs each satisfy the linear
    # conservation invariants; so must any merge of them.
    parts = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        addrs = (rng.integers(0, 1 << 18, size=n) * 8).astype(np.int64)
        writes = rng.random(n) < 0.3
        hier = BatchMemoryHierarchy(CHIP)
        hier.access_trace(addrs, writes)
        bank = read_counters(hier)
        assert_conservation(bank)
        parts.append(bank)
    assert_conservation(CounterBank.merge(parts))
