"""Property-based tests for the discrete-event kernel."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.events import EventQueue


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=150, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    q = EventQueue()
    fired_times = []
    for d in delays:
        q.schedule(d, lambda: fired_times.append(q.now))
    q.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                 allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_clock_never_goes_backwards(delays):
    q = EventQueue()
    observed = []

    def record():
        observed.append(q.now)

    for d in delays:
        q.schedule(d, record)
    q.run()
    assert q.now == max(observed)
    assert q.now >= 0.0


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=2, max_size=50),
    cancel_every=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_every):
    q = EventQueue()
    fired = []
    cancelled_ids = set()
    events = []
    for i, d in enumerate(delays):
        ev = q.schedule(d, lambda i=i: fired.append(i))
        events.append(ev)
        if i % cancel_every == 0:
            ev.cancel()
            cancelled_ids.add(i)
    q.run()
    assert not (set(fired) & cancelled_ids)
    assert set(fired) == set(range(len(delays))) - cancelled_ids


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=1, max_size=50),
    bound=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_run_until_respects_bound(delays, bound):
    q = EventQueue()
    fired_times = []
    for d in delays:
        q.schedule(d, lambda: fired_times.append(q.now))
    q.run(until=bound)
    assert all(t <= bound for t in fired_times)
    # The remainder still fires afterwards.
    q.run()
    assert len(fired_times) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_nested_scheduling_preserves_order(delays):
    """Events scheduled from inside callbacks still fire in time order."""
    q = EventQueue()
    trace = []

    def spawn(d):
        trace.append(q.now)
        if d > 1.0:
            q.schedule(d / 2, lambda: spawn(d / 4))

    for d in delays:
        q.schedule(d, lambda d=d: spawn(d))
    q.run(max_events=500)
    assert trace == sorted(trace)
