"""Tests for the energy-roofline extension."""

import pytest

from repro.roofline.energy import EnergyRoofline
from repro.roofline.kernels import paper_kernels


@pytest.fixture(scope="module")
def roof(e870_system):
    return EnergyRoofline(e870_system)


class TestEnergyPerFlop:
    def test_asymptote_at_high_oi(self, roof):
        """At infinite OI only the flop energy remains."""
        assert roof.energy_per_flop_pj(1e6) == pytest.approx(roof.pj_per_flop, rel=1e-3)

    def test_memory_dominates_low_oi(self, roof):
        low = roof.energy_per_flop_pj(0.1)
        assert low > 10 * roof.pj_per_flop

    def test_monotone_decreasing_in_oi(self, roof):
        values = [roof.energy_per_flop_pj(oi) for oi in (0.1, 0.5, 1.0, 5.0, 50.0)]
        assert values == sorted(values, reverse=True)

    def test_balance_point_semantics(self, roof):
        """At the energy balance, flop and byte energy are equal."""
        b = roof.energy_balance
        assert roof.energy_per_flop_pj(b) == pytest.approx(2 * roof.pj_per_flop)

    def test_rejects_nonpositive_oi(self, roof):
        with pytest.raises(ValueError):
            roof.energy_per_flop_pj(0.0)


class TestEfficiency:
    def test_gflops_per_watt_positive(self, roof):
        assert roof.gflops_per_watt(1.0) > 0

    def test_compute_bound_kernels_more_efficient(self, roof):
        assert roof.gflops_per_watt(10.0) > roof.gflops_per_watt(0.1)

    def test_constant_power_hurts_slow_kernels_most(self, roof):
        with_const = roof.gflops_per_watt(0.05, include_constant=True)
        without = roof.gflops_per_watt(0.05, include_constant=False)
        assert with_const < without

    def test_series_shape(self, roof):
        series = roof.series(points=17)
        assert len(series) == 17
        effs = [p["gflops_per_watt"] for p in series]
        assert effs == sorted(effs)  # monotone in OI for this machine

    def test_place_all(self, roof):
        placed = roof.place_all(paper_kernels())
        by_name = {p["name"]: p for p in placed}
        assert by_name["SpMV"]["memory_energy_dominated"]
        assert not by_name["3D FFT"]["memory_energy_dominated"] or roof.energy_balance > 1.5

    def test_validation(self, e870_system):
        with pytest.raises(ValueError):
            EnergyRoofline(e870_system, pj_per_flop=0.0)
