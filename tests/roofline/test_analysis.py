"""Tests for the roofline bottleneck advisor."""

import pytest

from repro.perfmodel.kernel_time import KernelProfile
from repro.roofline.analysis import analyze


def kernel(**kw):
    defaults = dict(name="k", flops=1e12, bytes_read=4e12, bytes_written=2e12,
                    pattern="stream")
    defaults.update(kw)
    return KernelProfile(**defaults)


class TestClassification:
    def test_low_oi_is_memory_bound(self, e870_system):
        report = analyze(e870_system, kernel())
        assert report.limiting_resource == "memory"
        assert report.operational_intensity < 1.0

    def test_high_oi_is_compute_bound(self, e870_system):
        report = analyze(e870_system, kernel(flops=1e15, bytes_read=1e12,
                                             bytes_written=1e11))
        assert report.limiting_resource == "compute"
        assert any("FMA" in r for r in report.recommendations)

    def test_estimate_below_bound(self, e870_system):
        report = analyze(e870_system, kernel())
        assert 0 < report.estimated_gflops <= report.bound_gflops * 1.01
        assert 0 < report.bound_fraction <= 1.01


class TestMixAdvice:
    def test_write_heavy_kernel_flagged(self, e870_system):
        report = analyze(
            e870_system, kernel(bytes_read=1e11, bytes_written=4e12)
        )
        assert report.mix_penalty > 0
        assert any("2:1" in r for r in report.recommendations)

    def test_optimal_mix_has_no_penalty(self, e870_system):
        report = analyze(e870_system, kernel(bytes_read=4e12, bytes_written=2e12))
        assert report.mix_penalty == pytest.approx(0.0, abs=1e-6)
        assert not any("rebalance" in r for r in report.recommendations)

    def test_read_only_has_small_penalty(self, e870_system):
        report = analyze(e870_system, kernel(bytes_read=4e12, bytes_written=0))
        # Read-only loses the write links: the roof drops by 1/3.
        assert report.mix_penalty > 0


class TestPatternAdvice:
    def test_random_pattern_suggests_smt(self, e870_system):
        report = analyze(e870_system, kernel(pattern="random"))
        assert any("41%" in r or "SMT" in r for r in report.recommendations)

    def test_tiny_blocks_suggest_dcbt(self, e870_system):
        report = analyze(
            e870_system, kernel(pattern="blocked", block_bytes=512)
        )
        assert any("DCBT" in r for r in report.recommendations)

    def test_large_blocks_no_dcbt_advice(self, e870_system):
        report = analyze(
            e870_system, kernel(pattern="blocked", block_bytes=1 << 20)
        )
        assert not any("DCBT" in r for r in report.recommendations)

    def test_very_low_oi_suggests_blocking(self, e870_system):
        report = analyze(
            e870_system,
            kernel(flops=1e10, bytes_read=4e12, bytes_written=2e12),
        )
        assert any("balance" in r for r in report.recommendations)
