"""Figure 9 reproduction tests: the roofline with the write-only roof."""

import pytest

from repro.roofline.kernels import (
    LBMHD,
    LBMHD_WRITE_ONLY,
    SPMV,
    KernelCharacteristics,
    paper_kernels,
    paper_kernels_with_write_case,
)
from repro.roofline.model import Roofline
from repro.reporting import paper_values as paper

GB = 1e9


@pytest.fixture(scope="module")
def roof(e870_system):
    return Roofline(e870_system)


class TestRoofValues:
    def test_headline_numbers(self, roof):
        assert roof.peak_gflops == pytest.approx(paper.FIG9["peak_gflops"], rel=0.01)
        assert roof.memory_bandwidth / GB == pytest.approx(paper.FIG9["memory_bw_gbs"], rel=0.01)
        assert roof.write_only_bandwidth / GB == pytest.approx(
            paper.FIG9["write_only_bw_gbs"], rel=0.01
        )

    def test_balance_is_1_2(self, roof):
        assert roof.balance == pytest.approx(paper.FIG9["balance"], abs=0.05)

    def test_write_roof_less_than_half(self, roof):
        """The paper: write-only performance drops to less than half."""
        assert roof.write_only_bandwidth < 0.5 * roof.memory_bandwidth


class TestAttainable:
    def test_memory_bound_region_linear(self, roof):
        assert roof.attainable_gflops(0.5) == pytest.approx(
            2 * roof.attainable_gflops(0.25)
        )

    def test_compute_bound_region_flat(self, roof):
        assert roof.attainable_gflops(10.0) == roof.peak_gflops
        assert roof.attainable_gflops(100.0) == roof.peak_gflops

    def test_lbmhd_bound(self, roof):
        """OI ~ 1 -> 1,843 GFLOP/s (the red diamond in Figure 9)."""
        got = roof.attainable_gflops(LBMHD.operational_intensity)
        assert got == pytest.approx(paper.FIG9["lbmhd_bound_gflops"], rel=0.01)

    def test_lbmhd_write_only_bound(self, roof):
        """Write-only mix -> 614 GFLOP/s (the red square)."""
        got = roof.attainable_write_only(LBMHD_WRITE_ONLY.operational_intensity)
        assert got == pytest.approx(paper.FIG9["lbmhd_write_only_bound_gflops"], rel=0.01)

    def test_spmv_memory_bound(self, roof):
        assert roof.is_memory_bound(SPMV.operational_intensity)

    def test_ridge_point(self, roof):
        assert roof.attainable_gflops(roof.balance) == pytest.approx(
            roof.peak_gflops, rel=1e-9
        )

    def test_rejects_nonpositive_oi(self, roof):
        with pytest.raises(ValueError):
            roof.attainable_gflops(0.0)

    def test_bandwidth_for_mix(self, roof, e870_system):
        assert roof.bandwidth_for_mix(2, 1) == pytest.approx(
            e870_system.peak_memory_bandwidth
        )
        assert roof.bandwidth_for_mix(0, 1) == pytest.approx(
            e870_system.peak_write_bandwidth
        )


class TestSeriesAndPlacement:
    def test_series_monotone(self, roof):
        series = roof.series()
        roofs = [p["roof_gflops"] for p in series]
        assert roofs == sorted(roofs)
        assert all(p["write_roof_gflops"] <= p["roof_gflops"] for p in series)

    def test_place_all(self, roof):
        points = roof.place_all(paper_kernels_with_write_case())
        names = [p.name for p in points]
        assert "SpMV" in names and "3D FFT" in names
        by_name = {p.name: p for p in points}
        assert by_name["SpMV"].memory_bound
        assert not by_name["3D FFT"].memory_bound

    def test_kernel_catalogue_size(self):
        assert len(paper_kernels()) == 4
        assert len(paper_kernels_with_write_case()) == 5

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            KernelCharacteristics("bad", -1.0, 1, 1, "x")
