"""Tests for DIIS acceleration."""

import numpy as np
import pytest

from repro.apps.hf.basis import h_chain, h_ring
from repro.apps.hf.diis import DIIS
from repro.apps.hf.scf import SCFDriver


class TestDIISMachinery:
    def test_error_vector_antisymmetric(self):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((4, 4))
        f = f + f.T
        d = rng.standard_normal((4, 4))
        d = d + d.T
        s = np.eye(4)
        e = DIIS.error_vector(f, d, s)
        np.testing.assert_allclose(e, -e.T, atol=1e-12)

    def test_error_zero_when_commuting(self):
        """[F, D] = 0 (orthogonal basis) means zero DIIS error."""
        f = np.diag([1.0, 2.0, 3.0])
        d = np.diag([1.0, 0.0, 0.0])
        e = DIIS.error_vector(f, d, np.eye(3))
        assert np.abs(e).max() < 1e-14

    def test_no_extrapolation_until_min_vectors(self):
        diis = DIIS(min_vectors=3)
        f = np.eye(2)
        diis.push(f, np.ones((2, 2)))
        diis.push(f, np.ones((2, 2)) * 0.5)
        assert diis.extrapolate() is None
        diis.push(f, np.ones((2, 2)) * 0.1)
        assert diis.extrapolate() is not None

    def test_history_bounded(self):
        diis = DIIS(max_vectors=3)
        for i in range(10):
            diis.push(np.eye(2) * i, np.ones((2, 2)) * (i + 1))
        assert diis.size == 3

    def test_coefficients_sum_to_one(self):
        """Extrapolation is a proper affine combination: with identical
        Fock matrices the result equals the input."""
        diis = DIIS()
        f = np.array([[2.0, 0.3], [0.3, 1.0]])
        rng = np.random.default_rng(1)
        for _ in range(4):
            diis.push(f, rng.standard_normal((2, 2)))
        np.testing.assert_allclose(diis.extrapolate(), f, atol=1e-8)

    def test_reset(self):
        diis = DIIS()
        diis.push(np.eye(2), np.ones((2, 2)))
        diis.reset()
        assert diis.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DIIS(max_vectors=1)
        with pytest.raises(ValueError):
            DIIS(max_vectors=4, min_vectors=5)


class TestDIISInSCF:
    @pytest.mark.parametrize("mol_factory", [lambda: h_chain(6), lambda: h_chain(8)])
    def test_same_energy_fewer_iterations(self, mol_factory):
        plain = SCFDriver(mol_factory(), convergence=1e-9).run()
        accel = SCFDriver(mol_factory(), convergence=1e-9, accelerator="diis").run()
        assert accel.energy == pytest.approx(plain.energy, abs=1e-7)
        assert accel.iterations < plain.iterations

    def test_ring_geometry(self):
        plain = SCFDriver(h_ring(6), convergence=1e-9).run()
        accel = SCFDriver(h_ring(6), convergence=1e-9, accelerator="diis").run()
        assert accel.energy == pytest.approx(plain.energy, abs=1e-7)

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(ValueError, match="accelerator"):
            SCFDriver(h_chain(4), accelerator="magic")

    def test_diis_composes_with_comp_mode(self):
        mem = SCFDriver(h_chain(6), mode="mem", accelerator="diis").run()
        comp = SCFDriver(h_chain(6), mode="comp", accelerator="diis").run()
        assert mem.energy == pytest.approx(comp.energy, rel=1e-12)
        assert mem.iterations == comp.iterations
