"""Figure 11/12 model tests: SpMV performance on the modelled E870."""

import pytest

from repro.apps.spmv.perf import (
    csr_performance,
    fig12_curve,
    rmat_tile_elements,
    suite_performance,
    twoscan_performance,
    vector_traffic_bytes,
)
from repro.reporting.compare import is_monotone, within_factor
from repro.reporting import paper_values as paper
from repro.workloads.suitesparse import SUITE, by_name, generate


@pytest.fixture(scope="module")
def rates(e870_system):
    return {r.name: r for r in suite_performance(e870_system, SUITE, rows=8000, seed=7)}


class TestFig11:
    def test_dense_is_fastest(self, rates):
        dense = rates["Dense"].gflops
        for name, rate in rates.items():
            assert rate.gflops <= dense * 1.001, name

    def test_structured_matrices_near_dense(self, rates):
        """The paper: most matrices perform similarly to Dense."""
        for name in ("Protein", "FEM/Spheres", "Wind Tunnel", "QCD"):
            assert rates[name].gflops > 0.85 * rates["Dense"].gflops, name

    def test_scattered_matrices_slower(self, rates):
        for name in ("Webbase", "Economics"):
            assert rates[name].gflops < 0.9 * rates["Dense"].gflops, name

    def test_dense_bytes_per_nnz_near_csr_minimum(self, rates):
        assert rates["Dense"].bytes_per_nnz == pytest.approx(12.0, rel=0.02)

    def test_spmv_is_memory_bound_rate(self, rates, e870_system):
        """All rates must sit below the bandwidth-implied bound."""
        bw = e870_system.peak_memory_bandwidth
        for rate in rates.values():
            bound = 2.0 / rate.bytes_per_nnz * bw / 1e9
            assert rate.gflops <= bound * 1.01


class TestVectorTraffic:
    def test_banded_less_than_random(self, e870_system):
        # Use a cache budget smaller than the vector so chunked reloads
        # matter (at generation scale the full vector would fit the L3).
        cache = 32 * 1024
        banded = generate(by_name("Epidemiology"), rows=8000, seed=1)
        scattered = generate(by_name("Economics"), rows=8000, seed=1)
        t_banded = vector_traffic_bytes(banded, cache) / max(banded.nnz, 1)
        t_scattered = vector_traffic_bytes(scattered, cache) / max(scattered.nnz, 1)
        assert t_banded < t_scattered

    def test_dense_reuses_vector(self, e870_system):
        dense = generate(by_name("Dense"), rows=512, seed=1)
        traffic = vector_traffic_bytes(dense, e870_system.chip.l3_capacity)
        # The whole vector is only 4 KB; traffic must be a tiny fraction
        # of the matrix bytes.
        assert traffic < 0.01 * dense.nnz * 12


class TestFig12:
    def test_declining_with_scale(self, e870_system):
        curve = fig12_curve(e870_system, range(20, 32))
        gflops = [r.gflops for r in curve]
        assert is_monotone(gflops, increasing=False)
        assert gflops[0] > 1.3 * gflops[-1]

    def test_tile_elements_match_paper_order(self):
        """~thousands of elements at scale 24, ~tens at scale 31."""
        t24 = rmat_tile_elements(24)
        t31 = rmat_tile_elements(31)
        assert within_factor(t24, paper.FIG12["tile_elements_scale24"], 2.0)
        assert within_factor(t31, paper.FIG12["tile_elements_scale31"], 2.5)
        assert t24 / t31 == pytest.approx(2 ** 7, rel=0.01)

    def test_small_scale_insensitive_to_tiles(self, e870_system):
        """Below ~scale 24 tiles are big and performance is flat."""
        a = twoscan_performance(e870_system, 20).gflops
        b = twoscan_performance(e870_system, 23).gflops
        assert a == pytest.approx(b, rel=0.05)

    def test_rate_object_fields(self, e870_system):
        rate = twoscan_performance(e870_system, 24)
        assert rate.name == "R-MAT 24"
        assert rate.operational_intensity < 0.2
        assert rate.gflops > 0


class TestCSRPerformanceAPI:
    def test_named_result(self, e870_system):
        m = generate(by_name("QCD"), rows=2000, seed=3)
        rate = csr_performance(m, e870_system, name="QCD")
        assert rate.name == "QCD"
        assert 0 < rate.gflops < 400

    def test_rejects_non_spec(self, e870_system):
        with pytest.raises(TypeError):
            suite_performance(e870_system, ["not-a-spec"])
