"""Correctness tests for the Gaussian integral engine."""

import numpy as np
import pytest

from repro.apps.hf.basis import contracted_s, h2, helium
from repro.apps.hf.integrals import (
    boys_f0,
    core_hamiltonian,
    eri_ssss,
    eri_tensor,
    kinetic,
    nuclear_attraction,
    overlap,
    overlap_matrix,
)


def primitive(center, alpha):
    """A single normalised primitive s Gaussian."""
    return contracted_s(center, [(alpha, 1.0)])


class TestBoysFunction:
    def test_at_zero(self):
        assert boys_f0(0.0) == pytest.approx(1.0)

    def test_series_matches_erf_branch(self):
        # Continuity across the small-t switch.
        assert boys_f0(1e-12) == pytest.approx(boys_f0(1e-11), rel=1e-6)

    def test_known_value(self):
        # F0(1) = (sqrt(pi)/2) * erf(1) ~ 0.7468
        assert boys_f0(1.0) == pytest.approx(0.746824, rel=1e-5)

    def test_vectorised(self):
        ts = np.array([0.0, 0.5, 2.0])
        out = boys_f0(ts)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)  # strictly decreasing

    def test_large_t_asymptote(self):
        t = 100.0
        assert boys_f0(t) == pytest.approx(0.5 * np.sqrt(np.pi / t), rel=1e-6)


class TestOverlap:
    def test_self_overlap_normalised(self):
        g = primitive((0, 0, 0), 1.3)
        assert overlap(g, g) == pytest.approx(1.0, rel=1e-10)

    def test_decays_with_distance(self):
        a = primitive((0, 0, 0), 1.0)
        values = [overlap(a, primitive((0, 0, z), 1.0)) for z in (0.0, 1.0, 2.0, 4.0)]
        assert values[0] == pytest.approx(1.0)
        assert all(x > y for x, y in zip(values, values[1:]))

    def test_symmetric(self):
        a = primitive((0, 0, 0), 0.8)
        b = primitive((0.5, 0.3, 0.1), 2.0)
        assert overlap(a, b) == pytest.approx(overlap(b, a))

    def test_contracted_sto3g_normalised(self):
        mol = h2()
        s = overlap_matrix(mol)
        assert s[0, 0] == pytest.approx(1.0, rel=1e-6)
        assert s[1, 1] == pytest.approx(1.0, rel=1e-6)
        # Known STO-3G H2 overlap at R=1.4 bohr (Szabo & Ostlund): 0.6593
        assert s[0, 1] == pytest.approx(0.6593, abs=2e-3)


class TestKinetic:
    def test_primitive_self_value(self):
        """<g|T|g> = 3*alpha/2 for a normalised primitive s Gaussian."""
        alpha = 0.9
        g = primitive((0, 0, 0), alpha)
        assert kinetic(g, g) == pytest.approx(1.5 * alpha, rel=1e-10)

    def test_h2_sto3g_value(self):
        mol = h2()
        h = np.array([[kinetic(a, b) for b in mol.basis] for a in mol.basis])
        # Szabo & Ostlund Table 3.5: T11 = 0.7600, T12 = 0.2365
        assert h[0, 0] == pytest.approx(0.7600, abs=2e-3)
        assert h[0, 1] == pytest.approx(0.2365, abs=2e-3)


class TestNuclearAttraction:
    def test_negative(self):
        mol = helium()
        g = mol.basis[0]
        assert nuclear_attraction(g, g, mol) < 0

    def test_h2_core_hamiltonian(self):
        """Szabo & Ostlund Table 3.5: Hcore_11 = -1.1204, Hcore_12 = -0.9584."""
        mol = h2()
        h = core_hamiltonian(mol)
        assert h[0, 0] == pytest.approx(-1.1204, abs=3e-3)
        assert h[0, 1] == pytest.approx(-0.9584, abs=3e-3)
        assert h[0, 0] == pytest.approx(h[1, 1], rel=1e-10)  # symmetry


class TestERI:
    def test_h2_sto3g_values(self):
        """Szabo & Ostlund Table 3.6 two-electron integrals for H2."""
        mol = h2()
        b = mol.basis
        assert eri_ssss(b[0], b[0], b[0], b[0]) == pytest.approx(0.7746, abs=2e-3)
        assert eri_ssss(b[0], b[0], b[1], b[1]) == pytest.approx(0.5697, abs=2e-3)
        assert eri_ssss(b[1], b[0], b[0], b[0]) == pytest.approx(0.4441, abs=2e-3)
        assert eri_ssss(b[1], b[0], b[1], b[0]) == pytest.approx(0.2970, abs=2e-3)

    def test_positive_diagonal(self):
        mol = h2()
        for g in mol.basis:
            assert eri_ssss(g, g, g, g) > 0

    def test_eight_fold_symmetry(self):
        mol = h2()
        t = eri_tensor(mol)
        n = mol.nbf
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    for l in range(n):
                        v = t[i, j, k, l]
                        assert t[j, i, k, l] == pytest.approx(v)
                        assert t[i, j, l, k] == pytest.approx(v)
                        assert t[k, l, i, j] == pytest.approx(v)

    def test_tensor_matches_direct_evaluation(self):
        mol = h2()
        t = eri_tensor(mol)
        b = mol.basis
        assert t[0, 1, 1, 0] == pytest.approx(eri_ssss(b[0], b[1], b[1], b[0]))
