"""Tests for McWeeny/canonical purification (the spectral projector)."""

import numpy as np
import pytest

from repro.apps.hf import h_chain, helium, run_rhf
from repro.apps.hf.integrals import core_hamiltonian, eri_tensor, overlap_matrix
from repro.apps.hf.purification import (
    PurificationError,
    density_via_purification,
    idempotency_error,
    mcweeny_purify,
    occupied_count,
)
from repro.apps.hf.scf import build_fock, density_from_fock


@pytest.fixture(scope="module")
def converged():
    mol = h_chain(6)
    res = run_rhf(mol)
    s = overlap_matrix(mol)
    fock = build_fock(core_hamiltonian(mol), eri_tensor(mol), res.density)
    return mol, res, s, fock


class TestIdempotency:
    def test_scf_density_is_a_projector(self, converged):
        _, res, s, _ = converged
        assert idempotency_error(res.density, s) < 1e-10

    def test_occupied_count(self, converged):
        mol, res, s, _ = converged
        assert occupied_count(res.density, s) == pytest.approx(
            mol.num_electrons / 2, abs=1e-8
        )

    def test_random_matrix_not_idempotent(self):
        rng = np.random.default_rng(0)
        d = rng.standard_normal((4, 4))
        assert idempotency_error(d, np.eye(4)) > 0.1


class TestMcWeeny:
    def test_projector_is_fixed_point(self, converged):
        _, res, s, _ = converged
        out = mcweeny_purify(res.density, s)
        assert out.iterations == 0
        np.testing.assert_allclose(out.density, res.density, atol=1e-10)

    def test_restores_perturbed_density(self, converged):
        _, res, s, _ = converged
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(res.density.shape) * 1e-4
        noisy = res.density + (noise + noise.T) / 2
        out = mcweeny_purify(noisy, s)
        assert out.idempotency_error < 1e-12
        assert occupied_count(out.density, s) == pytest.approx(3.0, abs=1e-6)

    def test_larger_perturbation_takes_more_iterations(self, converged):
        _, res, s, _ = converged
        rng = np.random.default_rng(2)
        noise = rng.standard_normal(res.density.shape)
        noise = (noise + noise.T) / 2
        small = mcweeny_purify(res.density + 1e-6 * noise, s)
        large = mcweeny_purify(res.density + 1e-3 * noise, s)
        assert large.iterations >= small.iterations

    def test_diverges_outside_basin(self):
        # Eigenvalues far outside (-0.5, 1.5) must not silently "converge".
        d = np.diag([5.0, -3.0])
        with pytest.raises(PurificationError):
            mcweeny_purify(d, np.eye(2), max_iterations=30)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mcweeny_purify(np.eye(3), np.eye(4))


class TestDensityViaPurification:
    def test_matches_eigensolver(self, converged):
        mol, _, s, fock = converged
        d_eig, _ = density_from_fock(fock, s, mol.num_electrons // 2)
        out = density_via_purification(fock, s, mol.num_electrons // 2)
        np.testing.assert_allclose(out.density, d_eig, atol=1e-8)

    def test_helium(self):
        mol = helium()
        res = run_rhf(mol)
        s = overlap_matrix(mol)
        fock = build_fock(core_hamiltonian(mol), eri_tensor(mol), res.density)
        out = density_via_purification(fock, s, 1)
        d_eig, _ = density_from_fock(fock, s, 1)
        np.testing.assert_allclose(out.density, d_eig, atol=1e-8)

    def test_result_is_projector_with_right_trace(self, converged):
        mol, _, s, fock = converged
        out = density_via_purification(fock, s, mol.num_electrons // 2)
        assert out.idempotency_error < 1e-8
        assert occupied_count(out.density, s) == pytest.approx(
            mol.num_electrons / 2, abs=1e-6
        )
