"""Tests for spectral anomaly detection over the SpMV kernel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.spmv.anomaly import (
    PowerIterationError,
    dominant_singular_triplet,
    spectral_anomaly_scores,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency


def community_with_outlier(n_core=30, seed=3):
    """A dense community plus one vertex wired to random strangers."""
    rng = np.random.default_rng(seed)
    n = n_core + 1
    dense = np.zeros((n, n))
    for i in range(n_core):
        for j in range(i + 1, n_core):
            if rng.random() < 0.6:
                dense[i, j] = dense[j, i] = 1.0
    # The outlier touches a few arbitrary community members sparsely.
    outlier = n_core
    for j in rng.choice(n_core, size=3, replace=False):
        dense[outlier, j] = dense[j, outlier] = 1.0
    return sp.csr_matrix(dense), outlier


class TestSingularTriplet:
    def test_matches_scipy_svds(self):
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=8, seed=1))
        model = dominant_singular_triplet(adj, tol=1e-12)
        ref_sigma = sp.linalg.svds(
            adj.astype(np.float64), k=1, return_singular_vectors=False
        )[0]
        assert model.sigma == pytest.approx(float(ref_sigma), rel=1e-6)

    def test_unit_vectors(self):
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=8, seed=1))
        model = dominant_singular_triplet(adj)
        assert np.linalg.norm(model.left) == pytest.approx(1.0)
        assert np.linalg.norm(model.right) == pytest.approx(1.0)

    def test_singular_relation(self):
        """A v ~ sigma u at convergence."""
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=8, seed=2))
        model = dominant_singular_triplet(adj, tol=1e-12)
        lhs = adj @ model.right
        np.testing.assert_allclose(lhs, model.sigma * model.left, atol=1e-5)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            dominant_singular_triplet(sp.csr_matrix((4, 4)))

    def test_iteration_budget(self):
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=8, seed=1))
        with pytest.raises(PowerIterationError):
            dominant_singular_triplet(adj, tol=1e-15, max_iterations=2)


class TestAnomalyScores:
    def test_outlier_scores_highest(self):
        adj, outlier = community_with_outlier()
        result = spectral_anomaly_scores(adj)
        assert outlier in result.top(3)

    def test_scores_nonnegative(self):
        adj = rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=1))
        result = spectral_anomaly_scores(adj)
        assert np.all(result.scores >= 0)
        assert len(result.scores) == adj.shape[0]

    def test_core_members_score_low(self):
        adj, outlier = community_with_outlier()
        result = spectral_anomaly_scores(adj)
        core_scores = np.delete(result.scores, outlier)
        assert result.scores[outlier] > np.median(core_scores)

    def test_reconstruct_row(self):
        adj, _ = community_with_outlier()
        result = spectral_anomaly_scores(adj)
        row0 = result.model.reconstruct_row(0)
        assert row0.shape == (adj.shape[1],)

    def test_top_validation(self):
        adj, _ = community_with_outlier()
        result = spectral_anomaly_scores(adj)
        with pytest.raises(ValueError):
            result.top(0)

    def test_deterministic_given_seed(self):
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=8, seed=5))
        a = spectral_anomaly_scores(adj, seed=4)
        b = spectral_anomaly_scores(adj, seed=4)
        np.testing.assert_array_equal(a.scores, b.scores)
