"""Tests for MinHash/LSH approximate Jaccard."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.jaccard import (
    all_pairs_jaccard,
    approximate_all_pairs,
    lsh_candidate_pairs,
    minhash_signatures,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency


@pytest.fixture(scope="module")
def graph():
    return rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=1))


@pytest.fixture(scope="module")
def sigs(graph):
    return minhash_signatures(graph, num_hashes=256, seed=3)


class TestSignatures:
    def test_shape(self, graph, sigs):
        assert sigs.signatures.shape == (graph.shape[0], 256)

    def test_identical_sets_estimate_one(self, sigs, graph):
        v = int(np.argmax(np.diff(graph.indptr)))  # a well-connected vertex
        assert sigs.estimate(v, v) == 1.0

    def test_estimates_in_unit_interval(self, sigs):
        rng = np.random.default_rng(0)
        for _ in range(50):
            i, j = rng.integers(0, sigs.num_vertices, 2)
            assert 0.0 <= sigs.estimate(int(i), int(j)) <= 1.0

    def test_unbiased_against_exact(self, graph, sigs):
        """Mean estimation error over sampled connected pairs is small."""
        exact = all_pairs_jaccard(graph).similarity.tocoo()
        rng = np.random.default_rng(1)
        idx = rng.choice(len(exact.data), size=150, replace=False)
        errors = [
            abs(sigs.estimate(int(exact.row[k]), int(exact.col[k])) - exact.data[k])
            for k in idx
        ]
        assert np.mean(errors) < 0.05
        assert max(errors) < 0.20

    def test_more_hashes_reduce_error(self, graph):
        exact = all_pairs_jaccard(graph).similarity.tocoo()
        rng = np.random.default_rng(2)
        idx = rng.choice(len(exact.data), size=100, replace=False)

        def mean_err(num_hashes):
            s = minhash_signatures(graph, num_hashes, seed=5)
            return np.mean(
                [abs(s.estimate(int(exact.row[k]), int(exact.col[k])) - exact.data[k])
                 for k in idx]
            )

        assert mean_err(512) < mean_err(32)

    def test_deterministic(self, graph):
        a = minhash_signatures(graph, 64, seed=9)
        b = minhash_signatures(graph, 64, seed=9)
        assert np.array_equal(a.signatures, b.signatures)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            minhash_signatures(graph, 0)


class TestLSH:
    def test_high_similarity_pairs_found(self):
        """Twin vertices (identical neighbourhoods) must be candidates."""
        n = 20
        dense = np.zeros((n, n))
        # Vertices 0 and 1 share the identical neighbour set {2..8}.
        for v in (0, 1):
            for u in range(2, 9):
                dense[v, u] = dense[u, v] = 1
        dense[10, 11] = dense[11, 10] = 1  # an unrelated edge
        adj = sp.csr_matrix(dense)
        sigs = minhash_signatures(adj, 128, seed=1)
        pairs = lsh_candidate_pairs(sigs, bands=32)
        assert (0, 1) in pairs

    def test_bands_must_divide(self, sigs):
        with pytest.raises(ValueError, match="divide"):
            lsh_candidate_pairs(sigs, bands=7)

    def test_filtering_reduces_pairs(self, graph, sigs):
        n = graph.shape[0]
        pairs = lsh_candidate_pairs(sigs, bands=8)  # long bands: selective
        assert len(pairs) < n * (n - 1) / 2 / 4


class TestApproximateAllPairs:
    def test_reported_pairs_meet_threshold(self, graph):
        approx = approximate_all_pairs(graph, num_hashes=128, bands=16, threshold=0.4)
        assert all(v >= 0.4 for v in approx.values())

    def test_high_pairs_are_really_similar(self, graph):
        approx = approximate_all_pairs(graph, num_hashes=256, bands=32, threshold=0.6)
        exact = all_pairs_jaccard(graph)
        for (i, j), est in approx.items():
            true = exact.pair(i, j)
            assert true > 0.3, (i, j, est, true)

    def test_threshold_validation(self, graph):
        with pytest.raises(ValueError):
            approximate_all_pairs(graph, threshold=1.5)
