"""SCF correctness: textbook energies, HF-Comp == HF-Mem, screening."""

import numpy as np
import pytest

from repro.apps.hf.basis import Atom, Molecule, h2, h_chain, h_ring, helium
from repro.apps.hf.scf import SCFConvergenceError, SCFDriver, run_rhf
from repro.apps.hf.screening import SchwarzScreening


class TestTextbookEnergies:
    def test_h2_sto3g(self):
        """E_RHF(H2, STO-3G, R=1.4) = -1.1167 hartree (Szabo & Ostlund)."""
        res = run_rhf(h2())
        assert res.converged
        assert res.energy == pytest.approx(-1.1167, abs=2e-3)

    def test_helium_sto3g(self):
        """E_RHF(He, STO-3G) = -2.8078 hartree."""
        res = run_rhf(helium())
        assert res.energy == pytest.approx(-2.8078, abs=2e-3)

    def test_h2_electronic_plus_nuclear(self):
        res = run_rhf(h2())
        assert res.nuclear_repulsion == pytest.approx(1.0 / 1.4)
        assert res.energy == pytest.approx(
            res.electronic_energy + res.nuclear_repulsion
        )

    def test_h2_orbital_count(self):
        res = run_rhf(h2())
        assert len(res.orbital_energies) == 2
        # Bonding orbital below zero, antibonding above it.
        assert res.orbital_energies[0] < 0 < res.orbital_energies[1]

    def test_stretched_h2_higher_energy(self):
        near = run_rhf(h2(1.4)).energy
        far = run_rhf(h2(3.0)).energy
        assert far > near


class TestCompVsMem:
    """HF-Comp and HF-Mem are the same math: results must be identical."""

    @pytest.mark.parametrize("mol_factory", [h2, helium, lambda: h_chain(4)])
    def test_identical_energy_and_iterations(self, mol_factory):
        mem = run_rhf(mol_factory(), mode="mem")
        comp = run_rhf(mol_factory(), mode="comp")
        assert mem.energy == pytest.approx(comp.energy, rel=1e-12)
        assert mem.iterations == comp.iterations
        np.testing.assert_allclose(mem.density, comp.density, atol=1e-12)

    def test_comp_recomputes_each_iteration(self):
        driver = SCFDriver(h_chain(4), mode="comp")
        result = driver.run()
        assert driver.eri_evaluations == result.iterations

    def test_mem_computes_once(self):
        driver = SCFDriver(h_chain(4), mode="mem")
        driver.run()
        assert driver.eri_evaluations == 1


class TestScreening:
    def test_screening_preserves_energy(self):
        loose = run_rhf(h_chain(6), screening_tolerance=1e-9)
        none = run_rhf(h_chain(6), screening_tolerance=None)
        assert loose.energy == pytest.approx(none.energy, abs=1e-6)

    def test_aggressive_screening_drops_integrals(self):
        mol = h_chain(8, spacing=2.2)
        tight = SchwarzScreening(mol, tolerance=1e-10)
        aggressive = SchwarzScreening(mol, tolerance=1e-3)
        assert aggressive.surviving_count() < tight.surviving_count()

    def test_schwarz_bound_is_valid(self):
        """No computed ERI may exceed its Schwarz bound."""
        from repro.apps.hf.integrals import eri_ssss

        mol = h_chain(4)
        scr = SchwarzScreening(mol)
        b = mol.basis
        n = mol.nbf
        rng = np.random.default_rng(1)
        for _ in range(40):
            i, j, k, l = rng.integers(0, n, 4)
            val = abs(eri_ssss(b[i], b[j], b[k], b[l]))
            assert val <= scr.bound(i, j, k, l) * (1 + 1e-9)

    def test_survival_fraction_below_one_for_spread_chain(self):
        mol = h_chain(10, spacing=3.0)
        scr = SchwarzScreening(mol, tolerance=1e-6)
        assert 0.0 < scr.survival_fraction() < 1.0

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            SchwarzScreening(h2(), tolerance=0.0)


class TestSCFMachinery:
    def test_rejects_odd_electrons(self):
        mol = Molecule("H1", [Atom("H", (0, 0, 0))])
        with pytest.raises(ValueError, match="even electron"):
            SCFDriver(mol)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SCFDriver(h2(), mode="magic")

    def test_convergence_error(self):
        with pytest.raises(SCFConvergenceError):
            SCFDriver(h_chain(6), max_iterations=1, convergence=1e-14).run()

    def test_no_raise_mode(self):
        res = SCFDriver(h_chain(6), max_iterations=1, convergence=1e-14).run(
            raise_on_failure=False
        )
        assert not res.converged
        assert res.iterations == 1

    def test_energy_history_recorded(self):
        res = run_rhf(h_chain(4))
        assert len(res.energy_history) == res.iterations
        # Converged tail is flat.
        assert res.energy_history[-1] == pytest.approx(res.energy, abs=1e-4)

    def test_density_trace_equals_occupied(self):
        """Tr(D S) = number of occupied orbitals for RHF."""
        from repro.apps.hf.integrals import overlap_matrix

        mol = h_chain(4)
        res = run_rhf(mol)
        s = overlap_matrix(mol)
        assert np.trace(res.density @ s) == pytest.approx(mol.num_electrons / 2, rel=1e-8)

    def test_ring_geometry_runs(self):
        res = run_rhf(h_ring(4))
        assert res.converged


class TestGeometryBuilders:
    def test_chain_validation(self):
        with pytest.raises(ValueError):
            h_chain(3)

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            h_ring(5)

    def test_unknown_element_rejected(self):
        with pytest.raises(ValueError, match="s-only"):
            Molecule("Li", [Atom("Li", (0, 0, 0))]).atoms[0].charge

    def test_coincident_nuclei_rejected(self):
        mol = Molecule("bad", [Atom("H", (0, 0, 0)), Atom("H", (0, 0, 0))])
        with pytest.raises(ValueError, match="coincident"):
            mol.nuclear_repulsion()
