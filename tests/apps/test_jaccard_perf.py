"""Figure 10 model tests: time/memory extrapolation for Jaccard."""

import pytest

from repro.apps.jaccard.perf import JaccardPerfModel


@pytest.fixture(scope="module")
def model(e870_system):
    return JaccardPerfModel(e870_system, sample_scales=(8, 9, 10, 11))


class TestFig10Shape:
    def test_time_grows_with_scale(self, model):
        times = [model.estimate(s).time_seconds for s in range(17, 24)]
        assert times == sorted(times)
        assert times[-1] > 5 * times[0]

    def test_output_dwarfs_input(self, model):
        """The paper's core observation for Figure 10."""
        for s in range(17, 24):
            p = model.estimate(s)
            assert p.output_to_input_ratio > 10.0

    def test_ratio_grows_with_scale(self, model):
        ratios = [model.estimate(s).output_to_input_ratio for s in range(17, 24)]
        assert ratios == sorted(ratios)

    def test_extrapolation_consistent_with_samples(self, model, e870_system):
        """Re-fitting on a superset barely changes the estimates."""
        wider = JaccardPerfModel(e870_system, sample_scales=(8, 9, 10, 11, 12))
        a = model.estimate(17)
        b = wider.estimate(17)
        assert a.output_bytes == pytest.approx(b.output_bytes, rel=0.5)

    def test_curve_helper(self, model):
        points = model.fig10_curve(range(17, 20))
        assert [p.scale for p in points] == [17, 18, 19]

    def test_validation(self, model, e870_system):
        with pytest.raises(ValueError):
            model.estimate(0)
        with pytest.raises(ValueError):
            JaccardPerfModel(e870_system, sample_scales=(10,))
