"""Tests for the graph-analytics kernels built on two-scan SpMV."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.spmv.graphkernels import (
    ConvergenceError,
    hits,
    pagerank,
    random_walk_with_restart,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency


@pytest.fixture(scope="module")
def rmat():
    return rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=1))


def star_graph(n):
    """Vertex 0 connected to all others."""
    rows = [0] * (n - 1) + list(range(1, n))
    cols = list(range(1, n)) + [0] * (n - 1)
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


class TestPageRank:
    def test_sums_to_one(self, rmat):
        result = pagerank(rmat)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(result.values > 0)

    def test_matches_networkx(self, rmat):
        result = pagerank(rmat, tol=1e-12)
        g = nx.from_scipy_sparse_array(rmat)
        ref = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=1000)
        refv = np.array([ref[i] for i in range(rmat.shape[0])])
        np.testing.assert_allclose(result.values, refv, atol=1e-8)

    def test_star_center_dominates(self):
        result = pagerank(star_graph(20))
        assert np.argmax(result.values) == 0
        assert result.values[0] > 5 * result.values[1]

    def test_dangling_mass_conserved(self):
        # A directed chain: vertex 2 has no out-edges.
        adj = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float))
        result = pagerank(adj)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_validation(self, rmat):
        with pytest.raises(ValueError):
            pagerank(rmat, damping=1.5)
        with pytest.raises(ConvergenceError):
            pagerank(rmat, tol=1e-16, max_iterations=2)


class TestRWR:
    def test_seed_scores_highest(self, rmat):
        result = random_walk_with_restart(rmat, seed_vertex=5)
        assert np.argmax(result.values) == 5

    def test_scores_sum_to_one(self, rmat):
        result = random_walk_with_restart(rmat, seed_vertex=0)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-8)

    def test_proximity_decays_on_path(self):
        n = 12
        rows = list(range(n - 1)) + list(range(1, n))
        cols = list(range(1, n)) + list(range(n - 1))
        path = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        result = random_walk_with_restart(path, seed_vertex=0)
        # Scores decay monotonically with distance from the seed.
        assert all(result.values[i] > result.values[i + 2] for i in range(0, n - 2, 2))

    def test_validation(self, rmat):
        with pytest.raises(ValueError):
            random_walk_with_restart(rmat, seed_vertex=-1)
        with pytest.raises(ValueError):
            random_walk_with_restart(rmat, 0, restart=0.0)


class TestHITS:
    def test_matches_networkx(self, rmat):
        hubs, auths = hits(rmat, tol=1e-12)
        g = nx.from_scipy_sparse_array(rmat, create_using=nx.DiGraph)
        ref_h, ref_a = nx.hits(g, max_iter=1000, tol=1e-12)
        ref_hv = np.array([ref_h[i] for i in range(rmat.shape[0])])
        # networkx normalises to sum 1; we normalise to unit L2 norm.
        np.testing.assert_allclose(
            hubs.values / hubs.values.sum(), ref_hv, atol=1e-6
        )

    def test_symmetric_graph_hubs_equal_authorities(self, rmat):
        hubs, auths = hits(rmat, tol=1e-12)
        np.testing.assert_allclose(hubs.values, auths.values, atol=1e-6)

    def test_unit_norm(self, rmat):
        hubs, auths = hits(rmat)
        assert np.linalg.norm(hubs.values) == pytest.approx(1.0)
        assert np.linalg.norm(auths.values) == pytest.approx(1.0)

    def test_star_graph(self):
        hubs, auths = hits(star_graph(10))
        assert np.argmax(auths.values) == 0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            hits(sp.csr_matrix((4, 4)))
