"""Correctness tests for the CSR and two-scan SpMV implementations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.spmv import (
    CSRSpMV,
    ReplicatedVector,
    TwoScanSpMV,
    imbalance,
    partition_rows,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency
from repro.workloads.suitesparse import by_name, generate


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(n, n, density=density, random_state=rng, format="csr")


class TestPartition:
    def test_covers_all_rows(self):
        m = random_csr(100, 0.05, 1)
        parts = partition_rows(m, 8)
        assert parts[0].row_start == 0
        assert parts[-1].row_end == 100
        for a, b in zip(parts, parts[1:]):
            assert a.row_end == b.row_start

    def test_nnz_accounting(self):
        m = random_csr(200, 0.05, 2)
        parts = partition_rows(m, 4)
        assert sum(p.nnz for p in parts) == m.nnz

    def test_balance_on_uniform_matrix(self):
        m = sp.eye(1000, format="csr")
        parts = partition_rows(m, 10)
        assert imbalance(parts) < 1.05

    def test_balances_skewed_matrix(self):
        """A matrix with one dense row block still splits nnz evenly."""
        n = 400
        dense_rows = sp.vstack(
            [sp.csr_matrix(np.ones((20, n))), sp.random(n - 20, n, 0.01, format="csr", random_state=np.random.default_rng(1))]
        ).tocsr()
        parts = partition_rows(dense_rows, 8)
        assert imbalance(parts) < 2.0

    def test_socket_assignment(self):
        m = random_csr(64, 0.1, 3)
        parts = partition_rows(m, 8, threads_per_socket=2)
        assert [p.socket for p in parts] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_more_threads_than_rows(self):
        m = sp.eye(4, format="csr")
        parts = partition_rows(m, 16)
        assert sum(p.rows for p in parts) == 4

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            partition_rows(sp.eye(4, format="csr"), 0)


class TestReplicatedVector:
    def test_one_copy_per_socket(self):
        x = np.arange(10.0)
        rep = ReplicatedVector.replicate(x, 4)
        assert len(rep.copies) == 4
        assert rep.memory_bytes == 4 * x.nbytes

    def test_copies_independent(self):
        x = np.arange(4.0)
        rep = ReplicatedVector.replicate(x, 2)
        rep.on_socket(0)[0] = 99.0
        assert rep.on_socket(1)[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicatedVector.replicate(np.zeros(3), 0)


class TestCSRSpMV:
    @pytest.mark.parametrize("threads", [1, 3, 8, 64])
    def test_matches_scipy(self, threads):
        m = random_csr(300, 0.03, 4)
        x = np.random.default_rng(0).standard_normal(300)
        kernel = CSRSpMV(m, num_threads=threads, num_sockets=8)
        np.testing.assert_allclose(kernel.multiply(x), m @ x, rtol=1e-12, atol=1e-12)

    def test_empty_rows_produce_zeros(self):
        m = sp.csr_matrix((5, 5))
        y = CSRSpMV(m, num_threads=2).multiply(np.ones(5))
        assert np.all(y == 0)

    def test_suite_matrix(self):
        m = generate(by_name("QCD"), rows=1000, seed=1)
        x = np.random.default_rng(1).standard_normal(1000)
        kernel = CSRSpMV(m, num_threads=16)
        np.testing.assert_allclose(kernel.multiply(x), m @ x, rtol=1e-10)

    def test_flops(self):
        m = random_csr(100, 0.1, 5)
        assert CSRSpMV(m).flops() == 2 * m.nnz

    def test_shape_validation(self):
        m = random_csr(10, 0.5, 6)
        with pytest.raises(ValueError, match="x has shape"):
            CSRSpMV(m).multiply(np.zeros(11))
        with pytest.raises(ValueError, match="y has shape"):
            CSRSpMV(m).multiply(np.zeros(10), y=np.zeros(11))

    def test_rejects_dense_input(self):
        with pytest.raises(TypeError):
            CSRSpMV(np.eye(4))


class TestTwoScanSpMV:
    @pytest.mark.parametrize("block_width", [1, 7, 64, 1 << 17])
    def test_matches_scipy(self, block_width):
        adj = rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=1))
        x = np.random.default_rng(2).standard_normal(adj.shape[1])
        kernel = TwoScanSpMV(adj, block_width=block_width)
        np.testing.assert_allclose(kernel.multiply(x), adj @ x, rtol=1e-10, atol=1e-12)

    def test_rectangular_matrix(self):
        m = sp.random(50, 80, 0.1, format="csr", random_state=np.random.default_rng(3))
        x = np.random.default_rng(3).standard_normal(80)
        kernel = TwoScanSpMV(m, block_width=16)
        np.testing.assert_allclose(kernel.multiply(x), m @ x, rtol=1e-10, atol=1e-12)

    def test_duplicate_handling_matches_coo(self):
        # COO with duplicate entries must sum, like scipy does.
        rows = np.array([0, 0, 1])
        cols = np.array([1, 1, 0])
        data = np.array([2.0, 3.0, 4.0])
        m = sp.coo_matrix((data, (rows, cols)), shape=(2, 2))
        kernel = TwoScanSpMV(m, block_width=1)
        x = np.array([1.0, 10.0])
        np.testing.assert_allclose(kernel.multiply(x), m.tocsr() @ x)

    def test_tile_stats(self):
        adj = rmat_adjacency(RMATConfig(scale=8, edge_factor=8, seed=1))
        stats = TwoScanSpMV(adj, block_width=64).tile_stats()
        assert stats.col_blocks == 4
        assert stats.row_blocks == 4
        assert stats.mean_tile_elements == pytest.approx(adj.nnz / 16)
        assert stats.mean_tile_bytes == pytest.approx(stats.mean_tile_elements * 8)

    def test_flops(self):
        adj = rmat_adjacency(RMATConfig(scale=6, edge_factor=4, seed=1))
        assert TwoScanSpMV(adj).flops() == 2 * adj.nnz

    def test_x_shape_validation(self):
        adj = rmat_adjacency(RMATConfig(scale=6, edge_factor=4, seed=1))
        with pytest.raises(ValueError):
            TwoScanSpMV(adj).multiply(np.zeros(3))

    def test_rejects_bad_block_width(self):
        adj = rmat_adjacency(RMATConfig(scale=6, edge_factor=4, seed=1))
        with pytest.raises(ValueError):
            TwoScanSpMV(adj, block_width=0)
