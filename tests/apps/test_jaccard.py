"""Correctness tests for all-pairs Jaccard similarity."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.jaccard import (
    all_pairs_jaccard,
    all_pairs_jaccard_blocked,
    jaccard_blocks,
    jaccard_reference,
    spgemm_flops,
    top_k_reducer,
    validate_adjacency,
)
from repro.workloads.rmat import RMATConfig, rmat_adjacency


def path_graph(n):
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


def complete_graph(n):
    dense = np.ones((n, n)) - np.eye(n)
    return sp.csr_matrix(dense)


class TestKnownGraphs:
    def test_triangle(self):
        """In K3, every pair shares exactly one neighbour of a 2-union."""
        res = all_pairs_jaccard(complete_graph(3))
        assert res.pair(0, 1) == pytest.approx(1.0 / 3.0)
        assert res.pair(1, 2) == pytest.approx(1.0 / 3.0)

    def test_complete_graph(self):
        n = 6
        res = all_pairs_jaccard(complete_graph(n))
        # i and j share n-2 neighbours; union is all n vertices.
        expected = (n - 2) / n
        assert res.pair(0, 5) == pytest.approx(expected)

    def test_path_graph_second_neighbours(self):
        res = all_pairs_jaccard(path_graph(5))
        # Vertices 0 and 2 share neighbour 1; union = {1} | {1,3} = 2.
        assert res.pair(0, 2) == pytest.approx(0.5)
        # Adjacent path vertices share no neighbours.
        assert res.pair(0, 1) == 0.0

    def test_diagonal_is_one_for_non_isolated(self):
        res = all_pairs_jaccard(complete_graph(4))
        for v in range(4):
            assert res.pair(v, v) == pytest.approx(1.0)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rmat_matches_brute_force(self, seed):
        # Validate once; both implementations reuse the canonical matrix.
        adj = validate_adjacency(rmat_adjacency(RMATConfig(scale=6, edge_factor=4, seed=seed)))
        res = all_pairs_jaccard(adj, assume_validated=True)
        ref = jaccard_reference(adj, assume_validated=True)
        got = {
            (i, j): res.similarity[i, j]
            for i, j in zip(*res.similarity.nonzero())
        }
        assert set(got) == set(ref)
        for key, val in ref.items():
            assert got[key] == pytest.approx(val), key


class TestValidation:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            all_pairs_jaccard(sp.csr_matrix((3, 4)))

    def test_rejects_asymmetric(self):
        m = sp.csr_matrix(np.triu(np.ones((4, 4)), 1))
        with pytest.raises(ValueError, match="symmetric"):
            all_pairs_jaccard(m)

    def test_self_loops_dropped(self):
        m = complete_graph(3).tolil()
        m[0, 0] = 1.0
        res = all_pairs_jaccard(m.tocsr())
        assert res.pair(0, 1) == pytest.approx(1.0 / 3.0)

    def test_validate_adjacency_canonicalizes(self):
        m = complete_graph(3).tolil()
        m[0, 0] = 7.0  # self-loop with a non-binary weight
        m[0, 1] = 5.0
        m[1, 0] = 5.0
        a = validate_adjacency(m.tocsr())
        assert sp.isspmatrix_csr(a)
        assert a.diagonal().sum() == 0.0
        assert set(np.unique(a.data)) == {1.0}

    def test_assume_validated_matches_full_path(self):
        adj = rmat_adjacency(RMATConfig(scale=6, edge_factor=4, seed=9))
        a = validate_adjacency(adj)
        fast = all_pairs_jaccard(a, assume_validated=True)
        slow = all_pairs_jaccard(adj)
        assert abs(fast.similarity - slow.similarity).max() < 1e-15


class TestFootprint:
    def test_output_larger_than_input(self):
        """The Figure 10 phenomenon at miniature scale."""
        adj = rmat_adjacency(RMATConfig(scale=10, edge_factor=8, seed=1))
        res = all_pairs_jaccard(adj)
        input_bytes = adj.data.nbytes + adj.indices.nbytes + adj.indptr.nbytes
        assert res.output_bytes > 3 * input_bytes

    def test_spgemm_flops(self):
        adj = complete_graph(4)
        # Every vertex has degree 3: 2 * 4 * 9 = 72 flops.
        assert spgemm_flops(adj) == 72.0


class TestBlocked:
    def test_blocked_equals_direct(self):
        adj = rmat_adjacency(RMATConfig(scale=7, edge_factor=4, seed=2))
        direct = all_pairs_jaccard(adj)
        blocked = all_pairs_jaccard_blocked(adj, block_cols=13)
        diff = (direct.similarity - blocked.similarity)
        assert abs(diff).max() < 1e-12

    def test_block_boundaries(self):
        adj = complete_graph(10)
        spans = [(s, e) for s, e, _ in jaccard_blocks(adj, block_cols=4)]
        assert spans == [(0, 4), (4, 8), (8, 10)]

    def test_streaming_reducer_mode_returns_none(self):
        adj = complete_graph(5)
        seen = []
        out = all_pairs_jaccard_blocked(adj, 2, reducer=lambda s, e, b: seen.append((s, e)))
        assert out is None
        assert seen == [(0, 2), (2, 4), (4, 5)]

    def test_top_k_reducer(self):
        adj = path_graph(6)
        reducer, results = top_k_reducer(k=2)
        all_pairs_jaccard_blocked(adj, block_cols=3, reducer=reducer)
        # Vertex 2's most similar non-self vertices: 0 (J=1/2, sharing
        # neighbour 1 of union {1,3}) and 4 (J=1/3, sharing 3 of {1,3,5}).
        top = dict((v, val) for val, v in results[2])
        assert set(top) == {0, 4}
        assert top[0] == pytest.approx(0.5)
        assert top[4] == pytest.approx(1.0 / 3.0)

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            top_k_reducer(0)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            list(jaccard_blocks(complete_graph(4), block_cols=0))
