"""Table V/VI model tests: molecule catalogue and HF timing estimates."""

import pytest

from repro.apps.hf.molecules import MoleculeRecord, by_name, table5_catalogue
from repro.apps.hf.perf import HFPerfModel
from repro.engine.clock import SimClock
from repro.reporting import paper_values as paper
from repro.reporting.compare import within_factor


class TestTable5Catalogue:
    def test_all_five_molecules(self):
        names = [m.name for m in table5_catalogue()]
        assert names == ["alkane-842", "graphene-252", "5-mer", "1hsg-28", "1hsg-38"]

    @pytest.mark.parametrize("record", table5_catalogue(), ids=lambda r: r.name)
    def test_matches_paper_statistics(self, record):
        row = paper.TABLE5[record.name]
        assert record.atoms == row["atoms"]
        assert record.basis_functions == row["functions"]
        assert record.nonscreened_eris == row["eris"]
        assert record.memory_gb == row["memory_gb"]

    @pytest.mark.parametrize("record", table5_catalogue(), ids=lambda r: r.name)
    def test_bytes_per_eri_consistent(self, record):
        """All five rows imply the same packed-storage cost (~7.4 B)."""
        assert record.bytes_per_eri == pytest.approx(7.45, abs=0.05)

    @pytest.mark.parametrize("record", table5_catalogue(), ids=lambda r: r.name)
    def test_screening_survival_small(self, record):
        assert record.screening_survival < 0.07

    def test_by_name(self):
        assert by_name("5-mer").atoms == 326
        with pytest.raises(KeyError):
            by_name("caffeine")

    def test_validation(self):
        with pytest.raises(ValueError):
            MoleculeRecord("bad", 0, 10, 1e9, 1.0, 5)
        with pytest.raises(ValueError):
            MoleculeRecord("bad", 10, 10, -1e9, 1.0, 5)


@pytest.fixture(scope="module")
def model(e870_system):
    return HFPerfModel(e870_system)


class TestTable6Shape:
    @pytest.mark.parametrize("record", table5_catalogue(), ids=lambda r: r.name)
    def test_speedup_band(self, model, record):
        """HF-Mem wins by 3-6.5x, bracketing the paper's 3.0-5.3x."""
        t = model.estimate(record)
        assert 2.5 < t.speedup < 7.0

    @pytest.mark.parametrize("record", table5_catalogue(), ids=lambda r: r.name)
    def test_phase_times_within_factor_of_paper(self, model, record):
        t = model.estimate(record)
        p = paper.TABLE6[record.name]
        assert within_factor(t.precompute, p["precomp"], 1.35)
        assert within_factor(t.fock_per_iteration, p["fock"], 1.5)
        assert within_factor(t.density_per_iteration, p["density"], 2.0)
        assert within_factor(t.hf_comp_total, p["hf_comp"], 1.35)
        assert within_factor(t.hf_mem_total, p["hf_mem"], 1.35)

    def test_alkane_has_slowest_density(self, model):
        """alkane-842 has the largest basis (6,730) -> longest Density."""
        rows = {t.molecule: t for t in model.table6()}
        alkane = rows["alkane-842"].density_per_iteration
        assert all(
            alkane >= t.density_per_iteration for t in rows.values()
        )

    def test_precomp_roughly_one_hfcomp_iteration(self, model):
        """HF-Comp pays ~the Precomp cost every iteration (the paper's
        numbers show HF-Comp ~ iters x Precomp)."""
        for t in model.table6():
            per_iter = t.hf_comp_total / t.iterations
            assert within_factor(per_iter, t.precompute, 1.5)

    def test_fock_is_much_cheaper_than_precomp(self, model):
        for t in model.table6():
            assert t.fock_per_iteration < 0.25 * t.precompute

    def test_clock_integration(self, model):
        clock = SimClock()
        t = model.estimate(by_name("1hsg-28"), clock=clock)
        assert clock.elapsed == pytest.approx(t.hf_mem_total)
        assert clock.phase_time("1hsg-28:hf-mem") == pytest.approx(t.hf_mem_total)

    def test_table6_ordering(self, model):
        names = [t.molecule for t in model.table6()]
        assert names == [m.name for m in table5_catalogue()]
