"""Generalisation tests: the 16-socket, four-group POWER8 SMP (§II-B).

The E870 exercises only two groups; the largest POWER8 SMP wires four
groups of four chips with one A-link per partner (3 links / 3 other
groups).  These tests check the topology, routing and latency models
generalise beyond the paper's evaluated machine.
"""

import pytest

from repro.arch import power8_192way
from repro.interconnect.bandwidth import BandwidthModel
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import SMPTopology


@pytest.fixture(scope="module")
def topo():
    return SMPTopology(power8_192way())


@pytest.fixture(scope="module")
def models(topo):
    return LatencyModel(topo), BandwidthModel(topo)


class TestTopology:
    def test_sixteen_chips_four_groups(self, topo):
        assert topo.system.num_chips == 16
        assert topo.system.num_groups == 4

    def test_a_links_unbundled(self, topo):
        """Three other groups share the three A-ports: bundle width 1."""
        assert topo.a_bundle_width == 1
        link = topo.link(("A", 0, 4))
        assert link.capacity == pytest.approx(12.8e9)

    def test_x_link_count(self, topo):
        # 4 groups x C(4,2)=6 buses x 2 directions.
        assert topo.x_link_count() == 48

    def test_a_link_count(self, topo):
        # Each chip has one bundle to its partner in each of 3 other
        # groups: 16 x 3 directed bundles.
        assert topo.a_link_count() == 48

    def test_same_position_partners_in_every_group(self, topo):
        for group in (1, 2, 3):
            assert topo.has_direct_a(0, group * 4)

    def test_routes_exist_between_all_pairs(self, topo):
        for src in range(16):
            for dst in range(16):
                routes = topo.routes(src, dst)
                assert routes, (src, dst)
                for route in routes:
                    for link in route:
                        assert link in topo.links


class TestLatency:
    def test_intra_group_cheapest(self, models):
        lat, _ = models
        intra = lat.pair_latency_ns(0, 1)
        for dst in (4, 8, 12, 5, 9, 13):
            assert lat.pair_latency_ns(0, dst) > intra

    def test_direct_partners_equal_across_groups(self, models):
        lat, _ = models
        assert lat.pair_latency_ns(0, 4) == lat.pair_latency_ns(0, 8) == lat.pair_latency_ns(0, 12)

    def test_indirect_inter_group_costliest(self, models):
        lat, _ = models
        assert lat.pair_latency_ns(0, 5) > lat.pair_latency_ns(0, 4)

    def test_interleaved_mean_sane(self, models):
        lat, _ = models
        mean = lat.interleaved_latency_ns(0)
        assert lat.pair_latency_ns(0, 1) < mean < lat.pair_latency_ns(0, 5)


class TestBandwidth:
    def test_pair_bandwidths_positive(self, models):
        _, bw = models
        for dst in range(1, 16):
            pair = bw.pair_bandwidth(dst, 0)
            assert 0 < pair.one_direction < 100e9
            assert pair.bidirectional > pair.one_direction

    def test_inter_group_pair_weaker_than_e870(self, models, e870_system):
        """With unbundled A-links (12.8 vs 38.4 GB/s) the four-group
        machine's inter-group pairs are weaker than the E870's."""
        from repro.interconnect.bandwidth import BandwidthModel as BM
        from repro.interconnect.topology import SMPTopology as TP

        _, bw16 = models
        bw8 = BM(TP(e870_system))
        assert bw16.pair_bandwidth(4, 0).one_direction < bw8.pair_bandwidth(4, 0).one_direction

    def test_aggregates_solve(self, models):
        _, bw = models
        x_agg = bw.x_bus_aggregate()
        a_agg = bw.a_bus_aggregate()
        a2a = bw.all_to_all_bandwidth()
        assert x_agg > a_agg > 0
        assert a2a > 0

    def test_interleaved_bandwidth_positive(self, models):
        _, bw = models
        assert bw.interleaved_bandwidth(0) > 10e9
