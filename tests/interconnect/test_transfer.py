"""Tests for the event-driven route transfer simulation."""

import pytest

from repro.interconnect.bandwidth import EFF_SINGLE_FLOW, BandwidthModel
from repro.interconnect.topology import SMPTopology
from repro.interconnect.transfer import (
    RouteTransferSimulator,
    simulate_pair_transfer,
)

GB = 1e9


@pytest.fixture(scope="module")
def topo(e870_system):
    return SMPTopology(e870_system)


class TestSingleHop:
    def test_steady_rate_converges_to_link_capacity(self, topo):
        sim = RouteTransferSimulator(topo, [("X", 0, 1)])
        result = sim.simulate(4096)
        assert result.steady_bandwidth == pytest.approx(
            sim.bottleneck_bandwidth(), rel=0.01
        )

    def test_matches_pair_analytic_model(self, topo, e870_system):
        """The DES steady state equals the analytic intra-group pair BW."""
        analytic = BandwidthModel(topo).pair_bandwidth(1, 0).one_direction
        result = simulate_pair_transfer(topo, 0, 1, lines=4096)
        assert result.steady_bandwidth == pytest.approx(analytic, rel=0.01)

    def test_first_line_latency(self, topo, e870_system):
        sim = RouteTransferSimulator(topo, [("X", 0, 1)])
        result = sim.simulate(16)
        assert result.first_line_ns == pytest.approx(sim.zero_load_latency_ns(), rel=1e-6)
        # Dominated by the 35 ns X hop plus ~4 ns of serialisation.
        assert 35 < result.first_line_ns < 45


class TestMultiHop:
    def test_three_hop_bottleneck(self, topo):
        """An X-A-X spill route is bottlenecked by its A segment."""
        route = [("X", 0, 1), ("A", 1, 5), ("X", 5, 4)]
        sim = RouteTransferSimulator(topo, route)
        result = sim.simulate(4096)
        a_capacity = topo.link(("A", 1, 5)).capacity * EFF_SINGLE_FLOW
        assert sim.bottleneck_bandwidth() == pytest.approx(a_capacity)
        assert result.steady_bandwidth == pytest.approx(a_capacity, rel=0.01)

    def test_latency_accumulates_over_hops(self, topo):
        one = RouteTransferSimulator(topo, [("X", 0, 1)]).simulate(4)
        three = RouteTransferSimulator(
            topo, [("X", 0, 1), ("A", 1, 5), ("X", 5, 4)]
        ).simulate(4)
        assert three.first_line_ns > one.first_line_ns + 100  # the A hop

    def test_pipelining_beats_sequential(self, topo):
        """Total time for N lines is far less than N x first-line time."""
        sim = RouteTransferSimulator(topo, [("X", 0, 1), ("A", 1, 5), ("X", 5, 4)])
        result = sim.simulate(512)
        assert result.total_ns < 0.25 * 512 * result.first_line_ns


class TestValidation:
    def test_needs_route(self, topo):
        with pytest.raises(ValueError):
            RouteTransferSimulator(topo, [])

    def test_needs_lines(self, topo):
        sim = RouteTransferSimulator(topo, [("X", 0, 1)])
        with pytest.raises(ValueError):
            sim.simulate(0)

    def test_same_chip_rejected(self, topo):
        with pytest.raises(ValueError):
            simulate_pair_transfer(topo, 2, 2)

    def test_bad_efficiency(self, topo):
        with pytest.raises(ValueError):
            RouteTransferSimulator(topo, [("X", 0, 1)], efficiency=0.0)

    def test_single_line_has_no_steady_rate(self, topo):
        sim = RouteTransferSimulator(topo, [("X", 0, 1)])
        assert sim.simulate(1).steady_bandwidth == 0.0
