"""Table IV reproduction tests: pair latencies, bandwidths, aggregates."""

import pytest

from repro.interconnect.bandwidth import BandwidthModel
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import SMPTopology
from repro.reporting import paper_values as paper
from repro.reporting.compare import within_factor

GB = 1e9


@pytest.fixture(scope="module")
def models(e870_system):
    topo = SMPTopology(e870_system)
    return LatencyModel(topo), BandwidthModel(topo)


class TestPairLatency:
    @pytest.mark.parametrize("home", range(1, 8))
    def test_matches_paper_within_10pct(self, models, home):
        lat, _ = models
        got = lat.pair_latency_ns(0, home)
        assert within_factor(got, paper.TABLE4_LATENCY_NS[home], 1.10)

    def test_intra_group_half_of_inter_group(self, models):
        """The paper's headline: intra-group latency is ~2x smaller."""
        lat, _ = models
        intra = [lat.pair_latency_ns(0, h) for h in (1, 2, 3)]
        inter = [lat.pair_latency_ns(0, h) for h in (4, 5, 6, 7)]
        remote_intra = [l - lat.local_latency_ns() for l in intra]
        remote_inter = [l - lat.local_latency_ns() for l in inter]
        assert min(remote_inter) > 1.8 * max(remote_intra) / 1.3

    def test_direct_a_partner_fastest_inter_group(self, models):
        lat, _ = models
        assert lat.pair_latency_ns(0, 4) < min(
            lat.pair_latency_ns(0, h) for h in (5, 6, 7)
        )

    def test_layout_deltas_within_group(self, models):
        lat, _ = models
        assert lat.pair_latency_ns(0, 1) < lat.pair_latency_ns(0, 2) < lat.pair_latency_ns(0, 3)

    def test_local_latency(self, models, e870_system):
        lat, _ = models
        assert lat.pair_latency_ns(0, 0) == e870_system.chip.centaur.dram_latency_ns

    @pytest.mark.parametrize("home", range(1, 8))
    def test_prefetch_reduces_by_order_of_magnitude(self, models, home):
        lat, _ = models
        cold = lat.pair_latency_ns(0, home)
        warm = lat.pair_latency_prefetched_ns(0, home)
        assert warm < cold / 5.0

    def test_interleaved_latency(self, models):
        lat, _ = models
        got = lat.interleaved_latency_ns(0)
        assert within_factor(got, paper.TABLE4_INTERLEAVED_LATENCY_NS, 1.10)


class TestPairBandwidth:
    @pytest.mark.parametrize("home", range(1, 8))
    def test_one_direction(self, models, home):
        _, bw = models
        got = bw.pair_bandwidth(home, 0).one_direction / GB
        assert within_factor(got, paper.TABLE4_UNI_BW_GBS[home], 1.10)

    @pytest.mark.parametrize("home", range(1, 8))
    def test_bidirectional(self, models, home):
        _, bw = models
        got = bw.pair_bandwidth(home, 0).bidirectional / GB
        assert within_factor(got, paper.TABLE4_BI_BW_GBS[home], 1.10)

    def test_counterintuitive_inter_beats_intra(self, models):
        """The paper's §III-B observation: inter-group pair bandwidth is
        HIGHER than intra-group despite the slower A-bus, because only
        one route is allowed within a group."""
        _, bw = models
        intra = bw.pair_bandwidth(1, 0).one_direction
        inter = bw.pair_bandwidth(4, 0).one_direction
        assert inter > 1.3 * intra

    def test_same_chip_rejected(self, models):
        _, bw = models
        with pytest.raises(ValueError):
            bw.pair_bandwidth(0, 0)


class TestAggregates:
    def test_interleaved(self, models):
        _, bw = models
        got = bw.interleaved_bandwidth(0) / GB
        assert within_factor(got, paper.TABLE4_AGGREGATES_GBS["chip0_interleaved"], 1.15)

    def test_all_to_all(self, models):
        _, bw = models
        got = bw.all_to_all_bandwidth() / GB
        assert within_factor(got, paper.TABLE4_AGGREGATES_GBS["all_to_all"], 1.15)

    def test_x_aggregate(self, models):
        _, bw = models
        got = bw.x_bus_aggregate() / GB
        assert within_factor(got, paper.TABLE4_AGGREGATES_GBS["x_bus_aggregate"], 1.10)

    def test_a_aggregate(self, models):
        _, bw = models
        got = bw.a_bus_aggregate() / GB
        assert within_factor(got, paper.TABLE4_AGGREGATES_GBS["a_bus_aggregate"], 1.10)

    def test_x_aggregate_3x_a_aggregate(self, models):
        """The paper: X-bus aggregate is ~3x the A-bus aggregate."""
        _, bw = models
        ratio = bw.x_bus_aggregate() / bw.a_bus_aggregate()
        assert 2.5 < ratio < 3.5

    def test_all_to_all_between_the_two_aggregates(self, models):
        _, bw = models
        a2a = bw.all_to_all_bandwidth()
        assert bw.a_bus_aggregate() < a2a < bw.x_bus_aggregate()
