"""Unit tests for the SMP fabric topology and routing rules."""

import pytest

from repro.interconnect.topology import SMPTopology


@pytest.fixture(scope="module")
def topo(e870_system):
    return SMPTopology(e870_system)


class TestLinkInventory:
    def test_x_link_count(self, topo):
        # Two groups of 4: C(4,2)=6 buses each, directed -> 24 links.
        assert topo.x_link_count() == 24

    def test_a_link_count(self, topo):
        # 4 same-position pairs, directed -> 8 bundles.
        assert topo.a_link_count() == 8

    def test_a_bundle_width_is_three(self, topo):
        """With only two groups, all 3 A-ports bundle to one partner."""
        assert topo.a_bundle_width == 3

    def test_a_bundle_capacity(self, topo, e870_system):
        link = topo.link(("A", 0, 4))
        assert link.capacity == pytest.approx(3 * e870_system.a_bus.bandwidth)

    def test_x_capacity(self, topo, e870_system):
        link = topo.link(("X", 0, 1))
        assert link.capacity == pytest.approx(e870_system.x_bus.bandwidth)

    def test_fabric_pseudo_links_exist(self, topo, e870_system):
        for chip in range(e870_system.num_chips):
            assert ("inj", chip) in topo.links
            assert ("ext", chip) in topo.links

    def test_no_x_between_groups(self, topo):
        assert ("X", 0, 4) not in topo.links

    def test_no_a_within_group(self, topo):
        assert ("A", 0, 1) not in topo.links

    def test_has_direct_a(self, topo):
        assert topo.has_direct_a(0, 4)
        assert topo.has_direct_a(3, 7)
        assert not topo.has_direct_a(0, 5)


class TestRouting:
    def test_intra_group_single_route(self, topo):
        """The paper: only one route is allowed inside a chip group."""
        routes = topo.routes(0, 2)
        assert routes == [[("X", 0, 2)]]

    def test_inter_group_same_position_multi_route(self, topo):
        routes = topo.routes(0, 4)
        assert [("A", 0, 4)] in routes
        assert len(routes) > 1  # spill routes exist
        # Spill routes are X-A-X three-hoppers through group peers.
        for route in routes[1:]:
            kinds = [link[0] for link in route]
            assert kinds == ["X", "A", "X"]

    def test_inter_group_different_position_two_routes(self, topo):
        routes = topo.routes(0, 5)
        kinds = sorted(tuple(l[0] for l in r) for r in routes)
        assert kinds == [("A", "X"), ("X", "A")]

    def test_self_route_empty(self, topo):
        assert topo.routes(3, 3) == [[]]

    def test_routes_use_existing_links(self, topo):
        for src in range(8):
            for dst in range(8):
                for route in topo.routes(src, dst):
                    for link_id in route:
                        assert link_id in topo.links, (src, dst, link_id)

    def test_with_endpoints(self, topo):
        wrapped = topo.with_endpoints(0, 4, [("A", 0, 4)])
        assert wrapped[0] == ("inj", 0)
        assert wrapped[-1] == ("ext", 4)


class TestSingleGroup:
    def test_four_chip_system_has_no_a_links(self, single_group_system):
        topo = SMPTopology(single_group_system)
        assert topo.a_link_count() == 0
        assert topo.a_bundle_width == 0
        assert topo.x_link_count() == 12
