"""Unit tests for the PMU layer: bank semantics, API surface, CLIs.

Quick-lane coverage of everything the heavier property suites assume:
:class:`~repro.pmu.counters.CounterBank` arithmetic, the
:class:`~repro.pmu.PMU` context-manager/decorator/export API, the event
registry, and the ``--counters`` CLI surfaces.
"""

import json

import numpy as np
import pytest

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.mem.centaur import link_byte_counters
from repro.mem.hierarchy import MemoryHierarchy
from repro.pmu import PMU, CounterBank, events as ev, read_counters
from repro.pmu.events import EVENTS, cache_event

CHIP = e870().chip


# -- CounterBank -----------------------------------------------------------
def test_bank_missing_reads_as_zero_without_insert():
    bank = CounterBank()
    assert bank["PM_NEVER_TOUCHED"] == 0
    assert "PM_NEVER_TOUCHED" not in bank
    bank["PM_X"] += 3
    assert bank["PM_X"] == 3


def test_bank_inc_and_add_events():
    bank = CounterBank()
    bank.inc("A", 2)
    bank.inc("A")
    bank.inc("B", 0)  # no-op: zero increments don't materialise events
    bank.add_events({"A": 1, "C": 5, "D": 0})
    assert bank.nonzero() == {"A": 4, "C": 5}
    assert "B" not in bank and "D" not in bank


def test_bank_snapshot_diff_and_sub():
    bank = CounterBank({"A": 5, "B": 2})
    snap = bank.snapshot()
    bank.inc("A", 3)
    bank.inc("C", 1)
    delta = bank - snap
    assert delta.nonzero() == {"A": 3, "C": 1}
    assert bank.diff(snap) == delta
    snap.inc("A", 100)  # the snapshot is independent of the live bank
    assert bank["A"] == 8


def test_bank_export_roundtrip():
    bank = CounterBank({"B": 2, "A": 1, "Z": 0})
    assert json.loads(bank.to_json()) == {"A": 1, "B": 2}
    assert bank.to_csv() == "event,count\nA,1\nB,2\n"
    assert bank.rows() == [("A", 1), ("B", 2)]


def test_bank_merge_is_commutative_and_associative():
    a = {"A": 1, "B": 2}
    b = {"B": 3, "C": 4}
    c = {"A": 5, "C": 6}
    ab_c = CounterBank.merge([CounterBank.merge([a, b]), c])
    a_bc = CounterBank.merge([a, CounterBank.merge([b, c])])
    cba = CounterBank.merge([c, b, a])
    assert dict(ab_c) == dict(a_bc) == dict(cba) == {"A": 6, "B": 5, "C": 10}


def test_bank_merge_identity_is_the_empty_bank():
    bank = {"A": 7, "B": 1}
    merged = CounterBank.merge([CounterBank(), bank, CounterBank()])
    assert dict(merged) == bank
    assert dict(CounterBank.merge([])) == {}


def test_bank_merge_equals_sequential_add_events():
    parts = [{"A": 1}, {"A": 2, "B": 3}, {"C": 4}]
    sequential = CounterBank()
    for part in parts:
        sequential.add_events(part)
    assert dict(CounterBank.merge(parts)) == dict(sequential)


def test_bank_merge_leaves_inputs_untouched():
    a = CounterBank({"A": 1})
    b = CounterBank({"A": 2})
    merged = CounterBank.merge([a, b])
    merged.inc("A", 100)
    assert a["A"] == 1 and b["A"] == 2


# -- event taxonomy --------------------------------------------------------
def test_every_named_event_is_registered():
    for name, value in vars(ev).items():
        if name.startswith("PM_") and isinstance(value, str):
            assert value in EVENTS, f"{value} missing from the EVENTS registry"


def test_cache_event_builder():
    assert cache_event("L2", "WB") == "PM_L2_WB"
    with pytest.raises(ValueError):
        cache_event("L2", "BOGUS")


def test_data_from_events_cover_all_levels():
    from repro.coherence.chipsim import CHIP_LEVELS
    from repro.mem.hierarchy import LEVELS

    for level in set(LEVELS) | set(CHIP_LEVELS):
        assert level in ev.DATA_FROM_EVENTS


# -- PMU API ---------------------------------------------------------------
def _mixed_trace(n=512, seed=1):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 15, size=n) * 8).astype(np.int64)
    writes = rng.random(n) < 0.25
    return addrs, writes


def test_pmu_context_manager_diffs():
    addrs, writes = _mixed_trace()
    hier = MemoryHierarchy(CHIP)
    hier.access_trace(addrs, writes)  # pre-existing history
    pmu = PMU(hier)
    with pmu:
        hier.access_trace(addrs, writes)
    assert pmu.counters[ev.PM_MEM_REF] == addrs.size
    assert pmu.counters[ev.PM_ST_REF] == int(writes.sum())
    # The diff excludes the pre-snapshot history...
    assert pmu.read()[ev.PM_MEM_REF] == 2 * addrs.size


def test_pmu_measure_decorator():
    addrs, writes = _mixed_trace()
    hier = BatchMemoryHierarchy(CHIP)
    pmu = PMU(hier)

    @pmu.measure
    def run():
        return hier.access_trace(addrs, writes)

    result, counters = run()
    assert len(result) == addrs.size
    assert counters[ev.PM_MEM_REF] == addrs.size


def test_pmu_exports_and_report():
    addrs, writes = _mixed_trace()
    hier = BatchMemoryHierarchy(CHIP)
    hier.access_trace(addrs, writes)
    pmu = PMU(hier)
    payload = json.loads(pmu.to_json())
    assert payload["counters"][ev.PM_MEM_REF] == addrs.size
    assert 0.0 <= payload["derived"]["l1_hit_rate"] <= 1.0
    assert pmu.to_csv().startswith("event,count\n")
    report = pmu.report()
    assert "PM_MEM_REF" in report and "derived metrics" in report
    assert "latency stack" in report
    assert pmu.violations() == []


def test_counters_flag_disables_live_events():
    addrs, writes = _mixed_trace()
    on = BatchMemoryHierarchy(CHIP, counters=True)
    off = BatchMemoryHierarchy(CHIP, counters=False)
    on.access_trace(addrs, writes)
    off.access_trace(addrs, writes)
    assert on.bank[ev.PM_ST_REF] == int(writes.sum())
    assert not off.bank
    # Harvested events still work with live counting off; only the
    # load/store split (and its dependents) goes away.
    bank = read_counters(off)
    assert bank[ev.PM_MEM_REF] == addrs.size
    assert ev.PM_ST_REF not in bank and ev.PM_LD_REF not in bank


def test_warm_is_unobserved():
    addrs, writes = _mixed_trace()
    hier = MemoryHierarchy(CHIP)
    hier.warm(addrs, True)
    assert not hier.bank  # warm-up stores left no live events
    hier.access_trace(addrs, writes)
    bank = read_counters(hier)
    assert bank[ev.PM_MEM_REF] == addrs.size
    assert bank[ev.PM_ST_REF] == int(writes.sum())


# -- centaur link bytes ----------------------------------------------------
def test_link_byte_counters():
    bank = link_byte_counters(2048, 1024)
    assert bank.nonzero() == {
        ev.PM_MEM_READ_BYTES: 2048,
        ev.PM_MEM_WRITE_BYTES: 1024,
    }
    with pytest.raises(ValueError):
        link_byte_counters(-1, 0)


# -- CLI smoke -------------------------------------------------------------
def test_bench_counters_selftest_cli():
    from repro.bench.__main__ import main

    assert main(["--counters-selftest"]) == 0


def test_lat_mem_counters_cli(capsys):
    from repro.tools.lat_mem import main

    assert main(["--size", "64K", "--trace", "--counters"]) == 0
    out = capsys.readouterr().out
    assert "PM_MEM_REF" in out


def test_lat_mem_counters_requires_trace():
    from repro.tools.lat_mem import main

    with pytest.raises(SystemExit):
        main(["--size", "64K", "--counters"])


def test_stream_counters_cli(capsys):
    from repro.tools.stream import main

    assert main(["--counters"]) == 0
    out = capsys.readouterr().out
    assert "PM_MEM_READ_BYTES" in out and "Triad" in out
