"""Golden-value generator for the PMU derived-metric regression test.

The golden workload is fully deterministic (seeded PCG64 trace, fixed
chip spec), so the counters and derived metrics it produces are stable
across runs; ``tests/pmu/test_derived_metrics.py`` pins them.  After an
*intentional* change to the counting semantics, regenerate with::

    PYTHONPATH=src python -m tests.pmu.regen_golden

and commit the updated ``golden_metrics.json`` together with the change
that motivated it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.arch import e870
from repro.mem.batch import BatchMemoryHierarchy
from repro.pmu import PMU
from repro.prefetch import StreamPrefetcher

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_metrics.json"

#: Workload shape — part random mixed read/write (exercises every cache
#: level, the TLB and the DRAM row buffers), part sequential scan
#: through the stream prefetcher (exercises the prefetch counters).
SEED = 2016
N_RANDOM = 8192
POOL = 1 << 22
WRITE_FRACTION = 0.3
N_SEQ_LINES = 1024
DEPTH = 5


def golden_payload() -> dict:
    """Run the golden workload; returns counters + derived metrics."""
    chip = e870().chip
    line = chip.core.l1d.line_size
    rng = np.random.default_rng(SEED)
    addrs = (rng.integers(0, POOL // 8, size=N_RANDOM) * 8).astype(np.int64)
    writes = rng.random(N_RANDOM) < WRITE_FRACTION

    hier = BatchMemoryHierarchy(
        chip, prefetcher=StreamPrefetcher(line_size=line, depth=DEPTH)
    )
    hier.access_trace(addrs, writes)
    hier.access_trace(np.arange(N_SEQ_LINES, dtype=np.int64) * line)

    pmu = PMU(hier)
    return {
        "workload": {
            "seed": SEED,
            "n_random": N_RANDOM,
            "pool": POOL,
            "write_fraction": WRITE_FRACTION,
            "n_seq_lines": N_SEQ_LINES,
            "depth": DEPTH,
        },
        "counters": pmu.read().nonzero(),
        "derived": pmu.derived(),
        "stack": pmu.stack(),
    }


def main() -> None:
    payload = golden_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({len(payload['counters'])} non-zero counters)")


if __name__ == "__main__":
    main()
