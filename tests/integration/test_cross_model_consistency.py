"""Cross-model consistency: independent subsystems must agree.

The library derives the same physical quantities along several paths
(closed-form models, flow solvers, trace simulators, executable
kernels).  These tests pin the overlaps so the models cannot drift
apart silently.
"""

import pytest

from repro.bench.stream_kernels import StreamKernels
from repro.interconnect.bandwidth import BandwidthModel
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import SMPTopology
from repro.mem.centaur import MemoryLinkModel, optimal_read_fraction
from repro.mem.traffic import StoreConvention, system_goodput
from repro.numa import AffinityMap, Allocation, LocalPolicy, NumaModel
from repro.perfmodel.kernel_time import KernelProfile, MachineModel
from repro.perfmodel.stream_model import system_stream_bandwidth
from repro.roofline.model import Roofline

GB = 1e9
MB = 1 << 20


class TestBandwidthPaths:
    def test_stream_kernel_equals_table3_row(self, e870_system):
        """The executable Add kernel and the Table III model agree."""
        add = StreamKernels(e870_system, 1024).add()
        table3 = system_stream_bandwidth(e870_system, 8, 2, 1)
        assert add.modeled_bandwidth == pytest.approx(table3)

    def test_dcbz_goodput_equals_link_model(self, e870_system):
        """Traffic accounting with DCBZ reduces to the plain link model."""
        direct = MemoryLinkModel(e870_system.chip).system_bandwidth(
            e870_system, optimal_read_fraction()
        )
        via_traffic = system_goodput(e870_system, 2.0, 1.0, StoreConvention.DCBZ)
        assert via_traffic == pytest.approx(direct)

    def test_roofline_uses_spec_bandwidth(self, e870_system):
        roof = Roofline(e870_system)
        assert roof.memory_bandwidth == pytest.approx(
            e870_system.peak_memory_bandwidth
        )

    def test_kernel_model_memory_time_matches_stream_model(self, e870_system):
        """MachineModel's stream path is exactly the Table III bandwidth."""
        model = MachineModel(e870_system)
        k = KernelProfile("k", flops=0, bytes_read=2e12, bytes_written=1e12)
        assert model.effective_bandwidth(k) == pytest.approx(
            system_stream_bandwidth(e870_system, 8, 2, 1)
        )


class TestLatencyPaths:
    def test_numa_local_latency_equals_interconnect(self, e870_system):
        """The NUMA estimator's latencies come from the same oracle."""
        model = NumaModel(e870_system)
        lat = LatencyModel(SMPTopology(e870_system))
        aff = AffinityMap.compact(e870_system, 8, smt=1)
        est = model.estimate(aff, [(Allocation("r", 0, MB, LocalPolicy(4)), 1.0)])
        assert est.mean_latency_ns == pytest.approx(lat.pair_latency_ns(0, 4))

    def test_numa_local_bandwidth_equals_link_model(self, e870_system):
        model = NumaModel(e870_system)
        aff = AffinityMap.compact(e870_system, 64, smt=8)
        est = model.estimate(
            aff, [(Allocation("l", 0, MB, LocalPolicy(0)), 1.0)], read_fraction=1.0
        )
        direct = MemoryLinkModel(e870_system.chip).chip_bandwidth(1.0)
        assert est.bandwidth == pytest.approx(direct)


class TestAggregatePaths:
    def test_numa_remote_pair_close_to_pair_analytic(self, e870_system):
        """The LP flow solver and the pair analytic land within 20%."""
        numa = NumaModel(e870_system)
        pair = BandwidthModel(SMPTopology(e870_system)).pair_bandwidth(4, 0)
        aff = AffinityMap.compact(e870_system, 64, smt=8)
        est = numa.estimate(aff, [(Allocation("r", 0, MB, LocalPolicy(4)), 1.0)])
        assert est.bandwidth == pytest.approx(pair.one_direction, rel=0.20)

    def test_balance_consistent_between_spec_and_roofline(self, e870_system):
        assert Roofline(e870_system).balance == pytest.approx(e870_system.balance)

    def test_random_model_vs_machine_model_random_pattern(self, e870_system):
        """MachineModel's 'random' pattern is capped by the Figure 4 model."""
        from repro.perfmodel.littles_law import RandomAccessModel

        machine = MachineModel(e870_system)
        rand = RandomAccessModel(e870_system)
        k = KernelProfile("r", flops=0, bytes_read=1e12, bytes_written=0,
                          pattern="random")
        assert machine.effective_bandwidth(k) <= rand.peak_bandwidth * 1.001
