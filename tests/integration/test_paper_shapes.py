"""Integration shape tests: the reproduction criteria from DESIGN.md.

One test class per table/figure, asserting the paper's qualitative
shape — who wins, by roughly what factor, where the knees fall — on the
full composed system (specs -> models -> experiment drivers).
"""

import pytest

from repro.bench.runner import run_experiment
from repro.reporting import paper_values as paper
from repro.reporting.compare import is_monotone, within_factor

GB = 1e9


@pytest.fixture(scope="module")
def results(e870_system):
    """Run every experiment once, shared across the shape tests."""
    ids = [
        "table2", "table3", "table4", "table5", "table6",
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12",
    ]
    return {eid: run_experiment(eid, e870_system) for eid in ids}


class TestFig2Shape:
    """Four plateaus plus remote-L3 and L4 shoulders, huge pages cheaper."""

    def test_plateau_ordering(self, results):
        m = results["fig2"].metrics
        assert (
            m["plateau_l1"] < m["plateau_l2"] < m["plateau_l3"]
            < m["plateau_l3_remote"] < m["plateau_l4"] < m["plateau_dram"]
        )

    def test_l4_reduces_miss_latency_over_30ns(self, results, e870_system):
        """The paper: an L4 hit saves >30 ns versus going to DRAM."""
        dram = e870_system.chip.centaur.dram_latency_ns
        l4 = e870_system.chip.centaur.l4_latency_ns
        assert dram - l4 > 30.0

    def test_huge_pages_never_slower(self, results):
        for _, lat64, lat16 in results["fig2"].rows:
            assert lat16 <= lat64 + 1e-9


class TestTable3Shape:
    def test_peak_at_2_to_1_and_write_only_weakest(self, results):
        rows = {r[0]: r[1] for r in results["table3"].rows}
        assert max(rows, key=rows.get) == "2:1"
        assert min(rows, key=rows.get) == "Write Only"

    def test_2_1_peak_near_80pct_of_spec(self, results, e870_system):
        peak = max(r[1] for r in results["table3"].rows)
        assert peak * GB / e870_system.peak_memory_bandwidth == pytest.approx(0.80, abs=0.03)

    def test_all_rows_within_10pct_of_paper(self, results):
        for label, model, paper_val in results["table3"].rows:
            assert within_factor(model, paper_val, 1.10), label


class TestFig3Shape:
    def test_anchors(self, results):
        m = results["fig3"].metrics
        assert within_factor(m["core_peak_gbs"], paper.FIG3["single_core_peak_gbs"], 1.05)
        assert within_factor(m["chip_peak_gbs"], paper.FIG3["single_chip_peak_gbs"], 1.05)


class TestTable4Shape:
    def test_intra_group_latency_half_of_inter(self, results):
        rows = {r[0]: r for r in results["table4"].rows}
        intra = [rows[f"Chip0<->Chip{i}"][1] for i in (1, 2, 3)]
        inter = [rows[f"Chip0<->Chip{i}"][1] for i in (4, 5, 6, 7)]
        assert min(inter) > 1.5 * max(intra)

    def test_inter_group_bandwidth_higher(self, results):
        """The counter-intuitive §III-B result."""
        rows = {r[0]: r for r in results["table4"].rows}
        assert rows["Chip0<->Chip4"][5] > 1.3 * rows["Chip0<->Chip1"][5]

    def test_aggregate_ordering(self, results):
        m = results["table4"].metrics
        assert m["agg_a_bus_aggregate"] < m["agg_all_to_all"] < m["agg_x_bus_aggregate"]

    def test_x_roughly_3x_a(self, results):
        m = results["table4"].metrics
        assert 2.5 < m["agg_x_bus_aggregate"] / m["agg_a_bus_aggregate"] < 3.5


class TestFig4Shape:
    def test_peak_and_fraction(self, results):
        m = results["fig4"].metrics
        assert within_factor(m["peak_gbs"], paper.FIG4["peak_random_gbs"], 1.1)
        assert m["fraction_of_read_peak"] == pytest.approx(
            paper.FIG4["fraction_of_read_peak"], abs=0.03
        )

    def test_bandwidth_grows_with_smt(self, results):
        rows = results["fig4"].rows
        one_stream = [r[2] for r in rows if r[1] == 1]
        assert is_monotone(one_stream, increasing=True)


class TestFig5Shape:
    def test_peak_requires_12_in_flight(self, results):
        for threads, fmas, regs, pct in results["fig5"].rows:
            if regs <= 128 and threads % 2 == 0 or threads == 1:
                if threads * fmas >= 12 and regs <= 128:
                    assert pct == pytest.approx(100.0), (threads, fmas)
                if threads * fmas < 12:
                    assert pct < 99.5, (threads, fmas)

    def test_register_cliff(self, results):
        by_key = {(r[0], r[1]): r[3] for r in results["fig5"].rows}
        assert by_key[(8, 12)] < by_key[(6, 12)] <= 100.0

    def test_odd_thread_dip(self, results):
        by_key = {(r[0], r[1]): r[3] for r in results["fig5"].rows}
        assert by_key[(3, 2)] < by_key[(4, 2)]


class TestFig6Shape:
    def test_latency_falls_bandwidth_rises(self, results):
        rows = results["fig6"].rows
        lats = [r[2] for r in rows]
        bws = [r[3] for r in rows]
        assert is_monotone(lats, increasing=False)
        assert is_monotone(bws, increasing=True)


class TestFig7Shape:
    def test_enable_bit_cuts_latency(self, results):
        rows = results["fig7"].rows
        deepest = rows[-1]
        assert deepest[2] < 0.5 * deepest[1]


class TestFig8Shape:
    def test_small_block_gain_over_25pct(self, results):
        small = [r for r in results["fig8"].rows if r[0] <= 2048]
        assert any(r[3] > 25.0 for r in small)

    def test_large_block_gain_negligible(self, results):
        large = [r for r in results["fig8"].rows if r[0] >= (1 << 20)]
        assert all(r[3] < 5.0 for r in large)


class TestFig9Shape:
    def test_balance_and_roofs(self, results):
        m = results["fig9"].metrics
        assert m["balance"] == pytest.approx(paper.FIG9["balance"], abs=0.05)
        assert within_factor(m["peak_gflops"], paper.FIG9["peak_gflops"], 1.01)
        assert within_factor(m["write_roof_gbs"], paper.FIG9["write_only_bw_gbs"], 1.01)

    def test_lbmhd_diamond_and_square(self, results):
        rows = {r[0]: r for r in results["fig9"].rows}
        assert rows["LBMHD"][2] == pytest.approx(1843.2, rel=0.01)
        assert rows["LBMHD (write-only mix)"][2] == pytest.approx(614.4, rel=0.01)


class TestFig10Shape:
    def test_time_and_memory_grow(self, results):
        rows = results["fig10"].rows
        assert is_monotone([r[1] for r in rows], increasing=True)
        assert is_monotone([r[3] for r in rows], increasing=True)

    def test_output_dominates(self, results):
        for row in results["fig10"].rows:
            assert row[4] > 10  # output/input ratio


class TestFig11Shape:
    def test_dense_is_reference_peak(self, results):
        rows = results["fig11"].rows
        dense = next(r for r in rows if r[0] == "Dense")
        assert all(r[1] <= dense[1] * 1.001 for r in rows)

    def test_most_matrices_near_dense(self, results):
        """The paper: most of the suite performs similarly to Dense."""
        rows = results["fig11"].rows
        near = [r for r in rows if r[2] > 0.85]
        assert len(near) >= len(rows) // 2


class TestFig12Shape:
    def test_declining_and_tile_stat(self, results):
        rows = results["fig12"].rows
        assert is_monotone([r[1] for r in rows], increasing=False)
        tiles = {r[0]: r[2] for r in rows}
        assert within_factor(tiles[24], paper.FIG12["tile_elements_scale24"], 2.0)
        assert within_factor(tiles[31], paper.FIG12["tile_elements_scale31"], 2.5)


class TestTable6Shape:
    def test_hf_mem_always_wins(self, results):
        for row in results["table6"].rows:
            speedup = row[12]
            assert speedup > 2.5, row[0]

    def test_speedups_in_paper_band(self, results):
        for row in results["table6"].rows:
            assert within_factor(row[12], row[13], 1.35), row[0]

    def test_against_paper_totals(self, results):
        for row in results["table6"].rows:
            assert within_factor(row[2], row[3], 1.35), (row[0], "hf-comp")
            assert within_factor(row[10], row[11], 1.35), (row[0], "hf-mem")
