"""End-to-end smoke tests: the CLI surfaces run as real subprocesses."""

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestBenchCLI:
    def test_list(self):
        proc = run_cli("repro.bench", "--list")
        assert proc.returncode == 0
        ids = proc.stdout.split()
        assert "table3" in ids and "fig9" in ids
        assert len(ids) == 17

    def test_single_experiment(self):
        proc = run_cli("repro.bench", "table2")
        assert proc.returncode == 0
        assert "E870" in proc.stdout
        assert "2227" in proc.stdout

    def test_unknown_experiment_fails(self):
        proc = run_cli("repro.bench", "fig99")
        assert proc.returncode != 0

    def test_csv_flag(self, tmp_path):
        proc = run_cli("repro.bench", "fig9", "--csv", str(tmp_path))
        assert proc.returncode == 0
        assert (tmp_path / "fig9.csv").exists()


class TestToolCLIs:
    def test_lat_mem(self):
        proc = run_cli("repro.tools.lat_mem", "--size", "1M")
        assert proc.returncode == 0
        size, latency = proc.stdout.split()
        assert int(size) == 1 << 20
        assert 3 < float(latency) < 30
        assert "RuntimeWarning" not in proc.stderr

    def test_stream_table3(self):
        proc = run_cli("repro.tools.stream", "--table3")
        assert proc.returncode == 0
        assert len(proc.stdout.strip().splitlines()) == 9

    def test_roofline_summary(self):
        proc = run_cli("repro.tools.roofline_tool")
        assert proc.returncode == 0
        assert "balance" in proc.stdout

    def test_bad_args_fail_cleanly(self):
        proc = run_cli("repro.tools.stream", "--ratio", "banana")
        assert proc.returncode == 2  # argparse usage error
