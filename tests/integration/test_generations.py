"""Generational comparison: the models reproduce §II's POWER7->POWER8 story.

Table I's spec doubling should surface as behaviour: more cache reach,
more SMT-driven bandwidth, an L4 that POWER7 lacks, and a better-fed
balance.  These tests run both generations through the same machinery.
"""

import pytest

from repro.arch.power7 import power7_chip
from repro.arch.power8 import power8_chip
from repro.arch.specs import SystemSpec
from repro.core.fma import fma_efficiency
from repro.mem.analytic import AnalyticHierarchy
from repro.mem.hierarchy import MemoryHierarchy

MB = 1 << 20


@pytest.fixture(scope="module")
def p7():
    return power7_chip()


@pytest.fixture(scope="module")
def p8():
    return power8_chip()


class TestCacheReach:
    def test_power8_lower_latency_mid_range(self, p7, p8):
        """Between the POWER7 and POWER8 L3 reaches, POWER8 still hits
        on-chip cache while POWER7 has fallen off."""
        h7 = AnalyticHierarchy(p7)
        h8 = AnalyticHierarchy(p8)
        for w in (6 * MB, 24 * MB, 48 * MB):
            assert h8.latency_ns(w) < h7.latency_ns(w), w

    def test_power8_l4_shoulder_absent_on_power7(self, p7, p8):
        """POWER8's 128 MB L4 cushions the fall to DRAM; POWER7 has
        essentially none, so its curve reaches DRAM latency sooner."""
        h7 = AnalyticHierarchy(p7)
        h8 = AnalyticHierarchy(p8)
        w = 100 * MB
        assert h8.latency_ns(w) < 0.9 * h7.latency_ns(w)

    def test_trace_sim_runs_on_power7(self, p7):
        hier = MemoryHierarchy(p7)
        first = hier.access(0)
        again = hier.access(0)
        assert first.level == "DRAM"
        assert again.level == "L1"


class TestThroughput:
    def test_smt8_bandwidth_advantage(self, p7, p8):
        """POWER8's 8-way SMT fills the memory pipeline where POWER7's
        4-way cannot go further."""
        from repro.core.lsu import core_stream_bandwidth

        assert core_stream_bandwidth(p8, 8) > core_stream_bandwidth(p7, 4)

    def test_power7_core_rejects_smt8(self, p7):
        with pytest.raises(ValueError):
            fma_efficiency(p7.core, 8, 2)

    def test_both_generations_peak_with_12_inflight(self, p7, p8):
        """Both cores have 2 x 6-cycle VSX pipes: the in-flight rule is
        generational-invariant."""
        for core in (p7.core, p8.core):
            assert fma_efficiency(core, 4, 3) == pytest.approx(1.0)
            assert fma_efficiency(core, 2, 3) < 1.0

    def test_memory_bandwidth_scaled_up(self, p7, p8):
        assert p8.peak_memory_bandwidth > 2 * p7.peak_memory_bandwidth


class TestSystemLevel:
    def test_power7_system_builds(self, p7):
        sys7 = SystemSpec("P7-SMP", p7, num_chips=8, group_size=4)
        assert sys7.num_threads == 256  # half of the E870's 512
        assert sys7.peak_gflops > 0

    def test_balance_improved(self, p7, p8, e870_system):
        """POWER8's Centaur links buy a much lower flop:byte balance."""
        sys7 = SystemSpec("P7-SMP", p7, num_chips=8, group_size=4)
        # POWER7-class balance ~2.4 flop/byte vs the E870's 1.21.
        assert e870_system.balance < 0.6 * sys7.balance
