"""Tolerance-gated differential suite: oracle vs simulators.

Each case compares an :class:`~repro.perfmodel.oracle.AnalyticOracle`
prediction against ground truth (the trace-driven batch engine or the
registered experiment) under the tolerance recorded in the golden file.
The figure cases are exact by construction — the oracle and the
experiment registry share one implementation — so they run in the quick
lane; the trace cases replay real sweeps and are marked slow.
"""

import pytest

from repro.arch import e870
from repro.perfmodel.differential import (
    CASES,
    FIGURE_CASES,
    GOLDEN_PATH,
    load_golden_tolerances,
    run_differential,
    selftest,
)

TRACE_CASES = tuple(name for name in CASES if name not in FIGURE_CASES)


@pytest.fixture(scope="module")
def system():
    return e870()


@pytest.fixture(scope="module")
def tolerances():
    return load_golden_tolerances()


def test_golden_file_covers_every_case(tolerances):
    assert set(tolerances) == set(CASES), (
        "golden_tolerances.json out of date; regenerate with "
        "PYTHONPATH=src python -m tests.oracle.regen_golden"
    )


def test_golden_file_is_package_data():
    """The file ships inside the package so --analytic-selftest finds it."""
    assert GOLDEN_PATH.name == "golden_tolerances.json"
    assert GOLDEN_PATH.parent.name == "perfmodel"


@pytest.mark.parametrize("name", FIGURE_CASES)
def test_figure_case(system, tolerances, name):
    (result,) = run_differential(system, names=[name], tolerances=tolerances)
    assert result.passed, result.line()


@pytest.mark.slow
@pytest.mark.parametrize("name", TRACE_CASES)
def test_trace_case(system, tolerances, name):
    (result,) = run_differential(system, names=[name], tolerances=tolerances)
    assert result.passed, result.line()


@pytest.mark.slow
def test_selftest_passes(system):
    ok, lines = selftest(system)
    assert ok, "\n".join(lines)
    assert any("within golden tolerance" in line for line in lines)
