"""Golden-tolerance generator for the oracle differential suite.

Every differential case (``repro.perfmodel.differential``) is gated by
a per-figure tolerance stored as package data at
``src/repro/perfmodel/golden_tolerances.json``.  The deterministic
cases get their float-rounding floor; the random-chase cases get the
measured model error plus headroom, so an unintended model regression
trips the gate while refactors sail through.  After an *intentional*
model change, regenerate with::

    PYTHONPATH=src python -m tests.oracle.regen_golden

and commit the updated JSON together with the change that motivated it.
"""

from __future__ import annotations

import json

from repro.perfmodel.differential import (
    CASES,
    GOLDEN_HEADROOM,
    GOLDEN_PATH,
    measure_errors,
)


def golden_payload() -> dict:
    measured = measure_errors()
    tolerances = {
        name: max(GOLDEN_HEADROOM * measured[name], CASES[name][1])
        for name in CASES
    }
    return {
        "generated_by": "tests/oracle/regen_golden.py",
        "headroom": GOLDEN_HEADROOM,
        "measured": measured,
        "tolerances": tolerances,
    }


def main() -> None:
    payload = golden_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({len(payload['tolerances'])} cases)")
    for name, tol in payload["tolerances"].items():
        print(f"  {name:24s} measured={payload['measured'][name]:.3e} tol={tol:.3e}")


if __name__ == "__main__":
    main()
