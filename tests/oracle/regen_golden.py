"""Golden-tolerance generator for the oracle differential suite.

Every differential case (``repro.perfmodel.differential``) is gated by
a per-figure tolerance stored as package data at
``src/repro/perfmodel/golden_tolerances.json``.  The deterministic
cases get their float-rounding floor; the random-chase cases get the
measured model error plus headroom, so an unintended model regression
trips the gate while refactors sail through.  After an *intentional*
model change, regenerate with::

    PYTHONPATH=src python -m tests.oracle.regen_golden

and commit the updated JSON together with the change that motivated it.

The top-level ``tolerances`` section is the POWER8/E870 baseline (the
historical format); the ``machines`` section adds one tolerance table
per zoo machine for the cross-architecture conformance suite
(``tests/arch/test_zoo_conformance.py``).
"""

from __future__ import annotations

import json

from repro.perfmodel.differential import (
    CASES,
    GOLDEN_HEADROOM,
    GOLDEN_PATH,
    measure_errors,
)

#: Zoo machines that get their own tolerance table (POWER8 is the
#: top-level baseline).
ZOO_MACHINES = ("sparc-t3-4", "broadwell", "cascade-lake")


def _tolerances(measured: dict) -> dict:
    return {
        name: max(GOLDEN_HEADROOM * measured[name], CASES[name][1])
        for name in CASES
    }


def golden_payload() -> dict:
    measured = measure_errors()
    machines = {}
    for machine in ZOO_MACHINES:
        machine_measured = measure_errors(machine=machine)
        machines[machine] = {
            "measured": machine_measured,
            "tolerances": _tolerances(machine_measured),
        }
    return {
        "generated_by": "tests/oracle/regen_golden.py",
        "headroom": GOLDEN_HEADROOM,
        "measured": measured,
        "tolerances": _tolerances(measured),
        "machines": machines,
    }


def main() -> None:
    payload = golden_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    n_machines = 1 + len(payload["machines"])
    print(
        f"wrote {GOLDEN_PATH} ({len(payload['tolerances'])} cases x "
        f"{n_machines} machines)"
    )
    for name, tol in payload["tolerances"].items():
        print(f"  {name:24s} measured={payload['measured'][name]:.3e} tol={tol:.3e}")
    for machine, section in payload["machines"].items():
        worst = max(section["measured"].items(), key=lambda kv: kv[1])
        print(f"  [{machine}] worst case {worst[0]} measured={worst[1]:.3e}")


if __name__ == "__main__":
    main()
