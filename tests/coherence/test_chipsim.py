"""Unit tests for the multi-core trace-driven chip simulator."""

import pytest

from repro.arch.power8 import power8_chip
from repro.coherence.chipsim import ChipSimulator
from repro.coherence.mesi import State


@pytest.fixture
def sim():
    return ChipSimulator(power8_chip())


class TestBasicPath:
    def test_cold_miss_goes_to_dram(self, sim):
        lat = sim.read(0, 0)
        assert sim.stats.level_hits["DRAM"] == 1
        assert lat > 50

    def test_rereference_hits_l1(self, sim):
        sim.read(0, 0)
        lat = sim.read(0, 64)  # same 128B line
        assert sim.stats.level_hits["L1"] == 1
        assert lat < 2

    def test_core_range_check(self, sim):
        with pytest.raises(ValueError):
            sim.read(99, 0)


class TestSharing:
    def test_producer_consumer_is_cache_to_cache(self, sim):
        sim.write(0, 0)
        lat = sim.read(1, 0)
        assert sim.stats.level_hits["C2C"] == 1
        # Intervention is much cheaper than DRAM, dearer than own L2.
        assert sim._lat_l2 < lat < 50

    def test_consumer_gets_shared_state(self, sim):
        sim.write(0, 0)
        sim.read(1, 0)
        assert sim.directory.state(0, 0) is State.SHARED
        assert sim.directory.state(1, 0) is State.SHARED

    def test_write_invalidates_other_core_cache(self, sim):
        sim.read(0, 0)
        sim.read(1, 0)
        sim.write(1, 0)
        # Core 0's private copy must be gone: its next read is not an L1 hit.
        before = sim.stats.level_hits["L1"]
        sim.read(0, 0)
        assert sim.stats.level_hits["L1"] == before
        assert sim.directory.state(0, 0) is not State.INVALID  # refetched

    def test_false_sharing_ping_pong(self, sim):
        """Alternating writers never hit their private caches."""
        sim.write(0, 0)
        for i in range(1, 21):
            sim.write(i % 2, 0)
        assert sim.stats.level_hits["C2C"] == 20
        assert sim.stats.level_hits["L1"] == 0

    def test_read_sharing_is_cheap_after_first(self, sim):
        """Many readers of the same line each pay one fetch, then hit."""
        for core in range(8):
            sim.read(core, 0)
        for core in range(8):
            sim.read(core, 0)
        assert sim.stats.level_hits["L1"] == 8


class TestMultiCoreCapacity:
    def test_disjoint_working_sets_do_not_interfere(self, sim):
        line = sim.line_size
        # Each core streams over its own 32 KB region (fits L1).
        for core in range(4):
            base = core * (1 << 20)
            for i in range(256):
                sim.read(core, base + i * line)
        before_dram = sim.stats.level_hits["DRAM"]
        for core in range(4):
            base = core * (1 << 20)
            for i in range(256):
                sim.read(core, base + i * line)
        assert sim.stats.level_hits["DRAM"] == before_dram  # all cached

    def test_directory_invariants_under_traffic(self, sim):
        import random

        rng = random.Random(5)
        for _ in range(500):
            core = rng.randrange(8)
            line = rng.randrange(64) * sim.line_size
            if rng.random() < 0.3:
                sim.write(core, line)
            else:
                sim.read(core, line)
        sim.directory.check_invariants()

    def test_mean_latency_tracks_locality(self):
        chip = power8_chip()
        private = ChipSimulator(chip)
        shared = ChipSimulator(chip)
        for i in range(200):
            # Private: each core re-reads its own hot line (L1 hits).
            private.read(i % 4, (i % 4) * (1 << 20))
            # Shared: everyone fights over one line (C2C ping-pong).
            shared.write(i % 4, 0)
        assert shared.stats.mean_latency_ns > 3 * private.stats.mean_latency_ns
