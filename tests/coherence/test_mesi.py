"""Unit tests for the MESI directory."""

import pytest

from repro.coherence.mesi import CoherenceError, Directory, State


@pytest.fixture
def d():
    return Directory(num_cores=4)


class TestReads:
    def test_first_read_exclusive(self, d):
        t = d.read(0, 100)
        assert t.new_state is State.EXCLUSIVE
        assert t.snooped_core is None
        assert d.state(0, 100) is State.EXCLUSIVE

    def test_second_reader_shares(self, d):
        d.read(0, 100)
        t = d.read(1, 100)
        assert t.new_state is State.SHARED
        assert t.snooped_core == 0  # owner downgraded, supplies data
        assert d.state(0, 100) is State.SHARED
        assert d.state(1, 100) is State.SHARED

    def test_read_from_modified_writes_back(self, d):
        d.write(0, 100)
        t = d.read(1, 100)
        assert t.writeback is True
        assert d.state(0, 100) is State.SHARED

    def test_read_from_exclusive_no_writeback(self, d):
        d.read(0, 100)
        t = d.read(1, 100)
        assert t.writeback is False

    def test_read_hit_no_action(self, d):
        d.read(0, 100)
        t = d.read(0, 100)
        assert t.snooped_core is None
        assert t.new_state is State.EXCLUSIVE


class TestWrites:
    def test_first_write_modified(self, d):
        t = d.write(0, 100)
        assert t.new_state is State.MODIFIED
        assert d.state(0, 100) is State.MODIFIED

    def test_silent_e_to_m_upgrade(self, d):
        d.read(0, 100)
        t = d.write(0, 100)
        assert t.new_state is State.MODIFIED
        assert t.invalidations == 0
        assert t.snooped_core is None

    def test_write_invalidates_sharers(self, d):
        d.read(0, 100)
        d.read(1, 100)
        d.read(2, 100)
        t = d.write(3, 100)
        assert t.invalidations == 3
        for core in (0, 1, 2):
            assert d.state(core, 100) is State.INVALID
        assert d.state(3, 100) is State.MODIFIED

    def test_write_steals_modified(self, d):
        d.write(0, 100)
        t = d.write(1, 100)
        assert t.snooped_core == 0
        assert t.writeback is True
        assert d.state(0, 100) is State.INVALID

    def test_write_hit_in_modified(self, d):
        d.write(0, 100)
        t = d.write(0, 100)
        assert t.invalidations == 0 and t.snooped_core is None


class TestEvictions:
    def test_clean_evict(self, d):
        d.read(0, 100)
        assert d.evict(0, 100) is False
        assert d.state(0, 100) is State.INVALID

    def test_dirty_evict_reports_writeback(self, d):
        d.write(0, 100)
        assert d.evict(0, 100) is True

    def test_shared_evict_leaves_others(self, d):
        d.read(0, 100)
        d.read(1, 100)
        d.evict(0, 100)
        assert d.state(1, 100) is State.SHARED

    def test_evict_untracked_line(self, d):
        assert d.evict(0, 999) is False


class TestInvariantsAndStats:
    def test_holders(self, d):
        d.read(0, 1)
        d.read(1, 1)
        assert d.holders(1) == {0, 1}
        assert d.holders(2) == set()

    def test_invariants_after_mixed_traffic(self, d):
        ops = [(0, 1, False), (1, 1, False), (2, 1, True), (0, 2, True),
               (3, 2, False), (1, 2, False), (2, 1, False)]
        for core, line, is_write in ops:
            if is_write:
                d.write(core, line)
            else:
                d.read(core, line)
            d.check_invariants()

    def test_stats_counters(self, d):
        d.read(0, 1)
        d.read(1, 1)
        d.write(2, 1)
        assert d.stats["reads"] == 2
        assert d.stats["writes"] == 1
        assert d.stats["invalidations"] == 2  # both sharers killed

    def test_core_range_checked(self, d):
        with pytest.raises(CoherenceError):
            d.read(4, 0)

    def test_needs_a_core(self):
        with pytest.raises(ValueError):
            Directory(0)
