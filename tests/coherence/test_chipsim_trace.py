"""Batch trace API of the multi-core chip simulator."""

import numpy as np
import pytest

from repro.arch import e870
from repro.coherence.chipsim import CHIP_LEVELS, ChipSimulator


@pytest.fixture(scope="module")
def chip():
    return e870().chip


def test_trace_matches_per_access_loop(chip):
    rng = np.random.default_rng(0)
    n = 5000
    cores = rng.integers(0, chip.cores_per_chip, n)
    addrs = rng.integers(0, 1 << 22, n) * 8
    writes = rng.random(n) < 0.3

    ref = ChipSimulator(chip)
    lat = np.empty(n)
    levels = []
    for i in range(n):
        l, lv = ref.access_ex(int(cores[i]), int(addrs[i]), bool(writes[i]))
        lat[i] = l
        levels.append(lv)

    bat = ChipSimulator(chip)
    res = bat.access_trace(cores, addrs, writes)
    assert np.array_equal(lat, res.latency_ns)
    assert levels == res.levels()
    assert ref.stats.level_hits == bat.stats.level_hits
    assert ref.stats.accesses == bat.stats.accesses
    assert ref.stats.total_latency_ns == pytest.approx(bat.stats.total_latency_ns)


def test_scalar_core_and_write_broadcast(chip):
    sim = ChipSimulator(chip)
    line = sim.line_size
    addrs = np.arange(8) * line
    res = sim.access_trace(0, addrs)  # one core, all reads
    assert len(res) == 8
    assert res.level_names == CHIP_LEVELS
    assert res.level_counts()["DRAM"] > 0
    # Same lines again: now L1 hits on core 0.
    again = sim.access_trace(0, addrs)
    assert again.level_counts()["L1"] == 8


def test_c2c_levels_appear_in_shared_trace(chip):
    sim = ChipSimulator(chip)
    line = sim.line_size
    addrs = np.tile(np.arange(4) * line, 2)
    cores = np.repeat([0, 1], 4)
    res = sim.access_trace(cores, addrs, True)
    assert res.level_counts()["C2C"] == 4  # core 1 pulls all 4 from core 0


def test_trace_validation(chip):
    sim = ChipSimulator(chip)
    with pytest.raises(ValueError, match="out of range"):
        sim.access_trace(chip.cores_per_chip, np.array([0]))
    with pytest.raises(ValueError, match="same length"):
        sim.access_trace(np.array([0, 1]), np.array([0]))
    with pytest.raises(ValueError, match="same length"):
        sim.access_trace(0, np.array([0, 64]), np.array([True]))
