"""Unit tests for table rendering and shape comparators."""

import pytest

from repro.reporting.compare import (
    argmax_index,
    crossover_index,
    is_monotone,
    peak_at,
    relative_error,
    within_factor,
)
from repro.reporting.tables import format_comparison, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in text and "3.25" in text

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [(1,)])

    def test_float_format(self):
        text = format_table(["x"], [(3.14159,)], float_format="{:.4f}")
        assert "3.1416" in text

    def test_comparison_appends_ratio(self):
        text = format_comparison(["name", "model", "paper"], [("k", 2.0, 4.0)])
        assert "ratio" in text
        assert "0.50" in text


class TestWithinFactor:
    def test_accepts_equal(self):
        assert within_factor(10.0, 10.0)

    def test_band_edges(self):
        assert within_factor(15.0, 10.0, 1.5)
        assert not within_factor(15.1, 10.0, 1.5)
        assert within_factor(10.0, 15.0, 1.5)

    def test_zero_paper(self):
        assert within_factor(0.0, 0.0)
        assert not within_factor(1.0, 0.0)

    def test_sign_mismatch(self):
        assert not within_factor(-1.0, 1.0)

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)


class TestRelativeError:
    def test_simple(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestSeriesChecks:
    def test_monotone(self):
        assert is_monotone([1, 2, 3])
        assert not is_monotone([1, 3, 2])
        assert is_monotone([3, 2, 1], increasing=False)
        assert is_monotone([1, 2, 1.99], tolerance=0.02)

    def test_argmax(self):
        assert argmax_index([1, 5, 3]) == 1

    def test_peak_at(self):
        assert peak_at([1, 5, 3], 1)
        assert not peak_at([1, 5, 3], 2)

    def test_crossover(self):
        assert crossover_index([0, 1, 3], [2, 2, 2]) == 2
        assert crossover_index([0, 0], [1, 1]) is None
        with pytest.raises(ValueError):
            crossover_index([1], [1, 2])
