"""Unit tests for the BENCH_*.json cross-run trajectory checker."""

import json

import pytest

from repro.reporting.trajectory import (
    Drift,
    check_trajectory,
    compare_payloads,
    flatten_metrics,
    main,
)


class TestFlatten:
    def test_nested_dicts_get_dotted_keys(self):
        flat = flatten_metrics({"lanes": {"stream": {"speedup": 5.0}}})
        assert flat == {"lanes.stream.speedup": 5.0}

    def test_lists_get_indexed_keys(self):
        flat = flatten_metrics({"depths": [1, 7]})
        assert flat == {"depths[0]": 1.0, "depths[1]": 7.0}

    def test_bools_become_binary(self):
        flat = flatten_metrics({"ok": True, "broken": False})
        assert flat == {"ok": 1.0, "broken": 0.0}

    def test_strings_and_nulls_skipped(self):
        flat = flatten_metrics({"benchmark": "x", "note": None, "n": 3})
        assert flat == {"n": 3.0}


class TestDrift:
    def test_rel_change(self):
        assert Drift("m", 10.0, 12.0).rel_change == pytest.approx(0.2)

    def test_zero_baseline_nonzero_current_is_infinite(self):
        assert Drift("m", 0.0, 1.0).rel_change == float("inf")
        assert Drift("m", 0.0, 0.0).rel_change == 0.0

    def test_line_marks_drift(self):
        assert "DRIFT" in Drift("m", 10.0, 20.0).line(threshold=0.2)
        assert "DRIFT" not in Drift("m", 10.0, 10.5).line(threshold=0.2)


class TestCompare:
    def test_only_shared_metrics_compared(self):
        drifts = compare_payloads({"a": 1.0, "b": 2.0}, {"a": 1.5, "c": 9.0})
        assert [d.metric for d in drifts] == ["a"]

    def test_ignore_globs(self):
        drifts = compare_payloads(
            {"trace_s": 1.0, "speedup": 10.0},
            {"trace_s": 9.0, "speedup": 10.0},
            ignore=["*_s"],
        )
        assert [d.metric for d in drifts] == ["speedup"]

    def test_include_globs(self):
        drifts = compare_payloads(
            {"a.speedup": 1.0, "a.err": 0.1},
            {"a.speedup": 1.0, "a.err": 0.1},
            include=["*.speedup"],
        )
        assert [d.metric for d in drifts] == ["a.speedup"]


class TestCheckTrajectory:
    def write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_within_threshold_passes(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self.write(base / "BENCH_x.json", {"speedup": 10.0})
        self.write(new / "BENCH_x.json", {"speedup": 11.0})
        ok, lines = check_trajectory([new / "BENCH_x.json"], base)
        assert ok
        assert any("1 metrics compared, 0 beyond" in line for line in lines)

    def test_drift_fails(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self.write(base / "BENCH_x.json", {"speedup": 10.0})
        self.write(new / "BENCH_x.json", {"speedup": 5.0})
        ok, lines = check_trajectory([new / "BENCH_x.json"], base)
        assert not ok
        assert any("DRIFT" in line and "speedup" in line for line in lines)

    def test_missing_baseline_seeds_without_failing(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self.write(new / "BENCH_new.json", {"speedup": 10.0})
        ok, lines = check_trajectory([new / "BENCH_new.json"], base)
        assert ok
        assert any(line.startswith("seed") for line in lines)

    def test_flipped_invariant_is_a_drift(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self.write(base / "BENCH_x.json", {"bit_identical": True})
        self.write(new / "BENCH_x.json", {"bit_identical": False})
        ok, _ = check_trajectory([new / "BENCH_x.json"], base)
        assert not ok


class TestCLI:
    def test_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_x.json").write_text('{"speedup": 10.0}', encoding="utf-8")
        new = tmp_path / "BENCH_x.json"
        new.write_text('{"speedup": 10.5}', encoding="utf-8")
        assert main([str(new), "--baseline", str(base)]) == 0
        assert "Trajectory OK" in capsys.readouterr().out
        new.write_text('{"speedup": 1.0}', encoding="utf-8")
        assert main([str(new), "--baseline", str(base)]) == 1
        assert "Trajectory DRIFTED" in capsys.readouterr().out

    def test_ignore_flag(self, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_x.json").write_text(
            '{"trace_s": 1.0, "speedup": 10.0}', encoding="utf-8"
        )
        new = tmp_path / "BENCH_x.json"
        new.write_text('{"trace_s": 99.0, "speedup": 10.0}', encoding="utf-8")
        assert main([str(new), "--baseline", str(base), "--ignore", "*_s"]) == 0

    def test_rejects_missing_artifact(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "nope.json"), "--baseline", str(tmp_path)])
