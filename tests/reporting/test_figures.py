"""Tests for CSV figure export."""

import pytest

from repro.bench.runner import run_experiment
from repro.reporting.figures import export_all, read_csv, write_csv


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path, "fig_x", ["a", "b"], [(1, 2.5), (3, 4.5)])
        headers, rows = read_csv(path)
        assert headers == ["a", "b"]
        assert rows == [["1", "2.5"], ["3", "4.5"]]

    def test_slug_sanitises_name(self, tmp_path):
        path = write_csv(tmp_path, "weird/name with spaces", ["x"], [(1,)])
        assert "/" not in path.name
        assert " " not in path.name

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        path = write_csv(nested, "t", ["x"], [(1,)])
        assert path.exists()

    def test_empty_file_rejected_on_read(self, tmp_path):
        p = tmp_path / "e.csv"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(p)


class TestExperimentExport:
    def test_table3_export(self, tmp_path, e870_system):
        result = run_experiment("table3", e870_system)
        path = write_csv(tmp_path, result.experiment_id, result.headers, result.rows)
        headers, rows = read_csv(path)
        assert len(rows) == 9  # the nine read:write ratios
        assert headers[0] == "read:write"

    def test_export_all(self, tmp_path, e870_system):
        results = [run_experiment(eid, e870_system) for eid in ("table2", "fig9")]
        paths = export_all(tmp_path, results)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)

    def test_cli_csv_flag(self, tmp_path):
        from repro.bench.__main__ import main

        assert main(["table1", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()

    def test_cli_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig12" in out
