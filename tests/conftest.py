"""Shared fixtures: the E870, a truncated system, and tiny cache specs."""

from __future__ import annotations

import pytest

from repro.arch import CacheSpec, e870, power8_chip
from repro.machine import P8Machine


@pytest.fixture(scope="session")
def e870_system():
    return e870()


@pytest.fixture(scope="session")
def e870_machine():
    return P8Machine.e870()


@pytest.fixture(scope="session")
def single_group_system():
    """A 4-chip (one group) system for intra-group-only scenarios."""
    return e870(num_chips=4)


@pytest.fixture(scope="session")
def p8_chip():
    return power8_chip()


@pytest.fixture
def tiny_cache_spec():
    """A 4-set, 2-way, 64B-line cache that is easy to reason about."""
    return CacheSpec("tiny", capacity=512, line_size=64, associativity=2,
                     latency_cycles=1.0)
