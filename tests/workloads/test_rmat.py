"""Unit tests for the R-MAT generator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.workloads.rmat import RMATConfig, degree_stats, rmat_adjacency, rmat_edges


class TestConfig:
    def test_sizes(self):
        cfg = RMATConfig(scale=10, edge_factor=16)
        assert cfg.num_vertices == 1024
        assert cfg.num_edges == 16384

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError, match="sum"):
            RMATConfig(scale=5, a=0.5, b=0.5, c=0.5, d=0.5)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            RMATConfig(scale=0)


class TestEdges:
    def test_endpoint_range(self):
        cfg = RMATConfig(scale=8, seed=3)
        src, dst = rmat_edges(cfg)
        assert len(src) == cfg.num_edges
        assert src.min() >= 0 and src.max() < cfg.num_vertices
        assert dst.min() >= 0 and dst.max() < cfg.num_vertices

    def test_deterministic(self):
        a = rmat_edges(RMATConfig(scale=8, seed=7))
        b = rmat_edges(RMATConfig(scale=8, seed=7))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_graph(self):
        a = rmat_edges(RMATConfig(scale=8, seed=1))
        b = rmat_edges(RMATConfig(scale=8, seed=2))
        assert not np.array_equal(a[0], b[0])

    def test_skew_toward_low_ids(self):
        """R-MAT's a=0.57 quadrant concentrates edges on low vertex ids."""
        src, dst = rmat_edges(RMATConfig(scale=12, seed=5))
        n = 1 << 12
        low = np.count_nonzero(src < n // 2)
        assert low > 0.6 * len(src)


class TestAdjacency:
    def test_symmetric_binary(self):
        adj = rmat_adjacency(RMATConfig(scale=8, seed=1))
        assert (adj != adj.T).nnz == 0
        assert set(np.unique(adj.data)) == {1.0}

    def test_no_self_loops(self):
        adj = rmat_adjacency(RMATConfig(scale=8, seed=1))
        assert adj.diagonal().sum() == 0

    def test_directed_variant(self):
        adj = rmat_adjacency(RMATConfig(scale=8, seed=1), symmetric=False)
        assert sp.issparse(adj)
        assert adj.shape == (256, 256)

    def test_power_law_degrees(self):
        """Max degree far exceeds the mean (scale-free structure)."""
        stats = degree_stats(rmat_adjacency(RMATConfig(scale=12, seed=2)))
        assert stats["max_degree"] > 8 * stats["mean_degree"]

    def test_degree_stats_fields(self):
        stats = degree_stats(rmat_adjacency(RMATConfig(scale=8, seed=2)))
        assert stats["vertices"] == 256
        assert stats["edges"] > 0
        assert stats["degree_second_moment"] >= stats["mean_degree"] ** 2
