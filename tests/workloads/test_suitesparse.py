"""Unit tests for the synthetic SuiteSparse-like matrix suite."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.workloads.suitesparse import SUITE, MatrixSpec, by_name, generate


class TestCatalogue:
    def test_contains_classic_names(self):
        names = {s.name for s in SUITE}
        assert {"Dense", "Protein", "Wind Tunnel", "Webbase"} <= names

    def test_by_name(self):
        assert by_name("Dense").structure == "dense"
        with pytest.raises(KeyError):
            by_name("nope")

    def test_structures_cover_all_classes(self):
        structures = {s.structure for s in SUITE}
        assert structures == {"dense", "banded", "block", "random", "powerlaw"}

    def test_description(self):
        assert "rows" in by_name("QCD").description


class TestGenerate:
    @pytest.mark.parametrize("name", [s.name for s in SUITE if s.name != "Dense"])
    def test_shapes_and_format(self, name):
        spec = by_name(name)
        m = generate(spec, rows=2000, seed=1)
        assert sp.issparse(m) and m.format == "csr"
        assert m.shape == (2000, 2000)
        assert m.nnz > 0

    def test_dense_is_full(self):
        m = generate(by_name("Dense"), rows=64)
        assert m.nnz == pytest.approx(64 * 64, rel=0.01)

    def test_nnz_per_row_respected(self):
        spec = by_name("Wind Tunnel")
        m = generate(spec, rows=4000, seed=1)
        got = m.nnz / 4000
        assert got == pytest.approx(spec.nnz_per_row, rel=0.35)

    def test_banded_stays_in_band(self):
        spec = by_name("Epidemiology")  # very narrow band
        m = generate(spec, rows=5000, seed=1).tocoo()
        half_band = max(1, int(spec.band_fraction * 5000 / 2)) + 1
        assert np.all(np.abs(m.row - m.col) <= half_band)

    def test_powerlaw_has_hub_rows(self):
        m = generate(by_name("Webbase"), rows=8000, seed=1)
        degrees = np.diff(m.indptr)
        assert degrees.max() > 20 * max(degrees.mean(), 1e-9)

    def test_random_columns_scattered(self):
        m = generate(by_name("Economics"), rows=4000, seed=1).tocoo()
        spread = np.abs(m.row - m.col).mean()
        assert spread > 400  # far off-diagonal on average

    def test_deterministic(self):
        a = generate(by_name("QCD"), rows=1000, seed=5)
        b = generate(by_name("QCD"), rows=1000, seed=5)
        assert (a != b).nnz == 0

    def test_paper_scale_default(self):
        spec = MatrixSpec("mini", "random", 128, 1280, 10.0)
        m = generate(spec)
        assert m.shape == (128, 128)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate(by_name("QCD"), rows=2)
