"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine.events import EventQueue, SimulationError


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.schedule(1.0, lambda n=name: fired.append(n))
        q.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(2.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [2.5]
        assert q.now == 2.5

    def test_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="past"):
            q.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        q = EventQueue(start_time=10.0)
        seen = []
        q.schedule_at(12.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [12.0]

    def test_nested_scheduling(self):
        q = EventQueue()
        fired = []

        def outer():
            fired.append(("outer", q.now))
            q.schedule(1.0, lambda: fired.append(("inner", q.now)))

        q.schedule(1.0, outer)
        q.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("x"))
        ev.cancel()
        q.run()
        assert fired == []
        assert ev.cancelled

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(5))
        end = q.run(until=2.0)
        assert fired == [1]
        assert end == 2.0
        # Remaining event still fires afterwards.
        q.run()
        assert fired == [1, 5]

    def test_max_events(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(float(i + 1), lambda i=i: fired.append(i))
        q.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_events_fired_counter(self):
        q = EventQueue()
        for _ in range(4):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.events_fired == 4
