"""Unit tests for channels and the max-min fair allocator."""

import pytest

from repro.engine.resources import Channel, aggregate_throughput, max_min_fair


class TestChannel:
    def test_transfer_time(self):
        ch = Channel("link", capacity=100.0)
        assert ch.transfer_time(50.0) == pytest.approx(0.5)

    def test_serialisation(self):
        ch = Channel("link", capacity=100.0)
        s1, f1 = ch.acquire(now=0.0, nbytes=100.0)
        s2, f2 = ch.acquire(now=0.0, nbytes=100.0)
        assert (s1, f1) == (0.0, 1.0)
        assert (s2, f2) == (1.0, 2.0)

    def test_idle_gap_respected(self):
        ch = Channel("link", capacity=100.0)
        ch.acquire(now=0.0, nbytes=50.0)
        s, f = ch.acquire(now=10.0, nbytes=50.0)
        assert s == 10.0
        assert f == pytest.approx(10.5)

    def test_utilisation(self):
        ch = Channel("link", capacity=100.0)
        ch.acquire(0.0, 100.0)
        assert ch.utilisation(elapsed=2.0) == pytest.approx(0.5)
        assert ch.utilisation(elapsed=0.0) == 0.0


class TestMaxMinFair:
    def test_single_link_even_split(self):
        alloc = max_min_fair({"a": ["l"], "b": ["l"]}, {"l": 10.0})
        assert alloc["a"] == pytest.approx(5.0)
        assert alloc["b"] == pytest.approx(5.0)

    def test_bottleneck_sharing(self):
        # a and b share link1; b also crosses the tighter link2.
        flows = {"a": ["l1"], "b": ["l1", "l2"]}
        caps = {"l1": 10.0, "l2": 2.0}
        alloc = max_min_fair(flows, caps)
        assert alloc["b"] == pytest.approx(2.0)
        assert alloc["a"] == pytest.approx(8.0)

    def test_demand_ceiling(self):
        flows = {"a": ["l"], "b": ["l"]}
        alloc = max_min_fair(flows, {"l": 10.0}, demands={"a": 1.0})
        assert alloc["a"] == pytest.approx(1.0)
        assert alloc["b"] == pytest.approx(9.0)

    def test_three_flows_two_links(self):
        flows = {"a": ["x"], "b": ["x", "y"], "c": ["y"]}
        caps = {"x": 6.0, "y": 4.0}
        alloc = max_min_fair(flows, caps)
        # b is limited by y's fair share (2), a then takes the rest of x.
        assert alloc["b"] == pytest.approx(2.0)
        assert alloc["c"] == pytest.approx(2.0)
        assert alloc["a"] == pytest.approx(4.0)

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError, match="unknown link"):
            max_min_fair({"a": ["nope"]}, {"l": 1.0})

    def test_linkless_flow_needs_demand(self):
        with pytest.raises(ValueError, match="no links"):
            max_min_fair({"a": []}, {})

    def test_linkless_flow_with_demand(self):
        alloc = max_min_fair({"a": []}, {}, demands={"a": 3.0})
        assert alloc["a"] == pytest.approx(3.0)

    def test_conservation(self):
        """No link carries more than its capacity."""
        flows = {f"f{i}": ["l1", "l2"] for i in range(5)}
        flows["g"] = ["l2"]
        caps = {"l1": 7.0, "l2": 3.0}
        alloc = max_min_fair(flows, caps)
        l1_load = sum(alloc[f] for f, path in flows.items() if "l1" in path)
        l2_load = sum(alloc[f] for f, path in flows.items() if "l2" in path)
        assert l1_load <= caps["l1"] + 1e-6
        assert l2_load <= caps["l2"] + 1e-6

    def test_aggregate_throughput(self):
        alloc = {"a": 1.0, "b": 2.0}
        assert aggregate_throughput(alloc) == pytest.approx(3.0)
