"""Unit tests for the simulated clock and phase buckets."""

import pytest

from repro.engine.clock import SimClock


class TestAdvance:
    def test_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.elapsed == pytest.approx(4.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_zero_is_fine(self):
        c = SimClock()
        c.advance(0.0)
        assert c.elapsed == 0.0


class TestPhases:
    def test_attribution(self):
        c = SimClock()
        with c.phase("precomp"):
            c.advance(3.0)
        with c.phase("fock"):
            c.advance(1.0)
        assert c.phase_time("precomp") == pytest.approx(3.0)
        assert c.phase_time("fock") == pytest.approx(1.0)
        assert c.elapsed == pytest.approx(4.0)

    def test_nested_phases_attribute_to_innermost(self):
        c = SimClock()
        with c.phase("outer"):
            c.advance(1.0)
            with c.phase("inner"):
                c.advance(2.0)
            c.advance(0.5)
        assert c.phase_time("inner") == pytest.approx(2.0)
        assert c.phase_time("outer") == pytest.approx(1.5)

    def test_unknown_phase_is_zero(self):
        assert SimClock().phase_time("nope") == 0.0

    def test_phases_snapshot(self):
        c = SimClock()
        with c.phase("a"):
            c.advance(1.0)
        snap = c.phases()
        snap["a"] = 99.0
        assert c.phase_time("a") == pytest.approx(1.0)

    def test_reset(self):
        c = SimClock()
        with c.phase("a"):
            c.advance(1.0)
        c.reset()
        assert c.elapsed == 0.0
        assert c.phases() == {}
