"""Synthetic stand-ins for the University of Florida SpMV matrix suite.

The paper's Figure 11 measures CSR SpMV over matrices "selected from
the University of Florida Sparse Matrix Collection [that] are typically
tested in SpMV works" plus a dense reference.  The collection is not
redistributable inside this offline container, so each matrix is
replaced by a synthetic generator that reproduces the structural
features SpMV performance depends on: dimension, nonzeros per row, and
the column-access locality class (banded FEM stencils, block-dense
rows, near-random scatter, power-law rows).  Paper-scale dimensions are
carried as metadata; generation happens at a scaled-down size chosen by
the caller so the structure statistics (and hence the *relative* SpMV
rates of Figure 11) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np
import scipy.sparse as sp

Structure = str  # "dense" | "banded" | "block" | "random" | "powerlaw"


@dataclass(frozen=True)
class MatrixSpec:
    """Metadata for one Figure 11 matrix."""

    name: str
    structure: Structure
    paper_rows: int
    paper_nnz: int
    nnz_per_row: float
    band_fraction: float = 0.01  # bandwidth / n for banded structures
    block_size: int = 6  # dense block dimension for FEM block rows

    @property
    def description(self) -> str:
        return (
            f"{self.name}: {self.structure}, {self.paper_rows} rows, "
            f"{self.paper_nnz} nonzeros at paper scale"
        )


#: The classic Williams et al. SpMV suite the paper draws from,
#: with published row/nnz counts.
SUITE: List[MatrixSpec] = [
    MatrixSpec("Dense", "dense", 2_000, 4_000_000, 2000.0),
    MatrixSpec("Protein", "block", 36_417, 4_344_765, 119.3, block_size=6),
    MatrixSpec("FEM/Spheres", "block", 83_334, 6_010_480, 72.1, block_size=3),
    MatrixSpec("FEM/Cantilever", "block", 62_451, 4_007_383, 64.2, block_size=3),
    MatrixSpec("Wind Tunnel", "banded", 217_918, 11_634_424, 53.4, band_fraction=0.02),
    MatrixSpec("FEM/Harbor", "banded", 46_835, 2_374_001, 50.7, band_fraction=0.05),
    MatrixSpec("QCD", "banded", 49_152, 1_916_928, 39.0, band_fraction=0.08),
    MatrixSpec("FEM/Ship", "block", 140_874, 7_813_404, 55.5, block_size=3),
    MatrixSpec("Economics", "random", 206_500, 1_273_389, 6.2),
    MatrixSpec("Epidemiology", "banded", 525_825, 2_100_225, 4.0, band_fraction=0.001),
    MatrixSpec("Circuit", "powerlaw", 170_998, 958_936, 5.6),
    MatrixSpec("Webbase", "powerlaw", 1_000_005, 3_105_536, 3.1),
]


def by_name(name: str) -> MatrixSpec:
    for spec in SUITE:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown matrix {name!r}; known: {[s.name for s in SUITE]}")


def generate(spec: MatrixSpec, rows: int | None = None, seed: int = 7) -> sp.csr_matrix:
    """Instantiate ``spec`` at ``rows`` rows (paper scale when omitted)."""
    n = spec.paper_rows if rows is None else rows
    if n < 4:
        raise ValueError(f"matrix needs at least 4 rows, got {n}")
    nnz_per_row = min(spec.nnz_per_row, float(n))
    rng = np.random.default_rng(seed)
    builder = _BUILDERS[spec.structure]
    mat = builder(n, nnz_per_row, spec, rng)
    mat.sum_duplicates()
    return mat.tocsr()


def _dense(n: int, nnz_per_row: float, spec: MatrixSpec, rng) -> sp.coo_matrix:
    del nnz_per_row, spec
    values = rng.standard_normal((n, n))
    return sp.coo_matrix(values)


def _banded(n: int, nnz_per_row: float, spec: MatrixSpec, rng) -> sp.coo_matrix:
    half_band = max(1, int(spec.band_fraction * n / 2))
    k = max(1, int(round(nnz_per_row)))
    rows = np.repeat(np.arange(n), k)
    offsets = rng.integers(-half_band, half_band + 1, size=len(rows))
    cols = np.clip(rows + offsets, 0, n - 1)
    vals = rng.standard_normal(len(rows))
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n))


def _block(n: int, nnz_per_row: float, spec: MatrixSpec, rng) -> sp.coo_matrix:
    """FEM-style rows: dense blocks scattered near the diagonal."""
    b = spec.block_size
    blocks_per_row = max(1, int(round(nnz_per_row / b)))
    nblocks = max(1, n // b)
    row_blocks = np.repeat(np.arange(nblocks), blocks_per_row)
    # Neighbouring blocks cluster near the diagonal (mesh locality).
    spread = max(1, nblocks // 50)
    col_blocks = np.clip(
        row_blocks + rng.integers(-spread, spread + 1, size=len(row_blocks)),
        0,
        nblocks - 1,
    )
    # Expand each block pair into a dense b x b tile.
    within = np.arange(b)
    rows = (row_blocks[:, None, None] * b + within[None, :, None]).ravel()
    cols = (col_blocks[:, None, None] * b + within[None, None, :]).ravel()
    keep = (rows < n) & (cols < n)
    rows, cols = rows[keep], cols[keep]
    vals = rng.standard_normal(len(rows))
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n))


def _random(n: int, nnz_per_row: float, spec: MatrixSpec, rng) -> sp.coo_matrix:
    del spec
    k = max(1, int(round(nnz_per_row)))
    rows = np.repeat(np.arange(n), k)
    cols = rng.integers(0, n, size=len(rows))
    vals = rng.standard_normal(len(rows))
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n))


def _powerlaw(n: int, nnz_per_row: float, spec: MatrixSpec, rng) -> sp.coo_matrix:
    """Zipf-distributed row degrees and preferentially-attached columns."""
    del spec
    target_nnz = int(nnz_per_row * n)
    raw = rng.zipf(2.1, size=n).astype(np.float64)
    degrees = np.maximum(1, (raw / raw.sum() * target_nnz)).astype(np.int64)
    degrees = np.minimum(degrees, n)
    rows = np.repeat(np.arange(n), degrees)
    # Columns also follow a power law (hubs are referenced often).
    cols = (n * rng.power(0.3, size=len(rows))).astype(np.int64) % n
    vals = rng.standard_normal(len(rows))
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n))


_BUILDERS: Dict[Structure, Callable] = {
    "dense": _dense,
    "banded": _banded,
    "block": _block,
    "random": _random,
    "powerlaw": _powerlaw,
}
