"""Workload generators: R-MAT graphs, synthetic SpMV matrix suite."""

from .rmat import RMATConfig, degree_stats, rmat_adjacency, rmat_edges
from .suitesparse import SUITE, MatrixSpec, by_name, generate

__all__ = [
    "SUITE",
    "MatrixSpec",
    "RMATConfig",
    "by_name",
    "degree_stats",
    "generate",
    "rmat_adjacency",
    "rmat_edges",
]
