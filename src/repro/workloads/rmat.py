"""R-MAT (recursive matrix) graph generator.

The paper's Jaccard (Figure 10) and graph-SpMV (Figure 12) experiments
use R-MAT graphs "of scale 17 to 23" and "up to 31" with an average
degree of 16.  This generator follows the Graph500 parameterisation
(a=0.57, b=0.19, c=0.19, d=0.05) and is fully vectorised: all edge
quadrant decisions are drawn as NumPy bit matrices, so container-scale
graphs (scale <= 20) generate in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


@dataclass(frozen=True)
class RMATConfig:
    scale: int
    edge_factor: int = 16
    a: float = GRAPH500_A
    b: float = GRAPH500_B
    c: float = GRAPH500_C
    d: float = GRAPH500_D
    seed: int = 1

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.edge_factor < 1:
            raise ValueError(f"edge factor must be >= 1, got {self.edge_factor}")
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"quadrant probabilities sum to {total}, expected 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.edge_factor * self.num_vertices


def rmat_edges(config: RMATConfig) -> tuple[np.ndarray, np.ndarray]:
    """Generate directed edge endpoints ``(src, dst)`` for an R-MAT graph."""
    rng = np.random.default_rng(config.seed)
    m = config.num_edges
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    p_right = config.b + config.d  # probability the column bit is 1
    p_bottom_given_right = config.d / p_right if p_right > 0 else 0.0
    p_bottom_given_left = config.c / (config.a + config.c)
    for _ in range(config.scale):
        right = rng.random(m) < p_right
        p_bottom = np.where(right, p_bottom_given_right, p_bottom_given_left)
        bottom = rng.random(m) < p_bottom
        src = (src << 1) | bottom
        dst = (dst << 1) | right
    return src, dst


def rmat_adjacency(
    config: RMATConfig,
    symmetric: bool = True,
    remove_self_loops: bool = True,
    dtype=np.float64,
) -> sp.csr_matrix:
    """Build the (deduplicated, binary) adjacency matrix of an R-MAT graph."""
    src, dst = rmat_edges(config)
    n = config.num_vertices
    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    data = np.ones(len(src), dtype=dtype)
    adj = sp.coo_matrix((data, (src, dst)), shape=(n, n)).tocsr()
    adj.data[:] = 1.0  # deduplicate multi-edges to a binary adjacency
    return adj


def degree_stats(adj: sp.csr_matrix) -> dict:
    """Degree distribution summary used by the scaling analyses."""
    degrees = np.diff(adj.indptr)
    return {
        "vertices": adj.shape[0],
        "edges": int(adj.nnz),
        "mean_degree": float(degrees.mean()),
        "max_degree": int(degrees.max(initial=0)),
        "isolated": int(np.count_nonzero(degrees == 0)),
        "degree_second_moment": float(np.mean(degrees.astype(np.float64) ** 2)),
    }
