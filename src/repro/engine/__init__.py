"""Deterministic discrete-event kernel and shared-resource models."""

from .clock import SimClock
from .events import Event, EventQueue, SimulationError
from .resources import Channel, aggregate_throughput, max_min_fair

__all__ = [
    "Channel",
    "Event",
    "EventQueue",
    "SimClock",
    "SimulationError",
    "aggregate_throughput",
    "max_min_fair",
]
