"""Shared-resource models: bandwidth channels and max-min fair allocation.

The SMP bandwidth benchmarks in the paper (Table III, Table IV, Figures
3/4/6) saturate shared links from many concurrent requesters.  We model
each link as a :class:`Channel` with a fixed capacity and solve the
steady-state allocation across flows with progressive-filling max-min
fairness (:func:`max_min_fair`), the standard model for fair-queued
interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

FlowId = Hashable
LinkId = Hashable


@dataclass
class Channel:
    """A finite-bandwidth pipe with utilisation accounting.

    Used by the discrete-event models for serialised transfers: a
    transfer of ``nbytes`` occupies the channel for ``nbytes/capacity``
    seconds.
    """

    name: str
    capacity: float  # bytes/s
    busy_until: float = 0.0
    bytes_moved: float = 0.0

    def transfer_time(self, nbytes: float) -> float:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: non-positive capacity")
        return nbytes / self.capacity

    def acquire(self, now: float, nbytes: float) -> Tuple[float, float]:
        """Serialise a transfer starting no earlier than ``now``.

        Returns ``(start, finish)`` times and advances the channel's
        busy horizon — a simple store-and-forward queueing model.
        """
        start = max(now, self.busy_until)
        finish = start + self.transfer_time(nbytes)
        self.busy_until = finish
        self.bytes_moved += nbytes
        return start, finish

    def utilisation(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_moved / (self.capacity * elapsed))


def max_min_fair(
    flows: Mapping[FlowId, Sequence[LinkId]],
    capacities: Mapping[LinkId, float],
    demands: Mapping[FlowId, float] | None = None,
) -> Dict[FlowId, float]:
    """Progressive-filling max-min fair bandwidth allocation.

    Parameters
    ----------
    flows:
        Maps each flow to the sequence of links it traverses.
    capacities:
        Link capacities in bytes/s.
    demands:
        Optional per-flow demand ceilings; unbounded when omitted.

    Returns
    -------
    dict
        Allocated rate for every flow.  The allocation is the unique
        max-min fair point: no flow's rate can be increased without
        decreasing the rate of a flow with an equal or smaller rate.
    """
    remaining = {l: float(c) for l, c in capacities.items()}
    for flow, path in flows.items():
        for link in path:
            if link not in remaining:
                raise KeyError(f"flow {flow!r} uses unknown link {link!r}")
    alloc: Dict[FlowId, float] = {f: 0.0 for f in flows}
    active = {f for f, path in flows.items() if len(path) > 0}
    # Flows with no links are only limited by their demand.
    for f, path in flows.items():
        if not path:
            alloc[f] = float("inf") if demands is None else float(demands.get(f, float("inf")))
            if alloc[f] == float("inf"):
                raise ValueError(f"flow {f!r} has no links and no demand bound")

    cap_left = dict(remaining)
    demand_left = None
    if demands is not None:
        demand_left = {f: float(demands.get(f, float("inf"))) for f in flows}

    for _ in range(len(flows) + len(capacities) + 1):
        if not active:
            break
        # Fair-share increment: tightest link determines the step.
        link_users: Dict[LinkId, int] = {}
        for f in active:
            for link in flows[f]:
                link_users[link] = link_users.get(link, 0) + 1
        step = min(
            cap_left[link] / users for link, users in link_users.items() if users
        )
        if demand_left is not None:
            step = min(
                step, min(demand_left[f] - alloc[f] for f in active)
            )
        if step <= 0:
            step = 0.0
        for f in active:
            alloc[f] += step
            for link in flows[f]:
                cap_left[link] -= step
        # Freeze flows on saturated links or at their demand ceiling.
        saturated = {l for l, c in cap_left.items() if c <= 1e-9}
        newly_frozen = {
            f
            for f in active
            if any(l in saturated for l in flows[f])
            or (demand_left is not None and alloc[f] >= demand_left[f] - 1e-9)
        }
        if not newly_frozen:
            break
        active -= newly_frozen
    return alloc


def aggregate_throughput(alloc: Mapping[FlowId, float]) -> float:
    """Sum of allocated flow rates, ignoring infinite link-free flows."""
    return sum(v for v in alloc.values() if v != float("inf"))
