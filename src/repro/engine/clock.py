"""Simulated machine clock.

Application performance models advance a :class:`SimClock` instead of
reading wall time, which keeps every reported "timing" a deterministic
function of the machine description and the workload.  The clock also
accumulates named cost buckets so benchmarks can report per-phase
breakdowns (e.g. Table VI's Precomp/Fock/Density columns).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator


class SimClock:
    """Accumulating simulated-time clock with named phase buckets."""

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._phases: Dict[str, float] = defaultdict(float)
        self._stack: list[str] = []

    @property
    def elapsed(self) -> float:
        """Total simulated seconds advanced so far."""
        return self._elapsed

    def advance(self, seconds: float) -> None:
        """Advance the clock; attributes the time to the current phase."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._elapsed += seconds
        if self._stack:
            self._phases[self._stack[-1]] += seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute time advanced inside the block to bucket ``name``."""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def phase_time(self, name: str) -> float:
        return self._phases.get(name, 0.0)

    def phases(self) -> Dict[str, float]:
        return dict(self._phases)

    def reset(self) -> None:
        self._elapsed = 0.0
        self._phases.clear()
        self._stack.clear()
