"""A minimal deterministic discrete-event simulation kernel.

The trace-driven cache simulator and the link-arbitration models are
built on this kernel.  It is intentionally tiny: a stable priority queue
of ``(time, seq, callback)`` entries and a simulator loop.  Determinism
matters more than speed here — equal-time events fire in scheduling
order, so every run of a benchmark is bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised on scheduling into the past or other kernel misuse."""


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Event:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Mark the event dead; it is skipped when its time arrives."""
        self._entry.cancelled = True


class EventQueue:
    """Deterministic event loop with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._now = start_time
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._fired

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = _Entry(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._fired += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the queue; stop at time ``until`` or after ``max_events``.

        Returns the simulation time when the loop stopped.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            # Peek for the time bound without popping cancelled entries
            # needlessly: skip dead heads first.
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0].time > until:
                self._now = until
                break
            if not self.step():
                break
            fired += 1
        return self._now
