"""``stream``-style CLI over the modelled machine.

Mirrors the paper's modified STREAM benchmark::

    python -m repro.tools.stream                  # classic four kernels
    python -m repro.tools.stream --ratio 2:1      # one Table III mix
    python -m repro.tools.stream --table3         # the full ratio sweep
    python -m repro.tools.stream --cores 1 --threads 4   # Figure 3 points
    python -m repro.tools.stream --trace --depth 7       # measured sweep

``--trace`` leaves the analytic bandwidth model entirely: it runs a
sequential sweep through the trace-driven batch engine (whose bulk
streaming/prefetcher paths commit this exact regime) and reports the
measured mean latency, effective per-stream bandwidth and prefetch
counters.  ``--analytic`` prints the same report from the
:class:`~repro.perfmodel.oracle.AnalyticOracle`'s O(1) closed-form twin
— the two are differential-tested to agree exactly.  All bandwidth
modes route through the oracle, which is the single shared front end
over :mod:`repro.perfmodel.stream_model`.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..arch import e870
from ..bench.stream_kernels import StreamKernels
from ..perfmodel.oracle import AnalyticOracle

GB = 1e9

_CLASSIC = ("copy", "scale", "add", "triad")


def _classic_worker(task):
    """Run one classic kernel (top-level: pool-safe across processes)."""
    system, elements, kernel = task
    return getattr(StreamKernels(system, elements=elements), kernel)()


def _table3_worker(task):
    """Model one shard's slice of the Table III ratio sweep."""
    system, ratios = task
    return AnalyticOracle(system).table3(ratios=ratios)


def parse_ratio(text: str) -> tuple[float, float]:
    try:
        read, write = text.split(":")
        pair = float(read), float(write)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"ratio must look like '2:1', got {text!r}"
        ) from None
    if pair[0] < 0 or pair[1] < 0 or pair == (0.0, 0.0):
        raise argparse.ArgumentTypeError(f"invalid ratio {text!r}")
    return pair


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stream",
        description="STREAM bandwidth on the modelled E870.",
    )
    parser.add_argument("--ratio", type=parse_ratio, default=None,
                        help="read:write byte ratio, e.g. 2:1")
    parser.add_argument("--table3", action="store_true",
                        help="print the full Table III ratio sweep")
    parser.add_argument("--cores", type=int, default=None,
                        help="cores on one chip (Figure 3 mode)")
    parser.add_argument("--threads", type=int, default=8,
                        help="threads per core (Figure 3 mode)")
    parser.add_argument("--counters", action="store_true",
                        help="also print each kernel's Centaur link-byte "
                             "counters (classic-kernel mode)")
    parser.add_argument("--inject", metavar="SPEC", default=None,
                        help="inject link/DRAM faults and print degraded "
                             "bandwidth (--ratio and --table3 modes), e.g. "
                             "'link_crc:rate=1e-3'")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (default: 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for the classic kernels and "
                             "the --table3 sweep (default: 1 = in-process)")
    parser.add_argument("--shards", type=int, default=1,
                        help="with --table3: split the ratio sweep into N "
                             "row groups for the pool (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache even when "
                             "$REPRO_CACHE_DIR is configured")
    parser.add_argument("--trace", action="store_true",
                        help="measure a sequential sweep on the trace-driven "
                             "batch engine instead of the analytic model")
    parser.add_argument("--analytic", action="store_true",
                        help="predict the --trace sequential sweep with the "
                             "analytic oracle's O(1) closed-form twin")
    parser.add_argument("--depth", type=int, default=7,
                        help="with --trace: DSCR prefetch depth 1-7 "
                             "(default: 7, deepest)")
    parser.add_argument("--sweep-mb", type=int, default=4,
                        help="with --trace: sweep size in MiB (default: 4)")
    args = parser.parse_args(argv)

    system = e870()
    if args.inject is not None and not (args.table3 or args.ratio is not None):
        parser.error("--inject applies to the --ratio and --table3 modes")
    if args.workers < 1 or args.shards < 1:
        parser.error("--workers and --shards must be >= 1")
    if args.shards > 1 and not args.table3:
        parser.error("--shards applies to the --table3 sweep")
    if args.trace and (args.table3 or args.ratio is not None
                       or args.cores is not None):
        parser.error("--trace is its own mode; drop --table3/--ratio/--cores")
    if args.analytic and not args.trace:
        parser.error("--analytic twins the --trace sweep; add --trace")
    if args.sweep_mb < 1:
        parser.error("--sweep-mb must be >= 1")

    if args.trace:
        line = system.chip.core.l1d.line_size
        n_lines = (args.sweep_mb << 20) // line
        if args.analytic:
            p = AnalyticOracle(system).stream_sweep(
                depth=args.depth, n_lines=n_lines
            )
            row = {
                "mean_latency_ns": p.mean_latency_ns,
                "dram_misses": p.dram_misses,
                "accesses": p.accesses,
                "prefetch_issued": p.prefetch_issued,
                "prefetch_useful": p.prefetch_useful,
                "prefetch_accuracy": p.prefetch_accuracy,
            }
            label = "sequential sweep (oracle prediction)"
        else:
            from ..prefetch.traced import traced_sequential_scan

            row = traced_sequential_scan(system.chip, args.depth, n_lines=n_lines)
            label = "sequential sweep"
        eff_bw = line / (row["mean_latency_ns"] * 1e-9)
        print(f"{label}: {args.sweep_mb} MiB, depth {args.depth}")
        print(f"mean latency     {row['mean_latency_ns']:8.2f} ns/line")
        print(f"per-stream bw    {eff_bw / GB:8.1f} GB/s")
        print(f"dram misses      {row['dram_misses']:8d} / {row['accesses']} refs")
        print(f"prefetch issued  {row['prefetch_issued']:8d}  "
              f"useful {row['prefetch_useful']}  "
              f"accuracy {row['prefetch_accuracy']:.3f}")
        return 0

    oracle = AnalyticOracle(system)

    if args.table3 and args.shards > 1 and args.inject is None:
        from ..parallel.pool import ShardPool
        from ..parallel.shards import split_blocks
        from ..perfmodel.stream_model import TABLE3_RATIOS

        spans = split_blocks(len(TABLE3_RATIOS), args.shards)
        tasks = [
            (system, TABLE3_RATIOS[r0:r1]) for r0, r1 in spans if r1 > r0
        ]
        for group in ShardPool(args.workers).map(_table3_worker, tasks):
            for row in group:
                print(f"{row['read']:>4.0f}:{row['write']:<4.0f} "
                      f"{row['bandwidth'] / GB:8.1f} GB/s")
        return 0

    if args.table3:
        if args.inject is not None:
            from ..ras.injector import build_injector
            from ..ras.sweep import degraded_system_stream_bandwidth

            for row in oracle.table3():
                # Fresh injector per mix: each row is its own run.
                degraded = degraded_system_stream_bandwidth(
                    system, build_injector(args.inject, seed=args.seed),
                    read_ratio=row["read"], write_ratio=row["write"],
                )
                print(f"{row['read']:>4.0f}:{row['write']:<4.0f} "
                      f"{row['bandwidth'] / GB:8.1f} GB/s  "
                      f"degraded {degraded / GB:8.1f} GB/s "
                      f"({100 * degraded / row['bandwidth']:.1f}%)")
            return 0
        for row in oracle.table3():
            print(f"{row['read']:>4.0f}:{row['write']:<4.0f} "
                  f"{row['bandwidth'] / GB:8.1f} GB/s")
        return 0

    if args.cores is not None:
        bw = oracle.chip_bandwidth(args.cores, args.threads)
        print(f"{args.cores} cores x {args.threads} threads: {bw / GB:.1f} GB/s")
        return 0

    if args.ratio is not None:
        bw = oracle.stream_bandwidth(*args.ratio)
        line = f"{args.ratio[0]:.0f}:{args.ratio[1]:.0f}  {bw / GB:.1f} GB/s"
        if args.inject is not None:
            from ..ras.injector import build_injector
            from ..ras.sweep import degraded_system_stream_bandwidth

            degraded = degraded_system_stream_bandwidth(
                system, build_injector(args.inject, seed=args.seed),
                read_ratio=args.ratio[0], write_ratio=args.ratio[1],
            )
            line += f"  degraded {degraded / GB:.1f} GB/s ({100 * degraded / bw:.1f}%)"
        print(line)
        return 0

    elements = 1 << 16
    cache = key = None
    if not args.no_cache and os.environ.get("REPRO_CACHE_DIR"):
        from ..parallel.cache import ResultCache

        cache = ResultCache()
        key = cache.key(
            machine=system,
            workload={"tool": "stream", "mode": "classic", "elements": elements},
        )
        payload = cache.get(key)
        if payload is not None and not args.counters:
            print("[cache hit classic kernels]", file=sys.stderr)
            print(f"{'kernel':8} {'mix':>6} {'GB/s':>9}")
            for row in payload["rows"]:
                print(f"{row['kernel']:8} {row['read_ratio']:>4.0f}:1 "
                      f"{row['bandwidth'] / GB:>9.1f}")
            return 0

    print(f"{'kernel':8} {'mix':>6} {'GB/s':>9}")
    if args.workers > 1:
        from ..parallel.pool import ShardPool

        tasks = [(system, elements, kernel) for kernel in _CLASSIC]
        results = ShardPool(args.workers).map(_classic_worker, tasks)
    else:
        results = StreamKernels(system, elements=elements).all_classic()
    for result in results:
        print(f"{result.kernel:8} {result.read_ratio:>4.0f}:1 "
              f"{result.modeled_bandwidth / GB:>9.1f}")
    if cache is not None:
        cache.put(key, {"rows": [
            {
                "kernel": r.kernel,
                "read_ratio": float(r.read_ratio),
                "bandwidth": float(r.modeled_bandwidth),
            }
            for r in results
        ]})
    if args.counters:
        from ..mem.centaur import link_byte_counters
        from ..reporting.tables import format_counter_table

        for result in results:
            bank = link_byte_counters(result.bytes_read, result.bytes_written)
            print()
            print(format_counter_table(
                bank,
                title=(f"{result.kernel}: link bytes "
                       f"(read fraction {result.read_byte_fraction:.3f})"),
                describe=False,
            ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
