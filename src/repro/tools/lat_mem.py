"""``lat_mem_rd``-style CLI over the modelled machine.

Mirrors the lmbench tool the paper uses for Figure 2::

    python -m repro.tools.lat_mem --max-size 8G --page 64K
    python -m repro.tools.lat_mem --size 32M --trace   # trace-driven point
    python -m repro.tools.lat_mem --size 32M --trace --stream --depth 7
    python -m repro.tools.lat_mem --size 32M --analytic --stream --depth 7

Prints ``size_bytes latency_ns`` pairs, one per line, like the original.
The default (no ``--trace``) path asks the
:class:`~repro.perfmodel.oracle.AnalyticOracle` — the same engine the
experiment registry renders Figure 2 through — and ``--analytic``
extends it to the oracle's O(1) twin of any ``--trace`` mode.
"""

from __future__ import annotations

import argparse
import sys

from ..arch import e870
from ..arch.power8 import PAGE_16M, PAGE_64K
from ..bench.latency import default_working_sets, traced_latency_ns
from ..perfmodel.oracle import AnalyticOracle

_UNITS = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_size(text: str) -> int:
    """Parse ``64K`` / ``16M`` / ``8G`` size strings."""
    text = text.strip().upper().rstrip("B")
    unit = text[-1] if text and text[-1] in _UNITS else ""
    number = text[: len(text) - len(unit)]
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}") from None
    result = int(value * _UNITS[unit])
    if result <= 0:
        raise argparse.ArgumentTypeError(f"size must be positive, got {text!r}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lat_mem",
        description="Memory-read latency vs working set on the modelled E870.",
    )
    parser.add_argument("--min-size", type=parse_size, default=16 << 10)
    parser.add_argument("--max-size", type=parse_size, default=8 << 30)
    parser.add_argument("--size", type=parse_size, default=None,
                        help="measure a single working set instead of a sweep")
    parser.add_argument("--page", type=parse_size, default=PAGE_64K,
                        help="page size (64K or 16M, like the paper's two curves)")
    parser.add_argument("--trace", action="store_true",
                        help="use the trace-driven simulator (batch engine; "
                             "practical up to ~256M working sets)")
    parser.add_argument("--analytic", action="store_true",
                        help="ask the analytic oracle explicitly; with "
                             "--stream, predicts the sequential-sweep twin "
                             "of --trace --stream in O(1)")
    parser.add_argument("--stream", action="store_true",
                        help="with --trace: sequential sweep instead of the "
                             "random pointer chase (the batch engine's bulk "
                             "streaming regime)")
    parser.add_argument("--depth", type=int, default=0,
                        help="with --stream: DSCR prefetch depth 1-7 "
                             "(default: 0 = hardware prefetch off, like the "
                             "chase)")
    parser.add_argument("--counters", action="store_true",
                        help="with --trace: also print the PMU counter report "
                             "for the measured passes")
    parser.add_argument("--inject", metavar="SPEC", default=None,
                        help="with --trace: inject faults, e.g. "
                             "'dram_bit:rate=1e-3;ecc:chipkill' "
                             "(see repro.ras for the grammar)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (default: 0)")
    parser.add_argument("--shards", type=int, default=1,
                        help="with --trace: line-interleave the chase over N "
                             "shards (repro.parallel; default: 1 = unsharded)")
    parser.add_argument("--workers", type=int, default=1,
                        help="with --trace and --shards: process-pool size "
                             "(default: 1 = in-process serial oracle)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache even when "
                             "$REPRO_CACHE_DIR is configured")
    args = parser.parse_args(argv)

    system = e870()
    if args.page not in (PAGE_64K, PAGE_16M):
        print(f"note: unusual page size {args.page}", file=sys.stderr)
    if args.counters and not args.trace:
        parser.error("--counters needs the trace-driven simulator; add --trace")
    if args.inject and not args.trace:
        parser.error("--inject needs the trace-driven simulator; add --trace")
    if args.shards < 1 or args.workers < 1:
        parser.error("--shards and --workers must be >= 1")
    if args.shards > 1 and not args.trace:
        parser.error("--shards needs the trace-driven simulator; add --trace")
    if args.analytic and args.trace:
        parser.error("--analytic and --trace are alternatives; pick one")
    if args.stream and not (args.trace or args.analytic):
        parser.error("--stream needs --trace or --analytic")
    if args.stream and (args.shards > 1 or args.counters):
        parser.error("--stream does not combine with --shards or --counters")
    if args.depth and not args.stream:
        parser.error("--depth applies to the --stream sweep")
    if args.analytic and args.inject:
        parser.error("--inject needs the trace-driven simulator; add --trace")

    if args.trace:
        size = args.size if args.size else args.min_size
        if size > 256 << 20:
            parser.error("--trace is only practical up to ~256M working sets")

        if args.stream:
            from ..bench.latency import traced_stream_latency_ns
            from ..ras.injector import build_injector

            injector = build_injector(args.inject, seed=args.seed)
            latency = traced_stream_latency_ns(
                system, size, page_size=args.page, depth=args.depth,
                ras=injector,
            )
            print(f"{size} {latency:.2f}")
            if injector is not None:
                from ..reporting.tables import format_counter_table

                print()
                print(format_counter_table(
                    injector.bank,
                    title=f"RAS counters (plan: {injector.plan.describe()})",
                    describe=False,
                ))
            return 0

        import os

        cache = key = None
        if not args.no_cache and os.environ.get("REPRO_CACHE_DIR"):
            from ..parallel.cache import ResultCache

            cache = ResultCache()
            key = cache.key(
                machine=system,
                workload={
                    "tool": "lat_mem",
                    "size": size,
                    "page": args.page,
                    "shards": args.shards,
                    "inject": args.inject,
                },
                seed=args.seed,
            )
            # Only the plain latency point is cacheable; counter/RAS
            # reports re-run so their tables stay complete.
            if not args.counters and not args.inject:
                payload = cache.get(key)
                if payload is not None:
                    print(f"[cache hit {size}]", file=sys.stderr)
                    print(f"{size} {payload['latency_ns']:.2f}")
                    return 0

        if args.shards > 1:
            from ..parallel import sharded_traced_latency

            latency, sharded = sharded_traced_latency(
                system, size, page_size=args.page, seed=args.seed,
                shards=args.shards, workers=args.workers, inject=args.inject,
            )
            print(f"{size} {latency:.2f}")
            if args.counters or args.inject:
                from ..reporting.tables import format_counter_table

                print()
                print(format_counter_table(
                    sharded.bank,
                    title=f"merged PMU counters ({size}-byte working set, "
                          f"{args.shards} shards, {len(sharded.ras_events)} "
                          f"RAS events)",
                    describe=False,
                ))
        else:
            from ..ras.injector import build_injector

            injector = build_injector(args.inject, seed=args.seed)
            if args.counters:
                from ..bench.latency import traced_latency_pmu

                latency, pmu = traced_latency_pmu(
                    system, size, page_size=args.page, ras=injector
                )
                print(f"{size} {latency:.2f}")
                print()
                print(pmu.report(title=f"PMU counters ({size}-byte working set)"))
            else:
                latency = traced_latency_ns(system, size, page_size=args.page,
                                            ras=injector)
                print(f"{size} {latency:.2f}")
            if injector is not None and not args.counters:
                from ..reporting.tables import format_counter_table

                print()
                print(format_counter_table(
                    injector.bank,
                    title=f"RAS counters (plan: {injector.plan.describe()})",
                    describe=False,
                ))
        if cache is not None and not args.counters and not args.inject:
            cache.put(key, {"latency_ns": float(latency), "size": size})
        return 0

    oracle = AnalyticOracle(system)
    if args.stream:
        size = args.size if args.size else args.min_size
        predicted = oracle.stream_sweep(size, depth=args.depth, page_size=args.page)
        print(f"{size} {predicted.mean_latency_ns:.2f}")
        print(
            f"[oracle twin: {predicted.accesses} accesses, "
            f"{predicted.dram_misses} dram misses, "
            f"{predicted.prefetch_issued} prefetches issued]",
            file=sys.stderr,
        )
        return 0
    sizes = [args.size] if args.size else default_working_sets(args.min_size, args.max_size)
    for size, latency in oracle.latency_curve(sizes, page_size=args.page):
        print(f"{size} {latency:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
