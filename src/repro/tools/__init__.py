"""Command-line tools mirroring the paper's benchmark programs.

* ``python -m repro.tools.lat_mem`` — lmbench's lat_mem_rd (Figure 2)
* ``python -m repro.tools.stream`` — the modified STREAM (Table III/Fig. 3)
* ``python -m repro.tools.roofline_tool`` — roofline bounds and diagnosis

Submodules are imported lazily so ``python -m repro.tools.<tool>`` does
not trigger runpy's re-import warning.
"""

__all__ = ["lat_mem", "roofline_tool", "stream"]
