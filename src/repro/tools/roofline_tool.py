"""Roofline CLI: bounds and bottleneck diagnosis from the command line.

::

    python -m repro.tools.roofline_tool --oi 0.5
    python -m repro.tools.roofline_tool --flops 1e12 --read 4e12 --write 2e12
    python -m repro.tools.roofline_tool --kernels      # the Figure 9 suite
"""

from __future__ import annotations

import argparse
import sys

from ..arch import e870
from ..perfmodel.kernel_time import KernelProfile
from ..roofline.analysis import analyze
from ..roofline.kernels import paper_kernels_with_write_case
from ..roofline.model import Roofline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.roofline_tool",
        description="Roofline bounds and kernel diagnosis on the modelled E870.",
    )
    parser.add_argument("--oi", type=float, help="operational intensity to bound")
    parser.add_argument("--write-only", action="store_true",
                        help="use the write-only roof (dashed line in Fig. 9)")
    parser.add_argument("--kernels", action="store_true",
                        help="place the paper's kernel suite")
    parser.add_argument("--flops", type=float, help="kernel flop count (analysis mode)")
    parser.add_argument("--read", type=float, default=0.0, help="bytes read")
    parser.add_argument("--write", type=float, default=0.0, help="bytes written")
    args = parser.parse_args(argv)

    system = e870()
    roof = Roofline(system)

    if args.kernels:
        for point in roof.place_all(paper_kernels_with_write_case()):
            kind = "memory" if point.memory_bound else "compute"
            print(f"{point.name:24} OI={point.operational_intensity:5.2f} "
                  f"bound={point.bound_gflops:7.0f} GFLOP/s ({kind})")
        return 0

    if args.flops is not None:
        profile = KernelProfile(
            "cli-kernel", flops=args.flops,
            bytes_read=args.read, bytes_written=args.write,
        )
        report = analyze(system, profile)
        print(f"OI                : {report.operational_intensity:.3f} flop/byte")
        print(f"bound             : {report.bound_gflops:.0f} GFLOP/s "
              f"({report.limiting_resource} bound)")
        print(f"model estimate    : {report.estimated_gflops:.0f} GFLOP/s "
              f"({100 * report.bound_fraction:.0f}% of bound)")
        if report.mix_penalty:
            print(f"mix penalty       : {report.mix_penalty:.0f} GFLOP/s")
        for rec in report.recommendations:
            print(f"  -> {rec}")
        return 0

    if args.oi is not None:
        bound = (
            roof.attainable_write_only(args.oi)
            if args.write_only
            else roof.attainable_gflops(args.oi)
        )
        print(f"{bound:.1f}")
        return 0

    print(f"peak {roof.peak_gflops:.0f} GFLOP/s, memory "
          f"{roof.memory_bandwidth / 1e9:.0f} GB/s, write-only "
          f"{roof.write_only_bandwidth / 1e9:.0f} GB/s, balance {roof.balance:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
