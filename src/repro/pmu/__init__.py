"""Emulated POWER8 performance-monitoring unit (the observability spine).

The paper's methodology (§III) derives every reported latency,
bandwidth and prefetch-accuracy figure from hardware performance
counters; this package gives the simulators the same instrument.  See
:mod:`repro.pmu.events` for the event taxonomy, :class:`PMU` for the
snapshot/diff API, and EXPERIMENTS.md ("Reading the counters") for the
mapping onto real POWER8 events.
"""

from . import events
from .counters import CounterBank
from .invariants import assert_conservation, conservation_violations
from .metrics import (
    derived_metrics,
    latency_stack,
    prefetch_accuracy,
    prefetch_coverage,
)
from .pmu import PMU, read_counters
from .report import full_report, metrics_table, stack_table

__all__ = [
    "CounterBank",
    "PMU",
    "assert_conservation",
    "conservation_violations",
    "derived_metrics",
    "events",
    "full_report",
    "latency_stack",
    "metrics_table",
    "prefetch_accuracy",
    "prefetch_coverage",
    "read_counters",
    "stack_table",
]
