"""The emulated performance-monitoring unit.

A :class:`PMU` attaches to any simulator object — the reference
:class:`~repro.mem.hierarchy.MemoryHierarchy`, the vectorized
:class:`~repro.mem.batch.BatchMemoryHierarchy`, or the multi-core
:class:`~repro.coherence.chipsim.ChipSimulator` — and materialises one
canonical :class:`~repro.pmu.counters.CounterBank` for it on demand.

Two kinds of events feed the bank:

* **live** events the modules increment as they run (store refs, dirty
  castouts to memory, prefetch-engine emissions) — cheap enough to stay
  on in production, and bulk-added on the batch engine's fast path;
* **harvested** events read from the modules' existing statistics
  objects at :meth:`PMU.read` time (cache hit/miss/eviction tallies,
  ERAT/TLB misses, DRAM row hits, directory transitions) — zero cost on
  the simulation path.

Because the harvest is a pure function of state the PR-1 equivalence
suite already proves identical across engines, the scalar and batch
engines produce identical banks — the property
``tests/property/test_pmu_equivalence.py`` fuzzes.

Usage::

    pmu = PMU(hier)
    with pmu:
        hier.access_trace(addrs)
    pmu.counters[PM_DATA_FROM_MEM]     # events inside the with-block
    pmu.derived()["prefetch_accuracy"] # cumulative derived metrics

or as a decorator::

    @pmu.measure
    def run():
        return hier.access_trace(addrs)

    result, counters = run()
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Mapping, Optional, Tuple

from . import events as ev
from .counters import CounterBank
from .invariants import assert_conservation, conservation_violations
from .metrics import derived_metrics, latency_stack

#: (level key, attribute name) pairs probed on hierarchy-like targets.
_CACHE_ATTRS: Tuple[Tuple[str, str], ...] = (
    ("L1", "l1"),
    ("L2", "l2"),
    ("L3", "l3"),
    ("L3R", "l3_remote"),
    ("L4", "l4"),
)

_LEVEL_LAT_ATTRS: Tuple[Tuple[str, str], ...] = (
    ("L1", "_lat_l1"),
    ("L2", "_lat_l2"),
    ("L3", "_lat_l3"),
    ("L3R", "_lat_l3r"),
    ("L4", "_lat_l4"),
    ("C2C", "_lat_c2c"),
)


def read_counters(target) -> CounterBank:
    """Materialise the canonical counter bank for a simulator object.

    Duck-typed: any attribute a target lacks (no TLB on the chip
    simulator, no directory on the single-core hierarchies) is simply
    skipped, so one harvester serves every engine.
    """
    bank = CounterBank()
    live = getattr(target, "bank", None)
    if isinstance(live, Mapping):
        bank.add_events(live)

    stats = getattr(target, "stats", None)
    refs = int(getattr(stats, "accesses", 0) or 0)
    bank.inc(ev.PM_MEM_REF, refs)
    level_hits = getattr(stats, "level_hits", None)
    if level_hits:
        for level, hits in level_hits.items():
            bank.inc(ev.DATA_FROM_EVENTS[level], hits)
    bank.inc(ev.PM_PREF_ISSUED, getattr(stats, "prefetch_issued", 0))
    bank.inc(ev.PM_PREF_USEFUL, getattr(stats, "prefetch_useful", 0))

    for level, attr in _CACHE_ATTRS:
        cache = getattr(target, attr, None)
        if cache is None:
            continue
        for one in cache if isinstance(cache, list) else (cache,):
            bank.add_events(one.stats.pmu_events(level))

    tlb = getattr(target, "tlb", None)
    if tlb is not None:
        bank.add_events(tlb.stats.pmu_events())
    dram = getattr(target, "dram", None)
    if dram is not None:
        bank.add_events(dram.stats.pmu_events())
    prefetcher = getattr(target, "prefetcher", None)
    pf_bank = getattr(prefetcher, "bank", None)
    if isinstance(pf_bank, Mapping):
        bank.add_events(pf_bank)
    ras = getattr(target, "ras", None)
    ras_events = getattr(ras, "pmu_events", None)
    if callable(ras_events):
        bank.add_events(ras_events())
    directory = getattr(target, "directory", None)
    if directory is not None:
        bank.add_events(directory.pmu_events())

    # Derived count events (linear in the above, so diffs stay exact).
    if getattr(target, "_counters", False):
        bank.inc(ev.PM_LD_REF, refs - bank.get(ev.PM_ST_REF, 0))
    bank.inc(ev.PM_LD_MISS_L1, refs - bank.get(ev.PM_DATA_FROM_L1, 0))
    line_size = int(getattr(target, "line_size", 0) or 0)
    if line_size:
        bank.inc(ev.PM_MEM_READ_BYTES, bank.get(ev.PM_DRAM_READ, 0) * line_size)
        # Write traffic leaves the chip as dirty castouts (single-core
        # hierarchies) or protocol write-backs (the coherent chip).
        writes_out = (
            bank.get(ev.PM_MEM_CO, 0)
            if directory is None
            else bank.get(ev.PM_COH_WB, 0)
        )
        bank.inc(ev.PM_MEM_WRITE_BYTES, writes_out * line_size)
    return bank


class PMU:
    """Snapshot/diff view over a simulator's performance counters."""

    def __init__(self, target) -> None:
        self.target = target
        self._base = CounterBank()
        self._base_latency_ns = 0.0
        #: Events accumulated during the most recent ``with`` block.
        self.counters = CounterBank()

    # -- raw counter access ----------------------------------------------
    def read(self) -> CounterBank:
        """The cumulative counter bank (live + harvested events)."""
        return read_counters(self.target)

    def snapshot(self) -> CounterBank:
        """Record the current counts as the diff baseline."""
        self._base = self.read()
        self._base_latency_ns = self._total_latency_ns()
        return self._base

    def __enter__(self) -> "PMU":
        self.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.counters = self.read() - self._base
        return False

    def measure(self, func: Callable) -> Callable:
        """Decorator: run ``func`` under the PMU, return (result, counters)."""

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with self:
                result = func(*args, **kwargs)
            return result, self.counters

        return wrapper

    # -- derived metrics --------------------------------------------------
    def _total_latency_ns(self) -> float:
        return float(getattr(getattr(self.target, "stats", None),
                             "total_latency_ns", 0.0) or 0.0)

    def _level_latencies_ns(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for level, attr in _LEVEL_LAT_ATTRS:
            value = getattr(self.target, attr, None)
            if value is not None:
                out[level] = float(value)
        return out

    def derived(self, bank: Optional[CounterBank] = None) -> Dict[str, float]:
        """Derived metrics; cumulative unless a (diffed) bank is given."""
        if bank is None:
            bank = self.read()
            total = self._total_latency_ns()
        else:
            # A diffed bank pairs with the latency accumulated since the
            # snapshot that produced it.
            total = self._total_latency_ns() - self._base_latency_ns
        metrics = derived_metrics(bank, total_latency_ns=total)
        # Degraded-mode metrics from an attached RAS fault injector:
        # added recovery latency and effective-vs-nominal link bandwidth.
        ras = getattr(self.target, "ras", None)
        ras_metrics = getattr(ras, "derived_metrics", None)
        if callable(ras_metrics):
            metrics.update(ras_metrics())
        return metrics

    def stack(self, bank: Optional[CounterBank] = None) -> Dict[str, float]:
        """Latency attribution per servicing level (CPI-stack analogue)."""
        if bank is None:
            bank = self.read()
            total = self._total_latency_ns()
        else:
            total = self._total_latency_ns() - self._base_latency_ns
        return latency_stack(bank, self._level_latencies_ns(), total)

    # -- conservation ------------------------------------------------------
    def violations(self) -> list:
        return conservation_violations(self.read())

    def assert_conserved(self) -> None:
        assert_conservation(self.read())

    # -- export ------------------------------------------------------------
    def to_json(self) -> str:
        import json

        return json.dumps(
            {"counters": self.read().nonzero(), "derived": self.derived()},
            indent=2,
        )

    def to_csv(self) -> str:
        return self.read().to_csv()

    def report(self, title: str = "PMU counters") -> str:
        from .report import full_report

        return full_report(self, title=title)
