"""Human-readable counter reports (the ``--counters`` CLI output).

Rendering goes through :mod:`repro.reporting.tables` so PMU reports
look like every other reproduced table in the harness.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..reporting.tables import format_counter_table, format_table


def metrics_table(metrics: Mapping[str, float], title: str = "derived metrics") -> str:
    """Render a derived-metrics mapping as a two-column table."""
    rows = []
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
            rows.append((key, int(value)))
        else:
            rows.append((key, value))
    return format_table(["metric", "value"], rows, title=title, float_format="{:.6g}")


def stack_table(stack: Dict[str, float], title: str = "latency stack (ns)") -> str:
    total = sum(stack.values())
    rows = [
        (level, ns, (ns / total if total else 0.0))
        for level, ns in stack.items()
    ]
    return format_table([ "level", "total_ns", "fraction"], rows, title=title,
                        float_format="{:.4g}")


def full_report(pmu, title: str = "PMU counters") -> str:
    """Counter table + derived metrics + latency stack for one PMU."""
    parts = [
        format_counter_table(pmu.read(), title=title),
        "",
        metrics_table(pmu.derived()),
    ]
    stack = pmu.stack()
    if stack:
        parts += ["", stack_table(stack)]
    return "\n".join(parts)
