"""Counter-conservation invariants.

Hardware counters are only trustworthy when they balance: every demand
access must be serviced by exactly one level, a prefetch can only be
useful if it was issued, a table walk implies an ERAT reload, and the
DRAM row counters must partition the DRAM accesses.  These checks are
the self-test behind ``python -m repro.bench --counters-selftest`` and
the Hypothesis properties in ``tests/property/test_pmu_conservation.py``.
"""

from __future__ import annotations

from typing import List, Mapping

from . import events as ev


def conservation_violations(bank: Mapping[str, int]) -> List[str]:
    """All violated invariants for ``bank`` (empty list == conserved).

    Only invariants whose counters are present are checked, so the same
    function serves the single-core hierarchies (no coherence events)
    and the chip simulator (no TLB).
    """
    violations: List[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    refs = bank.get(ev.PM_MEM_REF, 0)
    services = sum(bank.get(e, 0) for e in ev.DATA_FROM_EVENTS.values())
    check(
        refs == services,
        f"accesses ({refs}) != sum of per-level services ({services})",
    )
    if ev.PM_LD_REF in bank or ev.PM_ST_REF in bank:
        loads = bank.get(ev.PM_LD_REF, 0)
        stores = bank.get(ev.PM_ST_REF, 0)
        check(loads >= 0, f"negative load count ({loads})")
        check(
            loads + stores == refs,
            f"loads ({loads}) + stores ({stores}) != accesses ({refs})",
        )
    check(
        refs - bank.get(ev.PM_DATA_FROM_L1, 0) == bank.get(ev.PM_LD_MISS_L1, 0),
        "L1 misses != accesses - L1 services",
    )

    issued = bank.get(ev.PM_PREF_ISSUED, 0)
    useful = bank.get(ev.PM_PREF_USEFUL, 0)
    check(useful <= issued, f"prefetch useful ({useful}) > issued ({issued})")

    translations = bank.get(ev.PM_MMU_TRANSLATIONS, 0)
    erat = bank.get(ev.PM_ERAT_MISS, 0)
    tlb = bank.get(ev.PM_DTLB_MISS, 0)
    check(tlb <= erat, f"TLB misses ({tlb}) > ERAT misses ({erat})")
    check(erat <= translations, f"ERAT misses ({erat}) > translations ({translations})")

    dram = bank.get(ev.PM_DRAM_READ, 0)
    row_hit = bank.get(ev.PM_DRAM_ROW_HIT, 0)
    row_miss = bank.get(ev.PM_DRAM_ROW_MISS, 0)
    check(
        row_hit + row_miss == dram,
        f"row hits ({row_hit}) + row misses ({row_miss}) != DRAM reads ({dram})",
    )
    check(
        bank.get(ev.PM_DATA_FROM_MEM, 0) <= dram,
        "demand DRAM services exceed total DRAM reads",
    )

    ras_events = (
        ev.PM_RAS_FAULT_INJECTED,
        ev.PM_MEM_ECC_CORRECTED,
        ev.PM_MEM_ECC_UE,
        ev.PM_MEM_ECC_SILENT,
        ev.PM_LINK_CRC_ERROR,
        ev.PM_LINK_REPLAY,
        ev.PM_TLB_PARITY,
        ev.PM_DRAM_BANK_RETIRED,
    )
    if any(e in bank for e in ras_events):
        injected = bank.get(ev.PM_RAS_FAULT_INJECTED, 0)
        classified = (
            bank.get(ev.PM_MEM_ECC_CORRECTED, 0)
            + bank.get(ev.PM_MEM_ECC_UE, 0)
            + bank.get(ev.PM_MEM_ECC_SILENT, 0)
            + bank.get(ev.PM_LINK_CRC_ERROR, 0)
            + bank.get(ev.PM_TLB_PARITY, 0)
            + bank.get(ev.PM_DRAM_BANK_RETIRED, 0)
        )
        check(
            injected == classified,
            f"injected faults ({injected}) != classified outcomes ({classified})",
        )
        crc = bank.get(ev.PM_LINK_CRC_ERROR, 0)
        replays = bank.get(ev.PM_LINK_REPLAY, 0)
        check(
            replays >= crc,
            f"link replays ({replays}) < CRC errors ({crc}); every error replays",
        )
        if crc == 0:
            check(replays == 0, f"link replays ({replays}) with no CRC errors")

    for level in ("L1", "L2", "L3", "L3R", "L4"):
        evictions = bank.get(ev.cache_event(level, "EVICT"), 0)
        writebacks = bank.get(ev.cache_event(level, "WB"), 0)
        check(
            writebacks <= evictions,
            f"{level} writebacks ({writebacks}) > evictions ({evictions})",
        )
    return violations


def assert_conservation(bank: Mapping[str, int]) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    violations = conservation_violations(bank)
    if violations:
        raise AssertionError(
            "counter conservation violated:\n  " + "\n  ".join(violations)
        )
