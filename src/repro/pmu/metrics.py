"""Derived metrics over a :class:`~repro.pmu.counters.CounterBank`.

Everything the paper's §III methodology derives from raw counters is
computed here, in one place: per-level hit rates, translation miss
rates, DRAM row-buffer locality, prefetch accuracy *and* coverage, the
read/write byte split over the Centaur links, and a latency stack (the
CPI-stack analogue for a memory-latency simulator).  Both the scalar
and batch engines therefore report through the same arithmetic — the
unification the prefetch cross-check tests pin down.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from . import events as ev


def _rate(numerator: int, denominator: int) -> float:
    """A safe ratio: 0.0 when the denominator is zero."""
    return numerator / denominator if denominator else 0.0


def prefetch_accuracy(bank: Mapping[str, int]) -> float:
    """Fraction of issued prefetches that a demand access consumed."""
    return _rate(bank.get(ev.PM_PREF_USEFUL, 0), bank.get(ev.PM_PREF_ISSUED, 0))


def prefetch_coverage(bank: Mapping[str, int]) -> float:
    """Fraction of would-be memory misses the prefetcher eliminated.

    Useful prefetches turned demand DRAM services into cache hits, so
    coverage is useful / (useful + demand accesses still serviced by
    DRAM).
    """
    useful = bank.get(ev.PM_PREF_USEFUL, 0)
    return _rate(useful, useful + bank.get(ev.PM_DATA_FROM_MEM, 0))


def derived_metrics(
    bank: Mapping[str, int], total_latency_ns: Optional[float] = None
) -> Dict[str, float]:
    """The standard derived-metric report for one counter bank.

    ``total_latency_ns`` (the hierarchy's accumulated serial latency)
    unlocks the time-based metrics: mean latency and the read/write
    bandwidth split.  Counts-only metrics are always present.
    """
    refs = bank.get(ev.PM_MEM_REF, 0)
    translations = bank.get(ev.PM_MMU_TRANSLATIONS, 0)
    dram_reads = bank.get(ev.PM_DRAM_READ, 0)
    out: Dict[str, float] = {
        "accesses": float(refs),
        "loads": float(bank.get(ev.PM_LD_REF, 0)),
        "stores": float(bank.get(ev.PM_ST_REF, 0)),
        "l1_hit_rate": _rate(bank.get(ev.PM_DATA_FROM_L1, 0), refs),
        "l2_hit_rate": _rate(bank.get(ev.PM_DATA_FROM_L2, 0), refs),
        "l3_hit_rate": _rate(bank.get(ev.PM_DATA_FROM_L3, 0), refs),
        "l3_remote_hit_rate": _rate(bank.get(ev.PM_DATA_FROM_L3_REMOTE, 0), refs),
        "l4_hit_rate": _rate(bank.get(ev.PM_DATA_FROM_L4, 0), refs),
        "c2c_fraction": _rate(bank.get(ev.PM_DATA_FROM_C2C, 0), refs),
        "dram_fraction": _rate(bank.get(ev.PM_DATA_FROM_MEM, 0), refs),
        "l1_miss_rate": _rate(bank.get(ev.PM_LD_MISS_L1, 0), refs),
        "erat_miss_rate": _rate(bank.get(ev.PM_ERAT_MISS, 0), translations),
        "dtlb_miss_rate": _rate(bank.get(ev.PM_DTLB_MISS, 0), translations),
        "dram_row_hit_rate": _rate(bank.get(ev.PM_DRAM_ROW_HIT, 0), dram_reads),
        "prefetch_accuracy": prefetch_accuracy(bank),
        "prefetch_coverage": prefetch_coverage(bank),
        "mem_read_bytes": float(bank.get(ev.PM_MEM_READ_BYTES, 0)),
        "mem_write_bytes": float(bank.get(ev.PM_MEM_WRITE_BYTES, 0)),
        "read_byte_fraction": _rate(
            bank.get(ev.PM_MEM_READ_BYTES, 0),
            bank.get(ev.PM_MEM_READ_BYTES, 0) + bank.get(ev.PM_MEM_WRITE_BYTES, 0),
        ),
    }
    # RAS fault counts appear only when an injector actually fired, so
    # fault-free banks (and their golden regression files) are unchanged.
    injected = bank.get(ev.PM_RAS_FAULT_INJECTED, 0)
    if injected:
        out["ras_faults_injected"] = float(injected)
        out["ras_ecc_corrected_rate"] = _rate(
            bank.get(ev.PM_MEM_ECC_CORRECTED, 0), injected
        )
        out["ras_ecc_ue_rate"] = _rate(bank.get(ev.PM_MEM_ECC_UE, 0), injected)
        out["ras_replays_per_crc_error"] = _rate(
            bank.get(ev.PM_LINK_REPLAY, 0), bank.get(ev.PM_LINK_CRC_ERROR, 0)
        )
    if total_latency_ns is not None:
        out["mean_latency_ns"] = _rate(total_latency_ns, refs)
        # bytes / ns == GB/s: the modelled serial-time bandwidth split.
        out["read_bandwidth_gbs"] = _rate(
            bank.get(ev.PM_MEM_READ_BYTES, 0), total_latency_ns
        )
        out["write_bandwidth_gbs"] = _rate(
            bank.get(ev.PM_MEM_WRITE_BYTES, 0), total_latency_ns
        )
    return out


def latency_stack(
    bank: Mapping[str, int],
    level_latencies_ns: Mapping[str, float],
    total_latency_ns: Optional[float] = None,
) -> Dict[str, float]:
    """Nanoseconds attributable to each servicing level (CPI-stack style).

    Cached levels contribute ``hits x hit-latency``; when the total is
    known, the residual (DRAM service time plus translation penalties)
    is reported under ``"MEM"``.
    """
    stack: Dict[str, float] = {}
    accounted = 0.0
    for level, lat_ns in level_latencies_ns.items():
        hits = bank.get(ev.DATA_FROM_EVENTS.get(level, ""), 0)
        contribution = hits * lat_ns
        stack[level] = contribution
        accounted += contribution
    if total_latency_ns is not None:
        stack["MEM"] = max(total_latency_ns - accounted, 0.0)
    return stack
