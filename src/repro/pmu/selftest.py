"""Counter self-test: conservation + engine agreement on a small trace.

``python -m repro.bench --counters-selftest`` runs this.  It drives one
seeded mixed read/write trace through the reference and batch engines,
checks every conservation invariant on both banks, checks the banks are
identical, and cross-checks the prefetch engine's emitted-line counter
against the hierarchy's issued counter on a sequential scan.

Imported lazily by the CLI (this module pulls in the simulators; the
rest of :mod:`repro.pmu` stays dependency-free).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..arch import e870
from ..mem.batch import BatchMemoryHierarchy
from ..mem.hierarchy import MemoryHierarchy
from ..prefetch.engine import StreamPrefetcher
from . import events as ev
from .invariants import conservation_violations
from .pmu import read_counters


def run_selftest(
    n_accesses: int = 4096, pool: int = 1 << 20, seed: int = 0
) -> Tuple[bool, List[str]]:
    """Returns (ok, report lines); ok is False on any violation."""
    chip = e870().chip
    line = chip.core.l1d.line_size
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, pool // 8, size=n_accesses) * 8).astype(np.int64)
    writes = rng.random(n_accesses) < 0.25

    lines: List[str] = []
    problems = 0

    ref = MemoryHierarchy(chip)
    bat = BatchMemoryHierarchy(chip)
    ref.access_trace(addrs, writes)
    bat.access_trace(addrs, writes)
    banks = {"reference": read_counters(ref), "batch": read_counters(bat)}
    for name, bank in banks.items():
        violations = conservation_violations(bank)
        problems += len(violations)
        status = "ok" if not violations else "; ".join(violations)
        lines.append(f"{name:9} conservation: {status}")
    if banks["reference"].nonzero() != banks["batch"].nonzero():
        problems += 1
        lines.append("engines disagree: reference and batch banks differ")
    else:
        lines.append(
            f"engines agree on {len(banks['batch'].nonzero())} non-zero counters"
        )

    # Prefetch cross-check: the engine's emitted lines must equal the
    # hierarchy's issued installs on the same sequential scan.
    pf = StreamPrefetcher(line_size=line, depth=5)
    hier = BatchMemoryHierarchy(chip, prefetcher=pf)
    hier.access_trace(np.arange(512, dtype=np.int64) * line)
    bank = read_counters(hier)
    emitted = bank[ev.PM_PREF_LINES_EMITTED]
    issued = bank[ev.PM_PREF_ISSUED]
    if emitted != issued:
        problems += 1
        lines.append(f"prefetch paths disagree: emitted {emitted} != issued {issued}")
    else:
        lines.append(f"prefetch paths agree: emitted == issued == {issued}")
    violations = conservation_violations(bank)
    problems += len(violations)
    lines.append(
        "prefetch  conservation: " + ("ok" if not violations else "; ".join(violations))
    )
    return problems == 0, lines
