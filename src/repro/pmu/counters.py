"""The counter store behind the emulated PMU.

A :class:`CounterBank` is a ``dict`` subclass mapping event name ->
integer count, chosen so the simulators' hot paths pay exactly one
C-level dict store per increment (``bank[event] += n`` — the
``__missing__`` hook makes absent events read as 0).  Banks support
snapshot/diff arithmetic and dict/JSON/CSV export; all comparisons in
the test-suite go through :meth:`nonzero` so that a harvested zero and
an absent event are the same thing.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping, Tuple


class CounterBank(dict):
    """Event-name -> count mapping with diff and export helpers."""

    def __missing__(self, key: str) -> int:
        # Reads of never-incremented events count as zero; nothing is
        # inserted, so iteration only sees touched events.
        return 0

    # -- increments ------------------------------------------------------
    def inc(self, event: str, n: int = 1) -> None:
        """Add ``n`` to ``event`` (no-op when ``n`` is zero)."""
        if n:
            self[event] = self.get(event, 0) + n

    def add_events(self, events: Mapping[str, int]) -> None:
        """Merge another event mapping into this bank (summing counts)."""
        for key, value in events.items():
            if value:
                self[key] = self.get(key, 0) + value

    @classmethod
    def merge(cls, banks: Iterable[Mapping[str, int]]) -> "CounterBank":
        """Reduce many banks into one by event-wise summation.

        This is the canonical reduction of the sharded execution layer
        (:mod:`repro.parallel`): per-shard banks are integer-valued, so
        the merge is commutative, associative and has the empty bank as
        identity — merged counters are independent of worker scheduling
        and shard completion order, and any linear conservation
        invariant that holds per shard holds for the merged bank.
        """
        out = cls()
        for bank in banks:
            out.add_events(bank)
        return out

    # -- snapshot / diff -------------------------------------------------
    def snapshot(self) -> "CounterBank":
        """An independent copy of the current counts."""
        return CounterBank(self)

    def diff(self, baseline: Mapping[str, int]) -> "CounterBank":
        """Counts accumulated since ``baseline`` (zero deltas dropped)."""
        out = CounterBank()
        for key in self.keys() | baseline.keys():
            delta = self.get(key, 0) - baseline.get(key, 0)
            if delta:
                out[key] = delta
        return out

    def __sub__(self, baseline: "CounterBank") -> "CounterBank":
        return self.diff(baseline)

    # -- export ----------------------------------------------------------
    def nonzero(self) -> Dict[str, int]:
        """Sorted plain dict of the non-zero counters (canonical form)."""
        return {k: self[k] for k in sorted(self) if self[k]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.nonzero(), indent=indent)

    def to_csv(self) -> str:
        """``event,count`` lines, sorted by event name."""
        lines = ["event,count"]
        lines.extend(f"{k},{v}" for k, v in self.nonzero().items())
        return "\n".join(lines) + "\n"

    def rows(self) -> Iterable[Tuple[str, int]]:
        """Sorted (event, count) pairs for table rendering."""
        return list(self.nonzero().items())
