"""Emulated POWER8 performance-monitoring event taxonomy.

Every observable the simulators can count is named here, once, in the
style of the POWER8 PMU event mnemonics the paper's methodology (§III)
relies on.  The names are *emulated* events: each maps onto (one or a
small set of) real POWER8 PMU events, documented in :data:`EVENTS` and
in EXPERIMENTS.md's "Reading the counters" section.  Modules increment
these through a :class:`repro.pmu.counters.CounterBank`; the
:class:`repro.pmu.PMU` harvests the rest from module statistics at
snapshot time so the hot simulation paths stay hot.

This module is dependency-free on purpose: ``repro.mem``,
``repro.coherence`` and ``repro.prefetch`` all import it, never the
other way around.
"""

from __future__ import annotations

from typing import Dict, Tuple

# -- demand reference stream -------------------------------------------------
PM_MEM_REF = "PM_MEM_REF"  # all demand references (loads + stores)
PM_LD_REF = "PM_LD_REF"  # demand loads
PM_ST_REF = "PM_ST_REF"  # demand stores
PM_LD_MISS_L1 = "PM_LD_MISS_L1"  # demand refs not serviced by the L1

# -- data-source events (which level serviced the demand) --------------------
PM_DATA_FROM_L1 = "PM_DATA_FROM_L1"
PM_DATA_FROM_L2 = "PM_DATA_FROM_L2"
PM_DATA_FROM_L3 = "PM_DATA_FROM_L3"
PM_DATA_FROM_L3_REMOTE = "PM_DATA_FROM_L3_REMOTE"  # lateral NUCA pool hit
PM_DATA_FROM_L4 = "PM_DATA_FROM_L4"  # Centaur memory-side cache
PM_DATA_FROM_MEM = "PM_DATA_FROM_MEM"  # serviced by DRAM
PM_DATA_FROM_C2C = "PM_DATA_FROM_C2C"  # cache-to-cache intervention

#: Servicing-level name (as the hierarchies report it) -> data-source event.
DATA_FROM_EVENTS: Dict[str, str] = {
    "L1": PM_DATA_FROM_L1,
    "L2": PM_DATA_FROM_L2,
    "L3": PM_DATA_FROM_L3,
    "L3R": PM_DATA_FROM_L3_REMOTE,
    "L4": PM_DATA_FROM_L4,
    "DRAM": PM_DATA_FROM_MEM,
    "C2C": PM_DATA_FROM_C2C,
}

# -- per-cache structural events ---------------------------------------------
#: Suffixes of the per-cache-level events built by :func:`cache_event`.
CACHE_EVENT_KINDS: Tuple[str, ...] = (
    "HIT", "MISS", "EVICT", "WB", "FILL", "VICTIM_IN",
)


def cache_event(level: str, kind: str) -> str:
    """Event name for one cache level, e.g. ``cache_event("L2", "WB")``.

    ``level`` is the hierarchy-level key (``L1``/``L2``/``L3``/``L3R``/
    ``L4``); ``kind`` one of :data:`CACHE_EVENT_KINDS`.
    """
    if kind not in CACHE_EVENT_KINDS:
        raise ValueError(f"unknown cache event kind {kind!r}")
    return f"PM_{level}_{kind}"


# -- address translation -----------------------------------------------------
PM_MMU_TRANSLATIONS = "PM_MMU_TRANSLATIONS"  # translations performed
PM_ERAT_MISS = "PM_ERAT_MISS"  # first-level (ERAT) misses
PM_DTLB_MISS = "PM_DTLB_MISS"  # full TLB misses (table walks)

# -- DRAM / Centaur ----------------------------------------------------------
PM_DRAM_READ = "PM_DRAM_READ"  # line reads serviced by DRAM (demand + prefetch + allocate)
PM_DRAM_ROW_HIT = "PM_DRAM_ROW_HIT"  # open-page row-buffer hits
PM_DRAM_ROW_MISS = "PM_DRAM_ROW_MISS"  # precharge + activate accesses
PM_MEM_CO = "PM_MEM_CO"  # dirty castouts leaving the chip toward memory
PM_MEM_READ_BYTES = "PM_MEM_READ_BYTES"  # Centaur read-link bytes
PM_MEM_WRITE_BYTES = "PM_MEM_WRITE_BYTES"  # Centaur write-link bytes

# -- RAS (fault injection / recovery) ----------------------------------------
PM_RAS_FAULT_INJECTED = "PM_RAS_FAULT_INJECTED"  # effective injected faults
PM_MEM_ECC_CORRECTED = "PM_MEM_ECC_CORRECTED"  # ECC corrected-in-line faults
PM_MEM_ECC_UE = "PM_MEM_ECC_UE"  # detected-uncorrectable faults
PM_MEM_ECC_SILENT = "PM_MEM_ECC_SILENT"  # faults that escaped the ECC code
PM_LINK_CRC_ERROR = "PM_LINK_CRC_ERROR"  # Centaur/DMI frames failing CRC
PM_LINK_REPLAY = "PM_LINK_REPLAY"  # link retransmissions (>= CRC errors)
PM_LINK_LANE_SPARED = "PM_LINK_LANE_SPARED"  # lanes mapped out by sparing
PM_DRAM_BANK_RETIRED = "PM_DRAM_BANK_RETIRED"  # banks taken out of the interleave
PM_TLB_PARITY = "PM_TLB_PARITY"  # translation-entry parity errors

# -- prefetch ----------------------------------------------------------------
PM_PREF_ISSUED = "PM_PREF_ISSUED"  # prefetched lines installed by the hierarchy
PM_PREF_USEFUL = "PM_PREF_USEFUL"  # prefetched lines later hit by demand
PM_PREF_STREAM_CONFIRMED = "PM_PREF_STREAM_CONFIRMED"  # engine streams confirmed
PM_PREF_LINES_EMITTED = "PM_PREF_LINES_EMITTED"  # lines the engine asked for

# -- coherence ---------------------------------------------------------------
PM_COH_READ_REQ = "PM_COH_READ_REQ"  # directory read requests
PM_COH_WRITE_REQ = "PM_COH_WRITE_REQ"  # directory write/upgrade requests
PM_COH_INTERVENTION = "PM_COH_INTERVENTION"  # M/E owner supplied or downgraded
PM_COH_INVALIDATION = "PM_COH_INVALIDATION"  # sharer copies killed
PM_COH_WB = "PM_COH_WB"  # dirty data pushed home by the protocol

#: Event name -> (description, closest real POWER8 PMU event(s)).
EVENTS: Dict[str, Tuple[str, str]] = {
    PM_MEM_REF: ("demand loads+stores issued", "PM_LD_REF_L1 + PM_ST_REF_L1"),
    PM_LD_REF: ("demand loads issued", "PM_LD_REF_L1"),
    PM_ST_REF: ("demand stores issued", "PM_ST_REF_L1"),
    PM_LD_MISS_L1: ("demand refs not serviced by L1", "PM_LD_MISS_L1"),
    PM_DATA_FROM_L1: ("demand refs serviced by the L1D", "PM_LD_REF_L1 - PM_LD_MISS_L1"),
    PM_DATA_FROM_L2: ("demand refs serviced by the L2", "PM_DATA_FROM_L2"),
    PM_DATA_FROM_L3: ("demand refs serviced by the local L3 slice", "PM_DATA_FROM_L3"),
    PM_DATA_FROM_L3_REMOTE: (
        "demand refs serviced by a peer core's L3 slice", "PM_DATA_FROM_L3.1_SHR/MOD"
    ),
    PM_DATA_FROM_L4: ("demand refs serviced by the Centaur L4", "PM_DATA_FROM_LMEM (L4 portion)"),
    PM_DATA_FROM_MEM: ("demand refs serviced by DRAM", "PM_DATA_FROM_LMEM"),
    PM_DATA_FROM_C2C: (
        "demand refs supplied by another core's cache", "PM_DATA_FROM_L2.1_SHR/MOD"
    ),
    PM_MMU_TRANSLATIONS: ("address translations performed", "PM_LSU_DERAT + ERAT lookups"),
    PM_ERAT_MISS: ("first-level ERAT reloads", "PM_LSU_DERAT_MISS"),
    PM_DTLB_MISS: ("TLB misses (table walks)", "PM_DTLB_MISS"),
    PM_DRAM_READ: ("cache-line reads serviced by DRAM", "Centaur-side read counts"),
    PM_DRAM_ROW_HIT: ("DRAM open-page row hits", "Centaur/MCS row-hit counters"),
    PM_DRAM_ROW_MISS: ("DRAM precharge+activate accesses", "Centaur/MCS row-miss counters"),
    PM_MEM_CO: ("dirty castouts leaving the chip", "PM_L3_CO_MEM"),
    PM_MEM_READ_BYTES: ("bytes moved over the Centaur read lanes", "MCS read-link byte counters"),
    PM_MEM_WRITE_BYTES: ("bytes moved over the Centaur write lane", "MCS write-link byte counters"),
    PM_RAS_FAULT_INJECTED: (
        "faults injected by the RAS emulation layer", "(injection oracle; no HW event)"
    ),
    PM_MEM_ECC_CORRECTED: ("DRAM faults corrected in-line by ECC", "MEM_ECC_CE / MCS CE counters"),
    PM_MEM_ECC_UE: ("detected-uncorrectable DRAM faults", "MEM_ECC_UE / machine-check UE"),
    PM_MEM_ECC_SILENT: (
        "faults that escaped the ECC code", "(oracle only; silent by definition)"
    ),
    PM_LINK_CRC_ERROR: ("Centaur link frames failing CRC", "DMI CRC-error FIRs"),
    PM_LINK_REPLAY: ("link frame retransmissions", "DMI retry/replay counters"),
    PM_LINK_LANE_SPARED: ("link lanes mapped out by sparing", "DMI lane-spare FIRs"),
    PM_DRAM_BANK_RETIRED: ("DRAM banks retired after whole-bank faults", "Centaur bank-sparing FIRs"),
    PM_TLB_PARITY: ("translation-entry parity errors", "SLB/TLB parity machine checks"),
    PM_PREF_ISSUED: ("prefetched lines installed", "PM_L1_PREF / PM_L3_PREF"),
    PM_PREF_USEFUL: ("prefetched lines consumed by demand", "PM_LD_HIT_PREF"),
    PM_PREF_STREAM_CONFIRMED: ("prefetch streams confirmed/declared", "PM_STREAM_CONFIRMED"),
    PM_PREF_LINES_EMITTED: ("lines the stream engine requested", "PM_L3_PREF_ALL"),
    PM_COH_READ_REQ: ("coherence read requests", "directory read ops"),
    PM_COH_WRITE_REQ: ("coherence write/upgrade requests", "directory RWITM ops"),
    PM_COH_INTERVENTION: ("owner interventions (M/E supplier)", "PM_DATA_FROM_*_SHR/MOD"),
    PM_COH_INVALIDATION: ("sharer copies invalidated", "snoop invalidations"),
    PM_COH_WB: ("protocol write-backs toward memory", "PM_SN_WR / castout WBs"),
}

for _level in ("L1", "L2", "L3", "L3R", "L4"):
    for _kind, _desc in (
        ("HIT", "lookup hits"),
        ("MISS", "lookup misses"),
        ("EVICT", "capacity/conflict evictions"),
        ("WB", "dirty-line write-backs on eviction"),
        ("FILL", "line installs"),
        ("VICTIM_IN", "lateral victim installs"),
    ):
        EVENTS[cache_event(_level, _kind)] = (
            f"{_level} {_desc}", f"{_level}-side cache counters"
        )
del _level, _kind, _desc
