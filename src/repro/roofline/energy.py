"""Energy roofline extension (the paper cites Choi et al. [9]).

The performance roofline of §IV has an energy sibling: an algorithm at
operational intensity ``I`` spends ``e_flop`` joules per flop and
``e_byte`` joules per DRAM byte, so its energy per flop is

    E(I) = e_flop + e_byte / I

and its *energy balance point* ``B_e = e_byte / e_flop`` plays the role
of the ridge: below it the memory system dominates the energy bill.
The constants default to published POWER8-era estimates; they are
parameters, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..arch.specs import SystemSpec
from .model import Roofline

#: Energy per double-precision flop (pJ), POWER8-class core estimate.
DEFAULT_PJ_PER_FLOP = 40.0

#: Energy per byte moved from DRAM through Centaur (pJ).
DEFAULT_PJ_PER_BYTE = 220.0

#: Constant (leakage + uncore) power in watts for the 8-socket E870 class.
DEFAULT_CONSTANT_POWER_W = 1500.0


@dataclass(frozen=True)
class EnergyRoofline:
    """Energy counterpart of :class:`repro.roofline.model.Roofline`."""

    system: SystemSpec
    pj_per_flop: float = None
    pj_per_byte: float = None
    constant_power_w: float = None

    def __post_init__(self) -> None:
        # None means "use the system's PowerSpec" (a frozen dataclass,
        # so the resolved values are pinned with object.__setattr__).
        power = self.system.power
        if self.pj_per_flop is None:
            object.__setattr__(self, "pj_per_flop", power.pj_per_flop)
        if self.pj_per_byte is None:
            object.__setattr__(self, "pj_per_byte", power.pj_per_byte)
        if self.constant_power_w is None:
            object.__setattr__(self, "constant_power_w", power.constant_power_w)
        if self.pj_per_flop <= 0 or self.pj_per_byte <= 0:
            raise ValueError("energy coefficients must be positive")

    @property
    def energy_balance(self) -> float:
        """OI at which flop energy equals byte energy (pJ ratio)."""
        return self.pj_per_byte / self.pj_per_flop

    def energy_per_flop_pj(self, oi: float) -> float:
        """Dynamic energy per flop at operational intensity ``oi``."""
        if oi <= 0:
            raise ValueError(f"operational intensity must be positive, got {oi}")
        return self.pj_per_flop + self.pj_per_byte / oi

    def gflops_per_watt(self, oi: float, include_constant: bool = True) -> float:
        """Attainable energy efficiency at ``oi`` (GFLOP/s per watt).

        Combines the *performance* roofline (how fast the machine can
        go) with the energy cost per flop and, optionally, the constant
        power amortised over that throughput.
        """
        perf = Roofline(self.system).attainable_gflops(oi) * 1e9  # flop/s
        dynamic_w = perf * self.energy_per_flop_pj(oi) * 1e-12
        total_w = dynamic_w + (self.constant_power_w if include_constant else 0.0)
        return perf / total_w / 1e9

    def series(
        self, oi_min: float = 1.0 / 64, oi_max: float = 64.0, points: int = 65
    ) -> List[dict]:
        import numpy as np

        ois = np.logspace(np.log2(oi_min), np.log2(oi_max), points, base=2.0)
        return [
            {
                "oi": float(oi),
                "pj_per_flop": self.energy_per_flop_pj(float(oi)),
                "gflops_per_watt": self.gflops_per_watt(float(oi)),
            }
            for oi in ois
        ]

    def place_all(self, kernels: Iterable) -> List[dict]:
        """Energy placement for a kernel catalogue (see roofline.kernels)."""
        return [
            {
                "name": k.name,
                "oi": k.operational_intensity,
                "pj_per_flop": self.energy_per_flop_pj(k.operational_intensity),
                "gflops_per_watt": self.gflops_per_watt(k.operational_intensity),
                "memory_energy_dominated": k.operational_intensity < self.energy_balance,
            }
            for k in kernels
        ]
