"""Kernel bottleneck analysis on the POWER8 roofline.

Beyond drawing Figure 9, a roofline is a diagnosis tool: given a
kernel's operation counts this module reports which resource bounds it,
how close the machine-model estimate comes to that bound, and — the
POWER8-specific part — whether rebalancing its read:write mix toward
the 2:1 link optimum would raise the roof (§IV's dashed-line
discussion turned into an advisor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arch.specs import SystemSpec
from ..mem.centaur import link_bound, optimal_read_fraction
from ..perfmodel.kernel_time import KernelProfile, MachineModel
from .model import Roofline


@dataclass(frozen=True)
class BottleneckReport:
    kernel: str
    operational_intensity: float
    bound_gflops: float  # roofline bound at the kernel's own mix
    estimated_gflops: float  # machine-model estimate
    bound_fraction: float  # estimate / bound
    limiting_resource: str  # "memory" | "compute"
    read_byte_fraction: float
    mix_penalty: float  # roof lost to a sub-optimal read:write mix
    recommendations: List[str]


def analyze(system: SystemSpec, kernel: KernelProfile) -> BottleneckReport:
    """Full bottleneck diagnosis of one kernel on one machine."""
    roof = Roofline(system)
    model = MachineModel(system)
    oi = kernel.operational_intensity
    f = kernel.read_byte_fraction
    # Roof at this kernel's actual traffic mix.
    mix_bw = system.num_chips * link_bound(system.chip, f)
    bound = min(roof.peak_gflops, oi * mix_bw / 1e9) if oi != float("inf") else roof.peak_gflops
    optimal_bw = system.num_chips * link_bound(
        system.chip, optimal_read_fraction(system.chip)
    )
    optimal_bound = (
        min(roof.peak_gflops, oi * optimal_bw / 1e9)
        if oi != float("inf")
        else roof.peak_gflops
    )
    mix_penalty = max(0.0, optimal_bound - bound)
    estimated = model.gflops(kernel)
    limiting = "memory" if bound < roof.peak_gflops else "compute"

    recommendations: List[str] = []
    if limiting == "memory":
        if mix_penalty > 0.05 * bound:
            recommendations.append(
                f"rebalance traffic toward 2:1 read:write (currently "
                f"{f:.2f} read fraction): roof rises by "
                f"{mix_penalty:.0f} GFLOP/s"
            )
        if kernel.pattern == "random":
            recommendations.append(
                "random access caps at ~41% of read bandwidth; raise SMT "
                "level or concurrent streams toward 8 threads x 4 lists "
                "per core (Figure 4)"
            )
        if kernel.pattern == "blocked" and (kernel.block_bytes or 0) < 4096:
            recommendations.append(
                "blocks are shorter than the prefetch ramp; declare "
                "streams with DCBT (Figure 8) or enlarge blocks"
            )
        if oi < roof.balance / 4:
            recommendations.append(
                "operational intensity is far below the 1.2 balance "
                "point; blocking for the 8 MB/core L3 may raise OI"
            )
    else:
        recommendations.append(
            "compute bound: ensure >= 12 independent FMAs in flight per "
            "core and <= 128 live VSX registers (Figure 5)"
        )
    return BottleneckReport(
        kernel=kernel.name,
        operational_intensity=oi,
        bound_gflops=bound,
        estimated_gflops=estimated,
        bound_fraction=estimated / bound if bound else 0.0,
        limiting_resource=limiting,
        read_byte_fraction=f,
        mix_penalty=mix_penalty,
        recommendations=recommendations,
    )
