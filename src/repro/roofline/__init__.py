"""Roofline analysis of the E870 (Figure 9), with the asymmetric write roof."""

from .kernels import (
    FFT3D,
    LBMHD,
    LBMHD_WRITE_ONLY,
    SPMV,
    STENCIL,
    KernelCharacteristics,
    paper_kernels,
    paper_kernels_with_write_case,
)
from .analysis import BottleneckReport, analyze
from .energy import EnergyRoofline
from .model import Roofline, RooflinePoint

__all__ = [
    "BottleneckReport",
    "EnergyRoofline",
    "analyze",
    "FFT3D",
    "LBMHD",
    "LBMHD_WRITE_ONLY",
    "SPMV",
    "STENCIL",
    "KernelCharacteristics",
    "Roofline",
    "RooflinePoint",
    "paper_kernels",
    "paper_kernels_with_write_case",
]
