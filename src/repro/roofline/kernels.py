"""The scientific-kernel catalogue placed on the Figure 9 roofline.

Operational intensities follow the classic roofline literature the
paper cites (Williams et al.): SpMV ~1/6, 7-point stencil ~1/2, LBMHD
~1, 3D FFT ~1.5.  Each entry also records its typical read:write byte
mix so the asymmetric-roof analysis (the red square vs red diamond for
LBMHD in the paper) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class KernelCharacteristics:
    name: str
    operational_intensity: float  # FLOPs per byte of DRAM traffic
    read_ratio: float
    write_ratio: float
    description: str
    write_dominated: bool = False

    def __post_init__(self) -> None:
        if self.operational_intensity <= 0:
            raise ValueError(f"{self.name}: OI must be positive")
        if self.read_ratio < 0 or self.write_ratio < 0:
            raise ValueError(f"{self.name}: ratios cannot be negative")


SPMV = KernelCharacteristics(
    "SpMV",
    operational_intensity=1.0 / 6.0,
    read_ratio=10.0,
    write_ratio=1.0,
    description="sparse matrix-vector multiply, CSR double precision",
)

STENCIL = KernelCharacteristics(
    "Stencil",
    operational_intensity=0.5,
    read_ratio=2.0,
    write_ratio=1.0,
    description="3D 7-point stencil sweep",
)

LBMHD = KernelCharacteristics(
    "LBMHD",
    operational_intensity=1.0,
    read_ratio=1.0,
    write_ratio=1.0,
    description="Lattice-Boltzmann magnetohydrodynamics time step",
)

LBMHD_WRITE_ONLY = KernelCharacteristics(
    "LBMHD (write-only mix)",
    operational_intensity=1.0,
    read_ratio=0.0,
    write_ratio=1.0,
    description="LBMHD bounded by the write-only roof (red square in Fig. 9)",
    write_dominated=True,
)

FFT3D = KernelCharacteristics(
    "3D FFT",
    operational_intensity=1.5,
    read_ratio=1.0,
    write_ratio=1.0,
    description="large 3D fast Fourier transform",
)


def paper_kernels() -> List[KernelCharacteristics]:
    """The four kernels Figure 9 places on the roofline."""
    return [SPMV, STENCIL, LBMHD, FFT3D]


def paper_kernels_with_write_case() -> List[KernelCharacteristics]:
    """Figure 9's full set, including the LBMHD write-only variant."""
    return [SPMV, STENCIL, LBMHD, LBMHD_WRITE_ONLY, FFT3D]
