"""The roofline model of §IV, including POWER8's asymmetric write roof.

The roofline bounds attainable performance at operational intensity
``I`` (FLOPs per byte of DRAM traffic) by ``min(P_peak, I x B)``.
POWER8's Centaur links make ``B`` depend on the traffic mix: the
standard roof uses the optimal 2:1 read:write bandwidth, while a
write-dominated kernel is bounded by the write-only roof at less than
half that (614 GB/s vs 1,843 GB/s on the E870) — the dashed line in
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from ..arch.specs import SystemSpec
from ..mem.centaur import link_bound, read_fraction


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    operational_intensity: float
    bound_gflops: float
    memory_bound: bool


class Roofline:
    """System roofline built from a machine description."""

    def __init__(self, system: SystemSpec) -> None:
        self.system = system
        self.peak_gflops = system.peak_gflops
        # The paper's Figure 9 uses the theoretical link bounds (not the
        # measured STREAM values): 1,843 GB/s at 2:1, 614 GB/s write-only.
        self.memory_bandwidth = system.peak_memory_bandwidth
        self.write_only_bandwidth = system.peak_write_bandwidth

    @property
    def balance(self) -> float:
        """Operational intensity of the ridge point (1.2 on the E870)."""
        return self.peak_gflops * 1e9 / self.memory_bandwidth

    def bandwidth_for_mix(self, read_ratio: float, write_ratio: float) -> float:
        """Roof bandwidth for an arbitrary read:write traffic mix."""
        f = read_fraction(read_ratio, write_ratio)
        return self.system.num_chips * link_bound(self.system.chip, f)

    # -- bounds --------------------------------------------------------------
    def attainable_gflops(self, oi: float, bandwidth: float | None = None) -> float:
        """Attainable GFLOP/s at operational intensity ``oi``."""
        if oi <= 0:
            raise ValueError(f"operational intensity must be positive, got {oi}")
        bw = self.memory_bandwidth if bandwidth is None else bandwidth
        return min(self.peak_gflops, oi * bw / 1e9)

    def attainable_write_only(self, oi: float) -> float:
        """The dashed write-only roof of Figure 9."""
        return self.attainable_gflops(oi, self.write_only_bandwidth)

    def is_memory_bound(self, oi: float) -> bool:
        return oi < self.balance

    def place(self, name: str, oi: float, write_only: bool = False) -> RooflinePoint:
        bound = (
            self.attainable_write_only(oi) if write_only else self.attainable_gflops(oi)
        )
        return RooflinePoint(name, oi, bound, self.is_memory_bound(oi))

    # -- series for plotting / reporting ----------------------------------------
    def series(
        self,
        oi_min: float = 1.0 / 64,
        oi_max: float = 64.0,
        points: int = 129,
    ) -> List[dict]:
        """Log-spaced (OI, roof, write-only roof) samples of Figure 9."""
        ois = np.logspace(np.log2(oi_min), np.log2(oi_max), points, base=2.0)
        return [
            {
                "oi": float(oi),
                "roof_gflops": self.attainable_gflops(float(oi)),
                "write_roof_gflops": self.attainable_write_only(float(oi)),
            }
            for oi in ois
        ]

    def place_all(self, kernels: Iterable) -> List[RooflinePoint]:
        """Place a catalogue of kernels (see :mod:`repro.roofline.kernels`)."""
        return [
            self.place(k.name, k.operational_intensity, write_only=k.write_dominated)
            for k in kernels
        ]
