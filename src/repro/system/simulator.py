"""Full-SMP trace-driven simulator: chips + NUMA placement + fabric.

Composes one :class:`repro.coherence.chipsim.ChipSimulator` per socket
with the NUMA allocation registry and the interconnect latency model.
A thread's access first walks its own chip's cache hierarchy; when the
data's *home* is another chip, the off-chip portion of the miss (the
L4/DRAM service) additionally pays the SMP hop — operationally
reproducing the Table IV latency structure that the analytic
:class:`repro.interconnect.latency.LatencyModel` predicts in closed
form (cross-checked in ``tests/system/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.specs import SystemSpec
from ..coherence.chipsim import ChipSimulator
from ..interconnect.latency import LatencyModel
from ..interconnect.topology import SMPTopology
from ..numa.affinity import AffinityMap
from ..numa.policy import Allocation


@dataclass
class SMPStats:
    accesses: int = 0
    remote_accesses: int = 0
    total_latency_ns: float = 0.0
    per_chip_accesses: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.accesses if self.accesses else 0.0

    @property
    def remote_fraction(self) -> float:
        return self.remote_accesses / self.accesses if self.accesses else 0.0


class SMPSimulator:
    """Trace-driven simulation of the whole multi-socket machine."""

    #: Cache levels whose service leaves the requesting chip: these pay
    #: the SMP hop when the line's home is remote.
    OFF_CHIP_LEVELS = ("L4", "DRAM")

    def __init__(self, system: SystemSpec, affinity: AffinityMap) -> None:
        if affinity.system is not system:
            # Allow equal specs built separately.
            if affinity.system != system:
                raise ValueError("affinity map was built for a different system")
        self.system = system
        self.affinity = affinity
        self.chips: List[ChipSimulator] = [
            ChipSimulator(system.chip) for _ in range(system.num_chips)
        ]
        self._latency = LatencyModel(SMPTopology(system))
        self._allocations: List[Allocation] = []
        self.stats = SMPStats()

    # -- memory management ----------------------------------------------------
    def register(self, allocation: Allocation) -> Allocation:
        """Register a placed allocation; overlapping bases are rejected."""
        for existing in self._allocations:
            if (
                allocation.base < existing.base + existing.nbytes
                and existing.base < allocation.base + allocation.nbytes
            ):
                raise ValueError(
                    f"{allocation.name} overlaps {existing.name} "
                    f"([{existing.base:#x}, {existing.base + existing.nbytes:#x}))"
                )
        self._allocations.append(allocation)
        return allocation

    def home_of(self, addr: int) -> Optional[int]:
        for alloc in self._allocations:
            if alloc.base <= addr < alloc.base + alloc.nbytes:
                return alloc.home_of(addr)
        return None

    # -- accesses ---------------------------------------------------------------
    def access(self, thread: int, addr: int, is_write: bool = False) -> float:
        """One access by logical ``thread``; returns latency in ns."""
        hw = self.affinity.mapping[thread]
        home = self.home_of(addr)
        if home is None:
            raise KeyError(f"address {addr:#x} is not in any registered allocation")
        chip_sim = self.chips[hw.chip]
        latency, level = chip_sim.access_ex(hw.core, addr, is_write)
        remote = home != hw.chip
        if remote and level in self.OFF_CHIP_LEVELS:
            # The line was served by the home chip's memory: add the
            # fabric hop (the difference between the remote and local
            # unloaded latencies from the analytic model).
            hop = self._latency.pair_latency_ns(hw.chip, home) - self._latency.local_latency_ns()
            latency += hop
        self.stats.accesses += 1
        self.stats.total_latency_ns += latency
        self.stats.remote_accesses += int(remote)
        self.stats.per_chip_accesses[hw.chip] = (
            self.stats.per_chip_accesses.get(hw.chip, 0) + 1
        )
        return latency

    def read(self, thread: int, addr: int) -> float:
        return self.access(thread, addr, is_write=False)

    def write(self, thread: int, addr: int) -> float:
        return self.access(thread, addr, is_write=True)

    # -- convenience --------------------------------------------------------------
    def run_trace(self, trace, thread: int = 0, is_write: bool = False) -> float:
        """Replay an address iterable; returns the mean latency in ns."""
        total = count = 0
        for addr in trace:
            total += self.access(thread, addr, is_write)
            count += 1
        if count == 0:
            raise ValueError("empty trace")
        return total / count
