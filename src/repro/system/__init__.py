"""Full-machine trace simulation: chips + coherence + NUMA + fabric."""

from .simulator import SMPSimulator, SMPStats

__all__ = ["SMPSimulator", "SMPStats"]
