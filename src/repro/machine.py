"""High-level facade over the POWER8 machine models.

:class:`P8Machine` bundles a system description with the calibrated
latency, bandwidth, interconnect and roofline models behind one
object — the entry point most library users need:

>>> from repro import P8Machine
>>> m = P8Machine.e870()
>>> round(m.spec.balance, 1)
1.2
>>> m.stream_bandwidth(read_ratio=2, write_ratio=1) > m.stream_bandwidth(1, 1)
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from .arch import e870 as _e870
from .arch import power8_192way as _power8_192way
from .arch.specs import SystemSpec
from .interconnect.bandwidth import BandwidthModel
from .interconnect.latency import LatencyModel
from .interconnect.topology import SMPTopology
from .mem.analytic import AnalyticHierarchy
from .mem.centaur import MemoryLinkModel, read_fraction
from .perfmodel.kernel_time import KernelProfile, MachineModel
from .perfmodel.littles_law import RandomAccessModel
from .perfmodel.stream_model import chip_stream_bandwidth, system_stream_bandwidth
from .roofline.model import Roofline


@dataclass
class P8Machine:
    """One POWER8 SMP system plus every calibrated model over it."""

    spec: SystemSpec

    # -- constructors -------------------------------------------------------
    @classmethod
    def e870(cls, num_chips: int = 8) -> "P8Machine":
        """The paper's 8-socket IBM Power System E870."""
        return cls(_e870(num_chips))

    @classmethod
    def largest_smp(cls) -> "P8Machine":
        """The 192-way, 16-socket POWER8 SMP from the introduction."""
        return cls(_power8_192way())

    # -- composed models -------------------------------------------------------
    @cached_property
    def topology(self) -> SMPTopology:
        return SMPTopology(self.spec)

    @cached_property
    def latency(self) -> LatencyModel:
        return LatencyModel(self.topology)

    @cached_property
    def bandwidth(self) -> BandwidthModel:
        return BandwidthModel(self.topology)

    @cached_property
    def links(self) -> MemoryLinkModel:
        return MemoryLinkModel(self.spec.chip)

    @cached_property
    def random_access(self) -> RandomAccessModel:
        return RandomAccessModel(self.spec)

    @cached_property
    def roofline(self) -> Roofline:
        return Roofline(self.spec)

    @cached_property
    def kernel_model(self) -> MachineModel:
        return MachineModel(self.spec)

    # -- headline queries ----------------------------------------------------------
    def hierarchy(self, page_size: int = 64 * 1024) -> AnalyticHierarchy:
        """Closed-form latency model for one core (Figure 2 sweeps)."""
        return AnalyticHierarchy(self.spec.chip, page_size=page_size)

    def stream_bandwidth(
        self,
        read_ratio: float = 2.0,
        write_ratio: float = 1.0,
        threads_per_core: int | None = None,
    ) -> float:
        """Sustained full-system STREAM bandwidth at a read:write ratio."""
        return system_stream_bandwidth(self.spec, threads_per_core, read_ratio, write_ratio)

    def chip_bandwidth(self, cores: int, threads_per_core: int) -> float:
        """Sustained STREAM bandwidth of a partial chip (Figure 3)."""
        return chip_stream_bandwidth(self.spec.chip, cores, threads_per_core)

    def random_read_bandwidth(self, threads_per_core: int, streams_per_thread: int) -> float:
        """Random pointer-chase bandwidth (Figure 4)."""
        return self.random_access.bandwidth(threads_per_core, streams_per_thread)

    def remote_latency_ns(self, requester: int, home: int, prefetch: bool = False) -> float:
        """Chip-to-chip memory latency (Table IV)."""
        if prefetch:
            return self.latency.pair_latency_prefetched_ns(requester, home)
        return self.latency.pair_latency_ns(requester, home)

    def time_kernel(self, kernel: KernelProfile) -> float:
        """Roofline-style execution-time estimate for a kernel."""
        return self.kernel_model.time(kernel)

    def attainable_gflops(self, operational_intensity: float, write_only: bool = False) -> float:
        """Roofline bound at an operational intensity (Figure 9)."""
        if write_only:
            return self.roofline.attainable_write_only(operational_intensity)
        return self.roofline.attainable_gflops(operational_intensity)

    def summary(self) -> dict:
        """Headline machine characteristics (Table II)."""
        s = self.spec
        return {
            "name": s.name,
            "chips": s.num_chips,
            "cores": s.num_cores,
            "threads": s.num_threads,
            "peak_gflops": s.peak_gflops,
            "peak_memory_bandwidth": s.peak_memory_bandwidth,
            "peak_read_bandwidth": s.peak_read_bandwidth,
            "peak_write_bandwidth": s.peak_write_bandwidth,
            "dram_capacity": s.dram_capacity,
            "l4_capacity": s.l4_capacity,
            "balance": s.balance,
        }
