"""Recovery mechanisms and their cost models.

Three POWER8 RAS mechanisms are modelled, each with the latency or
bandwidth cost the paper's fault-free measurements silently assume
away:

* **Link CRC retry/replay** — a corrupted Centaur (DMI) frame is
  retransmitted.  Retries back off exponentially (bounded), and every
  retry adds wire time to the transfer that suffered it.
* **Lane sparing** — links ship spare lanes; a lane that keeps failing
  CRC is mapped out.  Spares absorb the first failures for free; once
  they are exhausted the link retrains at reduced width, *permanently*
  degrading the chip's read/write bandwidth.
* **DRAM bank retirement** — a whole-bank fault takes the bank out of
  the interleave (sparing/steering at Centaur granularity is modelled
  as losing the bank).  Fewer banks means fewer concurrently-open rows,
  so row locality worsens for every later access.

Bank retirement itself lives on :class:`repro.mem.dram.DRAMModel`
(``retire_bank``); this module holds the link-side state machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List

from ..arch.specs import ChipSpec


@dataclass(frozen=True)
class ReplayPolicy:
    """Bounded exponential backoff for link CRC retries.

    Retry ``k`` (1-based) costs ``base_ns * backoff_factor**(k-1)``,
    capped at ``max_backoff_ns``; after ``max_retries`` consecutive
    failures the link escalates (recalibration, which lane sparing
    observes) and the transfer is forced through.
    """

    base_ns: float = 40.0
    backoff_factor: float = 2.0
    max_retries: int = 4
    max_backoff_ns: float = 640.0

    def __post_init__(self) -> None:
        if self.base_ns < 0:
            raise ValueError(f"replay base latency must be >= 0, got {self.base_ns}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 1:
            raise ValueError(f"need at least one retry, got {self.max_retries}")

    def retry_delay_ns(self, attempt: int) -> float:
        """Backoff delay of retry ``attempt`` (1-based), bounded."""
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based, got {attempt}")
        return min(
            self.base_ns * self.backoff_factor ** (attempt - 1),
            self.max_backoff_ns,
        )

    def replay(self, retry_fails: Callable[[int], bool]) -> "ReplayOutcome":
        """Resolve one CRC error; ``retry_fails(k)`` draws retry ``k``'s fate.

        Returns the number of retries performed, the summed backoff
        latency, and whether the bounded budget was exhausted (an
        escalation the lane-sparing state machine counts against the
        lane).
        """
        total_ns = 0.0
        for attempt in range(1, self.max_retries + 1):
            total_ns += self.retry_delay_ns(attempt)
            if not retry_fails(attempt):
                return ReplayOutcome(attempt, total_ns, escalated=False)
        return ReplayOutcome(self.max_retries, total_ns, escalated=True)


@dataclass(frozen=True)
class ReplayOutcome:
    retries: int
    latency_ns: float
    escalated: bool


@dataclass
class LaneState:
    """Spare-lane bookkeeping for one link direction.

    ``width`` active lanes carry the nominal bandwidth; ``spares`` extra
    lanes absorb the first failures at full speed.  Every
    ``errors_per_lane_fail`` CRC errors (or any escalated replay) retire
    one lane: spares first, then live width — at which point
    :meth:`bandwidth_factor` drops below 1 permanently.
    """

    width: int = 8
    spares: int = 2
    errors_per_lane_fail: int = 64
    crc_errors: int = 0
    lanes_failed: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"a link needs at least one lane, got {self.width}")
        if self.spares < 0 or self.errors_per_lane_fail < 1:
            raise ValueError("spares must be >= 0 and errors_per_lane_fail >= 1")

    def record_crc_error(self, escalated: bool = False) -> bool:
        """Count one CRC error; returns True when it retires a lane."""
        self.crc_errors += 1
        wear_fail = self.crc_errors % self.errors_per_lane_fail == 0
        if not (wear_fail or escalated):
            return False
        if self.lanes_failed >= self.width + self.spares - 1:
            return False  # last lane soldiers on; the link never dies here
        self.lanes_failed += 1
        return True

    @property
    def lanes_spared(self) -> int:
        """Failures absorbed by spare lanes (no bandwidth cost)."""
        return min(self.lanes_failed, self.spares)

    @property
    def active_lanes(self) -> int:
        return self.width - max(0, self.lanes_failed - self.spares)

    def bandwidth_factor(self) -> float:
        """Sustained/nominal bandwidth ratio after lane sparing (<= 1)."""
        return self.active_lanes / self.width


@dataclass
class LinkRasState:
    """Both directions of one chip's memory links, plus the replay policy."""

    replay: ReplayPolicy = field(default_factory=ReplayPolicy)
    read_lanes: LaneState = field(default_factory=LaneState)
    write_lanes: LaneState = field(default_factory=LaneState)

    def degraded_chip(self, chip: ChipSpec) -> ChipSpec:
        """``chip`` with its Centaur bandwidths degraded by lane sparing.

        With no lanes lost beyond the spares this returns a spec equal
        to the input (factor 1.0), so fault-free runs keep the
        calibrated Table III bandwidths bit-for-bit.
        """
        rf = self.read_lanes.bandwidth_factor()
        wf = self.write_lanes.bandwidth_factor()
        if rf == 1.0 and wf == 1.0:
            return chip
        centaur = replace(
            chip.centaur,
            read_bandwidth=chip.centaur.read_bandwidth * rf,
            write_bandwidth=chip.centaur.write_bandwidth * wf,
        )
        return replace(chip, centaur=centaur)


def bounded_backoff_schedule(policy: ReplayPolicy) -> List[float]:
    """The full (bounded) backoff ladder, for tests and documentation."""
    return [policy.retry_delay_ns(k) for k in range(1, policy.max_retries + 1)]
