"""RAS emulation: deterministic fault injection, ECC, and recovery.

The paper's E870 measurements are taken on a fault-free machine; this
package models what POWER8's RAS machinery (Chipkill-class ECC, DRAM
bank retirement, Centaur link CRC replay and lane sparing, TLB parity
recovery) does to those numbers when faults *do* occur.  Everything is
seeded and counter-keyed, so fault outcomes are reproducible and
bit-identical across the scalar and batch simulation engines.
"""

from .ecc import EccMode, EccModel, parse_ecc_mode
from .faults import EccVerdict, FaultEvent, FaultKind, deterministic_draw
from .injector import FaultClause, FaultInjector, InjectionPlan, build_injector
from .recovery import LaneState, LinkRasState, ReplayOutcome, ReplayPolicy
from .sweep import (
    DEFAULT_RATES,
    RasSweepPoint,
    degraded_system_stream_bandwidth,
    format_sweep,
    ras_selftest,
    ras_sweep,
)

__all__ = [
    "DEFAULT_RATES",
    "EccMode",
    "EccModel",
    "EccVerdict",
    "FaultClause",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "InjectionPlan",
    "LaneState",
    "LinkRasState",
    "RasSweepPoint",
    "ReplayOutcome",
    "ReplayPolicy",
    "build_injector",
    "degraded_system_stream_bandwidth",
    "deterministic_draw",
    "format_sweep",
    "parse_ecc_mode",
    "ras_selftest",
    "ras_sweep",
]
