"""Fault taxonomy and the deterministic pseudo-random draw behind it.

The E870 the paper measures is an enterprise RAS machine: Chipkill-class
ECC on DRAM, CRC retry/replay with lane sparing on the Centaur (DMI)
links, and parity-protected translation structures.  Every fault the
:mod:`repro.ras` subsystem can inject is named here, together with the
one primitive everything else builds on: a *counter-keyed* uniform draw.

Determinism contract
--------------------
Faults are never drawn from shared mutable RNG state.  Each injection
site keeps its own event counter, and the draw for event ``n`` at site
``s`` under seed ``k`` is a pure function ``draw(k, s, n)`` (a
splitmix64-style hash).  Two consequences the test-suite relies on:

* the scalar and batch hierarchy engines observe the *same* site-event
  sequences (DRAM accesses, ERAT misses, link transfers), so they
  inject bit-identical faults under the same seed and plan;
* a fault fires when ``draw < rate``, so the fault set at a higher rate
  is a *superset* of the fault set at a lower rate — degradation curves
  are monotone in the injected rate by construction, and a zero rate
  injects exactly nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a 64-bit bijective avalanche mix.

    Shared by :func:`deterministic_draw` and the shard sub-seed fold in
    :mod:`repro.parallel.seeds` so every derived random stream in the
    package traces back to the same primitive.
    """
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def deterministic_draw(seed: int, site: int, counter: int) -> float:
    """Uniform draw in ``[0, 1)`` as a pure function of its arguments.

    A splitmix64 finalizer over a linear combination of the inputs:
    statistically uniform enough for rate thresholding, and — unlike a
    shared RNG — immune to engines consuming site streams in different
    interleavings.
    """
    x = splitmix64(seed * _GOLDEN + site * _MIX1 + counter * _MIX2 + _GOLDEN)
    return x / 2.0**64


class FaultKind(str, enum.Enum):
    """Every fault class the injector can produce."""

    DRAM_BIT_FLIP = "dram_bit"  # transient bit flip(s) in a DRAM word
    DRAM_STUCK_ROW = "stuck_row"  # hard fault: a row that always reads bad
    DRAM_BANK_FAIL = "bank_fail"  # whole-bank failure -> bank retirement
    LINK_CRC = "link_crc"  # Centaur/DMI link CRC error -> replay
    TLB_PARITY = "tlb_parity"  # parity error in a translation entry


class EccVerdict(str, enum.Enum):
    """What the ECC code did with a data fault (exactly one per fault)."""

    CORRECTED = "corrected"  # fixed in-line; data unaffected
    DETECTED_UE = "detected_ue"  # caught but uncorrectable -> recovery
    SILENT = "silent"  # escaped the code: silent data corruption


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, fully described.

    ``bits`` is the number of flipped bits and ``symbols`` the number of
    distinct DRAM-device symbols they span — the two quantities ECC
    classification depends on.  ``seq`` is the site-local event counter
    at which the fault fired, which (with the seed) makes every event
    reproducible.
    """

    kind: FaultKind
    seq: int
    addr: int = 0
    bank: int = 0
    row: int = 0
    bits: int = 1
    symbols: int = 1

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"a fault flips at least one bit, got {self.bits}")
        if not 1 <= self.symbols <= self.bits:
            raise ValueError(
                f"symbols must be in [1, bits]; got {self.symbols} for {self.bits} bits"
            )


#: Injection-site identifiers (one independent draw stream each).  Site
#: numbers are offsets added to the plan-clause index so two clauses of
#: the same kind also draw independently.
SITE_DRAM = 0x100
SITE_LINK = 0x200
SITE_TLB = 0x300
SITE_BANK = 0x400
SITE_SEVERITY = 0x500  # sub-stream for per-fault severity draws
SITE_REPLAY = 0x600  # sub-stream for retry success/failure draws
