"""Seeded, deterministic fault injection with rate- and trigger-plans.

A :class:`FaultInjector` is attached to the memory simulators (the
``ras=`` parameter on both hierarchy engines and the chip simulator,
or the ``injector=`` parameter of the interconnect transfer simulator)
and consulted at three kinds of site:

* every DRAM line access (:meth:`on_dram_access`) — DRAM data faults,
  whole-bank faults, and Centaur-link CRC errors on the line transfer;
* every ERAT reload (:meth:`on_erat_miss`) — TLB parity errors;
* every explicit link transfer (:meth:`on_link_transfer`) — used by the
  SMP route simulator, which moves lines without touching DRAM.

Each plan clause owns an independent counter-keyed draw stream (see
:mod:`repro.ras.faults`), so the batch engine reports bit-identical
fault outcomes to the scalar engine under the same seed, and raising a
rate strictly grows the fault set (monotone degradation).  All RAS
observables land in the injector's own :class:`CounterBank`, harvested
by :func:`repro.pmu.pmu.read_counters` like any other module bank.

Plan specs
----------
``--inject`` accepts a compact string: semicolon-separated clauses,
each ``kind:key=value,...``::

    dram_bit:rate=1e-3,bits=1;link_crc:rate=5e-4;ecc:chipkill
    stuck_row:row=42,bits=2;bank_fail:at=10000
    tlb_parity:rate=1e-4,penalty=160

Keys: ``rate`` (per-opportunity probability), ``at`` (fire exactly once
on the Nth opportunity, 1-based), ``bits``/``symbols`` (fault severity,
for ECC classification), ``row`` (stuck-row target), ``penalty``
(TLB-parity re-walk cost, cycles).  The ``ecc:`` clause selects the
code (``secded``, ``chipkill``, ``none``; default chipkill).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pmu import events as ev
from ..pmu.counters import CounterBank
from .ecc import EccMode, EccModel, parse_ecc_mode
from .faults import (
    SITE_BANK,
    SITE_DRAM,
    SITE_LINK,
    SITE_REPLAY,
    SITE_TLB,
    EccVerdict,
    FaultEvent,
    FaultKind,
    deterministic_draw,
)
from .recovery import LinkRasState, ReplayPolicy

_SITE_BASE = {
    FaultKind.DRAM_BIT_FLIP: SITE_DRAM,
    FaultKind.DRAM_STUCK_ROW: SITE_DRAM,
    FaultKind.DRAM_BANK_FAIL: SITE_BANK,
    FaultKind.LINK_CRC: SITE_LINK,
    FaultKind.TLB_PARITY: SITE_TLB,
}

#: Clause index stride so two clauses of the same kind draw independently.
_SITE_STRIDE = 0x1000

_VERDICT_EVENTS = {
    EccVerdict.CORRECTED: ev.PM_MEM_ECC_CORRECTED,
    EccVerdict.DETECTED_UE: ev.PM_MEM_ECC_UE,
    EccVerdict.SILENT: ev.PM_MEM_ECC_SILENT,
}


@dataclass(frozen=True)
class FaultClause:
    """One line of an injection plan: what fires, when, how hard."""

    kind: FaultKind
    rate: float = 0.0
    at: Optional[int] = None
    bits: int = 1
    symbols: int = 1
    row: Optional[int] = None
    penalty_cycles: float = 160.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0,1], got {self.rate}")
        if self.at is not None and self.at < 1:
            raise ValueError(f"trigger counts are 1-based, got at={self.at}")
        if self.bits < 1 or not 1 <= self.symbols <= self.bits:
            raise ValueError(
                f"invalid severity bits={self.bits} symbols={self.symbols}"
            )
        if self.kind is FaultKind.DRAM_STUCK_ROW and self.row is None:
            raise ValueError("stuck_row clauses need row=<N>")
        if self.penalty_cycles < 0:
            raise ValueError(f"penalty must be >= 0, got {self.penalty_cycles}")

    def fires(self, seed: int, site: int, count: int) -> bool:
        """Deterministically decide opportunity ``count`` (1-based)."""
        if self.at is not None and count == self.at:
            return True
        if self.rate > 0.0:
            return deterministic_draw(seed, site, count) < self.rate
        return False


@dataclass(frozen=True)
class InjectionPlan:
    """An ECC mode plus an ordered list of fault clauses."""

    clauses: Tuple[FaultClause, ...] = ()
    ecc: EccMode = EccMode.CHIPKILL

    @classmethod
    def parse(cls, spec: str) -> "InjectionPlan":
        """Parse a ``--inject`` spec string (see module docstring)."""
        clauses: List[FaultClause] = []
        ecc = EccMode.CHIPKILL
        for token in filter(None, (t.strip() for t in spec.split(";"))):
            name, _, argtext = token.partition(":")
            name = name.strip().lower()
            if name == "ecc":
                ecc = parse_ecc_mode(argtext or "chipkill")
                continue
            try:
                kind = FaultKind(name)
            except ValueError:
                known = sorted(k.value for k in FaultKind)
                raise ValueError(
                    f"unknown fault kind {name!r}; use one of {known} or 'ecc'"
                ) from None
            kwargs: Dict[str, object] = {}
            for kv in filter(None, (p.strip() for p in argtext.split(","))):
                key, sep, value = kv.partition("=")
                if not sep:
                    raise ValueError(f"expected key=value in clause {token!r}")
                key = key.strip().lower()
                value = value.strip()
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "at":
                    kwargs["at"] = int(value)
                elif key in ("bits", "symbols", "row"):
                    kwargs[key] = int(value)
                elif key == "penalty":
                    kwargs["penalty_cycles"] = float(value)
                else:
                    raise ValueError(f"unknown key {key!r} in clause {token!r}")
            clauses.append(FaultClause(kind=kind, **kwargs))  # type: ignore[arg-type]
        return cls(clauses=tuple(clauses), ecc=ecc)

    def describe(self) -> str:
        parts = [f"ecc={self.ecc.value}"]
        for c in self.clauses:
            bits = f",bits={c.bits}" if c.bits != 1 else ""
            when = f"at={c.at}" if c.at is not None else f"rate={c.rate:g}"
            row = f",row={c.row}" if c.row is not None else ""
            parts.append(f"{c.kind.value}:{when}{bits}{row}")
        return "; ".join(parts)

    def scaled(self, rate: float) -> "InjectionPlan":
        """A copy with every rate-based clause set to ``rate`` (sweeps)."""
        from dataclasses import replace

        return InjectionPlan(
            clauses=tuple(
                replace(c, rate=rate) if c.at is None and c.row is None else c
                for c in self.clauses
            ),
            ecc=self.ecc,
        )


class FaultInjector:
    """Deterministic fault source shared by one simulator instance.

    Construct one injector per simulator: the injector carries mutable
    per-site counters, so two engines compared for equivalence must each
    get their *own* injector built from the same plan and seed.
    """

    def __init__(
        self,
        plan: InjectionPlan,
        seed: int = 0,
        ecc: Optional[EccModel] = None,
        link: Optional[LinkRasState] = None,
        record_events: bool = False,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.ecc = ecc if ecc is not None else EccModel(mode=plan.ecc)
        self.link = link if link is not None else LinkRasState()
        #: RAS observables as PMU events (harvested by ``read_counters``).
        self.bank = CounterBank()
        #: Latency the injector added, by path (derived-metric inputs).
        self.added_dram_latency_ns = 0.0
        self.added_replay_latency_ns = 0.0
        self.added_translation_cycles = 0.0
        self.events: Optional[List[Tuple[FaultEvent, EccVerdict]]] = (
            [] if record_events else None
        )
        self._counts = [0] * len(plan.clauses)
        self._dram_clauses = self._select(
            FaultKind.DRAM_BIT_FLIP, FaultKind.DRAM_STUCK_ROW, FaultKind.DRAM_BANK_FAIL
        )
        self._link_clauses = self._select(FaultKind.LINK_CRC)
        self._tlb_clauses = self._select(FaultKind.TLB_PARITY)

    def _select(self, *kinds: FaultKind) -> List[Tuple[int, int, FaultClause]]:
        """(index, site, clause) triples for the given kinds, plan order."""
        return [
            (i, _SITE_BASE[c.kind] + _SITE_STRIDE * i, c)
            for i, c in enumerate(self.plan.clauses)
            if c.kind in kinds
        ]

    # -- injection sites -------------------------------------------------
    def on_dram_access(self, dram, addr: int, bank_idx: int, row: int) -> float:
        """Consult every DRAM-side clause for one line access.

        Returns the extra service latency (ns) the access pays: ECC
        correction/recovery plus link CRC replay for the line transfer.
        Bank faults retire a bank on ``dram`` as a side effect.
        """
        extra = 0.0
        for i, site, clause in self._dram_clauses:
            self._counts[i] += 1
            n = self._counts[i]
            if clause.kind is FaultKind.DRAM_STUCK_ROW:
                if row != clause.row:
                    continue
            elif not clause.fires(self.seed, site, n):
                continue
            if clause.kind is FaultKind.DRAM_BANK_FAIL:
                if dram.retire_bank():
                    self.bank.inc(ev.PM_RAS_FAULT_INJECTED)
                    self.bank.inc(ev.PM_DRAM_BANK_RETIRED)
                continue
            fault = FaultEvent(
                kind=clause.kind, seq=n, addr=addr, bank=bank_idx, row=row,
                bits=clause.bits, symbols=clause.symbols,
            )
            verdict = self.ecc.classify(fault)
            self.bank.inc(ev.PM_RAS_FAULT_INJECTED)
            self.bank.inc(_VERDICT_EVENTS[verdict])
            extra += self.ecc.recovery_latency_ns(verdict)
            if self.events is not None:
                self.events.append((fault, verdict))
        extra += self.on_link_transfer()
        self.added_dram_latency_ns += extra
        return extra

    def on_link_transfer(self) -> float:
        """One line crossing a Centaur link; returns replay latency (ns)."""
        extra = 0.0
        for i, site, clause in self._link_clauses:
            self._counts[i] += 1
            n = self._counts[i]
            if not clause.fires(self.seed, site, n):
                continue
            self.bank.inc(ev.PM_RAS_FAULT_INJECTED)
            self.bank.inc(ev.PM_LINK_CRC_ERROR)
            outcome = self.link.replay.replay(
                lambda k: deterministic_draw(
                    self.seed, SITE_REPLAY + _SITE_STRIDE * i, (n << 4) + k
                )
                < clause.rate
            )
            self.bank.inc(ev.PM_LINK_REPLAY, outcome.retries)
            if self.link.read_lanes.record_crc_error(outcome.escalated):
                self.bank.inc(ev.PM_LINK_LANE_SPARED)
            extra += outcome.latency_ns
            self.added_replay_latency_ns += outcome.latency_ns
        return extra

    def on_erat_miss(self, page: int) -> float:
        """One ERAT reload; returns extra translation penalty (cycles)."""
        extra = 0.0
        for i, site, clause in self._tlb_clauses:
            self._counts[i] += 1
            if not clause.fires(self.seed, site, self._counts[i]):
                continue
            self.bank.inc(ev.PM_RAS_FAULT_INJECTED)
            self.bank.inc(ev.PM_TLB_PARITY)
            extra += clause.penalty_cycles
        self.added_translation_cycles += extra
        return extra

    # -- degraded-mode views ---------------------------------------------
    def degraded_chip(self, chip):
        """``chip`` with lane-sparing bandwidth degradation applied."""
        return self.link.degraded_chip(chip)

    def pmu_events(self) -> Dict[str, int]:
        """The RAS counter bank (the harvest hook's view)."""
        return dict(self.bank)

    def derived_metrics(self) -> Dict[str, float]:
        """Degraded-mode metrics merged into :meth:`repro.pmu.PMU.derived`."""
        return {
            "ras_added_dram_latency_ns": self.added_dram_latency_ns,
            "ras_added_replay_latency_ns": self.added_replay_latency_ns,
            "ras_added_translation_cycles": self.added_translation_cycles,
            "ras_read_bw_factor": self.link.read_lanes.bandwidth_factor(),
            "ras_write_bw_factor": self.link.write_lanes.bandwidth_factor(),
        }


def build_injector(
    spec: Optional[str],
    seed: int = 0,
    replay: Optional[ReplayPolicy] = None,
    record_events: bool = False,
) -> Optional[FaultInjector]:
    """CLI helper: an injector from an ``--inject`` spec (None passes through)."""
    if spec is None:
        return None
    plan = InjectionPlan.parse(spec)
    link = LinkRasState(replay=replay) if replay is not None else None
    return FaultInjector(plan, seed=seed, link=link, record_events=record_events)
