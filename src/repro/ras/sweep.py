"""Degraded-mode sweeps: bandwidth / latency vs injected fault rate.

``python -m repro.bench --ras-sweep`` drives :func:`ras_sweep`, which
answers the question the paper's fault-free measurements cannot: how do
the calibrated Table III bandwidth and Figure 2 latency numbers degrade
as DRAM and link fault rates rise?  By construction (counter-keyed
draws, see :mod:`repro.ras.faults`):

* a **zero** rate injects nothing, so the zero-rate row reproduces the
  calibrated numbers bit for bit;
* a **higher** rate injects a strict superset of faults, so bandwidth
  degrades and latency grows monotonically with the rate.

:func:`ras_selftest` (the ``--ras-selftest`` CLI / CI smoke step)
asserts those two properties plus the scalar-vs-batch bit-identity of
fault outcomes and the RAS counter-conservation invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import e870
from ..arch.specs import SystemSpec
from ..core.lsu import core_stream_bandwidth
from ..mem.centaur import MemoryLinkModel, degraded_chip_bandwidth, read_fraction
from ..pmu import events as ev
from ..pmu.invariants import conservation_violations
from ..pmu.pmu import read_counters
from .injector import FaultInjector, InjectionPlan

GB = 1e9

#: Default sweep points: zero (the calibration anchor) plus four decades.
DEFAULT_RATES = (0.0, 1e-5, 1e-4, 1e-3, 1e-2)

#: Default spec template swept by rate (``InjectionPlan.scaled``).
DEFAULT_SWEEP_SPEC = "dram_bit:rate=0;link_crc:rate=0;ecc:chipkill"


@dataclass(frozen=True)
class RasSweepPoint:
    """One row of the degradation curve."""

    rate: float
    bandwidth: float  # bytes/s, 2:1 mix, whole system
    bandwidth_fraction: float  # vs the fault-free (nominal) value
    latency_ns: float  # mean random-chase latency on one core
    added_latency_ns: float  # latency attributable to fault recovery
    counters: Dict[str, int] = field(default_factory=dict)


def degraded_system_stream_bandwidth(
    system: SystemSpec,
    injector: Optional[FaultInjector],
    threads_per_core: int | None = None,
    read_ratio: float = 2.0,
    write_ratio: float = 1.0,
    transfers: int = 20_000,
) -> float:
    """System STREAM bandwidth with link-fault degradation applied.

    Mirrors :func:`repro.perfmodel.stream_model.system_stream_bandwidth`
    (min of core- and link-level limits, all chips streaming locally)
    but evaluates the link limit through the injector's replay and
    lane-sparing state.  ``injector=None`` — or any plan that injects
    nothing — reproduces the calibrated value exactly.
    """
    chip = system.chip
    if threads_per_core is None:
        threads_per_core = chip.core.smt_ways
    f = read_fraction(read_ratio, write_ratio)
    core_limit = chip.cores_per_chip * core_stream_bandwidth(chip, threads_per_core)
    if injector is None:
        link_limit = MemoryLinkModel(chip).chip_bandwidth(f)
    else:
        link_limit = degraded_chip_bandwidth(chip, f, injector, transfers=transfers)
    return system.num_chips * min(core_limit, link_limit)


def _latency_trace(working_set: int, line_size: int, n: int, seed: int) -> np.ndarray:
    """A fixed random-access trace over ``working_set`` bytes."""
    rng = np.random.default_rng(seed)
    lines = working_set // line_size
    return (rng.integers(0, lines, size=n) * line_size).astype(np.int64)


def ras_sweep(
    system: Optional[SystemSpec] = None,
    rates: Sequence[float] = DEFAULT_RATES,
    spec: str = DEFAULT_SWEEP_SPEC,
    seed: int = 0,
    accesses: int = 20_000,
    working_set: int = 8 << 20,
) -> List[RasSweepPoint]:
    """Bandwidth/latency degradation curve vs fault rate.

    Every rate-based clause of ``spec`` is set to each rate in turn;
    each point gets fresh injectors (bandwidth and latency paths draw
    from independent instances of the same plan/seed, as two machines
    would).  The latency path runs the batch trace engine over a fixed
    seeded random trace; the bandwidth path runs the link replay model
    at the 2:1 Table III optimum.
    """
    from ..mem.batch import BatchMemoryHierarchy

    sys_spec = system if system is not None else e870()
    template = InjectionPlan.parse(spec)
    nominal = degraded_system_stream_bandwidth(sys_spec, None)
    trace = _latency_trace(working_set, sys_spec.chip.core.l1d.line_size,
                           accesses, seed)
    points: List[RasSweepPoint] = []
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rates must be in [0,1], got {rate}")
        plan = template.scaled(rate)
        bw_injector = FaultInjector(plan, seed=seed)
        bandwidth = degraded_system_stream_bandwidth(sys_spec, bw_injector)
        lat_injector = FaultInjector(plan, seed=seed)
        hier = BatchMemoryHierarchy(sys_spec.chip, ras=lat_injector)
        result = hier.access_trace(trace)
        counters = bw_injector.bank.snapshot()
        counters.add_events(lat_injector.bank)
        points.append(
            RasSweepPoint(
                rate=rate,
                bandwidth=bandwidth,
                bandwidth_fraction=bandwidth / nominal if nominal else 0.0,
                latency_ns=result.mean_latency_ns,
                added_latency_ns=(
                    lat_injector.added_dram_latency_ns
                    + sys_spec.chip.cycles_to_ns(lat_injector.added_translation_cycles)
                ),
                counters=counters.nonzero(),
            )
        )
    return points


def format_sweep(points: Sequence[RasSweepPoint]) -> str:
    """The ``--ras-sweep`` table, ready to print."""
    from ..reporting.tables import format_table

    rows = [
        (
            f"{p.rate:g}",
            f"{p.bandwidth / GB:.1f}",
            f"{100 * p.bandwidth_fraction:.2f}%",
            f"{p.latency_ns:.2f}",
            f"{p.added_latency_ns:.1f}",
            p.counters.get(ev.PM_MEM_ECC_CORRECTED, 0),
            p.counters.get(ev.PM_MEM_ECC_UE, 0),
            p.counters.get(ev.PM_LINK_CRC_ERROR, 0),
            p.counters.get(ev.PM_LINK_REPLAY, 0),
        )
        for p in points
    ]
    return format_table(
        ["fault rate", "BW (GB/s)", "vs nominal", "latency (ns)",
         "added (ns)", "ECC corr", "ECC UE", "CRC err", "replays"],
        rows,
        title="RAS degradation sweep (2:1 STREAM mix; random-chase latency)",
    )


#: The mixed fault plan the self-test exercises on both engines.
SELFTEST_SPEC = (
    "dram_bit:rate=2e-3,bits=1;dram_bit:rate=5e-4,bits=2;"
    "link_crc:rate=1e-3;tlb_parity:rate=2e-3;bank_fail:at=500;ecc:secded"
)


def ras_selftest(seed: int = 7, n_accesses: int = 6000) -> Tuple[bool, List[str]]:
    """RAS self-test: engine bit-identity, conservation, monotonicity.

    Returns ``(ok, report lines)``; run by ``python -m repro.bench
    --ras-selftest`` and as the CI smoke step.
    """
    from ..mem.batch import BatchMemoryHierarchy
    from ..mem.hierarchy import MemoryHierarchy

    system = e870()
    chip = system.chip
    lines_out: List[str] = []
    problems = 0

    plan = InjectionPlan.parse(SELFTEST_SPEC)
    trace = _latency_trace(16 << 20, chip.core.l1d.line_size, n_accesses, seed)
    rng = np.random.default_rng(seed)
    writes = rng.random(n_accesses) < 0.25

    ref = MemoryHierarchy(chip, ras=FaultInjector(plan, seed=seed))
    bat = BatchMemoryHierarchy(chip, ras=FaultInjector(plan, seed=seed))
    res_ref = ref.access_trace(trace, writes)
    res_bat = bat.access_trace(trace, writes)
    banks = {"reference": read_counters(ref), "batch": read_counters(bat)}
    if banks["reference"].nonzero() != banks["batch"].nonzero():
        problems += 1
        lines_out.append("engines disagree: scalar and batch RAS banks differ")
    else:
        ras_events = sum(
            1 for k in banks["batch"] if k.startswith(("PM_RAS", "PM_MEM_ECC",
                                                       "PM_LINK", "PM_TLB_PARITY",
                                                       "PM_DRAM_BANK"))
        )
        lines_out.append(
            f"engines agree: identical banks incl. {ras_events} RAS counters "
            f"({banks['batch'].get(ev.PM_RAS_FAULT_INJECTED, 0)} faults injected)"
        )
    if not np.array_equal(res_ref.latency_ns, res_bat.latency_ns):
        problems += 1
        lines_out.append("engines disagree: per-access latencies differ under faults")
    else:
        lines_out.append("engines agree: per-access fault latencies identical")
    for name, bank in banks.items():
        violations = conservation_violations(bank)
        problems += len(violations)
        lines_out.append(
            f"{name:9} conservation: " + ("ok" if not violations else "; ".join(violations))
        )

    # Zero-rate injection must reproduce the calibrated Table III numbers
    # bit for bit, for every read:write mix the paper measures.
    from ..perfmodel.stream_model import table3_rows

    zero = InjectionPlan.parse(DEFAULT_SWEEP_SPEC).scaled(0.0)
    exact = 0
    for row in table3_rows(system):
        injector = FaultInjector(zero, seed=seed)
        degraded = degraded_system_stream_bandwidth(
            system, injector, read_ratio=row["read"], write_ratio=row["write"]
        )
        if degraded == row["bandwidth"]:
            exact += 1
        else:
            problems += 1
            lines_out.append(
                f"zero-rate mismatch at {row['read']:g}:{row['write']:g}: "
                f"{degraded} != {row['bandwidth']}"
            )
    lines_out.append(f"zero-rate injection: {exact}/9 Table III mixes bit-exact")

    points = ras_sweep(system, seed=seed, accesses=4000)
    bw = [p.bandwidth for p in points]
    lat = [p.latency_ns for p in points]
    if all(b1 >= b2 for b1, b2 in zip(bw, bw[1:])) and bw[0] > bw[-1]:
        lines_out.append("bandwidth degrades monotonically with fault rate")
    else:
        problems += 1
        lines_out.append(f"bandwidth not monotone in fault rate: {bw}")
    if all(l1 <= l2 for l1, l2 in zip(lat, lat[1:])) and lat[-1] > lat[0]:
        lines_out.append("latency grows monotonically with fault rate")
    else:
        problems += 1
        lines_out.append(f"latency not monotone in fault rate: {lat}")
    return problems == 0, lines_out
