"""ECC classification: what the memory code does with each data fault.

POWER8 DIMMs behind Centaur run a Chipkill-class code (IBM markets it
as Chipkill / DRAM device sparing): any error confined to one DRAM
device symbol is corrected in-line, a two-symbol error is detected but
uncorrectable, and wider errors can escape the code entirely.  The
classic SEC-DED (single-error-correct / double-error-detect) mode is
also provided for comparison sweeps, plus a no-ECC mode in which every
fault is silent.

Every :class:`~repro.ras.faults.FaultEvent` is classified into exactly
one :class:`~repro.ras.faults.EccVerdict` — the partition invariant the
Hypothesis suite checks — and each verdict carries a recovery-latency
cost model evaluated against the DRAM timing it protects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .faults import EccVerdict, FaultEvent


class EccMode(str, enum.Enum):
    """Which code protects the DRAM words."""

    NONE = "none"
    SECDED = "secded"
    CHIPKILL = "chipkill"


#: Spec-string aliases accepted by :meth:`EccMode.parse`.
_ALIASES = {
    "none": EccMode.NONE,
    "off": EccMode.NONE,
    "secded": EccMode.SECDED,
    "sec-ded": EccMode.SECDED,
    "chipkill": EccMode.CHIPKILL,
}


def parse_ecc_mode(text: str) -> EccMode:
    """Parse an ECC mode name (``secded``, ``chipkill``, ``none``)."""
    try:
        return _ALIASES[text.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown ECC mode {text!r}; use one of {sorted(set(_ALIASES))}"
        ) from None


@dataclass(frozen=True)
class EccModel:
    """Classifier + correction-cost model for one ECC mode.

    ``correct_extra_ns`` is the in-line correction pipeline cost a
    corrected fault adds to the access (tiny: the syndrome decode is
    overlapped on real machines, but a scrub write-back is not).
    ``ue_extra_ns`` is the detected-uncorrectable recovery cost: the
    controller re-reads the row (precharge + activate + read again)
    before signalling a machine check, so the access pays roughly one
    extra row-miss service time.
    """

    mode: EccMode = EccMode.CHIPKILL
    correct_extra_ns: float = 2.0
    ue_extra_ns: float = 95.0

    def classify(self, fault: FaultEvent) -> EccVerdict:
        """Map one data fault to exactly one verdict.

        * ``NONE``: nothing is checked; every fault is silent.
        * ``SECDED``: 1 bit corrected, 2 bits detected, >=3 bits alias
          into a valid-looking word (silent).
        * ``CHIPKILL``: any damage confined to one device symbol is
          corrected, two symbols detected, wider damage silent.
        """
        if self.mode is EccMode.NONE:
            return EccVerdict.SILENT
        if self.mode is EccMode.SECDED:
            if fault.bits == 1:
                return EccVerdict.CORRECTED
            if fault.bits == 2:
                return EccVerdict.DETECTED_UE
            return EccVerdict.SILENT
        # Chipkill.
        if fault.symbols == 1:
            return EccVerdict.CORRECTED
        if fault.symbols == 2:
            return EccVerdict.DETECTED_UE
        return EccVerdict.SILENT

    def recovery_latency_ns(self, verdict: EccVerdict) -> float:
        """Extra access latency the verdict costs (silent faults are free
        by definition — the machine never notices them)."""
        if verdict is EccVerdict.CORRECTED:
            return self.correct_extra_ns
        if verdict is EccVerdict.DETECTED_UE:
            return self.ue_extra_ns
        return 0.0
