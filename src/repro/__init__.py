"""repro — reproduction of "An Early Performance Study of Large-scale
POWER8 SMP Systems" (Liu et al., 2016).

The package models the paper's IBM Power System E870 — cache hierarchy,
Centaur memory links, SMP fabric, SMT core, prefetch engine — and
reproduces every table and figure of the evaluation, plus real
implementations of the three applications (all-pairs Jaccard, SpMV,
Hartree-Fock).

Quick start::

    from repro import P8Machine
    machine = P8Machine.e870()
    print(machine.summary())

    from repro.bench import run_experiment
    print(run_experiment("table3").render())
"""

from .arch import e870, power8_192way
from .machine import P8Machine
from .perfmodel import KernelProfile

__version__ = "1.0.0"

__all__ = ["KernelProfile", "P8Machine", "e870", "power8_192way", "__version__"]
