"""Shard plans: how each workload splits into independent units.

Four shapes cover the package's workloads:

* **address-interleaved** trace shards for the memory-hierarchy engines
  — accesses are assigned to shards by cache-line index modulo the
  shard count, so every access to a given line lands in the same shard
  and each shard's simulated cache state is self-consistent;
* **tile-grid** (column-block) shards for all-pairs Jaccard;
* **row-block** shards for SpMV (CSR and two-scan);
* **shell-pair batches** for Hartree-Fock ERI construction.

Each builder is a pure function of (workload shape, shard count), so
the same plan is produced no matter where it is evaluated — the first
half of the determinism contract (the second half is the
order-preserving merge in :mod:`repro.parallel.merge`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _check_shards(shards: int) -> None:
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")


_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix_lines(lines: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over line ids (wrapping uint64)."""
    x = lines.astype(np.uint64)
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX2
    x = x ^ (x >> np.uint64(31))
    return x


def interleave_trace(
    addrs: np.ndarray, line_size: int, shards: int
) -> List[np.ndarray]:
    """Original-trace index arrays, one per shard, line-interleaved.

    Shard ``s`` owns every access whose cache line satisfies
    ``splitmix64(line) % shards == s``; within a shard, accesses keep
    their original relative order.  The line id is *hashed* before the
    modulo because a plain ``line % shards`` aliases with the caches'
    set-index function (also a line modulo): each shard's lines would
    collapse into ``1/shards`` of the sets and conflict-thrash, where
    the hash spreads every shard's footprint over all sets.  Empty
    shards still get an (empty) index array so the sub-seed assignment
    is stable across workloads.
    """
    _check_shards(shards)
    addrs = np.asarray(addrs, dtype=np.int64).ravel()
    if shards == 1:
        return [np.arange(addrs.size, dtype=np.int64)]
    with np.errstate(over="ignore"):
        owner = _mix_lines(addrs // line_size) % np.uint64(shards)
    return [np.nonzero(owner == s)[0].astype(np.int64) for s in range(shards)]


def split_blocks(total: int, shards: int) -> List[Tuple[int, int]]:
    """``[start, end)`` spans splitting ``total`` items into ``shards``.

    Remainder items go to the leading shards (NumPy ``array_split``
    convention); empty spans are kept so shard ids stay dense.
    """
    _check_shards(shards)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, shards)
    spans = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def tile_column_spans(
    n_cols: int, block_cols: int, shards: int
) -> List[Tuple[int, int]]:
    """Column spans for Jaccard tile-grid shards.

    Shard boundaries always fall on ``block_cols`` multiples, so the
    sharded run computes the *same tiles* as the serial blocked kernel
    (``repro.apps.jaccard.blocked``) and merging the shards' tile
    groups reproduces its output bit-for-bit.
    """
    if block_cols < 1:
        raise ValueError(f"block width must be positive, got {block_cols}")
    n_blocks = -(-n_cols // block_cols) if n_cols else 0
    # Both ends clamp to n_cols so trailing empty shards come out as
    # (n_cols, n_cols) rather than an inverted span past the matrix edge.
    return [
        (min(b0 * block_cols, n_cols), min(b1 * block_cols, n_cols))
        for b0, b1 in split_blocks(n_blocks, shards)
    ]


def row_block_spans(n_rows: int, shards: int) -> List[Tuple[int, int]]:
    """Row spans for SpMV shards: contiguous, near-equal row blocks."""
    return split_blocks(n_rows, shards)


def shell_pair_batches(nbf: int, shards: int) -> List[List[Tuple[int, int]]]:
    """Canonical (i, j) shell-pair batches for sharded ERI construction.

    The canonical quartet loop of
    :func:`repro.apps.hf.integrals.eri_tensor` iterates outer pairs
    ``i >= j``; each batch is a contiguous slice of that pair list, so
    the union of batches walks exactly the serial loop's quartets and
    the per-quartet symmetry images of different batches never overlap
    (orbits partition the index space) — merging by summation is exact.
    """
    pairs = [(i, j) for i in range(nbf) for j in range(i + 1)]
    return [pairs[start:end] for start, end in split_blocks(len(pairs), shards)]
