"""Explicit merge semantics for sharded runs.

Everything a sharded run reports is reduced here, and every reduction
is a pure function of the per-shard outcomes taken in shard-id order:

* per-access arrays are **scattered** back to their original trace
  positions (an exact permutation — no arithmetic);
* PMU counter banks reduce via :meth:`repro.pmu.CounterBank.merge`
  (integer sums — order-free);
* latency histograms reduce by bin-wise addition over a shared edge
  vector, and the merged histogram equals the histogram of the merged
  latency array (the property ``tests/parallel`` pins);
* RAS fault events union into one list ordered by (shard id, original
  event order), preserving each event's full description and verdict.

Because each reduction is deterministic given the shard order, the
merged result of a plan depends only on (config, seed, shard count) —
never on worker count or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Default latency histogram edges: a sub-ns bin (modelled L1 hits are
#: ~0.7 ns), log-spaced 1 ns .. 1 µs, and an overflow bin — every access
#: of the modelled hierarchy lands in some bin.
DEFAULT_LATENCY_EDGES = np.concatenate(
    [[0.0], np.logspace(0.0, 3.0, 31), [np.inf]]
)


@dataclass(frozen=True)
class LatencyHistogram:
    """Counts of per-access latencies over fixed bin edges."""

    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def of(cls, latency_ns: np.ndarray, edges: np.ndarray | None = None) -> "LatencyHistogram":
        edges = DEFAULT_LATENCY_EDGES if edges is None else np.asarray(edges, dtype=np.float64)
        counts, _ = np.histogram(np.asarray(latency_ns, dtype=np.float64), bins=edges)
        return cls(edges=edges, counts=counts.astype(np.int64))

    @classmethod
    def merge(cls, parts: "Iterable[LatencyHistogram]") -> "LatencyHistogram":
        """Bin-wise sum; all parts must share one edge vector."""
        parts = list(parts)
        if not parts:
            return cls(edges=DEFAULT_LATENCY_EDGES,
                       counts=np.zeros(DEFAULT_LATENCY_EDGES.size - 1, dtype=np.int64))
        edges = parts[0].edges
        for p in parts[1:]:
            if not np.array_equal(p.edges, edges):
                raise ValueError("cannot merge histograms with different edges")
        counts = np.sum([p.counts for p in parts], axis=0).astype(np.int64)
        return cls(edges=edges, counts=counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())


def scatter_shard_arrays(
    n: int,
    indices: Sequence[np.ndarray],
    arrays: Sequence[np.ndarray],
    dtype,
) -> np.ndarray:
    """Scatter per-shard result arrays back to original trace positions.

    ``indices[s]`` are the original positions shard ``s`` owned and
    ``arrays[s]`` its per-access results in the same order.  The index
    arrays partition ``range(n)``, so the scatter is a permutation and
    the merged array is exact.
    """
    out = np.empty(n, dtype=dtype)
    filled = 0
    for idx, arr in zip(indices, arrays):
        if idx.size != arr.size:
            raise ValueError(
                f"shard index/result size mismatch: {idx.size} vs {arr.size}"
            )
        out[idx] = arr
        filled += idx.size
    if filled != n:
        raise ValueError(f"shards cover {filled} of {n} accesses")
    return out


def union_ras_events(
    per_shard_events: Sequence[Sequence[Tuple]],
) -> List[Tuple[int, object, object]]:
    """Union of per-shard RAS fault events, tagged with their shard id.

    Each element of ``per_shard_events`` is a shard's recorded
    ``(FaultEvent, EccVerdict)`` list (see
    :class:`repro.ras.injector.FaultInjector`); the union keeps shard-id
    order, then each shard's own event order — deterministic for a
    given plan regardless of worker scheduling.
    """
    out: List[Tuple[int, object, object]] = []
    for shard_id, events in enumerate(per_shard_events):
        for fault, verdict in events:
            out.append((shard_id, fault, verdict))
    return out
