"""Content-addressed on-disk cache for experiment results.

Sharded runs are deterministic (see :mod:`repro.parallel.runner`), so a
result is fully identified by *what was asked for*: the machine spec,
the workload description, the seed, and the code that produced it.  The
cache keys on a SHA-256 digest of exactly that content — no timestamps,
no hostnames — so a hit is a bit-for-bit stand-in for a re-run and the
CLI can skip the simulation entirely.

Invalidation is by construction: bumping ``repro.__version__`` (or
:data:`CACHE_VERSION` when only the cache format changes) changes every
key, and deleting the cache directory is always safe.  The default
location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

Integrity is verified on every read: each entry stores a SHA-256 digest
of its payload (:func:`payload_digest`), and :meth:`ResultCache.get`
recomputes it before serving.  Anything wrong with an entry — a
truncated or bit-flipped file, junk bytes, a JSON document that is not
an entry object, a digest mismatch — is **quarantined** (renamed aside
so the evidence survives and the bad bytes are never read again) and
reported as a miss, so a corrupted disk costs a recompute, never a
wrong result.  The serve daemon's chaos suite (``repro.serve.chaos``)
drives exactly these paths with deliberately corrupted payload files.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .. import __version__

#: Bump when the stored payload format changes incompatibly.
#: 2: entries carry a payload SHA-256, verified on every read.
CACHE_VERSION = 2

_ENV_VAR = "REPRO_CACHE_DIR"

#: Process-wide monotonic sequence for temp-file names.  ``next()`` on a
#: C-implemented iterator is atomic, so concurrent writers of the same
#: key draw distinct suffixes without a lock.
_PUT_SEQ = itertools.count()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def cache_key(*, machine: object, workload: Mapping[str, Any], seed: int = 0) -> str:
    """SHA-256 digest of the canonical key material.

    ``machine`` is any spec object with a stable ``repr`` (the arch
    specs are frozen dataclasses, so their repr pins every parameter);
    ``workload`` is a JSON-able description of the run (experiment id,
    shard count, flags, ...).  Module-level so callers that only need
    the key — the serve daemon normalizing request specs — don't have
    to build a cache around a directory.
    """
    material = {
        "cache_version": CACHE_VERSION,
        "code_version": __version__,
        "machine": repr(machine),
        "workload": dict(workload),
        "seed": int(seed),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_digest(payload: Any) -> str:
    """SHA-256 of a payload's canonical JSON form.

    Computed over ``json.dumps(..., sort_keys=True)`` so the digest is
    stable across a store/load round trip (tuples serialize as arrays,
    key order never matters).  Shared by the on-disk entries and the
    serve daemon's in-memory tier, so both tiers verify the same bytes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<digest>.json`` files, one per cached result.

    Each file stores the key material alongside the payload, so a cache
    directory is self-describing and individual entries can be audited
    (or deleted) by hand.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        # hits/misses are bumped under this lock so concurrent lookups
        # (the serve daemon runs them from worker threads) never lose
        # increments to a read-modify-write race.
        self._lock = threading.Lock()

    def key(
        self,
        *,
        machine: object,
        workload: Mapping[str, Any],
        seed: int = 0,
    ) -> str:
        """See :func:`cache_key` (pure function of the content)."""
        return cache_key(machine=machine, workload=workload, seed=seed)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        The cache never raises on lookup — a re-run is always the
        fallback.  A missing file or a stale-format entry is a plain
        miss; anything *corrupt* — truncated or non-JSON bytes, a JSON
        document that is not an entry object, a payload whose stored
        SHA-256 no longer matches — is quarantined (renamed aside) and
        then reported as a miss, so the bad bytes are recomputed instead
        of re-read forever.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            # Absent (normal miss) or unreadable (nothing to rename).
            with self._lock:
                self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            # Half-written, truncated or bit-flipped into non-JSON: the
            # file is evidence of corruption, not a servable entry.
            self._quarantine(path)
            with self._lock:
                self.misses += 1
            return None
        if entry.get("cache_version") != CACHE_VERSION:
            with self._lock:
                self.misses += 1
            return None
        payload = entry.get("payload")
        if entry.get("sha256") != payload_digest(payload):
            # Verify-on-read: a flipped bit inside an otherwise valid
            # JSON document still never crosses this boundary.
            self._quarantine(path)
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def _quarantine(self, path: Path) -> None:
        """Rename a corrupt entry aside (``*.quarantined``) and count it."""
        aside = path.parent / (
            f"{path.stem}.{os.getpid()}.{next(_PUT_SEQ)}.quarantined"
        )
        try:
            os.replace(path, aside)
        except OSError:
            return  # already replaced/removed by a concurrent writer
        with self._lock:
            self.quarantined += 1

    def put(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Store ``payload`` under ``key``; returns the entry's path.

        Writes via a temp file + rename so concurrent readers never see
        a partial entry.  The temp name carries the pid *and* a
        process-wide monotonic sequence number: two threads (or asyncio
        worker tasks) of one process storing the same key get distinct
        temp files instead of clobbering each other mid-write, and each
        rename still lands atomically on the final path.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        entry = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "payload": dict(payload),
            "sha256": payload_digest(dict(payload)),
        }
        tmp = path.parent / f"{key}.{os.getpid()}.{next(_PUT_SEQ)}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        return path
