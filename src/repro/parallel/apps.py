"""Sharded drivers for the three application kernels (§V).

Each driver fans the kernel's natural decomposition out over a
:class:`~repro.parallel.pool.ShardPool` and merges by the shape's exact
rule:

* **Jaccard** — tile-grid (column-block) shards; shard boundaries fall
  on tile boundaries, so the merged ``hstack`` reproduces the serial
  blocked kernel's similarity matrix bit-for-bit.
* **SpMV** — CSR shards at the granularity of the serial executor's
  nnz-balanced partitions (the reduceat grouping fixes the float sums,
  so workers must replay exactly the serial partitions); two-scan
  shards by row block (its per-row accumulation order is
  block-independent), and both reassemble bit-identical to the serial
  multiply.
* **HF ERI** — shell-pair batches over the canonical ``i >= j`` outer
  pairs; the 8-fold symmetry orbits of different canonical quartets are
  disjoint, so summing the per-batch tensors is bit-identical to the
  serial ``eri_tensor``.

All workers receive read-only inputs and return their partial output;
no worker mutates shared state, so results are independent of worker
count — the property ``tests/parallel/test_conformance_apps.py``
asserts exactly (``==``, not ``allclose``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..apps.hf.basis import Molecule
from ..apps.hf.integrals import _symmetry_images, eri_ssss
from ..apps.jaccard.blocked import jaccard_blocks
from ..apps.jaccard.similarity import validate_adjacency
from ..apps.spmv.csr import CSRSpMV
from ..apps.spmv.twoscan import DEFAULT_BLOCK_WIDTH, TwoScanSpMV
from .pool import ShardPool
from .shards import (
    row_block_spans,
    shell_pair_batches,
    split_blocks,
    tile_column_spans,
)

# -- Jaccard: tile-grid shards ----------------------------------------------


@dataclass
class _JaccardTask:
    adj: sp.csr_matrix  # pre-validated
    col_start: int
    col_stop: int
    block_cols: int


def _jaccard_shard(task: _JaccardTask) -> sp.csr_matrix:
    blocks = [
        blk
        for _, _, blk in jaccard_blocks(
            task.adj,
            task.block_cols,
            assume_validated=True,
            col_start=task.col_start,
            col_stop=task.col_stop,
        )
    ]
    if not blocks:
        return sp.csr_matrix((task.adj.shape[0], task.col_stop - task.col_start))
    return sp.hstack(blocks, format="csr")


def sharded_jaccard(
    adj: sp.spmatrix,
    shards: int = 1,
    workers: int = 1,
    block_cols: int = 4096,
    assume_validated: bool = False,
) -> sp.csr_matrix:
    """All-pairs Jaccard similarity, tile columns sharded over a pool.

    Returns the full similarity matrix; bit-identical to the serial
    blocked kernel (``all_pairs_jaccard_blocked`` with the same
    ``block_cols``).  The adjacency is validated exactly once, here.
    """
    a = adj if assume_validated else validate_adjacency(adj)
    a = sp.csr_matrix(a) if not sp.isspmatrix_csr(a) else a
    spans = tile_column_spans(a.shape[0], block_cols, shards)
    tasks = [
        _JaccardTask(adj=a, col_start=c0, col_stop=c1, block_cols=block_cols)
        for c0, c1 in spans
    ]
    parts = ShardPool(workers).map(_jaccard_shard, tasks)
    nonempty = [p for p in parts if p.shape[1]]
    if not nonempty:
        return sp.csr_matrix(a.shape)
    return sp.hstack(nonempty, format="csr")


# -- SpMV: row-block shards --------------------------------------------------


@dataclass
class _CsrTask:
    matrix: sp.csr_matrix
    x: np.ndarray
    num_threads: int
    num_sockets: int
    part_lo: int  # partition-index span [part_lo, part_hi)
    part_hi: int


def _csr_shard(task: _CsrTask) -> Tuple[int, int, np.ndarray]:
    """Execute a slice of the serial partition plan; return its row span.

    The worker rebuilds the executor on the full matrix, so
    ``partition_rows`` reproduces the exact serial partition boundaries
    — the per-partition reduceat grouping is what fixes the float
    summation, so sharding must happen at partition granularity, not
    arbitrary row blocks.
    """
    spmv = CSRSpMV(
        task.matrix, num_threads=task.num_threads, num_sockets=task.num_sockets
    )
    parts = spmv.partitions[task.part_lo : task.part_hi]
    y = spmv.multiply(task.x, partitions=parts)
    r0 = parts[0].row_start
    r1 = parts[-1].row_end
    return r0, r1, y[r0:r1]


def sharded_csr_spmv(
    matrix: sp.spmatrix,
    x: np.ndarray,
    shards: int = 1,
    workers: int = 1,
    num_threads: int = 64,
    num_sockets: int = 8,
) -> np.ndarray:
    """Partition-sharded CSR SpMV; bit-identical to :class:`CSRSpMV`.

    The serial executor's nnz-balanced row partitions are grouped into
    contiguous shards; each worker runs exactly its partitions of the
    serial plan, so every row's reduction happens in the same grouping
    as the serial multiply and the assembled result matches it
    bit-for-bit.
    """
    spmv = CSRSpMV(matrix, num_threads=num_threads, num_sockets=num_sockets)
    csr = spmv.matrix
    spans = split_blocks(len(spmv.partitions), shards)
    tasks = [
        _CsrTask(csr, x, num_threads, num_sockets, p0, p1)
        for p0, p1 in spans
        if p1 > p0
    ]
    results = ShardPool(workers).map(_csr_shard, tasks)
    y = np.zeros(csr.shape[0], dtype=np.result_type(csr.dtype, x.dtype))
    for r0, r1, part in results:
        y[r0:r1] = part
    return y


@dataclass
class _TwoScanTask:
    matrix: sp.csr_matrix
    x: np.ndarray
    block_width: int


def _twoscan_shard(task: _TwoScanTask) -> np.ndarray:
    return TwoScanSpMV(task.matrix, block_width=task.block_width).multiply(task.x)


def sharded_twoscan_spmv(
    matrix: sp.spmatrix,
    x: np.ndarray,
    shards: int = 1,
    workers: int = 1,
    block_width: int = DEFAULT_BLOCK_WIDTH,
) -> np.ndarray:
    """Row-block sharded two-scan SpMV; bit-identical to the serial kernel.

    Within any row the two-scan pipeline accumulates elements in
    ascending column order (stable column sort, then stable row sort),
    for the full matrix and for any row block alike — so per-row
    addition order, and hence the float result, is identical.
    """
    csr = matrix.tocsr()
    spans = row_block_spans(csr.shape[0], shards)
    tasks = [
        _TwoScanTask(csr[r0:r1], x, block_width) for r0, r1 in spans if r1 > r0
    ]
    parts = ShardPool(workers).map(_twoscan_shard, tasks)
    if not parts:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(parts)


# -- Hartree-Fock: shell-pair batches ---------------------------------------


@dataclass
class _EriTask:
    molecule: Molecule
    pairs: List[Tuple[int, int]]
    screen: Optional[object]  # duck-typed .significant(i, j, k, l)


def _eri_shard(task: _EriTask) -> np.ndarray:
    """The canonical quartet loop of ``eri_tensor``, restricted to a batch."""
    n = task.molecule.nbf
    basis = task.molecule.basis
    eri = np.zeros((n, n, n, n))
    for i, j in task.pairs:
        for k in range(i + 1):
            l_max = j if k == i else k
            for l in range(l_max + 1):
                if task.screen is not None and not task.screen.significant(i, j, k, l):
                    continue
                val = eri_ssss(basis[i], basis[j], basis[k], basis[l])
                for (p, q, r, s) in _symmetry_images(i, j, k, l):
                    eri[p, q, r, s] = val
    return eri


def sharded_eri_tensor(
    molecule: Molecule,
    shards: int = 1,
    workers: int = 1,
    screening: Optional[object] = None,
) -> np.ndarray:
    """Shell-pair-batched ERI tensor; bit-identical to ``eri_tensor``.

    The canonical outer pairs split into contiguous batches; per-batch
    partial tensors have disjoint nonzero supports (symmetry orbits
    partition the index space), so summing them in shard order assigns
    every element exactly the value the serial loop assigns it.
    """
    batches = shell_pair_batches(molecule.nbf, shards)
    tasks = [
        _EriTask(molecule=molecule, pairs=batch, screen=screening)
        for batch in batches
        if batch
    ]
    parts = ShardPool(workers).map(_eri_shard, tasks)
    n = molecule.nbf
    eri = np.zeros((n, n, n, n))
    for part in parts:
        eri += part
    return eri
