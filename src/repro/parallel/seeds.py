"""Counter-keyed shard sub-seeds.

Every shard of a sharded run owns an independent deterministic random
universe: its RAS fault injector (and anything else that consumes a
seed) is constructed from ``shard_seed(plan_seed, shard_id)`` — a
splitmix64 fold of the plan seed with the shard id.  Because the fold
is a pure function, the sub-seed stream depends only on (plan seed,
shard id), never on worker scheduling, and two different shard counts
give every shard a distinct universe while shard 0 of a 1-shard plan
reproduces the serial engine's seed exactly (``shard_seed(s, 0, 1) ==
s``), which is what makes the shards=1 case bit-identical to the
unsharded run.
"""

from __future__ import annotations

from ..ras.faults import _GOLDEN, _MASK64, _MIX1, splitmix64


def shard_seed(seed: int, shard_id: int, shards: int = 0) -> int:
    """The sub-seed for ``shard_id`` of a plan seeded with ``seed``.

    A single-shard plan is the serial run, so it keeps the plan seed
    unchanged; every other (shard id, shard count) pair folds both
    numbers through splitmix64 so sibling shards — and the same shard
    id under different shard counts — draw from unrelated universes.
    """
    if shard_id < 0:
        raise ValueError(f"shard id must be >= 0, got {shard_id}")
    if shards == 1:
        if shard_id != 0:
            raise ValueError(f"shard id {shard_id} out of range for 1 shard")
        return seed
    return splitmix64(
        seed * _GOLDEN + (shard_id + 1) * _MIX1 + shards * _GOLDEN
    ) & _MASK64


def shard_seeds(seed: int, shards: int) -> list[int]:
    """The full sub-seed vector of a plan (one entry per shard)."""
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    return [shard_seed(seed, s, shards) for s in range(shards)]
