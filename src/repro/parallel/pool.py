"""Deterministic work pool: N tasks onto W processes, results in order.

The pool is deliberately dumb: it maps a **top-level** function over a
list of picklable tasks and returns the results *in task order*, no
matter which worker finished first.  All determinism therefore lives in
the tasks themselves (each carries its shard id and sub-seed) and in
the order-preserving gather here — the merged output of a sharded run
is a pure function of the shard plan, with the worker count affecting
only wall-clock time.

``workers <= 1`` short-circuits to a plain in-process loop over the
same function: that loop *is* the serial oracle the conformance suite
in ``tests/parallel/`` compares every multiprocess run against.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: the CPUs this process may run on."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _mp_context():
    # Fork keeps worker start-up off the critical path on Linux; the
    # default (spawn) context elsewhere still works because every
    # worker function in this package is importable top-level code.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ShardPool:
    """Order-preserving map of picklable tasks over worker processes."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 0:
            raise ValueError(f"worker count must be >= 0, got {workers}")
        #: 0 is accepted as an alias for "serial" so CLI defaults stay simple.
        self.workers = max(1, workers)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task; results come back in task order.

        With one worker (or one task) this is an in-process loop — the
        serial oracle.  Otherwise tasks fan out over a process pool and
        the gather preserves submission order, so callers can reduce
        the results positionally without re-sorting.
        """
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(t) for t in tasks]
        # Clamp the pool to the CPUs we may actually run on: the
        # simulation workers are CPU-bound, so oversubscribing cores
        # only adds context-switch and cache thrash (measured >2x
        # slowdown at 4 workers on 1 CPU) without changing results —
        # the merge is worker-count-independent by construction.
        size = min(self.workers, len(tasks), max(1, default_workers()))
        with ProcessPoolExecutor(
            max_workers=size,
            mp_context=_mp_context(),
        ) as pool:
            return list(pool.map(fn, tasks))
