"""Deterministic sharded execution layer (the ``repro.parallel`` package).

Fans the trace-driven memory engines and the three application kernels
out over a multiprocessing pool while keeping results **bit-identical**
to serial execution:

* shard plans are pure functions of (workload, shard count)
  (:mod:`~repro.parallel.shards`);
* each shard draws a counter-keyed RAS sub-seed
  (:mod:`~repro.parallel.seeds`) and runs on a fresh engine with its
  own PMU bank (:mod:`~repro.parallel.runner`);
* merges are explicit, order-fixed reductions
  (:mod:`~repro.parallel.merge`, :meth:`repro.pmu.CounterBank.merge`);
* completed runs land in a content-addressed on-disk cache
  (:mod:`~repro.parallel.cache`).

The conformance suite in ``tests/parallel/`` pins the contract: merged
results depend only on (config, seed, shard count), never on worker
count or completion order.
"""

from .cache import CACHE_VERSION, ResultCache, cache_key, default_cache_dir, payload_digest
from .merge import (
    DEFAULT_LATENCY_EDGES,
    LatencyHistogram,
    scatter_shard_arrays,
    union_ras_events,
)
from .pool import ShardPool, default_workers
from .runner import (
    ShardedTraceResult,
    TraceShardOutcome,
    TraceShardTask,
    merge_trace_outcomes,
    plan_trace_tasks,
    run_trace_shard,
    run_trace_sharded,
    sharded_traced_latency,
)
from .seeds import shard_seed, shard_seeds
from .shards import (
    interleave_trace,
    row_block_spans,
    shell_pair_batches,
    split_blocks,
    tile_column_spans,
)
from .apps import (
    sharded_csr_spmv,
    sharded_eri_tensor,
    sharded_jaccard,
    sharded_twoscan_spmv,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_LATENCY_EDGES",
    "LatencyHistogram",
    "ResultCache",
    "ShardPool",
    "ShardedTraceResult",
    "TraceShardOutcome",
    "TraceShardTask",
    "cache_key",
    "default_cache_dir",
    "payload_digest",
    "default_workers",
    "interleave_trace",
    "merge_trace_outcomes",
    "plan_trace_tasks",
    "row_block_spans",
    "run_trace_shard",
    "run_trace_sharded",
    "scatter_shard_arrays",
    "shard_seed",
    "shard_seeds",
    "sharded_csr_spmv",
    "sharded_eri_tensor",
    "sharded_jaccard",
    "sharded_traced_latency",
    "sharded_twoscan_spmv",
    "shell_pair_batches",
    "split_blocks",
    "tile_column_spans",
    "union_ras_events",
]
