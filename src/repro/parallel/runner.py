"""Sharded execution of the trace-driven memory engines.

:func:`run_trace_sharded` fans an address trace out over a
:class:`~repro.parallel.pool.ShardPool`: the trace is split into
address-interleaved shards (:func:`repro.parallel.shards.interleave_trace`),
each shard runs on a **fresh engine** — its own
:class:`~repro.mem.batch.BatchMemoryHierarchy` or
:class:`~repro.coherence.chipsim.ChipSimulator`, its own PMU bank, and
its own RAS fault injector built from the shard's counter-keyed
sub-seed — and the per-shard outcomes reduce through the explicit merge
semantics in :mod:`repro.parallel.merge`.

Determinism contract
--------------------
The merged result is a pure function of (engine config, plan seed,
shard count).  Worker count and completion order never enter: tasks
carry everything a worker needs, workers share no state, and the gather
is order-preserving.  ``workers=1`` executes the identical tasks
in-process — that run *is* the serial oracle, and the conformance suite
in ``tests/parallel/`` asserts multiprocess runs match it bit-for-bit
(latencies, merged PMU banks, RAS fault outcomes).  A 1-shard plan
degenerates to the plain serial engine (same seed, same single
instance), tying the whole scheme back to the unsharded simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.specs import ChipSpec, SystemSpec
from ..coherence.chipsim import CHIP_LEVELS, ChipSimulator, ChipStats
from ..mem.batch import DEFAULT_CHUNK, BatchMemoryHierarchy
from ..mem.hierarchy import LEVELS, HierarchyStats, TraceResult
from ..pmu.counters import CounterBank
from ..pmu.pmu import read_counters
from ..ras.injector import build_injector
from .merge import (
    DEFAULT_LATENCY_EDGES,
    LatencyHistogram,
    scatter_shard_arrays,
    union_ras_events,
)
from .pool import ShardPool
from .seeds import shard_seeds
from .shards import interleave_trace

PAGE_64K = 64 * 1024  # kept for callers that pin POWER8's base page explicitly


@dataclass
class TraceShardTask:
    """Everything one worker needs to run one shard (fully picklable)."""

    engine: str  # "batch" | "chip"
    shard_id: int
    shards: int
    seed: int  # the shard's folded sub-seed, not the plan seed
    chip: ChipSpec
    addrs: np.ndarray
    writes: Union[bool, np.ndarray] = False
    cores: Union[int, np.ndarray, None] = None
    warm_addrs: Optional[np.ndarray] = None
    page_size: Optional[int] = None  # None: the chip's own base page
    chunk: int = DEFAULT_CHUNK
    inject: Optional[str] = None


@dataclass
class TraceShardOutcome:
    """One shard's complete result, as returned from a worker process."""

    shard_id: int
    latency_ns: np.ndarray
    level_codes: np.ndarray
    translation_cycles: np.ndarray
    counters: Dict[str, int]
    stats: object  # HierarchyStats | ChipStats
    ras_events: List[Tuple] = field(default_factory=list)
    ras_derived: Dict[str, float] = field(default_factory=dict)


def run_trace_shard(task: TraceShardTask) -> TraceShardOutcome:
    """Execute one shard on a fresh engine (top-level: pool-safe).

    This function is the unit of both serial and parallel execution —
    the serial oracle is literally this code run in-process, so
    shard-vs-serial equivalence reduces to process isolation, which the
    engines guarantee by construction (no globals, no shared RNG).
    """
    injector = build_injector(task.inject, seed=task.seed, record_events=True)
    if task.engine == "batch":
        hier = BatchMemoryHierarchy(
            task.chip, page_size=task.page_size, chunk=task.chunk, ras=injector
        )
        if task.warm_addrs is not None and task.warm_addrs.size:
            hier.warm(task.warm_addrs)
        res = hier.access_trace(task.addrs, task.writes)
        stats: object = hier.stats
        bank = read_counters(hier)
    elif task.engine == "chip":
        sim = ChipSimulator(task.chip, ras=injector)
        cores = task.cores if task.cores is not None else 0
        res = sim.access_trace(cores, task.addrs, task.writes)
        stats = sim.stats
        bank = read_counters(sim)
    else:
        raise ValueError(f"unknown engine {task.engine!r}; use 'batch' or 'chip'")
    return TraceShardOutcome(
        shard_id=task.shard_id,
        latency_ns=res.latency_ns,
        level_codes=res.level_codes,
        translation_cycles=res.translation_cycles,
        counters=dict(bank),
        stats=stats,
        ras_events=list(injector.events) if injector is not None else [],
        ras_derived=injector.derived_metrics() if injector is not None else {},
    )


@dataclass
class ShardedTraceResult:
    """Merged outcome of a sharded trace run.

    ``trace`` holds the per-access arrays scattered back to original
    positions; ``bank`` is the merged PMU view (shard banks summed via
    :meth:`~repro.pmu.CounterBank.merge`); ``stats`` the summed
    hierarchy/chip statistics; ``ras_events`` the shard-ordered union of
    injected fault events as ``(shard_id, FaultEvent, EccVerdict)``.
    """

    trace: TraceResult
    bank: CounterBank
    shard_banks: List[CounterBank]
    stats: object
    ras_events: List[Tuple[int, object, object]]
    ras_derived: List[Dict[str, float]]
    shards: int
    workers: int
    seed: int

    @property
    def mean_latency_ns(self) -> float:
        return self.trace.mean_latency_ns

    def latency_histogram(self, edges: np.ndarray | None = None) -> LatencyHistogram:
        """Histogram of the merged latencies over shared edges."""
        return LatencyHistogram.of(
            self.trace.latency_ns,
            DEFAULT_LATENCY_EDGES if edges is None else edges,
        )


def plan_trace_tasks(
    chip: ChipSpec,
    addrs: np.ndarray,
    is_write: Union[bool, np.ndarray] = False,
    *,
    cores: Union[int, np.ndarray, None] = None,
    warm: Optional[np.ndarray] = None,
    shards: int = 1,
    seed: int = 0,
    page_size: Optional[int] = None,
    chunk: int = DEFAULT_CHUNK,
    inject: Optional[str] = None,
    engine: Optional[str] = None,
) -> Tuple[List[TraceShardTask], List[np.ndarray]]:
    """Build the deterministic shard plan: tasks plus original indices.

    Exposed separately from :func:`run_trace_sharded` so tests can
    assert plan purity (same inputs, same tasks) and run the serial
    oracle explicitly.
    """
    addrs = np.asarray(addrs, dtype=np.int64).ravel()
    if engine is None:
        engine = "chip" if cores is not None else "batch"
    line_size = chip.core.l1d.line_size
    indices = interleave_trace(addrs, line_size, shards)
    warm_arr = None
    warm_indices: Optional[List[np.ndarray]] = None
    if warm is not None:
        warm_arr = np.asarray(warm, dtype=np.int64).ravel()
        warm_indices = interleave_trace(warm_arr, line_size, shards)
    writes_arr: Optional[np.ndarray] = None
    if not isinstance(is_write, (bool, np.bool_)):
        writes_arr = np.asarray(is_write, dtype=bool).ravel()
        if writes_arr.size != addrs.size:
            raise ValueError("is_write and addrs must have the same length")
    cores_arr: Optional[np.ndarray] = None
    if cores is not None and not np.isscalar(cores):
        cores_arr = np.asarray(cores, dtype=np.int64).ravel()
        if cores_arr.size != addrs.size:
            raise ValueError("cores and addrs must have the same length")
    seeds = shard_seeds(seed, shards)
    tasks = []
    for s, idx in enumerate(indices):
        tasks.append(
            TraceShardTask(
                engine=engine,
                shard_id=s,
                shards=shards,
                seed=seeds[s],
                chip=chip,
                addrs=addrs[idx],
                writes=bool(is_write) if writes_arr is None else writes_arr[idx],
                cores=(
                    None if cores is None
                    else int(cores) if cores_arr is None
                    else cores_arr[idx]
                ),
                warm_addrs=None if warm_indices is None else warm_arr[warm_indices[s]],
                page_size=page_size,
                chunk=chunk,
                inject=inject,
            )
        )
    return tasks, indices


def run_trace_sharded(
    chip: ChipSpec,
    addrs: np.ndarray,
    is_write: Union[bool, np.ndarray] = False,
    *,
    cores: Union[int, np.ndarray, None] = None,
    warm: Optional[np.ndarray] = None,
    shards: int = 1,
    workers: int = 1,
    seed: int = 0,
    page_size: Optional[int] = None,
    chunk: int = DEFAULT_CHUNK,
    inject: Optional[str] = None,
    engine: Optional[str] = None,
) -> ShardedTraceResult:
    """Run a demand trace sharded over a process pool and merge.

    With ``cores`` given (scalar or per-access array) the multi-core
    :class:`ChipSimulator` services the trace, otherwise the single-core
    batch engine does.  ``warm`` is an optional warm-up trace sharded by
    the same rule and run (unrecorded) before the measured trace —
    per-shard, mirroring the serial measurement protocol.
    """
    tasks, indices = plan_trace_tasks(
        chip, addrs, is_write, cores=cores, warm=warm, shards=shards,
        seed=seed, page_size=page_size, chunk=chunk, inject=inject,
        engine=engine,
    )
    outcomes = ShardPool(workers).map(run_trace_shard, tasks)
    return merge_trace_outcomes(
        outcomes, indices, tasks[0].engine, shards=shards, workers=workers,
        seed=seed,
    )


def merge_trace_outcomes(
    outcomes: Sequence[TraceShardOutcome],
    indices: Sequence[np.ndarray],
    engine: str,
    *,
    shards: int,
    workers: int,
    seed: int,
) -> ShardedTraceResult:
    """Reduce per-shard outcomes (in shard-id order) into one result."""
    outcomes = sorted(outcomes, key=lambda o: o.shard_id)
    n = sum(idx.size for idx in indices)
    code_dtype = outcomes[0].level_codes.dtype if outcomes else np.uint8
    trace = TraceResult(
        latency_ns=scatter_shard_arrays(
            n, indices, [o.latency_ns for o in outcomes], np.float64
        ),
        level_codes=scatter_shard_arrays(
            n, indices, [o.level_codes for o in outcomes], code_dtype
        ),
        translation_cycles=scatter_shard_arrays(
            n, indices, [o.translation_cycles for o in outcomes], np.float64
        ),
        level_names=CHIP_LEVELS if engine == "chip" else LEVELS,
    )
    shard_banks = [CounterBank(o.counters) for o in outcomes]
    stats_cls = ChipStats if engine == "chip" else HierarchyStats
    return ShardedTraceResult(
        trace=trace,
        bank=CounterBank.merge(shard_banks),
        shard_banks=shard_banks,
        stats=stats_cls.merged([o.stats for o in outcomes]),
        ras_events=union_ras_events([o.ras_events for o in outcomes]),
        ras_derived=[o.ras_derived for o in outcomes],
        shards=shards,
        workers=workers,
        seed=seed,
    )


def sharded_traced_latency(
    system: SystemSpec,
    working_set: int,
    *,
    page_size: Optional[int] = None,
    passes: int = 3,
    seed: int = 0,
    shards: int = 1,
    workers: int = 1,
    inject: Optional[str] = None,
) -> Tuple[float, ShardedTraceResult]:
    """Sharded counterpart of :func:`repro.bench.latency.traced_latency_ns`.

    The chase trace is generated exactly as in the serial tool (one
    warm-up pass, ``passes - 1`` measured passes), then both the warm
    and measured traces are line-interleaved over the shards.  With
    ``shards=1`` the result is bit-identical to the serial measurement.
    """
    from ..mem.trace import random_chase_addresses

    if passes < 2:
        raise ValueError("need a warm-up pass plus at least one measured pass")
    line = system.chip.core.l1d.line_size
    warm = random_chase_addresses(working_set, line, passes=1, seed=seed)
    measured = random_chase_addresses(working_set, line, passes=passes - 1, seed=seed)
    result = run_trace_sharded(
        system.chip, measured, warm=warm, shards=shards, workers=workers,
        seed=seed, page_size=page_size, inject=inject,
    )
    return result.mean_latency_ns, result
