"""Roofline-style execution-time estimator for application kernels.

The three applications of §V run their *algorithms* for real (so
correctness is testable at container scale) but take their *E870-scale
timings* from this model: a kernel is characterised by its operation
counts and access pattern, and its execution time is the roofline
maximum of compute time and memory time under the machine's calibrated
bandwidth models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.specs import SystemSpec
from ..mem.centaur import MemoryLinkModel, read_fraction
from ..prefetch.dcbt import block_scan_efficiency
from .littles_law import RandomAccessModel
from .stream_model import chip_stream_bandwidth


@dataclass(frozen=True)
class KernelProfile:
    """Operation counts and shape of one kernel execution."""

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    pattern: str = "stream"  # "stream" | "random" | "blocked"
    block_bytes: Optional[int] = None  # for the "blocked" pattern
    cores: Optional[int] = None  # defaults to the whole machine
    threads_per_core: int = 8
    flop_efficiency: float = 0.85  # attainable fraction of peak compute
    parallel_efficiency: float = 1.0  # load balance / synchronisation

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError(f"{self.name}: negative operation counts")
        if self.pattern not in ("stream", "random", "blocked"):
            raise ValueError(f"{self.name}: unknown pattern {self.pattern!r}")
        if self.pattern == "blocked" and not self.block_bytes:
            raise ValueError(f"{self.name}: blocked pattern needs block_bytes")
        if not 0 < self.flop_efficiency <= 1 or not 0 < self.parallel_efficiency <= 1:
            raise ValueError(f"{self.name}: efficiencies must be in (0, 1]")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def operational_intensity(self) -> float:
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    @property
    def read_byte_fraction(self) -> float:
        if self.total_bytes == 0:
            return 1.0
        return self.bytes_read / self.total_bytes


class MachineModel:
    """Time estimator for kernels on a POWER8 SMP system."""

    def __init__(self, system: SystemSpec) -> None:
        self.system = system
        self._link = MemoryLinkModel(system.chip)
        self._random = RandomAccessModel(system)

    # -- bandwidth resolution --------------------------------------------------
    def effective_bandwidth(self, kernel: KernelProfile) -> float:
        """Sustained bytes/s this kernel's access pattern can achieve."""
        cores = kernel.cores if kernel.cores is not None else self.system.num_cores
        if not 1 <= cores <= self.system.num_cores:
            raise ValueError(
                f"cores must be in [1, {self.system.num_cores}], got {cores}"
            )
        f = kernel.read_byte_fraction
        chips_used = max(1, min(
            self.system.num_chips, cores // self.system.chip.cores_per_chip
        ))
        cores_per_chip = max(1, cores // chips_used)
        stream_bw = chips_used * chip_stream_bandwidth(
            self.system.chip, cores_per_chip, kernel.threads_per_core, f
        )
        if kernel.pattern == "stream":
            return stream_bw
        if kernel.pattern == "random":
            rand_bw = self._random.bandwidth(kernel.threads_per_core, 4)
            return min(stream_bw, rand_bw * cores / self.system.num_cores)
        # blocked: streaming derated by the per-block stream-startup cost
        eff = block_scan_efficiency(self.system.chip, kernel.block_bytes, use_dcbt=True)
        return stream_bw * eff

    def compute_rate(self, kernel: KernelProfile) -> float:
        """Sustained FLOP/s for this kernel (double precision)."""
        cores = kernel.cores if kernel.cores is not None else self.system.num_cores
        per_core = (
            self.system.chip.core.peak_flops_per_cycle()
            * self.system.chip.frequency_hz
        )
        return cores * per_core * kernel.flop_efficiency

    # -- headline estimate --------------------------------------------------------
    def time(self, kernel: KernelProfile) -> float:
        """Execution time in seconds (roofline max of compute and memory)."""
        compute_t = kernel.flops / self.compute_rate(kernel) if kernel.flops else 0.0
        memory_t = (
            kernel.total_bytes / self.effective_bandwidth(kernel)
            if kernel.total_bytes
            else 0.0
        )
        return max(compute_t, memory_t) / kernel.parallel_efficiency

    def gflops(self, kernel: KernelProfile) -> float:
        """Achieved GFLOP/s implied by the time estimate."""
        t = self.time(kernel)
        if t == 0:
            return 0.0
        return kernel.flops / t / 1e9
