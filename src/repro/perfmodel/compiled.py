"""Compiled machine models: spec-derived tables, built once per machine.

Everything the analytic oracle derives from a :class:`SystemSpec` is a
pure function of the spec — hierarchy level reaches and latencies,
translation penalties, the prefetch ramp schedule, the cold open-page
DRAM walk, roofline ceilings, Little's-law saturation curves, energy
coefficients.  The scalar oracle recomputes slices of that state on
every ``predict()``; a :class:`CompiledMachineModel` precomputes it
once so :meth:`AnalyticOracle.predict_batch` can answer thousands of
requests as structure-of-arrays numpy over the compiled tables.

Models are immutable once built (their internal caches only memoize
pure derivations) and live in a bounded process-wide registry keyed by
``(canonical machine name, spec fingerprint)`` — so a long-running
serve daemon answering for the whole machine zoo resolves each machine
to its compiled state exactly once, and aliases (``power8`` vs
``s824``) share one entry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from functools import cached_property
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..arch.registry import canonical_name, get_system
from ..arch.specs import SystemSpec
from ..mem.analytic import AnalyticHierarchy
from ..mem.dram import DRAMModel
from ..prefetch.dscr import prefetch_distance
from ..prefetch.engine import ramp_schedule
from ..roofline.energy import EnergyRoofline
from ..roofline.model import Roofline
from .kernel_time import MachineModel
from .littles_law import RandomAccessModel

#: Bound on the process-wide compiled-model registry.
MAX_COMPILED_MODELS = 16

#: Bound on the per-model hierarchy cache (distinct page sizes seen).
MAX_HIERARCHIES = 8

#: Bound on the per-model memo of reusable result templates.
MAX_RESULT_MEMO = 128


class BoundedCache:
    """Tiny thread-safe LRU mapping — the bound every long-lived cache needs."""

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key):
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def get_or_build(self, key, build):
        """Return the cached value, building (outside the lock) on a miss.

        Concurrent builders may race; the last write wins, which is fine
        because every build is a pure function of the key.
        """
        value = self.get(key)
        if value is None:
            value = build()
            self.put(key, value)
        return value


def spec_fingerprint(system: SystemSpec) -> str:
    """Stable digest of a spec's full parameterisation.

    Specs are frozen dataclasses whose ``repr`` enumerates every field,
    so the digest changes iff any model-relevant parameter does — the
    registry key that keeps a mutated/re-registered machine name from
    aliasing stale compiled state.
    """
    return hashlib.sha256(repr(system).encode()).hexdigest()[:16]


class CompiledSweepTables:
    """Closed-form cold-sweep state: everything ``stream_sweep`` rederives.

    The scalar twin walks a tiny Python loop (cold open-page DRAM walk)
    and rebuilds the ramp schedule per call; both are pure functions of
    (chip, DRAM geometry), so the compiled form stores the loop's
    prefix sums and the saturated schedule per prefetch distance.  The
    tables hold the *exact* floats the scalar loop accumulates — prefix
    ``k`` of ``cold_dram_cum`` is bit-identical to the scalar walk with
    ``misses == k``.
    """

    def __init__(self, chip, dram: DRAMModel) -> None:
        self.chip = chip
        self.dram = dram
        core = chip.core
        tlb = core.tlb
        self.line = core.l1d.line_size
        pf = chip.prefetch
        self.confirm = pf.confirm_accesses
        self.ramp_start = pf.ramp_start
        self.trans_unit_ns = chip.cycles_to_ns(
            tlb.erat_miss_penalty_cycles + tlb.tlb_miss_penalty_cycles
        )
        self.lat_l2_ns = chip.cycles_to_ns(core.l2.latency_cycles)
        # Prefix sums of the cold open-page walk, replayed with the
        # scalar loop itself so every partial sum is the scalar value.
        cum = np.empty(self.confirm + 1, dtype=np.float64)
        cum[0] = 0.0
        open_rows: Dict[int, int] = {}
        dram_ns = 0.0
        for i in range(self.confirm):
            row = (i * self.line) // dram.row_size
            bank = row % dram.num_banks
            dram_ns += dram.hit_latency_ns
            if open_rows.get(bank) != row:
                dram_ns += dram.miss_extra_ns
                open_rows[bank] = row
            cum[i + 1] = dram_ns
        self.cold_dram_cum = cum
        self._distances: Dict[int, int] = {}
        self._schedules: Dict[int, np.ndarray] = {}

    def distance_for(self, depth: int) -> int:
        """Prefetch distance for a DSCR depth (0 = engine off), memoized."""
        if not depth:
            return 0
        if depth not in self._distances:
            self._distances[depth] = prefetch_distance(depth, self.chip.prefetch)
        return self._distances[depth]

    def schedule_for(self, distance: int) -> np.ndarray:
        """Saturated ramp schedule for a distance (len ≈ log2, memoized).

        ``ramp_schedule`` stops once the depth saturates, so a huge ``n``
        yields the full schedule; any real ``n`` sees the prefix, and
        index ``min(advances, len) - 1`` picks the same final depth the
        scalar twin reads.
        """
        if distance not in self._schedules:
            full = ramp_schedule(self.ramp_start, distance, 1 << 62, self.ramp_start)
            self._schedules[distance] = np.asarray(full, dtype=np.int64)
        return self._schedules[distance]


class CompiledMachineModel:
    """One machine's precomputed analytic state (treat as immutable).

    Construction is cheap; the heavier derivations (roofline rows,
    Little's-law curves, energy coefficients, per-page hierarchies) are
    built on first use and memoized.  Internal caches are bounded, so a
    daemon holding compiled models for the whole zoo has a hard memory
    ceiling regardless of traffic shape.
    """

    def __init__(self, system: SystemSpec, dram: Optional[DRAMModel] = None) -> None:
        self.system = system
        self.chip = system.chip
        self.dram = dram if dram is not None else DRAMModel()
        self.fingerprint = spec_fingerprint(system)
        self.sweep = CompiledSweepTables(self.chip, self.dram)
        self._hierarchies = BoundedCache(MAX_HIERARCHIES)
        #: Memoized result templates for request kinds whose payload is a
        #: pure function of a few request fields (see the oracle's
        #: ``_MEMO_KEY_FIELDS``); shared by every oracle on this spec.
        self.result_memo = BoundedCache(MAX_RESULT_MEMO)

    def hierarchy(self, page_size: int) -> AnalyticHierarchy:
        """The per-page-size capacity model, from a bounded LRU."""
        return self._hierarchies.get_or_build(
            page_size, lambda: AnalyticHierarchy(self.chip, page_size=page_size)
        )

    @cached_property
    def random_access(self) -> RandomAccessModel:
        return RandomAccessModel(self.system)

    @cached_property
    def roofline(self) -> Roofline:
        return Roofline(self.system)

    @cached_property
    def roofline_rows(self) -> list:
        from .oracle import roofline_rows

        return roofline_rows(self.roofline)

    @cached_property
    def machine_model(self) -> MachineModel:
        return MachineModel(self.system)

    @cached_property
    def energy(self) -> EnergyRoofline:
        return EnergyRoofline(self.system)

    @cached_property
    def energy_curve(self) -> list:
        """GFLOP/s-per-watt over the roofline's OI decades (Afzal-style)."""
        return self.energy.series()


_REGISTRY = BoundedCache(MAX_COMPILED_MODELS)


def compiled_model(
    system: Union[SystemSpec, str], dram: Optional[DRAMModel] = None
) -> CompiledMachineModel:
    """The registry entry for a machine (built on first use, LRU-bounded).

    Accepts a spec or any registry name/alias.  A custom ``dram``
    bypasses the registry — those models are private to their oracle,
    since the sweep tables bake in DRAM geometry.
    """
    if isinstance(system, str):
        system = get_system(canonical_name(system))
    if dram is not None:
        return CompiledMachineModel(system, dram)
    # Aliases resolve to the same spec object, so (display name,
    # fingerprint) collapses every alias onto one compiled entry.
    key = (system.name, spec_fingerprint(system))
    return _REGISTRY.get_or_build(key, lambda: CompiledMachineModel(system))


def compiled_registry_len() -> int:
    """How many compiled models the process currently holds (tests)."""
    return len(_REGISTRY)
