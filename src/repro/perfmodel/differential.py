"""Tolerance-gated cross-validation of the oracle against the simulators.

Every paper figure the :class:`~repro.perfmodel.oracle.AnalyticOracle`
predicts is checked here against ground truth, under a per-figure
tolerance recorded in ``golden_tolerances.json`` (package data, shipped
next to this module).  Two kinds of case:

* **trace cases** run the trace-driven batch engine and compare the
  oracle's twin prediction — exact (1e-9) for the deterministic
  sequential-sweep regimes, a few percent to ~30% for the random chase
  whose sharp LRU knees the smooth capacity model rounds off;
* **figure cases** run the registered experiment and compare the
  oracle's rendering of the same figure — exact, because the two are
  required to share one implementation (that is the point).

Regenerate the golden file after an intentional model change with::

    PYTHONPATH=src python -m tests.oracle.regen_golden

``repro.bench`` is only imported inside case runners: the bench package
imports ``perfmodel`` at module level, so the reverse edge must stay
lazy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.specs import SystemSpec
from .oracle import AnalyticOracle, OracleRequest

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_tolerances.json"

KIB = 1024
MIB = 1024 * KIB

#: Working sets of the random-chase trace cases (one per plateau the
#: fidelity suite already covers, plus the remote-L3 region).
CHASE_POINTS = {
    "chase_32k": 32 * KIB,
    "chase_256k": 256 * KIB,
    "chase_1m": 1 * MIB,
    "chase_4m": 4 * MIB,
    "chase_16m": 16 * MIB,
}

#: Sweep shape of the deterministic trace cases.
STREAM_SWEEP_BYTES = 4 * MIB
PREFETCH_SWEEP_LINES = 2048

#: Tolerance floor written by the regenerator: deterministic regimes
#: are exact to float rounding, the chase model is only plateau-faithful.
EXACT_FLOOR = 1e-9
CHASE_FLOOR = 0.02
#: Headroom factor over the measured error at regeneration time.
GOLDEN_HEADROOM = 1.5


@dataclass(frozen=True)
class CaseResult:
    """One differential case's outcome against its golden tolerance."""

    name: str
    figure: str
    rel_err: float
    tolerance: float
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.rel_err <= self.tolerance

    def line(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return (
            f"{status} {self.name:24s} {self.figure:8s} "
            f"rel_err={self.rel_err:.3e} tol={self.tolerance:.3e}  {self.detail}"
        )


def _max_rel(pairs: Sequence[Tuple[float, float]]) -> float:
    """Max relative error over (truth, predicted) pairs."""
    worst = 0.0
    for truth, pred in pairs:
        scale = max(abs(truth), 1e-30)
        worst = max(worst, abs(truth - pred) / scale)
    return worst


def _count_err(expected: int, got: int) -> float:
    return abs(expected - got) / max(1.0, abs(expected))


# -- trace cases --------------------------------------------------------------

def _run_chase(system: SystemSpec, oracle: AnalyticOracle, working_set: int):
    from ..bench.latency import traced_latency_ns

    traced = traced_latency_ns(system, working_set, passes=3)
    predicted = oracle.chase_latency_ns(working_set, system.chip.page_size)
    return (
        _max_rel([(traced, predicted)]),
        f"trace={traced:.2f}ns oracle={predicted:.2f}ns",
    )


def _run_stream_cold(system: SystemSpec, oracle: AnalyticOracle, depth: int):
    from ..bench.latency import traced_stream_latency_ns

    traced = traced_stream_latency_ns(system, STREAM_SWEEP_BYTES, depth=depth)
    predicted = oracle.stream_sweep(
        STREAM_SWEEP_BYTES, depth=depth, page_size=system.chip.page_size
    )
    return (
        _max_rel([(traced, predicted.mean_latency_ns)]),
        f"trace={traced:.3f}ns oracle={predicted.mean_latency_ns:.3f}ns",
    )


def _run_prefetch_sweep(system: SystemSpec, oracle: AnalyticOracle):
    """Latency *and* PMU counters across every DSCR depth, exactly."""
    from ..prefetch.traced import traced_dscr_sweep

    traced = traced_dscr_sweep(system.chip, n_lines=PREFETCH_SWEEP_LINES)
    predicted = oracle.prefetch_depth_sweep(n_lines=PREFETCH_SWEEP_LINES)
    worst = 0.0
    for t, p in zip(traced, predicted):
        worst = max(worst, _max_rel([(t["mean_latency_ns"], p.mean_latency_ns)]))
        for key, got in (
            ("dram_misses", p.dram_misses),
            ("prefetch_issued", p.prefetch_issued),
            ("prefetch_useful", p.prefetch_useful),
        ):
            worst = max(worst, _count_err(int(t[key]), got))
    return worst, f"{len(traced)} depths, latency + 3 counters each"


# -- figure cases -------------------------------------------------------------

def _experiment(system: SystemSpec, exp_id: str):
    from ..bench.runner import run_experiment

    return run_experiment(exp_id, system)


def _run_fig2(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig2")
    req = OracleRequest(kind="lat_mem", page_size=system.chip.page_size)
    pred = oracle.predict(req).rows
    pairs = [(er[1], pr[1]) for er, pr in zip(exp.rows, pred)]
    pairs += [(er[0], pr[0]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} working sets (base pages)"


def _run_table3(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "table3")
    pred = oracle.predict(OracleRequest(kind="stream_table3")).rows
    pairs = [(er[1], pr[2]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} read:write mixes"


def _run_fig3(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig3")
    pred = oracle.predict(OracleRequest(kind="stream_scaling")).rows
    pairs = [(er[2], pr[2]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} placements"


def _run_fig4(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig4")
    pred = oracle.predict(OracleRequest(kind="random_access")).rows
    pairs = [(er[2], pr[3]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} grid points"


def _run_fig6(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig6")
    pred = oracle.predict(OracleRequest(kind="dscr_model")).rows
    pairs = [(er[2], pr[2]) for er, pr in zip(exp.rows, pred)]
    pairs += [(er[3], pr[3]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} DSCR settings"


def _run_fig7(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig7")
    pred = oracle.predict(OracleRequest(kind="stride")).rows
    pairs = [(er[i], pr[i]) for er, pr in zip(exp.rows, pred) for i in (1, 2)]
    return _max_rel(pairs), f"{len(pred)} depths, detection on/off"


def _run_fig8(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig8")
    pred = oracle.predict(OracleRequest(kind="dcbt")).rows
    # The experiment reports percentages; the oracle raw efficiencies.
    pairs = [
        (er[i], 100.0 * pr[i]) for er, pr in zip(exp.rows, pred) for i in (1, 2)
    ]
    return _max_rel(pairs), f"{len(pred)} block sizes"


def _run_fig9(system: SystemSpec, oracle: AnalyticOracle):
    exp = _experiment(system, "fig9")
    pred = oracle.predict(OracleRequest(kind="roofline")).rows
    pairs = [(er[2], pr[2]) for er, pr in zip(exp.rows, pred)]
    return _max_rel(pairs), f"{len(pred)} kernels"


#: name -> (figure, tolerance floor, runner).  Trace cases first; the
#: figure cases assert the one-implementation property and are exact.
Runner = Callable[[SystemSpec, AnalyticOracle], Tuple[float, str]]
CASES: Dict[str, Tuple[str, float, Runner]] = {
    **{
        name: (
            "fig2",
            CHASE_FLOOR,
            (lambda ws: lambda s, o: _run_chase(s, o, ws))(ws),
        )
        for name, ws in CHASE_POINTS.items()
    },
    "stream_cold_depth0": (
        "stream", EXACT_FLOOR, lambda s, o: _run_stream_cold(s, o, 0)
    ),
    "stream_cold_depth7": (
        "stream", EXACT_FLOOR, lambda s, o: _run_stream_cold(s, o, 7)
    ),
    "prefetch_sweep": ("fig6", EXACT_FLOOR, _run_prefetch_sweep),
    "figure_fig2": ("fig2", EXACT_FLOOR, _run_fig2),
    "figure_table3": ("table3", EXACT_FLOOR, _run_table3),
    "figure_fig3": ("fig3", EXACT_FLOOR, _run_fig3),
    "figure_fig4": ("fig4", EXACT_FLOOR, _run_fig4),
    "figure_fig6": ("fig6", EXACT_FLOOR, _run_fig6),
    "figure_fig7": ("fig7", EXACT_FLOOR, _run_fig7),
    "figure_fig8": ("fig8", EXACT_FLOOR, _run_fig8),
    "figure_fig9": ("fig9", EXACT_FLOOR, _run_fig9),
}

#: The fast subset: everything that never touches a trace engine.
FIGURE_CASES = tuple(name for name in CASES if name.startswith("figure_"))


def load_golden_tolerances(
    path: Optional[Path] = None, machine: Optional[str] = None
) -> Dict[str, float]:
    """Per-case tolerances, optionally specialized to one zoo machine.

    The golden file's top level holds the POWER8/E870 tolerances (the
    historical format); a ``machines`` section overrides them per
    machine.  Unknown machines fall back to the top-level values, so a
    freshly added spec is gated at POWER8 strictness until its own
    section is regenerated.
    """
    payload = json.loads((path or GOLDEN_PATH).read_text(encoding="utf-8"))
    tolerances = {name: float(tol) for name, tol in payload["tolerances"].items()}
    if machine is not None:
        overrides = payload.get("machines", {}).get(machine, {})
        for name, tol in overrides.get("tolerances", {}).items():
            tolerances[name] = float(tol)
    return tolerances


def run_differential(
    system: Optional[SystemSpec] = None,
    names: Optional[Sequence[str]] = None,
    tolerances: Optional[Dict[str, float]] = None,
    machine: Optional[str] = None,
) -> List[CaseResult]:
    """Run the differential cases; every result carries its tolerance.

    ``machine`` names a registry entry: it resolves ``system`` when one
    is not passed and selects that machine's golden tolerance section.
    """
    if system is None:
        if machine is not None:
            from ..arch.registry import get_system

            system = get_system(machine)
        else:
            from ..arch import e870

            system = e870()
    if tolerances is None:
        tolerances = load_golden_tolerances(machine=machine)
    oracle = AnalyticOracle(system)
    results = []
    for name in names if names is not None else CASES:
        figure, floor, runner = CASES[name]
        rel_err, detail = runner(system, oracle)
        results.append(
            CaseResult(name, figure, rel_err, tolerances.get(name, floor), detail)
        )
    return results


def measure_errors(
    system: Optional[SystemSpec] = None, machine: Optional[str] = None
) -> Dict[str, float]:
    """Measured rel errors per case (the regenerator's raw material)."""
    results = run_differential(system, tolerances={}, machine=machine)
    return {r.name: r.rel_err for r in results}


def selftest(
    system: Optional[SystemSpec] = None, machine: Optional[str] = None
) -> Tuple[bool, List[str]]:
    """Run every case against the golden tolerances; (ok, report lines)."""
    results = run_differential(system, machine=machine)
    lines = [r.line() for r in results]
    failed = [r for r in results if not r.passed]
    label = f" [{machine}]" if machine else ""
    lines.append(
        f"{len(results) - len(failed)}/{len(results)} differential cases "
        f"within golden tolerance{label}"
    )
    return not failed, lines
