"""SMT-level advisor: how many threads per core should a kernel run?

§III-C observes (citing Adinetz et al. [4]) that "better performance
for POWER8 can be achieved using fewer threads per core" for some
codes: SMT hides latency but threads share issue queues and — beyond
128 live VSX registers — the fast register file.  This module combines
the FMA pipeline model with the bandwidth models to predict the best
SMT level for a kernel characterised by its per-thread instruction-
level parallelism and its memory profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch.specs import SystemSpec
from ..core.fma import fma_efficiency
from ..perfmodel.kernel_time import KernelProfile, MachineModel


@dataclass(frozen=True)
class SMTPoint:
    threads_per_core: int
    compute_rate: float  # flop/s attainable at this SMT level
    memory_bandwidth: float  # bytes/s attainable at this SMT level
    time_seconds: float

    @property
    def throughput(self) -> float:
        return 1.0 / self.time_seconds if self.time_seconds > 0 else float("inf")


@dataclass(frozen=True)
class SMTAdvice:
    best_threads_per_core: int
    points: List[SMTPoint]
    reason: str


def _compute_rate(system: SystemSpec, threads: int, ilp: int) -> float:
    core = system.chip.core
    per_core_peak = core.peak_flops_per_cycle() * system.chip.frequency_hz
    return (
        system.num_cores
        * per_core_peak
        * fma_efficiency(core, threads, ilp)
    )


def advise_smt(
    system: SystemSpec,
    kernel: KernelProfile,
    ilp_per_thread: int = 4,
    candidate_levels: Optional[List[int]] = None,
) -> SMTAdvice:
    """Pick the SMT level minimising the kernel's execution time.

    Parameters
    ----------
    ilp_per_thread:
        Independent floating-point operations one thread exposes per
        loop iteration (the "FMAs in the loop" of Figure 5).  Low ILP
        needs SMT to fill the pipelines; very high ILP overflows the
        register file at high SMT.
    """
    if ilp_per_thread < 1:
        raise ValueError(f"ILP must be >= 1, got {ilp_per_thread}")
    levels = candidate_levels or [1, 2, 4, 6, 8]
    smt_max = system.chip.core.smt_ways
    levels = [t for t in levels if 1 <= t <= smt_max]
    if not levels:
        raise ValueError("no valid SMT levels to consider")
    model = MachineModel(system)
    points: List[SMTPoint] = []
    import dataclasses

    for t in levels:
        compute_rate = _compute_rate(system, t, ilp_per_thread)
        k = dataclasses.replace(kernel, threads_per_core=t)
        memory_bw = model.effective_bandwidth(k) if k.total_bytes else float("inf")
        compute_t = kernel.flops / compute_rate if kernel.flops else 0.0
        memory_t = k.total_bytes / memory_bw if k.total_bytes else 0.0
        points.append(
            SMTPoint(
                threads_per_core=t,
                compute_rate=compute_rate,
                memory_bandwidth=memory_bw if memory_bw != float("inf") else 0.0,
                time_seconds=max(compute_t, memory_t) / kernel.parallel_efficiency,
            )
        )
    best = min(points, key=lambda p: (p.time_seconds, p.threads_per_core))
    best_compute_t = kernel.flops / best.compute_rate if kernel.flops else 0.0
    best_memory_t = (
        kernel.total_bytes / best.memory_bandwidth
        if kernel.total_bytes and best.memory_bandwidth
        else 0.0
    )
    higher_levels_slower = any(
        p.threads_per_core > best.threads_per_core
        and p.compute_rate < best.compute_rate * (1 - 1e-9)
        for p in points
    )
    if best_memory_t >= best_compute_t and kernel.total_bytes:
        reason = "memory bound: enough threads to saturate the links"
    elif higher_levels_slower:
        reason = "register pressure caps the useful SMT level"
    else:
        reason = "pipeline saturation: threads x ILP must reach 12 in flight"
    return SMTAdvice(best.threads_per_core, points, reason)
