"""Concurrency-limited random-access bandwidth (Figure 4).

The paper's microbenchmark chases pointers through random lists, one
cache line per element, and scales the number of outstanding requests
two ways: more SMT threads per core, or more concurrent lists per
thread.  Bandwidth follows Little's law — ``concurrency x line size /
latency`` — until it saturates at the DRAM random-access ceiling
(~41% of the peak read bandwidth, ~500 GB/s on the E870).

We model the saturation with an exponential-knee service curve

    B(N) = B_max * (1 - exp(-N / N_half)),   N_half = B_max * L0 / line

which matches both asymptotes: ``B -> N * line / L0`` for small
concurrency (the paper's "almost linear increase") and ``B -> B_max``
for large.  Per-core concurrency is capped by the load-miss-queue
capacity, which is why growing the list count beyond ~4 at SMT8 stops
helping (44-entry LMQ, 8 x 4 = 32 close to the cap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from ..arch.specs import SystemSpec
from ..interconnect.latency import LatencyModel
from ..interconnect.topology import SMPTopology
from ..mem.centaur import MemoryLinkModel

#: Outstanding demand misses one core can track (load-miss queue).
LMQ_ENTRIES = 44


@dataclass(frozen=True)
class RandomAccessPoint:
    threads_per_core: int
    streams_per_thread: int
    concurrency: int  # total in-flight lines, all cores
    bandwidth: float  # bytes/s


class RandomAccessModel:
    """Little's-law bandwidth model for the Figure 4 sweep."""

    def __init__(self, system: SystemSpec, lmq_entries: int = None) -> None:
        self.system = system
        if lmq_entries is None:
            lmq_entries = system.chip.core.lsu.lmq_entries
        self.lmq_entries = lmq_entries
        self._link = MemoryLinkModel(system.chip)
        self._latency = LatencyModel(SMPTopology(system))

    @property
    def peak_bandwidth(self) -> float:
        """Random-read ceiling: DRAM row misses on every line."""
        return self._link.system_random_read_bandwidth(self.system)

    @property
    def unloaded_latency_ns(self) -> float:
        """Latency of one isolated random read (memory interleaved)."""
        return self._latency.interleaved_latency_ns(0)

    def core_concurrency(self, threads_per_core: int, streams_per_thread: int) -> int:
        """In-flight lines one core sustains (LMQ-capped)."""
        core = self.system.chip.core
        if not 1 <= threads_per_core <= core.smt_ways:
            raise ValueError(
                f"threads/core must be in [1, {core.smt_ways}], got {threads_per_core}"
            )
        if streams_per_thread < 1:
            raise ValueError(f"need at least one stream, got {streams_per_thread}")
        return min(threads_per_core * streams_per_thread, self.lmq_entries)

    def bandwidth(self, threads_per_core: int, streams_per_thread: int) -> float:
        """System random-read bandwidth (bytes/s) at this configuration."""
        n = self.system.num_cores * self.core_concurrency(
            threads_per_core, streams_per_thread
        )
        line = self.system.chip.core.l1d.line_size
        b_max = self.peak_bandwidth
        n_half = b_max * self.unloaded_latency_ns * 1e-9 / line
        if n_half <= 0.0:
            # Zero-latency link: any concurrency saturates immediately.
            return b_max
        return b_max * (1.0 - math.exp(-n / n_half))

    def sweep(
        self,
        thread_counts: Iterable[int] | None = None,
        stream_counts: Iterable[int] = (1, 2, 4, 8, 16, 32),
    ) -> List[RandomAccessPoint]:
        """The full Figure 4 grid.

        ``thread_counts`` defaults to the machine's SMT grid; explicit
        counts beyond ``smt_ways`` are skipped so one request shape
        sweeps every zoo machine.
        """
        smt = self.system.chip.core.smt_ways
        if thread_counts is None:
            thread_counts = self.system.chip.core.thread_sweep
        points = []
        for t in thread_counts:
            if t > smt:
                continue
            for s in stream_counts:
                points.append(
                    RandomAccessPoint(
                        threads_per_core=t,
                        streams_per_thread=s,
                        concurrency=self.system.num_cores
                        * self.core_concurrency(t, s),
                        bandwidth=self.bandwidth(t, s),
                    )
                )
        return points
