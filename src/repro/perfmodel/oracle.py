"""Analytic steady-state oracle: O(1) predictions for every paper figure.

The trace-driven engines answer "what latency does this workload see"
in O(accesses); this module answers the same questions in O(1) from a
:class:`~repro.arch.specs.SystemSpec` plus a workload description —
working-set size, stride/page shape, read:write mix, DSCR depth,
thread/core placement.  It composes the calibrated closed-form pieces
that already exist (:class:`repro.mem.analytic.AnalyticHierarchy`,
:mod:`repro.perfmodel.stream_model`,
:class:`repro.perfmodel.littles_law.RandomAccessModel`,
:func:`repro.prefetch.engine.ramp_schedule`,
:class:`repro.roofline.model.Roofline`) behind one uniform
request/result schema, so a single :class:`AnalyticOracle` emits
``lat_mem``-shaped latency curves, Table III STREAM bandwidths,
prefetch-depth sweeps and roofline points.

Two families of predictions
---------------------------
*Figure models* reproduce the paper's analytic shapes (the same code
paths the experiment registry uses, so the two cannot drift).  *Trace
twins* predict what the trace-driven batch engine itself reports for a
given run — :meth:`AnalyticOracle.stream_sweep` reproduces the cold
sequential sweep of ``tools/stream --trace`` (including the PMU
prefetch counters) in closed form, exactly, by replaying the
prefetcher's confidence ramp analytically; :meth:`chase_latency_ns`
predicts the random-chase point of ``tools/lat_mem --trace`` through
the capacity model.  ``repro.perfmodel.differential`` cross-validates
every twin against the simulator under per-figure tolerances recorded
in a golden file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.specs import ChipSpec, SystemSpec
from ..mem.analytic import AnalyticHierarchy
from ..mem.dram import DRAMModel
from ..prefetch.dcbt import dcbt_sweep
from ..prefetch.dscr import dscr_sweep, prefetch_distance
from ..prefetch.engine import ramp_schedule
from ..prefetch.stride import stride_sweep
from ..roofline.model import Roofline
from .compiled import CompiledMachineModel, compiled_model
from .kernel_time import KernelProfile, MachineModel
from .littles_law import RandomAccessModel
from .stream_model import (
    TABLE3_RATIOS,
    chip_stream_bandwidth,
    fig3a_points,
    fig3b_points,
    system_stream_bandwidth,
    table3_rows,
)

GB = 1e9

#: Page size of the default (non-huge) configuration, bytes.
DEFAULT_PAGE = 64 * 1024

#: Every request kind the oracle answers, with the figure it twins.
REQUEST_KINDS = {
    "lat_mem": "Figure 2 latency curve (working-set sweep)",
    "chase": "trace twin: lat_mem --trace random-chase point",
    "stream_table3": "Table III read:write ratio sweep",
    "stream_point": "one STREAM bandwidth point (ratio or placement)",
    "stream_scaling": "Figure 3 thread/core scaling",
    "stream_sweep": "trace twin: tools/stream --trace sequential sweep",
    "prefetch_sweep": "trace twin: traced DSCR depth sweep (Figure 6)",
    "dscr_model": "Figure 6 closed-form latency/bandwidth sweep",
    "stride": "Figure 7 stride-N detection sweep",
    "dcbt": "Figure 8 DCBT block-scan sweep",
    "random_access": "Figure 4 random-access bandwidth grid",
    "roofline": "Figure 9 roofline bounds",
}


@dataclass(frozen=True)
class OracleRequest:
    """Uniform workload description every oracle query goes through.

    Only the fields a ``kind`` consumes are read; the rest keep their
    defaults, so requests serialize to small stable dicts (the service
    layer's cache key).
    """

    kind: str
    working_set: int = 4 << 20  # bytes (chase point / stream sweep)
    working_sets: Tuple[int, ...] = ()  # lat_mem curve sizes
    page_size: int = DEFAULT_PAGE
    depth: int = 0  # DSCR setting; 0 = prefetch off
    depths: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)
    read_ratio: float = 2.0
    write_ratio: float = 1.0
    cores: Optional[int] = None
    threads_per_core: int = 8
    thread_counts: Tuple[int, ...] = (1, 2, 4, 8)
    stream_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    stride_lines: int = 256

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown oracle request kind {self.kind!r}; "
                f"known: {sorted(REQUEST_KINDS)}"
            )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OracleRequest":
        coerced = dict(data)
        for key in ("working_sets", "depths", "thread_counts", "stream_counts"):
            if key in coerced and coerced[key] is not None:
                coerced[key] = tuple(coerced[key])  # type: ignore[arg-type]
        return cls(**coerced)  # type: ignore[arg-type]


@dataclass(slots=True)
class OracleResult:
    """Tabular prediction with the request that produced it.

    ``slots=True`` keeps construction cheap — the batch kernels build
    one of these per distinct request key, so the init path is hot.
    """

    kind: str
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple]
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    request: Optional[OracleRequest] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "metrics": dict(self.metrics),
            "notes": self.notes,
            "request": self.request.to_dict() if self.request else None,
        }

    def render(self) -> str:
        from ..reporting.tables import format_table

        text = format_table(self.headers, self.rows, title=f"oracle:{self.kind} — {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text


@dataclass(frozen=True)
class StreamSweepPrediction:
    """Closed-form twin of one cold sequential sweep on the batch engine.

    Field-for-field what :func:`repro.prefetch.traced.traced_sequential_scan`
    measures (latency plus the PMU prefetch/DRAM counters), predicted
    without running the trace.
    """

    depth: int
    accesses: int
    mean_latency_ns: float
    per_stream_bandwidth: float  # bytes/s, line / mean latency
    dram_misses: int
    prefetch_issued: int
    prefetch_useful: int

    @property
    def prefetch_accuracy(self) -> float:
        return self.prefetch_useful / self.prefetch_issued if self.prefetch_issued else 0.0


#: Sizes above this are routed to the scalar path: Python ints stay
#: exact past 2**53 where int64/float64 conversions round, and the
#: batch kernels promise bit-identity, not approximation.
_EXACT_INT_MAX = 1 << 52


#: Request kinds whose payload is a pure function of these request
#: fields (every other field is ignored by the handler), which makes
#: them memoizable: ``predict_batch`` evaluates one template per
#: distinct key and clones it for every request carrying that key.
_MEMO_KEY_FIELDS: Dict[str, Tuple[str, ...]] = {
    "stream_table3": (),
    "dscr_model": (),
    "dcbt": (),
    "roofline": (),
    "stride": ("stride_lines",),
    "stream_scaling": ("thread_counts",),
    "random_access": ("thread_counts", "stream_counts"),
    "stream_point": ("cores", "threads_per_core", "read_ratio", "write_ratio"),
}


#: C-level field extractors for the hot dedup paths: ``map(getter,
#: reqs)`` plus ``dict.fromkeys`` replaces a Python-level loop per
#: request with two bulk operations.
_GET_KIND = attrgetter("kind")
_GET_CHASE_KEY = attrgetter("working_set", "page_size")
_GET_LAT_MEM_KEY = attrgetter("working_sets", "page_size")
_GET_SWEEP_KEY = attrgetter("working_set", "depth", "page_size")
_GET_PREFETCH_KEY = attrgetter("working_set", "depths")
_MEMO_GETTERS = {
    kind: attrgetter(*fields) if fields else None
    for kind, fields in _MEMO_KEY_FIELDS.items()
}


def _clone_result(template: "OracleResult", request: "OracleRequest") -> "OracleResult":
    """A fresh result carrying ``request``, sharing the template's payload.

    Rows and metrics are shared, not copied: ``OracleResult.to_dict``
    copies both on the way out, and no consumer mutates a result's
    payload in place (results are read-only by convention — treat them
    so).
    """
    return OracleResult(
        template.kind, template.title, template.headers,
        template.rows, template.metrics, template.notes, request,
    )


def _fan_out(templates, reqs, req_keys) -> List["OracleResult"]:
    """Map per-key templates back onto the request list, in order.

    The first request carrying a key takes the template itself (just
    stamping its ``request``); duplicates get clones, so every caller
    still receives a distinct result object.
    """
    out = []
    append = out.append
    for req, key in zip(reqs, req_keys):
        template = templates[key]
        if template.request is None:
            template.request = req
            append(template)
        else:
            append(_clone_result(template, req))
    return out


class AnalyticOracle:
    """One machine's O(1) prediction engine for every paper figure."""

    def __init__(self, system: SystemSpec, dram: Optional[DRAMModel] = None) -> None:
        self.system = system
        self.chip = system.chip
        #: Compiled spec-derived state (bounded registry entry when the
        #: DRAM geometry is the default; private otherwise, since the
        #: sweep tables bake the geometry in).  Bounding lives there:
        #: hierarchies per page size, result memos, registry entries.
        self.compiled: CompiledMachineModel = compiled_model(system, dram)
        #: DRAM geometry/timing assumed by the trace twins; mirrors the
        #: :class:`DRAMModel` the hierarchy instantiates by default.
        self.dram = self.compiled.dram

    # -- composed sub-models (compiled once per spec, shared) -----------------
    def hierarchy(self, page_size: int = DEFAULT_PAGE) -> AnalyticHierarchy:
        return self.compiled.hierarchy(page_size)

    @property
    def random_access(self) -> RandomAccessModel:
        return self.compiled.random_access

    @property
    def roofline(self) -> Roofline:
        return self.compiled.roofline

    @property
    def machine_model(self) -> MachineModel:
        return self.compiled.machine_model

    # -- latency curves (Figure 2 / lat_mem) ---------------------------------
    def latency_ns(self, working_set: int, page_size: int = DEFAULT_PAGE) -> float:
        """Mean random-chase latency at one working-set size."""
        return self.hierarchy(page_size).latency_ns(working_set)

    chase_latency_ns = latency_ns  # the lat_mem --trace twin is the same model

    def latency_curve(
        self, working_sets: Sequence[int], page_size: int = DEFAULT_PAGE
    ) -> List[Tuple[int, float]]:
        """``lat_mem``-shaped (size, latency) pairs for a size sweep."""
        model = self.hierarchy(page_size)
        return [(int(w), model.latency_ns(int(w))) for w in working_sets]

    # -- STREAM bandwidth (Table III / Figure 3) -----------------------------
    def stream_bandwidth(self, read_ratio: float = 2.0, write_ratio: float = 1.0) -> float:
        """Full-system STREAM bandwidth at a read:write byte ratio."""
        return system_stream_bandwidth(self.system, None, read_ratio, write_ratio)

    def chip_bandwidth(
        self, cores: int, threads_per_core: int, f: Optional[float] = None
    ) -> float:
        """One chip's STREAM bandwidth at a core/thread placement."""
        return chip_stream_bandwidth(self.chip, cores, threads_per_core, f)

    def table3(self, ratios: Optional[Sequence[Tuple[float, float]]] = None) -> List[dict]:
        """The Table III ratio sweep (single shared implementation)."""
        return table3_rows(self.system, TABLE3_RATIOS if ratios is None else ratios)

    # -- trace twin: cold sequential sweep (stream --trace / Fig 6 traced) ---
    def stream_sweep(
        self,
        working_set: Optional[int] = None,
        depth: int = 0,
        page_size: int = DEFAULT_PAGE,
        n_lines: Optional[int] = None,
        chip: Optional[ChipSpec] = None,
    ) -> StreamSweepPrediction:
        """Predict a cold line-granular sequential sweep, exactly.

        The batch engine's bulk streaming/prefetcher paths commit this
        regime deterministically, which makes it predictable in closed
        form: every demand access before the prefetcher's
        ``CONFIRM_ACCESSES``-touch confirmation misses to DRAM; once the
        first :func:`ramp_schedule` step covers the next demand line,
        every later access hits the prefetched line in L2.  DRAM costs
        follow the open-page row buffers (one row miss per
        ``row_size`` bytes), translation costs one cold ERAT+TLB fill
        per page, and the prefetch counters fall out of the ramp's
        saturating horizon.  ``depth`` 0 (or DSCR setting 1) runs with
        prefetching off: the all-miss streaming regime.
        """
        chip = chip if chip is not None else self.chip
        line = chip.core.l1d.line_size
        if n_lines is None:
            if working_set is None:
                raise ValueError("need working_set bytes or n_lines")
            n_lines = int(working_set) // line
        n = int(n_lines)
        if n <= 0:
            raise ValueError(f"sweep needs at least one line, got {n}")
        dram = self.dram
        tlb = chip.core.tlb
        last_addr = (n - 1) * line
        n_pages = last_addr // page_size + 1
        trans_ns = n_pages * chip.cycles_to_ns(
            tlb.erat_miss_penalty_cycles + tlb.tlb_miss_penalty_cycles
        )
        pf = chip.prefetch
        confirm = pf.confirm_accesses
        ramp_start = pf.ramp_start
        distance = prefetch_distance(depth, pf) if depth else 0

        if distance == 0:
            # All-miss streaming: one row-miss precharge per distinct row.
            n_rows = last_addr // dram.row_size + 1
            dram_ns = n * dram.hit_latency_ns + n_rows * dram.miss_extra_ns
            misses, issued, useful = n, 0, 0
            total_ns = dram_ns + trans_ns
        else:
            misses = min(n, confirm)
            # The leading demand misses walk the cold open-page state.
            open_rows: Dict[int, int] = {}
            dram_ns = 0.0
            for i in range(misses):
                row = (i * line) // dram.row_size
                bank = row % dram.num_banks
                dram_ns += dram.hit_latency_ns
                if open_rows.get(bank) != row:
                    dram_ns += dram.miss_extra_ns
                    open_rows[bank] = row
            issued = useful = 0
            if n >= confirm:
                # Confirmed advances ramp along the engine's exact
                # schedule; the horizon after the last access fixes the
                # total lines ever emitted.
                sched = ramp_schedule(ramp_start, distance, n, ramp_start)
                advances = n - (confirm - 1)
                final_depth = sched[min(advances, len(sched)) - 1]
                issued = (n - 1) + final_depth - (confirm - 1)
                useful = max(0, n - confirm)
            lat_l2 = chip.cycles_to_ns(chip.core.l2.latency_cycles)
            total_ns = dram_ns + (n - misses) * lat_l2 + trans_ns

        mean = total_ns / n
        return StreamSweepPrediction(
            depth=depth,
            accesses=n,
            mean_latency_ns=mean,
            per_stream_bandwidth=line / (mean * 1e-9),
            dram_misses=misses,
            prefetch_issued=issued,
            prefetch_useful=useful,
        )

    def prefetch_depth_sweep(
        self,
        depths: Optional[Sequence[int]] = None,
        n_lines: int = 4096,
        chip: Optional[ChipSpec] = None,
    ) -> List[StreamSweepPrediction]:
        """Trace twin of :func:`repro.prefetch.traced.traced_dscr_sweep`."""
        target = chip if chip is not None else self.chip
        if depths is None:
            depths = tuple(sorted(target.prefetch.depth_map))
        # The traced sweep's hierarchy translates at the chip's own base
        # page size; the twin must walk the identical page grid.
        return [
            self.stream_sweep(
                depth=d, n_lines=n_lines, page_size=target.page_size, chip=chip
            )
            for d in depths
        ]

    # -- random access (Figure 4) --------------------------------------------
    def random_access_bandwidth(self, threads_per_core: int, streams_per_thread: int) -> float:
        return self.random_access.bandwidth(threads_per_core, streams_per_thread)

    # -- kernels (roofline time estimates) -----------------------------------
    def kernel_time(self, kernel: KernelProfile) -> float:
        return self.machine_model.time(kernel)

    def kernel_gflops(self, kernel: KernelProfile) -> float:
        return self.machine_model.gflops(kernel)

    # -- the uniform entry point ---------------------------------------------
    def predict(self, request: OracleRequest) -> OracleResult:
        """Answer one request; every kind returns the same result shape."""
        try:
            handler = getattr(self, f"_predict_{request.kind}")
        except AttributeError:  # pragma: no cover — __post_init__ guards
            raise ValueError(f"unknown oracle request kind {request.kind!r}") from None
        result = handler(request)
        result.request = request
        return result

    def predict_batch(self, requests: Sequence[OracleRequest]) -> List[OracleResult]:
        """Answer a heterogeneous request list, vectorized per kind.

        Groups the list by ``kind``, evaluates each group as
        structure-of-arrays numpy over the compiled tables (or a
        memoized template for the fixed-shape kinds), and returns
        results in request order.  Bit-identical to ``[predict(r) for r
        in requests]`` — same canonical payloads element for element —
        which is what lets the serve daemon coalesce concurrent misses
        without perturbing cache keys or golden conformance.
        """
        requests = list(requests)
        if not requests:
            return []
        if len(set(map(_GET_KIND, requests))) == 1:
            return self._batch_kind(requests[0].kind, requests)
        results: List[Optional[OracleResult]] = [None] * len(requests)
        by_kind: Dict[str, List[int]] = {}
        for i, req in enumerate(requests):
            by_kind.setdefault(req.kind, []).append(i)
        for kind, idxs in by_kind.items():
            outs = self._batch_kind(kind, [requests[i] for i in idxs])
            for i, out in zip(idxs, outs):
                results[i] = out
        return results  # type: ignore[return-value]

    def _batch_kind(self, kind: str, reqs: List[OracleRequest]) -> List[OracleResult]:
        """One kind's whole group: memoized, vectorized, or scalar loop."""
        if kind in _MEMO_KEY_FIELDS:
            return self._batch_memoized(kind, reqs)
        batcher = getattr(self, f"_batch_{kind}", None)
        return batcher(reqs) if batcher else [self.predict(r) for r in reqs]

    # -- batched per-kind kernels ----------------------------------------------
    def _batch_memoized(self, kind: str, reqs: List[OracleRequest]) -> List[OracleResult]:
        """Kinds whose payload is a pure function of a few request fields.

        One scalar evaluation per distinct key, cloned (template rows
        shared, fresh result object) for every request carrying it.
        """
        fields = _MEMO_KEY_FIELDS[kind]
        getter = _MEMO_GETTERS[kind]
        if getter is None:
            req_keys = [(kind,)] * len(reqs)
        elif len(fields) == 1:
            req_keys = [(kind, v) for v in map(getter, reqs)]
        else:
            req_keys = [(kind,) + v for v in map(getter, reqs)]
        memo = self.compiled.result_memo
        handler = None
        out = []
        append = out.append
        for req, key in zip(reqs, req_keys):
            template = memo.get(key)
            if template is None:
                if handler is None:
                    handler = getattr(self, f"_predict_{kind}")
                template = handler(req)
                template.request = None
                memo.put(key, template)
            append(_clone_result(template, req))
        return out

    def _batch_chase(self, reqs: List[OracleRequest]) -> List[OracleResult]:
        req_keys = list(map(_GET_CHASE_KEY, reqs))
        templates = dict.fromkeys(req_keys)  # first-occurrence order
        by_page: Dict[int, List[int]] = {}
        for ws, page in templates:
            by_page.setdefault(page, []).append(ws)
        for page, sizes in by_page.items():
            try:
                degenerate = page <= 0 or any(
                    w <= 0 or w > _EXACT_INT_MAX for w in sizes
                )
            except TypeError:
                degenerate = True  # None fields: scalar raise semantics
            if degenerate:
                return [self.predict(r) for r in reqs]
            model = self.hierarchy(page)
            arr = np.asarray(sizes, dtype=np.float64)
            fractions = model.level_fractions_batch(arr)
            latency = model.latency_ns_batch(arr, fractions).tolist()
            columns = [
                (f"fraction_{name}", column.tolist())
                for name, column in fractions.items()
            ]
            for j, ws in enumerate(sizes):
                templates[(ws, page)] = OracleResult(
                    "chase", "random pointer-chase latency (trace twin)",
                    ("working_set_bytes", "latency_ns"),
                    [(ws, latency[j])],
                    metrics={name: column[j] for name, column in columns},
                )
        return _fan_out(templates, reqs, req_keys)

    def _batch_lat_mem(self, reqs: List[OracleRequest]) -> List[OracleResult]:
        req_keys = list(map(_GET_LAT_MEM_KEY, reqs))
        templates = dict.fromkeys(req_keys)  # first-occurrence order
        by_page: Dict[int, List[Tuple[Tuple[int, ...], int, List[int]]]] = {}
        for key in templates:
            try:
                sizes = [int(w) for w in (key[0] or default_working_sets())]
                degenerate = key[1] <= 0 or any(
                    w <= 0 or w > _EXACT_INT_MAX for w in sizes
                )
            except TypeError:
                degenerate = True  # None fields: scalar raise semantics
            if degenerate:
                return [self.predict(r) for r in reqs]
            by_page.setdefault(key[1], []).append((key[0], key[1], sizes))
        for page, entries in by_page.items():
            model = self.hierarchy(page)
            flat = [w for (_, _, sizes) in entries for w in sizes]
            latency = model.latency_ns_batch(
                np.asarray(flat, dtype=np.float64)
            ).tolist()
            offset = 0
            for sizes_key, _, sizes in entries:
                rows = list(zip(sizes, latency[offset:offset + len(sizes)]))
                offset += len(sizes)
                templates[(sizes_key, page)] = OracleResult(
                    "lat_mem", "memory read latency vs working set",
                    ("working_set_bytes", "latency_ns"), rows,
                    metrics={"points": float(len(rows))},
                )
        return _fan_out(templates, reqs, req_keys)

    def _sweep_core(
        self, n_arr: np.ndarray, dist_arr: np.ndarray, page_arr: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """Vectorised :meth:`stream_sweep` over compiled tables.

        Mirrors the scalar twin op for op (same order, same int/float
        promotions), so every element is bit-identical to a scalar call.
        Returns (mean_ns, bandwidth, misses, issued, useful) arrays.
        """
        tables = self.compiled.sweep
        line = tables.line
        confirm = tables.confirm
        last_addr = (n_arr - 1) * line
        trans = (last_addr // page_arr + 1) * tables.trans_unit_ns
        mean = np.empty(n_arr.shape, dtype=np.float64)
        misses = np.empty(n_arr.shape, dtype=np.int64)
        issued = np.zeros(n_arr.shape, dtype=np.int64)
        useful = np.zeros(n_arr.shape, dtype=np.int64)
        off = np.nonzero(dist_arr == 0)[0]
        if off.size:
            n = n_arr[off]
            n_rows = last_addr[off] // self.dram.row_size + 1
            dram_ns = n * self.dram.hit_latency_ns + n_rows * self.dram.miss_extra_ns
            mean[off] = (dram_ns + trans[off]) / n
            misses[off] = n
        for dist in np.unique(dist_arr[dist_arr > 0]):
            idx = np.nonzero(dist_arr == dist)[0]
            n = n_arr[idx]
            m = np.minimum(n, confirm)
            dram_ns = tables.cold_dram_cum[m]
            sched = tables.schedule_for(int(dist))
            confirmed = n >= confirm
            advances = n - (confirm - 1)
            final_depth = sched[
                np.minimum(np.maximum(advances, 1), len(sched)) - 1
            ]
            issued[idx] = np.where(
                confirmed, (n - 1) + final_depth - (confirm - 1), 0
            )
            useful[idx] = np.where(confirmed, np.maximum(0, n - confirm), 0)
            mean[idx] = (dram_ns + (n - m) * tables.lat_l2_ns + trans[idx]) / n
            misses[idx] = m
        return mean, line / (mean * 1e-9), misses, issued, useful

    def _batch_stream_sweep(self, reqs: List[OracleRequest]) -> List[OracleResult]:
        tables = self.compiled.sweep
        req_keys = list(map(_GET_SWEEP_KEY, reqs))
        templates = dict.fromkeys(req_keys)  # first-occurrence order
        keys = list(templates)
        try:
            ws_col, depth_col, page_col = zip(*keys)
            ws_arr = np.asarray(ws_col, dtype=np.int64)
            page_arr = np.asarray(page_col, dtype=np.int64)
            n_arr = ws_arr // tables.line
            distance_of = {d: tables.distance_for(d) for d in set(depth_col)}
            dist_arr = np.asarray(
                list(map(distance_of.__getitem__, depth_col)), dtype=np.int64
            )
            if (
                int(n_arr.min()) <= 0
                or int(n_arr.max()) > _EXACT_INT_MAX
                or int(page_arr.min()) <= 0
            ):
                raise ValueError("outside the exact-int64 envelope")
        except (KeyError, ValueError, TypeError, OverflowError):
            return [self.predict(r) for r in reqs]  # scalar raise semantics
        mean, bw, misses, issued, useful = self._sweep_core(n_arr, dist_arr, page_arr)
        lines = n_arr.tolist()
        # int64/int64 true-divide is exact for these magnitudes (guarded
        # at _EXACT_INT_MAX), so the vectorized accuracy equals the
        # scalar ``useful / issued`` bit for bit.
        acc = np.divide(
            useful, issued,
            out=np.zeros(mean.shape, dtype=np.float64), where=issued != 0,
        ).tolist()
        bw_gb = (bw / GB).tolist()
        mean, bw = mean.tolist(), bw.tolist()
        misses, issued, useful = misses.tolist(), issued.tolist(), useful.tolist()
        headers = ("depth", "accesses", "mean_latency_ns", "bandwidth_gbs",
                   "dram_misses", "prefetch_issued", "prefetch_useful")
        make = OracleResult
        for key, n, m_ns, b, b_gb, mi, iss, use, a in zip(
            keys, lines, mean, bw, bw_gb, misses, issued, useful, acc
        ):
            templates[key] = make(
                "stream_sweep", "cold sequential sweep (trace twin)",
                headers,
                [(key[1], n, m_ns, b_gb, mi, iss, use)],
                {"mean_latency_ns": m_ns, "per_stream_bandwidth": b,
                 "prefetch_accuracy": a},
            )
        return _fan_out(templates, reqs, req_keys)

    def _batch_prefetch_sweep(self, reqs: List[OracleRequest]) -> List[OracleResult]:
        tables = self.compiled.sweep
        req_keys = list(map(_GET_PREFETCH_KEY, reqs))
        templates = dict.fromkeys(req_keys)  # first-occurrence order
        keys = list(templates)
        flat_n: List[int] = []
        flat_dist: List[int] = []
        expanded: List[Tuple[int, ...]] = []
        try:
            for ws, depths in keys:
                if depths is None:
                    depths = tuple(sorted(self.chip.prefetch.depth_map))
                expanded.append(depths)
                n_lines = ws // tables.line
                if n_lines <= 0 or n_lines > _EXACT_INT_MAX:
                    raise ValueError("outside the exact-int64 envelope")
                for depth in depths:
                    flat_n.append(n_lines)
                    flat_dist.append(tables.distance_for(depth))
        except (KeyError, ValueError, TypeError):
            return [self.predict(r) for r in reqs]  # scalar raise semantics
        page = self.chip.page_size
        mean, _, misses, issued, useful = self._sweep_core(
            np.asarray(flat_n, dtype=np.int64),
            np.asarray(flat_dist, dtype=np.int64),
            np.full(len(flat_n), page, dtype=np.int64),
        )
        mean, misses = mean.tolist(), misses.tolist()
        issued, useful = issued.tolist(), useful.tolist()
        headers = ("depth", "accesses", "mean_latency_ns", "dram_misses",
                   "prefetch_issued", "prefetch_useful", "prefetch_accuracy")
        offset = 0
        for (ws, depths_key), depths in zip(keys, expanded):
            rows = []
            for j, depth in enumerate(depths, start=offset):
                iss, use = issued[j], useful[j]
                rows.append((
                    depth, flat_n[j], mean[j], misses[j],
                    iss, use, use / iss if iss else 0.0,
                ))
            offset += len(depths)
            templates[(ws, depths_key)] = OracleResult(
                "prefetch_sweep", "traced DSCR depth sweep (trace twin)",
                headers, rows,
                notes="depth 1 disables the engine: the all-miss streaming regime",
            )
        return _fan_out(templates, reqs, req_keys)

    # -- per-kind handlers -----------------------------------------------------
    def _predict_lat_mem(self, req: OracleRequest) -> OracleResult:
        sizes = req.working_sets or tuple(default_working_sets())
        rows = self.latency_curve(sizes, req.page_size)
        return OracleResult(
            "lat_mem", "memory read latency vs working set",
            ("working_set_bytes", "latency_ns"), [tuple(r) for r in rows],
            metrics={"points": float(len(rows))},
        )

    def _predict_chase(self, req: OracleRequest) -> OracleResult:
        latency = self.chase_latency_ns(req.working_set, req.page_size)
        fractions = self.hierarchy(req.page_size).level_fractions(req.working_set)
        return OracleResult(
            "chase", "random pointer-chase latency (trace twin)",
            ("working_set_bytes", "latency_ns"),
            [(req.working_set, latency)],
            metrics={f"fraction_{k}": v for k, v in fractions.items()},
        )

    def _predict_stream_table3(self, req: OracleRequest) -> OracleResult:
        del req
        rows = [(r["read"], r["write"], r["bandwidth"] / GB) for r in self.table3()]
        peak = max(r[2] for r in rows)
        return OracleResult(
            "stream_table3", "STREAM bandwidth vs read:write ratio",
            ("read", "write", "bandwidth_gbs"), rows,
            metrics={"peak_gbs": peak},
            notes="peak at the 2:1 mix of the two-read/one-write Centaur links",
        )

    def _predict_stream_point(self, req: OracleRequest) -> OracleResult:
        if req.cores is not None:
            bw = self.chip_bandwidth(req.cores, req.threads_per_core)
            rows = [(req.cores, req.threads_per_core, bw / GB)]
            headers = ("cores", "threads_per_core", "bandwidth_gbs")
        else:
            bw = self.stream_bandwidth(req.read_ratio, req.write_ratio)
            rows = [(req.read_ratio, req.write_ratio, bw / GB)]
            headers = ("read", "write", "bandwidth_gbs")
        return OracleResult(
            "stream_point", "one STREAM bandwidth point", headers, rows,
            metrics={"bandwidth": bw},
        )

    def _predict_stream_scaling(self, req: OracleRequest) -> OracleResult:
        rows = [
            (p.cores, p.threads_per_core, p.bandwidth / GB)
            for p in fig3a_points(self.chip, req.thread_counts)
        ] + [
            (p.cores, p.threads_per_core, p.bandwidth / GB)
            for p in fig3b_points(self.chip, thread_counts=req.thread_counts)
            if p.cores != 1
        ]
        return OracleResult(
            "stream_scaling", "STREAM scaling with threads and cores",
            ("cores", "threads_per_core", "bandwidth_gbs"), rows,
            metrics={"chip_peak_gbs": max(r[2] for r in rows)},
        )

    def _predict_stream_sweep(self, req: OracleRequest) -> OracleResult:
        p = self.stream_sweep(req.working_set, req.depth, req.page_size)
        return OracleResult(
            "stream_sweep", "cold sequential sweep (trace twin)",
            ("depth", "accesses", "mean_latency_ns", "bandwidth_gbs",
             "dram_misses", "prefetch_issued", "prefetch_useful"),
            [(p.depth, p.accesses, p.mean_latency_ns,
              p.per_stream_bandwidth / GB, p.dram_misses,
              p.prefetch_issued, p.prefetch_useful)],
            metrics={
                "mean_latency_ns": p.mean_latency_ns,
                "per_stream_bandwidth": p.per_stream_bandwidth,
                "prefetch_accuracy": p.prefetch_accuracy,
            },
        )

    def _predict_prefetch_sweep(self, req: OracleRequest) -> OracleResult:
        n_lines = req.working_set // self.chip.core.l1d.line_size
        rows = [
            (p.depth, p.accesses, p.mean_latency_ns, p.dram_misses,
             p.prefetch_issued, p.prefetch_useful, p.prefetch_accuracy)
            for p in self.prefetch_depth_sweep(req.depths, n_lines=n_lines)
        ]
        return OracleResult(
            "prefetch_sweep", "traced DSCR depth sweep (trace twin)",
            ("depth", "accesses", "mean_latency_ns", "dram_misses",
             "prefetch_issued", "prefetch_useful", "prefetch_accuracy"),
            rows,
            notes="depth 1 disables the engine: the all-miss streaming regime",
        )

    def _predict_dscr_model(self, req: OracleRequest) -> OracleResult:
        del req
        rows = [
            (p.depth, p.distance_lines, p.latency_ns, p.bandwidth / GB)
            for p in dscr_sweep(self.system)
        ]
        return OracleResult(
            "dscr_model", "Figure 6 closed-form DSCR sweep",
            ("depth", "distance_lines", "latency_ns", "bandwidth_gbs"), rows,
        )

    def _predict_stride(self, req: OracleRequest) -> OracleResult:
        rows = [
            (r["depth"], r["latency_disabled_ns"], r["latency_enabled_ns"])
            for r in stride_sweep(self.chip, stride_lines=req.stride_lines)
        ]
        return OracleResult(
            "stride", f"stride-{req.stride_lines} detection sweep (Figure 7)",
            ("depth", "latency_disabled_ns", "latency_enabled_ns"), rows,
        )

    def _predict_dcbt(self, req: OracleRequest) -> OracleResult:
        del req
        sizes = [1 << s for s in range(8, 21)]
        rows = [
            (r["bsize"], r["efficiency_hw"], r["efficiency_dcbt"], r["gain"])
            for r in dcbt_sweep(self.chip, sizes)
        ]
        return OracleResult(
            "dcbt", "DCBT block-scan sweep (Figure 8)",
            ("block_bytes", "efficiency_hw", "efficiency_dcbt", "gain"), rows,
        )

    def _predict_random_access(self, req: OracleRequest) -> OracleResult:
        points = self.random_access.sweep(req.thread_counts, req.stream_counts)
        rows = [
            (p.threads_per_core, p.streams_per_thread, p.concurrency, p.bandwidth / GB)
            for p in points
        ]
        return OracleResult(
            "random_access", "random-access bandwidth grid (Figure 4)",
            ("threads_per_core", "streams_per_thread", "concurrency", "bandwidth_gbs"),
            rows,
            metrics={"peak_gbs": max(r[3] for r in rows)},
        )

    def _predict_roofline(self, req: OracleRequest) -> OracleResult:
        del req
        roof = self.roofline
        rows = roofline_rows(roof)
        return OracleResult(
            "roofline", "roofline bounds (Figure 9)",
            ("kernel", "operational_intensity", "bound_gflops", "bound_by"), rows,
            metrics={
                "balance": roof.balance,
                "peak_gflops": roof.peak_gflops,
                "write_roof_gbs": roof.write_only_bandwidth / GB,
            },
        )


def roofline_rows(roof: Roofline) -> List[Tuple[str, float, float, str]]:
    """The Figure 9 kernel table from one :class:`Roofline`.

    Shared between the experiment registry and the oracle so the two
    renderings cannot drift.
    """
    from ..roofline.kernels import paper_kernels_with_write_case

    return [
        (
            point.name, point.operational_intensity, point.bound_gflops,
            "memory" if point.memory_bound else "compute",
        )
        for point in roof.place_all(paper_kernels_with_write_case())
    ]


def default_working_sets(min_bytes: int = 16 * 1024, max_bytes: int = 8 << 30) -> List[int]:
    """Log-spaced working-set sizes, four points per octave.

    The canonical lat_mem sweep grid; ``repro.bench.latency`` re-exports
    this so the harness and the oracle sample identical sizes.
    """
    sizes, size = [], float(min_bytes)
    while size <= max_bytes:
        sizes.append(int(size))
        size *= 2 ** 0.25
    return sizes
