"""Calibrated performance models: Little's law, STREAM scaling, kernel time."""

from .kernel_time import KernelProfile, MachineModel
from .littles_law import LMQ_ENTRIES, RandomAccessModel, RandomAccessPoint
from .smt_advisor import SMTAdvice, SMTPoint, advise_smt
from .stream_model import (
    StreamPoint,
    chip_stream_bandwidth,
    fig3a_points,
    fig3b_points,
    system_stream_bandwidth,
    table3_rows,
)

__all__ = [
    "LMQ_ENTRIES",
    "KernelProfile",
    "MachineModel",
    "RandomAccessModel",
    "RandomAccessPoint",
    "SMTAdvice",
    "SMTPoint",
    "advise_smt",
    "StreamPoint",
    "chip_stream_bandwidth",
    "fig3a_points",
    "fig3b_points",
    "system_stream_bandwidth",
    "table3_rows",
]
