"""Calibrated performance models and the analytic steady-state oracle."""

from .kernel_time import KernelProfile, MachineModel
from .littles_law import LMQ_ENTRIES, RandomAccessModel, RandomAccessPoint
from .oracle import (
    REQUEST_KINDS,
    AnalyticOracle,
    OracleRequest,
    OracleResult,
    StreamSweepPrediction,
    default_working_sets,
)
from .smt_advisor import SMTAdvice, SMTPoint, advise_smt
from .stream_model import (
    StreamPoint,
    chip_stream_bandwidth,
    fig3a_points,
    fig3b_points,
    system_stream_bandwidth,
    table3_rows,
)

__all__ = [
    "LMQ_ENTRIES",
    "REQUEST_KINDS",
    "AnalyticOracle",
    "KernelProfile",
    "MachineModel",
    "OracleRequest",
    "OracleResult",
    "RandomAccessModel",
    "RandomAccessPoint",
    "SMTAdvice",
    "SMTPoint",
    "StreamSweepPrediction",
    "advise_smt",
    "StreamPoint",
    "chip_stream_bandwidth",
    "default_working_sets",
    "fig3a_points",
    "fig3b_points",
    "system_stream_bandwidth",
    "table3_rows",
]
