"""STREAM bandwidth scaling models (Table III and Figure 3).

Three nested limits govern a STREAM-style kernel on the machine:

* per-thread: prefetch-stream concurrency against memory latency,
* per-core: the core-to-NEST interface (~26 GB/s on POWER8),
* per-chip: the Centaur links with the read:write mix efficiency
  (:mod:`repro.mem.centaur`).

``chip_stream_bandwidth`` takes the min of core- and link-level limits,
reproducing Figure 3b's saturation at ~185 GB/s per chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..arch.specs import ChipSpec, SystemSpec
from ..core.lsu import core_stream_bandwidth
from ..mem.centaur import MemoryLinkModel, optimal_read_fraction, read_fraction


@dataclass(frozen=True)
class StreamPoint:
    cores: int
    threads_per_core: int
    bandwidth: float  # bytes/s


def chip_stream_bandwidth(
    chip: ChipSpec,
    cores: int,
    threads_per_core: int,
    f: float | None = None,
) -> float:
    """Sustained STREAM bandwidth of ``cores`` cores on one chip."""
    if not 1 <= cores <= chip.cores_per_chip:
        raise ValueError(f"cores must be in [1, {chip.cores_per_chip}], got {cores}")
    if f is None:
        f = optimal_read_fraction(chip)
    core_limit = cores * core_stream_bandwidth(chip, threads_per_core)
    link_limit = MemoryLinkModel(chip).chip_bandwidth(f)
    return min(core_limit, link_limit)


def system_stream_bandwidth(
    system: SystemSpec,
    threads_per_core: int | None = None,
    read_ratio: float = 2.0,
    write_ratio: float = 1.0,
) -> float:
    """All chips streaming locally at a read:write ratio (Table III rows).

    ``threads_per_core`` defaults to the machine's full SMT level.
    """
    if threads_per_core is None:
        threads_per_core = system.chip.core.smt_ways
    f = read_fraction(read_ratio, write_ratio)
    per_chip = chip_stream_bandwidth(
        system.chip, system.chip.cores_per_chip, threads_per_core, f
    )
    return system.num_chips * per_chip


#: The read:write byte ratios of the paper's Table III, in row order.
TABLE3_RATIOS: Tuple[Tuple[float, float], ...] = (
    (1, 0),
    (16, 1),
    (8, 1),
    (4, 1),
    (2, 1),
    (1, 1),
    (1, 2),
    (1, 4),
    (0, 1),
)


def table3_rows(
    system: SystemSpec,
    ratios: Iterable[Tuple[float, float]] = TABLE3_RATIOS,
) -> List[dict]:
    """Observed-bandwidth rows for every read:write ratio in Table III."""
    rows = []
    for r, w in ratios:
        rows.append(
            {
                "read": r,
                "write": w,
                "bandwidth": system_stream_bandwidth(system, None, r, w),
            }
        )
    return rows


def fig3a_points(
    chip: ChipSpec, thread_counts: Iterable[int] | None = None
) -> List[StreamPoint]:
    """Figure 3a: one core, varying SMT level.

    ``thread_counts`` defaults to the machine's own SMT grid; explicit
    counts beyond ``smt_ways`` are skipped, so one request shape sweeps
    every zoo machine.
    """
    if thread_counts is None:
        thread_counts = chip.core.thread_sweep
    return [
        StreamPoint(1, t, chip_stream_bandwidth(chip, 1, t))
        for t in thread_counts
        if t <= chip.core.smt_ways
    ]


def fig3b_points(
    chip: ChipSpec,
    core_counts: Iterable[int] | None = None,
    thread_counts: Iterable[int] | None = None,
) -> List[StreamPoint]:
    """Figure 3b: one chip, varying cores and threads per core.

    Defaults derive from the chip (power-of-two core counts up to 8 or
    the chip's core count, SMT levels up to ``smt_ways``); explicit
    values outside the machine's range are skipped.
    """
    if core_counts is None:
        core_counts = tuple(c for c in (1, 2, 4, 8) if c <= chip.cores_per_chip)
    if thread_counts is None:
        thread_counts = chip.core.thread_sweep
    points = []
    for c in core_counts:
        if c > chip.cores_per_chip:
            continue
        for t in thread_counts:
            if t > chip.core.smt_ways:
                continue
            points.append(StreamPoint(c, t, chip_stream_bandwidth(chip, c, t)))
    return points
