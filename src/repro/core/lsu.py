"""Load/store unit throughput limits.

POWER8 issues up to 4 loads and 2 stores per cycle (Table I).  For the
bandwidth models the relevant derived quantity is the core's sustained
memory-interface rate, which on POWER8 is bounded by the core-to-NEST
interface rather than the LSU issue rate; the paper measures ~26 GB/s
of STREAM bandwidth from one core (Figure 3a).
"""

from __future__ import annotations

from ..arch.specs import ChipSpec, CoreSpec

#: Sustained bytes/cycle one core can move to/from the memory subsystem
#: (core-to-NEST interface limit; 6 B/cy x 4.35 GHz = 26.1 GB/s,
#: matching the paper's single-core STREAM plateau).
CORE_MEMORY_BYTES_PER_CYCLE = 6.0

#: Prefetch streams one thread sustains toward memory; limits how much
#: of the core interface a low-SMT configuration can fill.
STREAMS_PER_THREAD = 6


def lsu_issue_bandwidth(core: CoreSpec, frequency_hz: float, vector_bytes: int = 16) -> float:
    """Upper bound from raw LSU issue: (loads+stores)/cycle x access width."""
    ports = core.load_ports + core.store_ports
    return ports * vector_bytes * frequency_hz


def core_stream_bandwidth(chip: ChipSpec, threads: int) -> float:
    """Sustained STREAM bandwidth of one core running ``threads`` threads.

    Each thread contributes up to ``STREAMS_PER_THREAD`` in-flight lines
    against the memory latency (Little's law); the total is capped by
    the core's NEST interface.  Reproduces Figure 3a: roughly linear
    growth for 1-3 threads, saturation near 26 GB/s beyond.
    """
    core = chip.core
    if threads < 1 or threads > core.smt_ways:
        raise ValueError(f"threads must be in [1, {core.smt_ways}], got {threads}")
    line = core.l1d.line_size
    latency_s = chip.centaur.dram_latency_ns * 1e-9
    per_thread = core.lsu.streams_per_thread * line / latency_s
    cap = core.lsu.mem_bytes_per_cycle * chip.frequency_hz
    return min(threads * per_thread, cap)
