"""SMT mode management (§III-C of the paper).

The POWER8 core supports four SMT modes — ST, SMT2, SMT4 and SMT8 —
and switches dynamically with the number of active threads.  In every
mode except ST the hardware threads are statically split into *two
thread-sets*, each of which can use only half of the core's issue
resources (one of the two VSX pipes, half the issue queue, ...).  An
odd number of active threads therefore leaves the two sets imbalanced,
which is why the paper's Figure 5 shows dips at 3, 5 and 7 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SMTMode(Enum):
    ST = 1
    SMT2 = 2
    SMT4 = 4
    SMT8 = 8

    @classmethod
    def for_threads(cls, active_threads: int) -> "SMTMode":
        """Mode the core selects for a given number of active threads."""
        if active_threads < 1:
            raise ValueError(f"need at least one active thread, got {active_threads}")
        if active_threads == 1:
            return cls.ST
        if active_threads == 2:
            return cls.SMT2
        if active_threads <= 4:
            return cls.SMT4
        if active_threads <= 8:
            return cls.SMT8
        raise ValueError(f"POWER8 cores support at most 8 threads, got {active_threads}")


@dataclass(frozen=True)
class ThreadSets:
    """The two static thread-sets of a multi-threaded core."""

    set_a: int
    set_b: int

    @property
    def balanced(self) -> bool:
        return self.set_a == self.set_b

    def __iter__(self):
        return iter((self.set_a, self.set_b))


def split_threads(active_threads: int) -> ThreadSets:
    """Split active threads into the two hardware thread-sets.

    In ST mode the single thread owns the whole core, which we encode
    as both "sets" holding the one thread with full-width resources —
    callers must special-case :attr:`SMTMode.ST` (see
    :func:`repro.core.fma.fma_efficiency`).
    """
    mode = SMTMode.for_threads(active_threads)
    if mode is SMTMode.ST:
        return ThreadSets(1, 0)
    half = active_threads // 2
    return ThreadSets(active_threads - half, half)
