"""POWER8 core models: SMT thread-sets, register file, VSX pipelines, LSU."""

from .fma import fma_efficiency, fma_gflops, fma_sweep
from .lsu import (
    CORE_MEMORY_BYTES_PER_CYCLE,
    STREAMS_PER_THREAD,
    core_stream_bandwidth,
    lsu_issue_bandwidth,
)
from .pipeline import core_utilization_st, pipe_utilization
from .registers import REG_SPILL_SLOWDOWN, registers_used, spill_factor
from .smt import SMTMode, ThreadSets, split_threads

__all__ = [
    "CORE_MEMORY_BYTES_PER_CYCLE",
    "REG_SPILL_SLOWDOWN",
    "STREAMS_PER_THREAD",
    "SMTMode",
    "ThreadSets",
    "core_stream_bandwidth",
    "core_utilization_st",
    "fma_efficiency",
    "fma_gflops",
    "fma_sweep",
    "lsu_issue_bandwidth",
    "pipe_utilization",
    "registers_used",
    "spill_factor",
    "split_threads",
]
