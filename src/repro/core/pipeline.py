"""VSX execution-pipeline saturation model.

A pipelined functional unit with ``latency`` cycles of result latency
needs ``latency`` independent instructions in flight to issue one per
cycle.  A POWER8 core has two symmetric VSX pipes with 6-cycle FMA
latency, hence the paper's "at least 12 independent VSX instructions in
flight" requirement for peak (§III-C).
"""

from __future__ import annotations


def pipe_utilization(independent_ops: float, latency_cycles: float) -> float:
    """Fraction of peak issue rate one pipe achieves.

    With ``k`` independent operations available per thread-set and a
    ``latency``-cycle pipe, steady-state utilisation is ``k/latency``
    capped at 1 (the classic latency-bandwidth saturation law).
    """
    if latency_cycles <= 0:
        raise ValueError(f"latency must be positive, got {latency_cycles}")
    if independent_ops < 0:
        raise ValueError(f"op count cannot be negative, got {independent_ops}")
    return min(1.0, independent_ops / latency_cycles)


def core_utilization_st(independent_ops: float, pipes: int, latency_cycles: float) -> float:
    """Single-thread mode: one thread feeds all ``pipes`` pipes round-robin."""
    if pipes <= 0:
        raise ValueError(f"pipe count must be positive, got {pipes}")
    return pipe_utilization(independent_ops / pipes, latency_cycles)
