"""Two-level VSX register-file model (§III-C, Figure 5).

A POWER8 core has 128 architected VSX registers held in a fast first
level; the rename pool behind them has a higher access cost.  When the
combined architectural working set of all resident threads exceeds 128
registers, a growing fraction of operand accesses spill to the slow
level and throughput degrades — the paper observes the 12-FMA curve
(2 x 12 x t registers) starting to fall beyond six threads per core,
i.e. at 144 registers.
"""

from __future__ import annotations

from ..arch.specs import RegisterFileSpec

#: Throughput loss per unit of relative register-file oversubscription
#: (calibrated so the paper's 144- and 192-register points degrade by
#: roughly 5% and 15% respectively).
REG_SPILL_SLOWDOWN = 0.35


def registers_used(fmas_per_loop: int, threads: int, regs_per_fma: int = 2) -> int:
    """Architected registers demanded by ``threads`` copies of the loop.

    The paper's microbenchmark computes ``R1 = R1 * R2 + R1``, touching
    two VSX registers per FMA instruction.
    """
    if fmas_per_loop < 1 or threads < 1:
        raise ValueError("loop length and thread count must be positive")
    return regs_per_fma * fmas_per_loop * threads


def spill_factor(regs_used: int, spec: RegisterFileSpec) -> float:
    """Multiplicative throughput factor in [0, 1] for register pressure."""
    if regs_used <= 0:
        raise ValueError(f"register demand must be positive, got {regs_used}")
    excess = max(0, regs_used - spec.architected)
    if excess == 0:
        return 1.0
    oversubscription = excess / spec.architected
    return 1.0 / (1.0 + REG_SPILL_SLOWDOWN * oversubscription)
