"""The FMA saturation microbenchmark model (Figure 5).

Reproduces the paper's §III-C experiment: each of ``threads`` hardware
threads executes a loop of ``fmas_per_loop`` *independent* vector FMA
instructions (``R1 = R1 * R2 + R1``).  The model combines three
microarchitectural effects:

1. **Pipeline saturation** — each VSX pipe needs 6 independent FMAs in
   flight; peak requires ``threads x fmas_per_loop >= 12``.
2. **Thread-set imbalance** — in SMT modes the threads are split into
   two sets, each owning one pipe; odd thread counts under-fill a set.
3. **Register pressure** — beyond 128 architected VSX registers
   (``2 x fmas x threads``), operand accesses spill to the slow rename
   level and throughput degrades.
"""

from __future__ import annotations

from typing import Iterable, List

from ..arch.specs import CoreSpec
from .pipeline import core_utilization_st, pipe_utilization
from .registers import registers_used, spill_factor
from .smt import SMTMode, split_threads


def fma_efficiency(core: CoreSpec, threads: int, fmas_per_loop: int) -> float:
    """Fraction of the core's peak FMA throughput achieved.

    Parameters mirror Figure 5: ``threads`` per core (1-8 on POWER8)
    and ``fmas_per_loop`` independent FMA instructions per thread.
    """
    if threads < 1 or threads > core.smt_ways:
        raise ValueError(f"threads must be in [1, {core.smt_ways}], got {threads}")
    if fmas_per_loop < 1:
        raise ValueError(f"need at least one FMA in the loop, got {fmas_per_loop}")

    mode = SMTMode.for_threads(threads)
    if mode is SMTMode.ST:
        util = core_utilization_st(
            fmas_per_loop, core.vsx_pipes, core.fma_latency_cycles
        )
    else:
        sets = split_threads(threads)
        per_set = []
        for set_threads in sets:
            independent = set_threads * fmas_per_loop
            per_set.append(pipe_utilization(independent, core.fma_latency_cycles))
        # Each thread-set owns half the pipes; average their utilisation.
        util = sum(per_set) / len(per_set)

    regs = registers_used(fmas_per_loop, threads)
    return util * spill_factor(regs, core.registers)


def fma_gflops(core: CoreSpec, frequency_hz: float, threads: int, fmas_per_loop: int) -> float:
    """Absolute double-precision GFLOP/s for the Figure 5 configuration."""
    peak = core.peak_flops_per_cycle() * frequency_hz / 1e9
    return peak * fma_efficiency(core, threads, fmas_per_loop)


def fma_sweep(
    core: CoreSpec,
    thread_counts: Iterable[int],
    fma_counts: Iterable[int],
) -> List[dict]:
    """Dense sweep used by the Figure 5 benchmark and example scripts."""
    rows = []
    for t in thread_counts:
        for n in fma_counts:
            rows.append(
                {
                    "threads": t,
                    "fmas_per_loop": n,
                    "registers": registers_used(n, t),
                    "efficiency": fma_efficiency(core, t, n),
                }
            )
    return rows
