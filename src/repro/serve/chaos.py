"""Deterministic service-level fault injection for the serve daemon.

:mod:`repro.ras` injects faults *inside* the simulated machine; this
module injects them into the machinery that serves it — the compute
lanes, the on-disk cache, and the wire.  The design is the same
counter-keyed-draw scheme as :class:`repro.ras.injector.FaultInjector`:
every clause of a plan owns an independent injection site, each site
keeps its own opportunity counter, and whether opportunity ``n`` fires
is the pure function ``deterministic_draw(seed, site, n) < rate`` (or
an exact ``at=n`` trigger).  Two consequences the chaos suite relies
on:

* a replay under the same plan and seed injects the identical fault
  sequence, so availability numbers in ``BENCH_chaos.json`` are
  reproducible modulo wall-clock;
* raising a rate strictly grows the fault set — degradation under
  chaos is monotone in the injected rate, exactly like the RAS layer.

Fault classes
-------------
Server-side (consulted by :class:`~repro.serve.daemon.ReproServer`):

``slow_lane``
    the compute lane sleeps ``delay_ms`` before running (tail latency);
``hang_lane``
    the lane wedges for ``hang_s`` seconds (deadline / timeout food);
``lane_error``
    the lane raises :class:`ChaosError` (worker crash);
``corrupt_disk``
    the on-disk cache entry just written is damaged in place
    (``mode=truncate|bitflip|junk``) — exercising quarantine +
    recompute in :class:`repro.parallel.cache.ResultCache`;
``drop_conn``
    the connection is aborted instead of the response being written
    (the client observes a mid-response disconnect).

Client-side (consulted by the load generator's chaos phase, never by
the daemon — the site streams are independent either way):

``malformed_line``
    a non-JSON line is sent in place of the request;
``oversized_line``
    a line beyond :data:`repro.serve.protocol.MAX_LINE_BYTES` is sent;
``client_disconnect``
    the client aborts its socket mid-request and reconnects.

Plan grammar
------------
``--chaos`` accepts the same compact shape as ``--inject``:
semicolon-separated clauses, each ``kind:key=value,...``::

    slow_lane:rate=0.01,delay_ms=5;lane_error:rate=0.02
    corrupt_disk:at=1,mode=bitflip;drop_conn:rate=0.005
    hang_lane:at=40,hang_s=1.5,lane=trace

Keys: ``rate`` (per-opportunity probability), ``at`` (fire exactly once
on the Nth opportunity, 1-based), ``delay_ms``/``hang_s`` (severity),
``mode`` (disk corruption flavour), ``lane`` (restrict a lane clause to
``analytic``/``experiment``/``trace`` requests).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..ras.faults import deterministic_draw

#: Lane-facing fault kinds (consulted per compute-lane execution).
LANE_KINDS = ("slow_lane", "hang_lane", "lane_error")
#: All server-side kinds (the daemon consults these).
SERVER_KINDS = LANE_KINDS + ("corrupt_disk", "drop_conn")
#: Client-side kinds (the load generator consults these).
CLIENT_KINDS = ("malformed_line", "oversized_line", "client_disconnect")
#: Every kind a plan may name.
CHAOS_KINDS = SERVER_KINDS + CLIENT_KINDS

#: Disk-corruption flavours ``corrupt_disk`` can apply.
CORRUPT_MODES = ("truncate", "bitflip", "junk")

#: Lane names a ``lane=`` filter may restrict a clause to.
LANES = ("analytic", "experiment", "trace")

#: Site bases per kind; clause index is added so two clauses of the
#: same kind draw from independent streams (mirrors repro.ras).
_SITE_BASE = {kind: 0x100000 * (i + 1) for i, kind in enumerate(CHAOS_KINDS)}


class ChaosError(RuntimeError):
    """The injected worker exception (a crash the daemon must absorb)."""


@dataclass(frozen=True)
class ChaosClause:
    """One line of a chaos plan: what breaks, when, how hard."""

    kind: str
    rate: float = 0.0
    at: Optional[int] = None
    delay_ms: float = 25.0
    hang_s: float = 5.0
    mode: str = "truncate"
    lane: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; known: {sorted(CHAOS_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0,1], got {self.rate}")
        if self.at is not None and self.at < 1:
            raise ValueError(f"trigger counts are 1-based, got at={self.at}")
        if self.delay_ms < 0 or self.hang_s < 0:
            raise ValueError(
                f"delays must be >= 0, got delay_ms={self.delay_ms} "
                f"hang_s={self.hang_s}"
            )
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corrupt mode {self.mode!r}; known: {CORRUPT_MODES}"
            )
        if self.lane is not None:
            if self.kind not in LANE_KINDS:
                raise ValueError(
                    f"lane= only applies to lane clauses {LANE_KINDS}, "
                    f"not {self.kind!r}"
                )
            if self.lane not in LANES:
                raise ValueError(
                    f"unknown lane {self.lane!r}; known: {LANES}"
                )

    def fires(self, seed: int, site: int, count: int) -> bool:
        """Deterministically decide opportunity ``count`` (1-based)."""
        if self.at is not None and count == self.at:
            return True
        if self.rate > 0.0:
            return deterministic_draw(seed, site, count) < self.rate
        return False


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered list of chaos clauses (the ``--chaos SPEC`` form)."""

    clauses: Tuple[ChaosClause, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a ``--chaos`` spec string (see module docstring)."""
        clauses: List[ChaosClause] = []
        for token in filter(None, (t.strip() for t in spec.split(";"))):
            name, _, argtext = token.partition(":")
            kwargs: Dict[str, object] = {"kind": name.strip().lower()}
            for kv in filter(None, (p.strip() for p in argtext.split(","))):
                key, sep, value = kv.partition("=")
                if not sep:
                    raise ValueError(f"expected key=value in clause {token!r}")
                key = key.strip().lower()
                value = value.strip()
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "at":
                    kwargs["at"] = int(value)
                elif key == "delay_ms":
                    kwargs["delay_ms"] = float(value)
                elif key == "hang_s":
                    kwargs["hang_s"] = float(value)
                elif key in ("mode", "lane"):
                    kwargs[key] = value.lower()
                else:
                    raise ValueError(f"unknown key {key!r} in clause {token!r}")
            clauses.append(ChaosClause(**kwargs))  # type: ignore[arg-type]
        return cls(clauses=tuple(clauses))

    def describe(self) -> str:
        parts = []
        for c in self.clauses:
            when = f"at={c.at}" if c.at is not None else f"rate={c.rate:g}"
            extra = ""
            if c.kind == "slow_lane":
                extra = f",delay_ms={c.delay_ms:g}"
            elif c.kind == "hang_lane":
                extra = f",hang_s={c.hang_s:g}"
            elif c.kind == "corrupt_disk":
                extra = f",mode={c.mode}"
            if c.lane is not None:
                extra += f",lane={c.lane}"
            parts.append(f"{c.kind}:{when}{extra}")
        return "; ".join(parts) if parts else "(no chaos)"


class ChaosInjector:
    """Deterministic chaos source shared by one daemon (or one loadgen).

    Carries mutable per-clause opportunity counters under a lock — the
    daemon consults it from compute-lane threads and the event loop
    concurrently, and the counts must stay exact for the draws to be
    reproducible.
    """

    def __init__(self, plan: ChaosPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._lock = threading.Lock()
        self._counts = [0] * len(plan.clauses)
        #: Faults actually fired, by kind (surfaced in the stats op).
        self.injected: Dict[str, int] = {}
        self._by_kind = [
            (i, _SITE_BASE[c.kind] + i, c) for i, c in enumerate(plan.clauses)
        ]

    def _consult(
        self, kinds: Tuple[str, ...], lane: Optional[str] = None
    ) -> List[ChaosClause]:
        """Advance every matching clause one opportunity; return the firers."""
        fired: List[ChaosClause] = []
        with self._lock:
            for i, site, clause in self._by_kind:
                if clause.kind not in kinds:
                    continue
                if clause.lane is not None and lane is not None and clause.lane != lane:
                    continue
                self._counts[i] += 1
                if clause.fires(self.seed, site, self._counts[i]):
                    self.injected[clause.kind] = self.injected.get(clause.kind, 0) + 1
                    fired.append(clause)
        return fired

    # -- server-side sites ---------------------------------------------------
    def on_lane(self, lane: str, deadline_s: Optional[float] = None) -> None:
        """One compute-lane execution (called in the lane thread).

        Applies slow/hang sleeps in plan order and raises
        :class:`ChaosError` for a fired ``lane_error``.  Hang sleeps are
        capped at ``deadline_s`` plus a small grace when the initiating
        request carried a deadline, so a wedged lane does not pin its
        daemon thread long after every waiter has given up.
        """
        fired = self._consult(LANE_KINDS, lane)
        for clause in fired:
            if clause.kind == "slow_lane":
                time.sleep(clause.delay_ms / 1e3)
            elif clause.kind == "hang_lane":
                hang = clause.hang_s
                if deadline_s is not None:
                    hang = min(hang, deadline_s + 0.25)
                time.sleep(hang)
        for clause in fired:
            if clause.kind == "lane_error":
                raise ChaosError(f"chaos: injected {lane} lane failure")

    def on_disk_put(self, path: Path) -> bool:
        """One on-disk cache write; damages the file when a clause fires.

        Returns True when the entry was corrupted.  The damage is the
        kind a real disk produces: a truncated write, a flipped bit, or
        overwritten junk — all of which :class:`ResultCache` must
        quarantine on the next read instead of serving.
        """
        fired = [c for c in self._consult(("corrupt_disk",)) if True]
        if not fired:
            return False
        mode = fired[0].mode
        try:
            data = bytearray(Path(path).read_bytes())
            if mode == "truncate":
                data = data[: max(1, len(data) // 2)]
            elif mode == "bitflip":
                data[len(data) // 2] ^= 0x08
            else:  # junk
                data = bytearray(b"\x00corrupt" + bytes(data[:32]))
            tmp = Path(path).with_suffix(f".chaos.{os.getpid()}.tmp")
            tmp.write_bytes(bytes(data))
            os.replace(tmp, path)
        except OSError:
            return False
        return True

    def on_response(self) -> bool:
        """One response about to be written; True = abort the connection."""
        return bool(self._consult(("drop_conn",)))

    # -- client-side sites ---------------------------------------------------
    def on_client_send(self) -> Optional[str]:
        """One client request about to be sent; returns the fault kind to
        apply (``malformed_line``/``oversized_line``/``client_disconnect``)
        or None."""
        fired = self._consult(CLIENT_KINDS)
        return fired[0].kind if fired else None

    def counts(self) -> Dict[str, int]:
        """Faults fired so far, by kind (a copy)."""
        with self._lock:
            return dict(self.injected)


def build_chaos(spec: Optional[str], seed: int = 0) -> Optional[ChaosInjector]:
    """CLI helper: an injector from a ``--chaos`` spec (None passes through)."""
    if spec is None:
        return None
    return ChaosInjector(ChaosPlan.parse(spec), seed=seed)
