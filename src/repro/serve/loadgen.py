"""Load generator for the serve daemon (``--serve-perf``).

Spawns the daemon as a real subprocess (``python -m repro.serve``), so
the measured service pays its own event loop, sockets and GIL — not
the generator's — then drives it through five phases:

1. **conformance** — a handful of served payloads (analytic,
   experiment, trace lanes) are compared bit-for-bit against direct
   in-process computation; no throughput number counts unless
   ``bit_identical`` holds.
2. **dedup** — N clients fire one identical cold trace request
   concurrently; the daemon must execute it once and park the other
   N-1 on the in-flight future (``dedup_ratio`` = parked fraction).
3. **warm** — the hot working set is requested once, serially, so the
   mixed phase's hit rate is deterministic.
4. **mixed** — every connection replays a windowed, pipelined stream
   of mostly-hot/partly-unique analytic requests; per-request
   latencies (p50/p99) and aggregate RPS are measured client-side,
   the LRU hit rate from the daemon's own counters.
5. **hot** — the same machinery at 100% LRU hits: the service's
   ceiling, gated in ``benchmarks/test_perf_serve.py`` at >= 100x the
   cold-start single-request rate (one fresh ``python -c`` oracle
   query — what a CLI user pays per question).

Request mix and schedules are deterministic (hot picks cycle, misses
are unique by construction), so the hit/dedup ratios the trajectory
gate tracks are reproducible run to run; only wall-clock figures are
machine-dependent.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .chaos import ChaosInjector, ChaosPlan
from .client import ServeClient, ServeError, ServeTimeout
from .protocol import MAX_LINE_BYTES, encode_message

#: Analytic chase working sets: hot picks draw from HOT_BASE upward,
#: unique misses from MISS_BASE upward — disjoint by construction.
HOT_BASE = 2 << 20
MISS_BASE = 256 << 20
_STEP = 4096

DEFAULT_MIXED_REQUESTS = 140_000
DEFAULT_HOT_REQUESTS = 60_000
DEFAULT_HOT_SET = 256
DEFAULT_HOT_FRACTION = 0.95
DEFAULT_CONNECTIONS = 4
DEFAULT_WINDOW = 64
DEFAULT_DEDUP_CLIENTS = 16

#: The dedup phase's one expensive request: big enough that every
#: client's frame is on the wire before the first computation finishes.
DEDUP_SPEC = {"kind": "trace", "working_set": 8 << 20, "passes": 3, "seed": 12345}


def chase_spec(working_set: int) -> Dict[str, Any]:
    """One analytic chase run spec (the loadgen's unit of traffic)."""
    return {
        "kind": "analytic",
        "request": {"kind": "chase", "working_set": int(working_set)},
    }


# -- daemon subprocess -------------------------------------------------------


def _subprocess_env() -> Dict[str, str]:
    """Inherited env with this repro checkout importable."""
    import repro

    env = dict(os.environ)
    root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = root if not existing else os.pathsep.join([root, existing])
    return env


class DaemonProcess:
    """``python -m repro.serve`` as a child, port scraped from stdout.

    ``extra_args`` rides extra CLI flags along (``--chaos``, admission
    bounds) for the chaos harness; :meth:`terminate_and_wait` delivers
    SIGTERM and collects the drain banner the daemon prints on the way
    out.
    """

    def __init__(
        self,
        cache_dir: str,
        lru_capacity: int,
        extra_args: Sequence[str] = (),
    ) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--host", "127.0.0.1", "--port", "0",
                "--cache-dir", cache_dir,
                "--lru-capacity", str(lru_capacity),
                *extra_args,
            ],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert self.proc.stdout is not None
        while True:
            line = self.proc.stdout.readline().strip()
            if line.startswith("chaos armed: "):
                continue  # informational banner ahead of the port line
            break
        if not line.startswith("listening on "):
            self.proc.kill()
            raise RuntimeError(f"daemon failed to start: {line!r}")
        host, _, port = line.rpartition("listening on ")[2].rpartition(":")
        self.host, self.port = host, int(port)

    def terminate_and_wait(self, timeout: float = 30.0) -> Tuple[int, str]:
        """SIGTERM the daemon; returns ``(exit_code, remaining stdout)``."""
        import signal

        self.proc.send_signal(signal.SIGTERM)
        try:
            out, _ = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            out, _ = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out or ""

    def stop(self) -> None:
        if self.proc.poll() is not None:
            return
        try:
            with ServeClient(self.host, self.port, timeout=10) as client:
                client.shutdown()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)

    def __enter__(self) -> "DaemonProcess":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- conformance -------------------------------------------------------------


def conformance_check(client: ServeClient) -> Tuple[bool, List[str]]:
    """Served payloads vs direct in-process runs, bit for bit.

    Covers all three lanes plus a repeat fetch (the LRU-hot path must
    serve the identical payload).  Returns ``(ok, detail lines)``.
    """
    from ..arch import e870
    from ..bench.runner import run_with_policy
    from ..parallel.runner import sharded_traced_latency
    from ..perfmodel.oracle import AnalyticOracle, OracleRequest
    from .protocol import canonical, experiment_payload, trace_payload

    system = e870()
    oracle = AnalyticOracle(system)
    cases: List[Tuple[str, Dict[str, Any], Any]] = [
        (
            "analytic:chase",
            chase_spec(4 << 20),
            canonical(
                oracle.predict(
                    OracleRequest(kind="chase", working_set=4 << 20)
                ).to_dict()
            ),
        ),
        (
            "analytic:stream_table3",
            {"kind": "analytic", "request": {"kind": "stream_table3"}},
            canonical(oracle.predict(OracleRequest(kind="stream_table3")).to_dict()),
        ),
        (
            "experiment:table1",
            {"kind": "experiment", "experiment": "table1"},
            experiment_payload(run_with_policy("table1", system)),
        ),
        (
            "trace:sharded",
            {"kind": "trace", "working_set": 64 * 1024, "shards": 2, "seed": 3},
            trace_payload(
                sharded_traced_latency(system, 64 * 1024, shards=2, seed=3)[1]
            ),
        ),
    ]
    ok = True
    lines = []
    for name, spec, direct in cases:
        served = client.run(**spec)
        repeat = client.run(**spec)
        cold_ok = served["payload"] == direct
        hot_ok = repeat["payload"] == direct and repeat["source"] == "lru"
        ok = ok and cold_ok and hot_ok
        lines.append(
            f"{name}: cold={'ok' if cold_ok else 'MISMATCH'} "
            f"hot={'ok' if hot_ok else 'MISMATCH'}"
        )
    return ok, lines


# -- pipelined replay --------------------------------------------------------


def _replay(
    host: str,
    port: int,
    frames: Sequence[bytes],
    window: int,
    out: Dict[str, Any],
) -> None:
    """Replay pre-encoded frames over one connection, window-pipelined.

    Latency for frame ``i`` runs from the ``sendall`` that flushed it to
    the arrival of its response line (ids index into the frame list).
    Results land in ``out`` (thread-friendly).
    """
    n = len(frames)
    send_t = [0.0] * n
    latencies = [0.0] * n
    failures = 0
    sock = socket.create_connection((host, port), timeout=120)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = sock.makefile("rb")
        sent = received = 0
        start = time.perf_counter()
        while received < n:
            if sent < n and sent - received < window:
                batch_end = min(n, received + window)
                chunk = b"".join(frames[sent:batch_end])
                now = time.perf_counter()
                for i in range(sent, batch_end):
                    send_t[i] = now
                sock.sendall(chunk)
                sent = batch_end
            line = reader.readline()
            if not line:
                raise ConnectionError("daemon closed mid-replay")
            response = json.loads(line)
            i = response["id"]
            latencies[i] = time.perf_counter() - send_t[i]
            if not response.get("ok"):
                failures += 1
            received += 1
        out["wall_s"] = time.perf_counter() - start
        out["latencies"] = latencies
        out["failures"] = failures
    finally:
        sock.close()


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_phase(
    host: str,
    port: int,
    schedules: Sequence[Sequence[Dict[str, Any]]],
    window: int,
) -> Dict[str, Any]:
    """Fan per-connection schedules out over threads; aggregate metrics."""
    frames = [
        [encode_message({"op": "run", "id": i, **spec}) for i, spec in enumerate(sched)]
        for sched in schedules
    ]
    outs: List[Dict[str, Any]] = [{} for _ in frames]
    threads = [
        threading.Thread(target=_replay, args=(host, port, f, window, out))
        for f, out in zip(frames, outs)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    for out in outs:
        if "latencies" not in out:
            raise RuntimeError("a replay connection died before finishing")
    latencies = sorted(lat for out in outs for lat in out["latencies"])
    total = len(latencies)
    return {
        "requests": total,
        "wall_s": wall,
        "rps": total / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "failures": sum(out["failures"] for out in outs),
    }


def _mixed_schedules(
    total: int,
    connections: int,
    hot_set: int,
    hot_fraction: float,
) -> List[List[Dict[str, Any]]]:
    """Deterministic per-connection request schedules for the mixed phase.

    Hot picks cycle over the warm set; every miss is a globally unique
    working set, so the phase's LRU hit rate is exactly the hot
    fraction.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    miss_every = max(2, round(1.0 / (1.0 - hot_fraction)))
    per_conn = total // connections
    schedules: List[List[Dict[str, Any]]] = []
    next_miss = 0
    for conn in range(connections):
        schedule = []
        for i in range(per_conn):
            if i % miss_every == miss_every - 1:
                schedule.append(chase_spec(MISS_BASE + next_miss * _STEP))
                next_miss += 1
            else:
                schedule.append(
                    chase_spec(HOT_BASE + ((conn * per_conn + i) % hot_set) * _STEP)
                )
        schedules.append(schedule)
    return schedules


def _hot_schedules(
    total: int, connections: int, hot_set: int
) -> List[List[Dict[str, Any]]]:
    per_conn = total // connections
    return [
        [chase_spec(HOT_BASE + (i % hot_set) * _STEP) for i in range(per_conn)]
        for _ in range(connections)
    ]


# -- cold-start reference ----------------------------------------------------

_COLD_START_CODE = (
    "from repro.arch import e870\n"
    "from repro.perfmodel.oracle import AnalyticOracle, OracleRequest\n"
    "AnalyticOracle(e870()).predict(OracleRequest(kind='chase'))\n"
)


def measure_cold_start() -> float:
    """Seconds one fresh CLI-style process needs to answer one request.

    This is the baseline the service exists to beat: interpreter boot,
    imports, spec construction, one oracle query.
    """
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c", _COLD_START_CODE],
        check=True,
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - start


# -- the harness -------------------------------------------------------------


def run_serve_bench(
    mixed_requests: int = DEFAULT_MIXED_REQUESTS,
    hot_requests: int = DEFAULT_HOT_REQUESTS,
    hot_set: int = DEFAULT_HOT_SET,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
    connections: int = DEFAULT_CONNECTIONS,
    window: int = DEFAULT_WINDOW,
    lru_capacity: int = DEFAULT_HOT_SET * 16,
    dedup_clients: int = DEFAULT_DEDUP_CLIENTS,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run every phase against a freshly spawned daemon; returns the
    ``BENCH_serve.json`` payload."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        with DaemonProcess(
            cache_dir if cache_dir is not None else tmp, lru_capacity
        ) as daemon:
            host, port = daemon.host, daemon.port
            with ServeClient(host, port) as client:
                bit_identical, conformance_lines = conformance_check(client)

                # Dedup: one expensive identical request from N clients at once.
                before = client.stats()["stats"]
                barrier = threading.Barrier(dedup_clients)

                def _dedup_worker() -> None:
                    with ServeClient(host, port) as c:
                        barrier.wait()
                        c.run(**DEDUP_SPEC)

                threads = [
                    threading.Thread(target=_dedup_worker)
                    for _ in range(dedup_clients)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                after = client.stats()["stats"]
                deduped = after["deduped"] - before["deduped"]
                executed = after["computed"] - before["computed"]
                dedup_ratio = deduped / dedup_clients

                # Warm the hot set so the mixed phase's hit rate is exact.
                for j in range(hot_set):
                    client.run(**chase_spec(HOT_BASE + j * _STEP))

                before = client.stats()["stats"]
                mixed = _run_phase(
                    host, port,
                    _mixed_schedules(mixed_requests, connections, hot_set, hot_fraction),
                    window,
                )
                after = client.stats()["stats"]
                phase_requests = after["requests"] - before["requests"]
                lru_hit_rate = (
                    (after["lru_hits"] - before["lru_hits"]) / phase_requests
                    if phase_requests
                    else 0.0
                )

                hot = _run_phase(
                    host, port, _hot_schedules(hot_requests, connections, hot_set),
                    window,
                )
                final_stats = client.stats()

    cold_start_s = measure_cold_start()
    cold_start_rps = 1.0 / cold_start_s if cold_start_s else float("inf")
    return {
        "benchmark": "serve-daemon-loadgen",
        "bit_identical": bool(bit_identical),
        "conformance": conformance_lines,
        "dedup_clients": int(dedup_clients),
        "dedup_ratio": dedup_ratio,
        "dedup_executions": int(executed),
        "hot_set": int(hot_set),
        "hot_fraction": float(hot_fraction),
        "connections": int(connections),
        "window": int(window),
        "lru_capacity": int(lru_capacity),
        "mixed": mixed,
        "hot": hot,
        "lru_hit_rate": lru_hit_rate,
        "cold_start_s": cold_start_s,
        "cold_start_rps": cold_start_rps,
        "hot_rps_over_cold": hot["rps"] * cold_start_s,
        "server_stats": final_stats["stats"],
        "server_tiers": final_stats["tiers"],
        "note": (
            "hot_rps_over_cold = hot-phase (pure LRU hit) RPS divided by the "
            "single-request rate of a cold python -c oracle query; the "
            "benchmark gate requires >= 100 and bit_identical"
        ),
    }


# -- analytic coalescing scenario --------------------------------------------

#: Working sets for the batching scenario, disjoint from every other
#: harness base (HOT/MISS/CHAOS) so cross-phase cache pollution is
#: impossible.
BATCH_MISS_BASE = 768 << 20

DEFAULT_BATCH_REQUESTS = 4096
DEFAULT_BATCH_WINDOW_MS = 2.0
DEFAULT_BATCH_MAX = 64


def run_batch_serve_scenario(
    requests: Optional[int] = None,
    connections: int = DEFAULT_CONNECTIONS,
    window: int = DEFAULT_WINDOW,
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    batch_max: int = DEFAULT_BATCH_MAX,
    verify_sample: int = 32,
) -> Dict[str, Any]:
    """Miss-heavy replay against a daemon with analytic coalescing armed.

    Every request is a globally unique analytic chase (nothing in LRU,
    nothing deduplicable), so any batch the daemon reports larger than
    one request is pure window coalescing.  After the replay, a sample
    of the served (now-cached) payloads is fetched and compared against
    direct in-process predictions — coalescing must be transport-only.
    Returns the ``serve_coalescing`` section of BENCH_oracle_batch.json.
    """
    from ..arch import e870
    from ..perfmodel.oracle import AnalyticOracle, OracleRequest
    from .protocol import canonical

    if requests is None:
        requests = DEFAULT_BATCH_REQUESTS
    per_conn = requests // connections
    schedules = [
        [
            chase_spec(BATCH_MISS_BASE + (conn * per_conn + i) * _STEP)
            for i in range(per_conn)
        ]
        for conn in range(connections)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-batch-serve-") as tmp:
        with DaemonProcess(
            tmp,
            lru_capacity=requests + 64,
            extra_args=[
                "--batch-window-ms", str(batch_window_ms),
                "--batch-max", str(batch_max),
            ],
        ) as daemon:
            phase = _run_phase(daemon.host, daemon.port, schedules, window)
            with ServeClient(daemon.host, daemon.port, timeout=30) as client:
                stats = client.stats()
                oracle = AnalyticOracle(e870())
                payloads_match = True
                step = max(1, requests // verify_sample)
                for j in range(0, requests, step):
                    working_set = BATCH_MISS_BASE + j * _STEP
                    served = client.run(**chase_spec(working_set))
                    direct = canonical(
                        oracle.predict(
                            OracleRequest(kind="chase", working_set=working_set)
                        ).to_dict()
                    )
                    if served["payload"] != direct or served["source"] != "lru":
                        payloads_match = False
    batching = stats.get("batching") or {}
    server_stats = stats["stats"]
    return {
        "requests": int(requests),
        "connections": int(connections),
        "window": int(window),
        "batch_window_ms": float(batch_window_ms),
        "batch_max": int(batch_max),
        "rps": phase["rps"],
        "p50_ms": phase["p50_ms"],
        "p99_ms": phase["p99_ms"],
        "failures": phase["failures"],
        "batches": server_stats["batches"],
        "batched_requests": server_stats["batched_requests"],
        "mean_batch_size": batching.get("mean_batch_size", 0.0),
        "size_histogram": batching.get("size_histogram"),
        "mean_coalesce_wait_ms": batching.get("mean_coalesce_wait_ms", 0.0),
        "coalesced": bool(batching.get("mean_batch_size", 0.0) > 1.0),
        "payloads_match": bool(payloads_match),
    }


# -- chaos harness -----------------------------------------------------------

#: Analytic working sets for the chaos replay, disjoint from the
#: serve-bench bases so cross-phase cache pollution is impossible.
CHAOS_HOT_BASE = 512 << 20
CHAOS_HOT_SET = 64

DEFAULT_CHAOS_REQUESTS = 4000
DEFAULT_CHAOS_CONNECTIONS = 4
DEFAULT_CHAOS_SEED = 0

#: Server-side fault plan for the mixed-fault replay: every server
#: fault class at rates that keep expected availability ~99.7%.
CHAOS_SERVER_SPEC = (
    "slow_lane:rate=0.05,delay_ms=5;"
    "lane_error:rate=0.02;"
    "corrupt_disk:rate=0.2;"
    "drop_conn:rate=0.002"
)

#: Client-side fault plan (driven by the loadgen itself): malformed and
#: oversized lines plus abrupt disconnect/reconnect cycles.
CHAOS_CLIENT_SPEC = (
    "malformed_line:rate=0.01;"
    "oversized_line:rate=0.005;"
    "client_disconnect:rate=0.005"
)

#: The two trace specs mixed into the chaos replay (computed locally
#: for the bit-identity check; small enough to recompute cheaply after
#: every injected corruption).
CHAOS_TRACE_SPECS = (
    {"kind": "trace", "working_set": 64 * 1024, "shards": 2, "seed": 7},
    {"kind": "trace", "working_set": 128 * 1024, "seed": 11},
)


def _chaos_expected() -> Dict[str, Any]:
    """Locally computed ground-truth payloads, keyed by spec JSON."""
    from ..arch import e870
    from ..parallel.runner import sharded_traced_latency
    from ..perfmodel.oracle import AnalyticOracle, OracleRequest
    from .protocol import canonical, trace_payload

    system = e870()
    oracle = AnalyticOracle(system)
    expected: Dict[str, Any] = {}
    for j in range(CHAOS_HOT_SET):
        spec = chase_spec(CHAOS_HOT_BASE + j * _STEP)
        expected[json.dumps(spec, sort_keys=True)] = canonical(
            oracle.predict(
                OracleRequest(kind="chase", working_set=spec["request"]["working_set"])
            ).to_dict()
        )
    for spec in CHAOS_TRACE_SPECS:
        _, result = sharded_traced_latency(
            system,
            spec["working_set"],
            shards=spec.get("shards", 1),
            seed=spec["seed"],
        )
        expected[json.dumps(spec, sort_keys=True)] = trace_payload(result)
    return expected


def _chaos_schedule(total: int) -> List[Dict[str, Any]]:
    """Deterministic request mix: mostly hot analytic, every 16th a
    trace (cached after its first computation)."""
    schedule = []
    for i in range(total):
        if i % 16 == 15:
            schedule.append(dict(CHAOS_TRACE_SPECS[(i // 16) % len(CHAOS_TRACE_SPECS)]))
        else:
            schedule.append(chase_spec(CHAOS_HOT_BASE + (i % CHAOS_HOT_SET) * _STEP))
    return schedule


def _chaos_worker(
    host: str,
    port: int,
    schedule: Sequence[Dict[str, Any]],
    expected: Dict[str, Any],
    injector: ChaosInjector,
    out: Dict[str, Any],
) -> None:
    """Replay one schedule through every fault class, scoring the
    invariant: an ``ok`` non-degraded response must be bit-identical to
    the locally computed payload; anything else must be a structured
    error row (or a clean reconnect), never corrupt bytes."""
    counters = {
        "requests": 0, "ok": 0, "errors": 0, "violations": 0,
        "degraded": 0, "dropped": 0, "timeouts": 0,
        "malformed_sent": 0, "oversized_sent": 0, "disconnects_injected": 0,
    }
    latencies: List[float] = []
    client = ServeClient(host, port, timeout=60)
    try:
        for spec in schedule:
            fault = injector.on_client_send()
            if fault == "client_disconnect":
                # Abrupt mid-stream close; the daemon must shrug it off.
                counters["disconnects_injected"] += 1
                client.close()
                client = ServeClient(host, port, timeout=60)
            elif fault in ("malformed_line", "oversized_line"):
                line = (
                    b"this is not json\n"
                    if fault == "malformed_line"
                    else b'{"pad":"' + b"x" * MAX_LINE_BYTES + b'"}\n'
                )
                counters[
                    "malformed_sent" if fault == "malformed_line" else "oversized_sent"
                ] += 1
                if client._broken or client._sock is None:
                    client.reconnect()
                try:
                    client._sock.sendall(line)
                    bad = json.loads(client._reader.readline())
                    if bad.get("ok") is not False:
                        counters["violations"] += 1
                except (ConnectionError, OSError):
                    client.close()
                    client = ServeClient(host, port, timeout=60)
            counters["requests"] += 1
            start = time.perf_counter()
            try:
                response = client.run(**spec)
            except ServeTimeout:
                counters["timeouts"] += 1
                counters["errors"] += 1
                continue
            except ServeError as exc:
                if not exc.response.get("code") and not exc.response.get("error"):
                    counters["violations"] += 1  # unstructured failure
                counters["errors"] += 1
                continue
            except (ConnectionError, OSError):
                # drop_conn landed on us: reconnect, score unavailability.
                counters["dropped"] += 1
                counters["errors"] += 1
                try:
                    client.close()
                except OSError:
                    pass
                client = ServeClient(host, port, timeout=60)
                continue
            latencies.append(time.perf_counter() - start)
            if response.get("degraded"):
                counters["degraded"] += 1
                counters["ok"] += 1
                continue
            counters["ok"] += 1
            if response["payload"] != expected[json.dumps(spec, sort_keys=True)]:
                counters["violations"] += 1
    finally:
        try:
            client.close()
        except OSError:
            pass
    out.update(counters)
    out["latencies"] = latencies


def run_chaos_bench(
    requests: int = DEFAULT_CHAOS_REQUESTS,
    connections: int = DEFAULT_CHAOS_CONNECTIONS,
    seed: int = DEFAULT_CHAOS_SEED,
) -> Dict[str, Any]:
    """The ``--chaos-perf`` harness: availability and tail latency under
    a seeded mixed-fault replay, plus deterministic quarantine, overload
    and drain probes.  Returns the ``BENCH_chaos.json`` payload."""
    expected = _chaos_expected()
    results: Dict[str, Any] = {
        "benchmark": "serve-daemon-chaos",
        "requests": int(requests),
        "connections": int(connections),
        "seed": int(seed),
        "server_chaos": CHAOS_SERVER_SPEC,
        "client_chaos": CHAOS_CLIENT_SPEC,
    }
    client_plan = ChaosPlan.parse(CHAOS_CLIENT_SPEC)

    # -- phase 1: mixed-fault replay ------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as tmp:
        with DaemonProcess(
            tmp,
            lru_capacity=1024,
            extra_args=["--chaos", CHAOS_SERVER_SPEC, "--chaos-seed", str(seed)],
        ) as daemon:
            per_conn = requests // connections
            schedule = _chaos_schedule(per_conn)
            outs: List[Dict[str, Any]] = [{} for _ in range(connections)]
            threads = [
                threading.Thread(
                    target=_chaos_worker,
                    args=(
                        daemon.host, daemon.port, schedule, expected,
                        ChaosInjector(client_plan, seed=seed + i), outs[i],
                    ),
                )
                for i in range(connections)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - start
            for out in outs:
                if "requests" not in out:
                    raise RuntimeError("a chaos worker died before reporting")
            with ServeClient(daemon.host, daemon.port, timeout=10) as probe:
                stats = probe.stats()
            latencies = sorted(lat for out in outs for lat in out["latencies"])
            total = sum(out["requests"] for out in outs)
            ok = sum(out["ok"] for out in outs)
            results["mixed_fault"] = {
                "wall_s": wall,
                "requests": total,
                "ok": ok,
                "errors": sum(out["errors"] for out in outs),
                "violations": sum(out["violations"] for out in outs),
                "degraded": sum(out["degraded"] for out in outs),
                "dropped": sum(out["dropped"] for out in outs),
                "timeouts": sum(out["timeouts"] for out in outs),
                "malformed_sent": sum(out["malformed_sent"] for out in outs),
                "oversized_sent": sum(out["oversized_sent"] for out in outs),
                "disconnects_injected": sum(
                    out["disconnects_injected"] for out in outs
                ),
                "availability": ok / total if total else 0.0,
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p99_ms": _percentile(latencies, 0.99) * 1e3,
                "server_stats": stats["stats"],
                "server_chaos_counts": stats.get("chaos"),
            }

    # -- phase 2: deterministic corrupt-disk quarantine + self-heal -----
    with tempfile.TemporaryDirectory(prefix="repro-chaos-quar-") as tmp:
        with DaemonProcess(
            tmp,
            lru_capacity=4,
            extra_args=["--chaos", "corrupt_disk:at=1", "--chaos-seed", str(seed)],
        ) as daemon:
            with ServeClient(daemon.host, daemon.port, timeout=60) as client:
                target = dict(CHAOS_TRACE_SPECS[0])
                first = client.run(**target)
                # Evict the target from the 4-entry LRU so the next
                # fetch must read the (corrupted) disk entry.
                for j in range(8):
                    client.run(**chase_spec(CHAOS_HOT_BASE + j * _STEP))
                healed = client.run(**target)
                stats = client.stats()
        results["quarantine"] = {
            "first_source": first["source"],
            "healed_source": healed["source"],
            "payload_identical": first["payload"] == healed["payload"],
            "quarantined": stats["tiers"]["disk"]["quarantined"],
        }

    # -- phase 3: overload shedding -------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-load-") as tmp:
        with DaemonProcess(
            tmp,
            lru_capacity=64,
            extra_args=[
                "--chaos", "slow_lane:rate=1,delay_ms=400,lane=trace",
                "--chaos-seed", str(seed),
                "--max-heavy", "2",
                "--client-heavy-quota", "2",
            ],
        ) as daemon:
            shed: Dict[str, int] = {"busy": 0, "quota": 0, "ok": 0, "other": 0}
            lock = threading.Lock()

            def _flood(offset: int) -> None:
                with ServeClient(daemon.host, daemon.port, timeout=60) as c:
                    for j in range(4):
                        spec = {
                            "kind": "trace",
                            "working_set": 64 * 1024,
                            "seed": 100 + offset * 4 + j,
                        }
                        try:
                            c.run(**spec)
                            with lock:
                                shed["ok"] += 1
                        except ServeError as exc:
                            with lock:
                                if exc.code in ("busy", "quota"):
                                    shed[exc.code] += 1
                                else:
                                    shed["other"] += 1

            threads = [
                threading.Thread(target=_flood, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(daemon.host, daemon.port, timeout=10) as probe:
                stats = probe.stats()
        results["overload"] = {
            **shed,
            "total_shed": shed["busy"] + shed["quota"],
            "server_shed": stats["stats"]["shed"],
            "server_quota_shed": stats["stats"]["quota_shed"],
        }

    # -- phase 4: SIGTERM drain -----------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-drain-") as tmp:
        daemon = DaemonProcess(
            tmp, lru_capacity=64, extra_args=["--drain-timeout", "10"]
        )
        try:
            slow = threading.Thread(
                target=lambda: _swallow(
                    lambda: ServeClient(daemon.host, daemon.port, timeout=30).run(
                        kind="trace", working_set=256 * 1024, seed=999
                    )
                )
            )
            slow.start()
            time.sleep(0.2)  # let the request reach a lane
            exit_code, tail = daemon.terminate_and_wait()
            slow.join(timeout=30)
        finally:
            daemon.stop()
        drained_line = next(
            (l for l in tail.splitlines() if l.startswith("drained ")), ""
        )
        results["drain"] = {
            "exit_code": exit_code,
            "drained_line_present": bool(drained_line),
            "final_stats": (
                json.loads(drained_line[len("drained "):]) if drained_line else None
            ),
        }

    results["note"] = (
        "availability = ok responses / requests under the seeded mixed-fault "
        "replay (server: slow/crashing lanes, disk corruption, dropped "
        "connections; client: malformed/oversized lines, abrupt "
        "disconnects); violations counts any ok non-degraded payload that "
        "was not bit-identical to the locally computed ground truth, and "
        "the gate in benchmarks/test_perf_chaos.py requires zero."
    )
    return results


def _swallow(fn) -> None:
    """Run ``fn`` ignoring every exception (drain-phase background load:
    the request may legitimately be cancelled or cut mid-drain)."""
    try:
        fn()
    except Exception:
        pass
