"""Simulation-as-a-service: the ``repro.serve`` package.

A persistent asyncio front-end over the layers the earlier PRs built —
the O(1) :class:`~repro.perfmodel.oracle.AnalyticOracle`, the sharded
:class:`~repro.parallel.pool.ShardPool` trace engine, the fail-soft
experiment registry and the content-addressed
:class:`~repro.parallel.cache.ResultCache` — so repeated questions
about the modelled machine cost a cache lookup instead of a process.

Layers (one module each):

* :mod:`~repro.serve.protocol` — NDJSON framing, request
  normalization → cache key, served-payload projections;
* :mod:`~repro.serve.lru` — the bounded in-memory LRU tier above the
  on-disk cache;
* :mod:`~repro.serve.daemon` — the server: dedup of in-flight
  identical requests, tiered lookup, compute lanes;
* :mod:`~repro.serve.client` — blocking client library;
* :mod:`~repro.serve.loadgen` — the ``--serve-perf`` load generator.

Everything is conformance-first: ``tests/serve/`` gates every lane on
bit-identity with the direct in-process path (cold, LRU-hot and
disk-hot), and the perf harness refuses to report throughput unless
that check passes.

Run a daemon with ``python -m repro.serve``; benchmark one with
``python -m repro.bench --serve-perf``.
"""

from .chaos import (
    ChaosClause,
    ChaosError,
    ChaosInjector,
    ChaosPlan,
    build_chaos,
)
from .client import ServeClient, ServeError, ServeTimeout
from .daemon import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    CircuitBreaker,
    ReproServer,
    ResilienceConfig,
    ServeStats,
    ServerThread,
)
from .lru import DEFAULT_LRU_CAPACITY, LRUTier, TieredResultCache
from .protocol import (
    ERROR_CODES,
    MACHINES,
    MAX_LINE_BYTES,
    LineReader,
    NormalizedRequest,
    OversizedLineError,
    ProtocolError,
    canonical,
    decode_message,
    encode_message,
    error_response,
    experiment_payload,
    get_system,
    normalize_request,
    ok_response,
    request_deadline,
    trace_payload,
)

__all__ = [
    "ChaosClause",
    "ChaosError",
    "ChaosInjector",
    "ChaosPlan",
    "CircuitBreaker",
    "DEFAULT_HOST",
    "DEFAULT_LRU_CAPACITY",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "LRUTier",
    "LineReader",
    "MACHINES",
    "MAX_LINE_BYTES",
    "NormalizedRequest",
    "OversizedLineError",
    "ProtocolError",
    "ReproServer",
    "ResilienceConfig",
    "ServeClient",
    "ServeError",
    "ServeStats",
    "ServeTimeout",
    "ServerThread",
    "TieredResultCache",
    "build_chaos",
    "canonical",
    "decode_message",
    "encode_message",
    "error_response",
    "experiment_payload",
    "get_system",
    "normalize_request",
    "ok_response",
    "request_deadline",
    "trace_payload",
]
