"""Bounded in-memory LRU tier above the on-disk result cache.

The on-disk :class:`~repro.parallel.cache.ResultCache` makes a repeated
experiment free of *computation*; this tier also makes it free of
*deserialization* — a hot entry is returned as the live payload object
without touching the filesystem.  The tier is a transparent overlay:
any sequence of ``get``/``put`` operations observes exactly the
payloads the on-disk cache alone would serve (the Hypothesis property
``tests/serve/test_lru.py`` pins), it only changes where they come
from.  Eviction is strict least-recently-used over both reads and
writes, and the tier never holds more than ``capacity`` entries.

All operations take an internal lock: the serve daemon touches the tier
from compute-lane workers, and the load generator hammers it from
client threads, so the counters and the recency order must not race.

Integrity mirrors the disk tier: :class:`TieredResultCache` pins each
cached payload's SHA-256 (:func:`repro.parallel.cache.payload_digest`)
when it enters the hot tier and re-verifies it on every LRU hit.  A
mutated in-memory entry is discarded (counted in
``integrity_failures``) and the lookup falls through to disk — which
runs its own verify-on-read — so a corrupt payload never crosses the
serving boundary from either tier.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..parallel.cache import ResultCache, payload_digest

#: Default entry bound for the daemon's hot tier.
DEFAULT_LRU_CAPACITY = 4096


class LRUTier:
    """A thread-safe, bounded, least-recently-used key/value store."""

    def __init__(self, capacity: int = DEFAULT_LRU_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Any]:
        """The stored value, freshened to most-recently-used; None on miss."""
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        """Insert/overwrite ``key`` as most-recently-used, evicting LRU."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key: str) -> bool:
        """Drop ``key`` if present (no recency change); True if it was."""
        with self._lock:
            if key not in self._data:
                return False
            del self._data[key]
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        """Membership without touching the recency order."""
        with self._lock:
            return key in self._data

    def keys(self) -> Tuple[str, ...]:
        """Snapshot of stored keys, least- to most-recently-used."""
        with self._lock:
            return tuple(self._data)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class TieredResultCache:
    """LRU tier composed over an optional on-disk :class:`ResultCache`.

    ``get`` answers from memory when it can, falls through to disk on an
    LRU miss (promoting the entry back into memory), and reports which
    tier answered; ``put`` writes through to both tiers.  With no disk
    cache configured the daemon still gets its hot tier — results just
    don't survive a restart.

    The hot tier stores ``(payload, sha256)`` pairs internally and
    verifies the digest on every hit; an entry whose bytes no longer
    hash to what was stored is discarded and re-fetched from disk (or
    recomputed) instead of served.
    """

    def __init__(
        self,
        lru: Optional[LRUTier] = None,
        disk: Optional[ResultCache] = None,
    ) -> None:
        self.lru = lru if lru is not None else LRUTier()
        self.disk = disk
        self.integrity_failures = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Tuple[Optional[Any], Optional[str]]:
        """``(payload, tier)`` where tier is ``"lru"``, ``"disk"`` or None."""
        cached = self.lru.get(key)
        if cached is not None:
            payload, digest = cached
            if payload_digest(payload) == digest:
                return payload, "lru"
            # A mutated hot entry: drop it and fall through to disk,
            # which re-verifies independently.
            self.lru.discard(key)
            with self._lock:
                self.integrity_failures += 1
        if self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self.lru.put(key, (payload, payload_digest(payload)))
                return payload, "disk"
        return None, None

    def put(self, key: str, payload: Any) -> Optional[Path]:
        """Write through both tiers; returns the on-disk entry path (or
        None without a disk tier) so callers — the chaos injector's
        ``corrupt_disk`` site — can address the file just written."""
        self.lru.put(key, (payload, payload_digest(payload)))
        if self.disk is not None:
            return self.disk.put(key, payload)
        return None

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "lru": self.lru.stats(),
            "integrity_failures": self.integrity_failures,
        }
        if self.disk is not None:
            out["disk"] = {
                "hits": self.disk.hits,
                "misses": self.disk.misses,
                "quarantined": self.disk.quarantined,
            }
        return out
