"""Wire protocol and request normalization for the serve daemon.

Framing is newline-delimited JSON: one request object per line in, one
response object per line out, in order.  A request is either an ``op``
message (``ping``, ``stats``, ``shutdown``) or a **run spec** — the
JSON description of one experiment:

``kind: "analytic"``
    ``request`` holds an :class:`~repro.perfmodel.oracle.OracleRequest`
    as a dict (the oracle's own schema); answered by the O(1) lane.
``kind: "experiment"``
    ``experiment`` names a registry id (``table3``, ``fig2``, ...);
    answered fail-soft through :func:`repro.bench.runner.run_with_policy`.
``kind: "trace"``
    ``working_set`` (+ optional ``page_size``, ``passes``, ``shards``,
    ``inject``, ``seed``) describes a pointer-chase measurement on the
    sharded trace engine
    (:func:`repro.parallel.runner.sharded_traced_latency`).

Every spec **normalizes** before anything else happens: defaults are
filled in, field types pinned, and the canonical form is hashed into
the same content-addressed key space the on-disk
:class:`~repro.parallel.cache.ResultCache` uses.  Two specs that differ
only in spelling (omitted defaults, key order) therefore share one
cache entry and one in-flight computation — normalization *is* the
dedup relation.  Unknown fields are rejected rather than ignored: a
typo that silently didn't change the key would silently dedup onto the
wrong result.

Payload projections (:func:`experiment_payload`, :func:`trace_payload`)
define what a lane serves, as a deterministic pure function of the
normalized spec — wall-clock fields are zeroed, numpy scalars
collapsed, and everything is round-tripped through JSON once so the
cold, LRU-hot and disk-hot paths are bit-identical (the contract
``tests/serve/test_conformance.py`` pins against direct in-process
runs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..arch import registry as machine_registry
from ..arch.specs import SystemSpec
from ..parallel.cache import cache_key

#: Machine presets a request may name — the whole zoo.  Key material
#: uses the spec's repr, so names aliasing one spec (``e870`` and
#: ``power8``) share cache entries; normalization canonicalizes first
#: so the dedup happens before any lane runs.
MACHINES: Dict[str, Callable[[], SystemSpec]] = machine_registry.MACHINES


def get_system(machine: str) -> SystemSpec:
    """The (memoized) spec for a registered machine name.

    Specs are frozen dataclasses, so sharing one instance across
    requests is safe — and keeps spec construction off the per-request
    hot path.
    """
    return machine_registry.get_system(machine)

#: The run-spec kinds the daemon routes.
RUN_KINDS = ("analytic", "experiment", "trace")

#: Non-run operations.
OPS = ("run", "ping", "stats", "shutdown")

#: Fields every run spec may carry, plus the per-kind ones.
#: ``deadline_ms`` is transport-level — it bounds how long *this caller*
#: waits, never what is computed — so it is accepted everywhere and
#: excluded from the cache key.
_COMMON_FIELDS = {"op", "id", "kind", "machine", "seed", "deadline_ms"}
_KIND_FIELDS = {
    "analytic": {"request"},
    "experiment": {"experiment"},
    "trace": {"working_set", "page_size", "passes", "shards", "inject"},
}

#: Trace-lane defaults (mirror repro.bench.latency.traced_latency_ns).
TRACE_PAGE_SIZE = 64 * 1024
TRACE_PASSES = 3

#: Hard cap on one request line.  Far above any legitimate spec (the
#: largest is an oracle request, well under 4 KiB) yet small enough
#: that a misbehaving client cannot grow the daemon's read buffer
#: without bound.
MAX_LINE_BYTES = 64 * 1024

#: Structured error codes a response may carry (``error_response``).
ERROR_CODES = (
    "protocol",      # malformed / unknown / typo'd request
    "oversized",     # request line exceeded MAX_LINE_BYTES
    "busy",          # load shed: global in-flight bound reached
    "quota",         # load shed: this client's in-flight quota reached
    "deadline",      # the request's own deadline_ms expired
    "circuit_open",  # lane circuit breaker open, no fallback available
    "draining",      # daemon is shutting down, not accepting work
    "lane",          # the compute lane itself failed (fail-soft row)
    "internal",      # unexpected server-side exception
)


class ProtocolError(ValueError):
    """A request that cannot be normalized (malformed, unknown, typo'd)."""


class OversizedLineError(ProtocolError):
    """A request line exceeded :data:`MAX_LINE_BYTES`."""


# -- framing -----------------------------------------------------------------


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One protocol message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":"), default=_collapse).encode(
        "utf-8"
    ) + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


class LineReader:
    """Bounded line framing over an :class:`asyncio.StreamReader`.

    ``StreamReader.readline`` raises an unrecoverable ``ValueError``
    once its internal buffer overflows; this reader owns its own buffer
    instead, so an oversized line is reported as a structured
    :class:`OversizedLineError` *and then skipped* — the stream resyncs
    at the next newline and the connection keeps serving.
    """

    def __init__(self, reader, limit: int = MAX_LINE_BYTES) -> None:
        self._reader = reader
        self._limit = int(limit)
        self._buffer = bytearray()
        self._eof = False

    async def _fill(self) -> bool:
        """Pull one chunk into the buffer; False at EOF."""
        if self._eof:
            return False
        chunk = await self._reader.read(65536)
        if not chunk:
            self._eof = True
            return False
        self._buffer.extend(chunk)
        return True

    async def readline(self) -> Optional[bytes]:
        """The next line without its newline, or None at EOF.

        Raises :class:`OversizedLineError` once per oversized line,
        after discarding it up to (and including) its terminator.
        """
        while True:
            idx = self._buffer.find(b"\n")
            if idx >= 0:
                if idx > self._limit:
                    del self._buffer[: idx + 1]
                    raise OversizedLineError(
                        f"request line exceeds {self._limit} bytes"
                    )
                line = bytes(self._buffer[:idx])
                del self._buffer[: idx + 1]
                return line
            if len(self._buffer) > self._limit:
                # No newline yet and already over budget: drain until
                # the terminator arrives, then surface one error.
                await self._discard_to_newline()
                raise OversizedLineError(
                    f"request line exceeds {self._limit} bytes"
                )
            if not await self._fill():
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line
                return None

    async def _discard_to_newline(self) -> None:
        while True:
            idx = self._buffer.find(b"\n")
            if idx >= 0:
                del self._buffer[: idx + 1]
                return
            self._buffer.clear()
            if not await self._fill():
                return


def _collapse(value: Any) -> Any:
    """JSON fallback: numpy scalars become their Python equivalents."""
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) in ((), None):
        return item()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def canonical(payload: Any) -> Any:
    """One round-trip through JSON: exactly what a client receives.

    Served payloads are defined *post*-serialization (tuples are lists,
    numpy scalars are numbers), so equality between the cold, LRU-hot,
    disk-hot and direct in-process paths is equality of this form.
    """
    return json.loads(json.dumps(payload, default=_collapse))


# -- normalization -----------------------------------------------------------


@dataclass(frozen=True)
class NormalizedRequest:
    """The canonical form of one run spec.

    ``workload_json`` is the filled-in, type-pinned description (a
    sorted-key compact JSON object) that, with the machine spec and
    seed, addresses the result: the daemon's cache key, dedup identity
    and compute instructions are all derived from it and nothing else.
    """

    kind: str
    machine: str
    seed: int
    workload_json: str

    def workload_dict(self) -> Dict[str, Any]:
        return json.loads(self.workload_json)

    def system(self) -> SystemSpec:
        return get_system(self.machine)

    def key(self) -> str:
        """Content-addressed key, shared with the on-disk cache scheme."""
        return cache_key(
            machine=self.system(), workload=self.workload_dict(), seed=self.seed
        )


def _freeze(workload: Mapping[str, Any]) -> str:
    return json.dumps(workload, sort_keys=True, separators=(",", ":"))


def _int_field(spec: Mapping[str, Any], name: str, default: int, minimum: int) -> int:
    value = spec.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def request_deadline(spec: Mapping[str, Any]) -> Optional[float]:
    """The request's deadline in **seconds**, or None.

    ``deadline_ms`` is validated here but deliberately left out of the
    normalized workload: it bounds how long the requesting client
    waits, not what gets computed, so two requests differing only in
    deadline still share one cache entry and one in-flight run.
    """
    value = spec.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"deadline_ms must be a number, got {value!r}")
    if value <= 0:
        raise ProtocolError(f"deadline_ms must be positive, got {value}")
    return float(value) / 1e3


def normalize_request(spec: Mapping[str, Any]) -> NormalizedRequest:
    """Validate one run spec and fill in every default.

    Raises :class:`ProtocolError` on unknown kinds/machines/fields and
    ill-typed values; the daemon converts that into a structured error
    response without touching any lane.
    """
    kind = spec.get("kind")
    if kind not in RUN_KINDS:
        raise ProtocolError(f"unknown run kind {kind!r}; known: {list(RUN_KINDS)}")
    machine = spec.get("machine", "e870")
    if not isinstance(machine, str):
        raise ProtocolError(f"machine must be a string, got {machine!r}")
    try:
        machine = machine_registry.canonical_name(machine)
    except KeyError:
        raise ProtocolError(
            f"unknown machine {machine!r}; known: {sorted(MACHINES)}"
        ) from None
    allowed = _COMMON_FIELDS | _KIND_FIELDS[kind]
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {unknown} for kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    seed = _int_field(spec, "seed", 0, 0)

    if kind == "analytic":
        request = spec.get("request")
        if not isinstance(request, Mapping):
            raise ProtocolError("analytic spec needs a 'request' object")
        from ..perfmodel.oracle import OracleRequest

        try:
            oracle_request = OracleRequest.from_dict(dict(request))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad oracle request: {exc}") from None
        workload = {"serve": "analytic", "request": canonical(oracle_request.to_dict())}
    elif kind == "experiment":
        if seed != 0:
            raise ProtocolError(
                "experiment runs are seedless (registry experiments are "
                "deterministic); omit 'seed' or pass 0"
            )
        experiment = spec.get("experiment")
        from ..bench.runner import experiment_ids

        if experiment not in experiment_ids():
            raise ProtocolError(
                f"unknown experiment {experiment!r}; known: {experiment_ids()}"
            )
        workload = {"serve": "experiment", "experiment": experiment}
    else:  # trace
        working_set = spec.get("working_set")
        if isinstance(working_set, bool) or not isinstance(working_set, int):
            raise ProtocolError("trace spec needs an integer 'working_set' (bytes)")
        if working_set <= 0:
            raise ProtocolError(f"working_set must be positive, got {working_set}")
        inject = spec.get("inject")
        if inject is not None and not isinstance(inject, str):
            raise ProtocolError(f"inject must be a fault-plan string, got {inject!r}")
        workload = {
            "serve": "trace",
            "working_set": int(working_set),
            "page_size": _int_field(spec, "page_size", TRACE_PAGE_SIZE, 1),
            "passes": _int_field(spec, "passes", TRACE_PASSES, 2),
            "shards": _int_field(spec, "shards", 1, 1),
            "inject": inject,
        }
    return NormalizedRequest(
        kind=kind, machine=machine, seed=seed, workload_json=_freeze(workload)
    )


# -- payload projections -----------------------------------------------------


def experiment_payload(result) -> Dict[str, Any]:
    """The served form of an :class:`ExperimentResult`: its dict with
    wall-clock zeroed.

    ``elapsed_s`` is the one field of a registry result that is not a
    pure function of (machine, experiment id); serving it would make
    the cold and cached paths observably different, so the daemon
    serves the deterministic projection.
    """
    payload = result.to_dict()
    payload["elapsed_s"] = 0.0
    return canonical(payload)


def trace_payload(result) -> Dict[str, Any]:
    """The served summary of a :class:`ShardedTraceResult`.

    Per-access arrays stay server-side (a million-access trace is not a
    useful wire payload); what crosses the socket is the deterministic
    reduction — mean latency, the level-hit and latency-histogram
    shapes, the merged PMU bank and the RAS outcome — every field a
    pure function of (machine, workload, seed).
    """
    hist = result.latency_histogram()
    return canonical(
        {
            "accesses": int(result.trace.latency_ns.size),
            "mean_latency_ns": float(result.mean_latency_ns),
            "level_names": list(result.trace.level_names),
            "level_hits": {k: int(v) for k, v in result.stats.level_hits.items()},
            "latency_hist_counts": [int(c) for c in hist.counts],
            "counters": {k: int(v) for k, v in dict(result.bank).items()},
            "ras_events": len(result.ras_events),
            "ras_derived": result.ras_derived,
            "shards": int(result.shards),
            "seed": int(result.seed),
        }
    )


# -- response helpers --------------------------------------------------------


def ok_response(
    request_id: Any,
    *,
    key: Optional[str] = None,
    source: Optional[str] = None,
    payload: Any = None,
    **extra: Any,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    if key is not None:
        response["key"] = key
    if source is not None:
        response["source"] = source
    if payload is not None:
        response["payload"] = payload
    response.update(extra)
    return response


def error_response(
    request_id: Any,
    error: str,
    *,
    key: Optional[str] = None,
    code: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A structured failure row.

    ``code`` (one of :data:`ERROR_CODES`) lets clients branch without
    parsing message text; ``retry_after`` (seconds) rides along on load
    sheds so backpressure carries its own pacing hint.
    """
    response: Dict[str, Any] = {"id": request_id, "ok": False, "error": error}
    if key is not None:
        response["key"] = key
    if code is not None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}; known: {ERROR_CODES}")
        response["code"] = code
    if retry_after is not None:
        response["retry_after"] = float(retry_after)
    return response
