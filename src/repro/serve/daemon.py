"""The ``repro.serve`` asyncio daemon.

One long-running :class:`ReproServer` amortizes everything a CLI
invocation pays per query: interpreter start-up, spec construction,
model warm-up, and — through its two cache tiers — the computation
itself.  A request travels::

    spec --normalize--> key --LRU?--> disk?--> in-flight?--> compute

* **LRU tier** (:class:`~repro.serve.lru.LRUTier`): bounded in-memory
  payload store; a hot repeat costs one dict lookup plus JSON framing.
* **Disk tier** (:class:`~repro.parallel.cache.ResultCache`): the
  existing content-addressed cache; survives restarts and is shared
  with nothing else (serve workloads carry their own namespace marker).
* **In-flight dedup**: identical normalized specs arriving while the
  first is still computing await the *same* ``asyncio.Task``; the
  simulation runs exactly once.  Waiters await through
  ``asyncio.shield``, so a client that disconnects (or a cancelled
  waiter) never poisons the shared computation for the others.
* **Compute lanes**: ``analytic`` requests go to the
  :class:`~repro.perfmodel.oracle.AnalyticOracle` (O(1), microseconds);
  ``experiment`` requests run fail-soft through
  :func:`~repro.bench.runner.run_with_policy` (a persistent failure is
  served as the registry's structured error row and not cached);
  ``trace`` requests run the sharded engine with the same
  :class:`~repro.bench.runner.RunPolicy` retry/backoff semantics.
  Lanes execute in worker threads (``asyncio.to_thread``), so the event
  loop keeps serving cache hits while a trace computes.

Connections are handled concurrently; within one connection requests
are answered in order (clients may pipeline).  Any per-request failure
— undecodable line, unknown spec, lane exception after retries —
becomes a structured error *response*; the daemon itself never dies of
a bad request.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Optional, Tuple

from ..bench.runner import RunPolicy, run_with_policy
from ..parallel.cache import ResultCache
from ..parallel.runner import sharded_traced_latency
from .lru import DEFAULT_LRU_CAPACITY, LRUTier, TieredResultCache
from .protocol import (
    NormalizedRequest,
    ProtocolError,
    canonical,
    decode_message,
    encode_message,
    error_response,
    experiment_payload,
    normalize_request,
    ok_response,
    trace_payload,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8737


class ServeStats:
    """Monotonic request counters; every mutation happens under a lock.

    ``deduped`` counts requests that joined an in-flight computation,
    ``computed`` counts computations actually executed — the load
    generator's dedup ratio and LRU hit rate come straight from a
    snapshot of these.
    """

    _FIELDS = (
        "requests",
        "ops",
        "ok",
        "errors",
        "lru_hits",
        "disk_hits",
        "computed",
        "deduped",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def to_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


class ReproServer:
    """The serve daemon: normalize, dedup, cache, compute, stream back."""

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        cache_dir: Optional[str] = None,
        lru_capacity: int = DEFAULT_LRU_CAPACITY,
        policy: Optional[RunPolicy] = None,
        workers: int = 1,
    ) -> None:
        disk = ResultCache(cache_dir) if cache_dir is not None else None
        self.tier = TieredResultCache(LRUTier(lru_capacity), disk)
        self.policy = policy if policy is not None else RunPolicy()
        #: Pool width handed to the trace lane's shard pool.
        self.workers = int(workers)
        self.host = host
        self.port = port
        self.stats = ServeStats()
        self._inflight: Dict[str, asyncio.Task] = {}
        self._oracles: Dict[str, Any] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`close` or a ``shutdown`` request."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self.handle_line(line)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            self.stats.bump("requests")
            self.stats.bump("errors")
            return error_response(None, str(exc))
        return await self.handle_request(message)

    async def handle_request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one decoded message (ops and run specs alike).

        Public so in-process callers (tests, the load generator's
        conformance pass) can exercise the full dedup/cache path
        without a socket.
        """
        request_id = message.get("id")
        op = message.get("op", "run")
        # Ops count separately from run requests, so the hit/dedup
        # ratios the load generator derives from a stats snapshot are
        # exact fractions of the replayed run stream.
        if op == "ping":
            self.stats.bump("ops")
            return ok_response(request_id, op="ping")
        if op == "stats":
            self.stats.bump("ops")
            return ok_response(
                request_id,
                op="stats",
                stats=self.stats.to_dict(),
                tiers=self.tier.stats(),
                inflight=len(self._inflight),
                uptime_s=time.monotonic() - self.started_at,
            )
        if op == "shutdown":
            self.stats.bump("ops")
            if self._shutdown is not None:
                self._shutdown.set()
            return ok_response(request_id, op="shutdown")
        self.stats.bump("requests")
        if op != "run":
            self.stats.bump("errors")
            return error_response(request_id, f"unknown op {op!r}")
        try:
            normalized = normalize_request(message)
        except ProtocolError as exc:
            self.stats.bump("errors")
            return error_response(request_id, str(exc))
        key = normalized.key()

        payload, tier = self.tier.get(key)
        if tier == "lru":
            self.stats.bump("lru_hits")
            self.stats.bump("ok")
            return ok_response(request_id, key=key, source="lru", payload=payload)
        if tier == "disk":
            self.stats.bump("disk_hits")
            self.stats.bump("ok")
            return ok_response(request_id, key=key, source="disk", payload=payload)

        task = self._inflight.get(key)
        if task is not None:
            self.stats.bump("deduped")
            source = "inflight"
        else:
            task = asyncio.ensure_future(self._compute_and_store(normalized, key))
            self._inflight[key] = task
            task.add_done_callback(lambda _t, k=key: self._inflight.pop(k, None))
            source = "computed"
        try:
            # shield: cancelling THIS waiter (client gone) must not
            # cancel the shared computation other waiters still need.
            payload = await asyncio.shield(task)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — fail-soft boundary
            self.stats.bump("errors")
            return error_response(
                request_id, f"{type(exc).__name__}: {exc}", key=key
            )
        self.stats.bump("ok")
        return ok_response(request_id, key=key, source=source, payload=payload)

    # -- compute lanes -------------------------------------------------------
    async def _compute_and_store(
        self, normalized: NormalizedRequest, key: str
    ) -> Dict[str, Any]:
        payload, cacheable = await asyncio.to_thread(self._compute, normalized)
        self.stats.bump("computed")
        if cacheable:
            self.tier.put(key, payload)
        return payload

    def _compute(self, normalized: NormalizedRequest) -> Tuple[Dict[str, Any], bool]:
        """Run one lane synchronously; returns ``(payload, cacheable)``.

        Tests monkeypatch this with a spy to count executions — the
        dedup contract is "``_compute`` runs once per distinct key".
        """
        workload = normalized.workload_dict()
        if normalized.kind == "analytic":
            from ..perfmodel.oracle import OracleRequest

            oracle = self._oracle(normalized.machine)
            result = oracle.predict(OracleRequest.from_dict(workload["request"]))
            return canonical(result.to_dict()), True
        if normalized.kind == "experiment":
            result = run_with_policy(
                workload["experiment"], self._system(normalized.machine), self.policy
            )
            # Error rows are served (fail-soft) but never cached: the
            # next request retries instead of replaying the failure.
            return experiment_payload(result), result.ok
        return self._compute_trace(normalized, workload), True

    def _compute_trace(
        self, normalized: NormalizedRequest, workload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The trace lane, retried under the daemon's :class:`RunPolicy`."""
        policy = self.policy
        last_exc: Optional[BaseException] = None
        for attempt in range(1, policy.retries + 2):
            try:
                _, result = sharded_traced_latency(
                    self._system(normalized.machine),
                    workload["working_set"],
                    page_size=workload["page_size"],
                    passes=workload["passes"],
                    seed=normalized.seed,
                    shards=workload["shards"],
                    workers=self.workers,
                    inject=workload["inject"],
                )
                return trace_payload(result)
            except Exception as exc:  # noqa: BLE001 — retried, then surfaced
                last_exc = exc
                if attempt <= policy.retries:
                    time.sleep(policy.backoff_after(attempt))
        assert last_exc is not None
        raise last_exc

    def _system(self, machine: str):
        from .protocol import get_system

        return get_system(machine)

    def _oracle(self, machine: str):
        if machine not in self._oracles:
            from ..perfmodel.oracle import AnalyticOracle

            self._oracles[machine] = AnalyticOracle(self._system(machine))
        return self._oracles[machine]


class ServerThread:
    """A running daemon on a background thread (its own event loop).

    The synchronous harnesses — pytest suites, the load generator, the
    ``--serve-perf`` benchmark — need a live server next to blocking
    client code.  Use as a context manager::

        with ServerThread(cache_dir=str(tmp)) as st:
            client = ServeClient(st.host, st.port)
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self.server = ReproServer(**server_kwargs)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.close())
            # Let in-flight compute tasks finish before tearing down.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("serve daemon failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
