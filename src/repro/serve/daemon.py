"""The ``repro.serve`` asyncio daemon.

One long-running :class:`ReproServer` amortizes everything a CLI
invocation pays per query: interpreter start-up, spec construction,
model warm-up, and — through its two cache tiers — the computation
itself.  A request travels::

    spec --normalize--> key --LRU?--> disk?--> in-flight?--> admit?--> compute

* **LRU tier** (:class:`~repro.serve.lru.LRUTier`): bounded in-memory
  payload store; a hot repeat costs one dict lookup plus JSON framing.
  Payloads are digest-verified on every hit (see :mod:`.lru`).
* **Disk tier** (:class:`~repro.parallel.cache.ResultCache`): the
  existing content-addressed cache; survives restarts, verifies a
  SHA-256 per entry and quarantines anything corrupt as a miss.
* **In-flight dedup**: identical normalized specs arriving while the
  first is still computing await the *same* ``asyncio.Task``; the
  simulation runs exactly once.  Waiters await through
  ``asyncio.shield``, so a client that disconnects, times out, or hits
  its deadline never poisons the shared computation for the others.
* **Admission control**: cache hits and dedup joins are always served;
  *new* computations pass through a two-level admission gate
  (:class:`ResilienceConfig`).  The fast lane (analytic, O(1)) and the
  heavy lane (experiment/trace) have separate concurrency bounds, so
  analytic requests keep flowing while traces saturate their pool —
  the priority inversion a single queue would create cannot happen.
  Requests beyond a bound are shed with a structured ``busy``/``quota``
  error carrying ``retry_after``; the daemon never queues unboundedly.
* **Deadlines**: a request's ``deadline_ms`` bounds how long *that
  waiter* waits (``deadline`` error on expiry).  It never cancels the
  shared computation — the result still lands in the cache for the
  retry the error invites.
* **Circuit breakers**: one per lane kind.  ``breaker_threshold``
  consecutive lane failures trip it open; while open, cache hits still
  serve, trace requests degrade to an analytic approximation (marked
  ``degraded``, never cached) and other kinds shed with
  ``circuit_open``.  After ``breaker_cooldown_s`` one probe is allowed
  through (half-open); success closes the breaker, failure re-opens it.
* **Compute lanes**: ``analytic`` requests go to the
  :class:`~repro.perfmodel.oracle.AnalyticOracle`; ``experiment``
  requests run fail-soft through
  :func:`~repro.bench.runner.run_with_policy`; ``trace`` requests run
  the sharded engine under the same :class:`~repro.bench.runner.RunPolicy`
  retry/backoff semantics.  Lanes execute on *daemon* worker threads,
  so a wedged computation can slow the daemon but can never block
  interpreter exit (a hung non-daemon executor thread would).

Connections are handled concurrently, and within one connection up to
``client_window`` requests are *processed* concurrently while responses
are still written strictly in request order (clients may pipeline).
Any per-request failure — undecodable or oversized line, unknown spec,
lane exception after retries — becomes a structured error *response*;
a client disconnecting mid-response tears down only its own connection.
The daemon itself never dies of a bad request, a bad client, or a bad
disk — the chaos suite (:mod:`repro.serve.chaos`) exists to hold it to
that.

**Graceful drain**: SIGTERM or a ``shutdown`` request stops accepting
connections, lets in-flight work finish against ``drain_timeout_s``
(then cancels it), flushes final stats to stdout and exits 0.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..bench.runner import RunPolicy, run_with_policy
from ..parallel.cache import ResultCache
from ..parallel.runner import sharded_traced_latency
from .chaos import ChaosInjector
from .lru import DEFAULT_LRU_CAPACITY, LRUTier, TieredResultCache
from .protocol import (
    LineReader,
    NormalizedRequest,
    OversizedLineError,
    ProtocolError,
    canonical,
    decode_message,
    encode_message,
    error_response,
    experiment_payload,
    normalize_request,
    ok_response,
    request_deadline,
    trace_payload,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8737

#: ``retry_after`` hints attached to load sheds, by lane class.
RETRY_AFTER_S = {"fast": 0.05, "heavy": 0.25}


@dataclass(frozen=True)
class ResilienceConfig:
    """Admission, breaker and drain knobs (defaults sized so the
    ``--serve-perf`` workload — 4 connections, window 64, analytic-hot —
    never sheds).

    ``max_fast``/``max_heavy`` bound concurrent *computations* per lane
    class; cache hits and dedup joins are never counted against them.
    ``client_window`` bounds how many requests one connection processes
    at once (excess pipelined lines wait in the socket, which is
    ordinary TCP backpressure, not shedding); ``client_heavy_quota``
    bounds how many heavy computations one connection may have
    *started* concurrently before further starts shed with ``quota``.
    """

    max_fast: int = 256
    max_heavy: int = 8
    client_window: int = 32
    client_heavy_quota: int = 4
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        for name in ("max_fast", "max_heavy", "client_window",
                     "client_heavy_quota", "breaker_threshold"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.breaker_cooldown_s < 0 or self.drain_timeout_s < 0:
            raise ValueError("cooldown/drain timeouts must be >= 0")


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open on a timer.

    Lives entirely on the event loop (state changes happen in
    ``handle_request`` and compute-task callbacks), so it needs no lock.
    """

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = "closed"
        self.failures = 0
        self.trips = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a new computation start?  Half-opens after the cooldown
        (one probe at a time)."""
        if self.state == "closed":
            return True
        if self.state == "open" and (
            time.monotonic() - self._opened_at >= self.cooldown_s
        ):
            self.state = "half_open"
            return True
        return False  # open and cooling, or a half-open probe in flight

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.failures = 0
            self._opened_at = time.monotonic()

    def to_dict(self) -> Dict[str, Any]:
        return {"state": self.state, "failures": self.failures, "trips": self.trips}


class _ClientState:
    """Per-connection admission context."""

    __slots__ = ("window", "heavy_active")

    def __init__(self, window: int) -> None:
        self.window = asyncio.Semaphore(window)
        self.heavy_active = 0


class ServeStats:
    """Monotonic request counters; every mutation happens under a lock.

    ``deduped`` counts requests that joined an in-flight computation,
    ``computed`` counts computations actually executed — the load
    generator's dedup ratio and LRU hit rate come straight from a
    snapshot of these.  The resilience counters follow the same rule:
    ``shed``/``quota_shed`` are load sheds (global bound / per-client
    quota), ``deadline_misses`` are waiters whose own ``deadline_ms``
    expired, ``degraded`` are analytic stand-ins served while a breaker
    was open, and ``disconnects`` are connections that died mid-stream
    without taking the daemon with them.  ``batches``/``batched_requests``
    count analytic-lane coalescer flushes and the requests they carried
    (the batcher's ``stats`` op section has the histogram and waits).
    """

    _FIELDS = (
        "requests",
        "ops",
        "ok",
        "errors",
        "lru_hits",
        "disk_hits",
        "computed",
        "deduped",
        "shed",
        "quota_shed",
        "deadline_misses",
        "circuit_rejects",
        "degraded",
        "oversized",
        "disconnects",
        "batches",
        "batched_requests",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def to_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


def _post_to_loop(
    loop: asyncio.AbstractEventLoop,
    future: "asyncio.Future[Any]",
    exc: Optional[BaseException],
    result: Any,
) -> None:
    """Complete a loop future from a lane thread, tolerating every race:
    a future already cancelled (deadline, drain) and a loop already
    closed (interpreter teardown with a wedged lane)."""

    def _set() -> None:
        if future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    try:
        loop.call_soon_threadsafe(_set)
    except RuntimeError:
        pass


#: Batch-size histogram buckets (powers of two): "1", "2-3", "4-7", ...
_BATCH_BUCKETS = ("1", "2-3", "4-7", "8-15", "16-31", "32-63", "64+")


class AnalyticBatcher:
    """Micro-batching coalescer for the analytic lane (transport-only).

    Concurrent analytic computations that already passed admission and
    in-flight dedup park here for up to ``window_ms`` (or until
    ``max_batch`` waiters queue); a flush drains every waiter into one
    :meth:`~repro.perfmodel.oracle.AnalyticOracle.predict_batch` call
    per machine on a daemon lane thread, fanning each payload back to
    its waiter's own future.  Nothing observable changes besides
    throughput: cache keys never see the batch, payloads are
    bit-identical to the unbatched lane (``predict_batch``'s contract),
    and a request whose scalar twin would raise gets that same
    exception on its own future — a group failure falls back to
    per-request ``_compute`` so error routing stays per-request.

    All queue state lives on the event loop (``submit`` and ``_flush``
    only run there), so it needs no lock; only the telemetry counters
    are read cross-thread, and those are single-writer monotonic ints.
    """

    def __init__(self, server: "ReproServer", window_ms: float, max_batch: int) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.server = server
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self._pending: "list[Tuple[NormalizedRequest, asyncio.Future, float]]" = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.batches = 0
        self.batched_requests = 0
        self.coalesce_wait_s = 0.0
        self.size_counts = [0] * len(_BATCH_BUCKETS)

    async def submit(self, normalized: NormalizedRequest) -> Tuple[Dict[str, Any], bool]:
        """Park one analytic computation; resolves with ``(payload, True)``."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        future: "asyncio.Future[Tuple[Dict[str, Any], bool]]" = loop.create_future()
        self._pending.append((normalized, future, loop.time()))
        if len(self._pending) >= self.max_batch:
            self.flush_now()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_ms / 1e3, self.flush_now)
        return await future

    def flush_now(self) -> None:
        """Drain the queue onto a lane thread (event-loop context only).

        Also called by :meth:`ReproServer.drain`, so a drain never waits
        out the coalesce window.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending or self._loop is None:
            return
        batch, self._pending = self._pending, []
        now = self._loop.time()
        size = len(batch)
        self.batches += 1
        self.batched_requests += size
        self.size_counts[min(len(_BATCH_BUCKETS) - 1, size.bit_length() - 1)] += 1
        self.coalesce_wait_s += sum(now - t0 for (_, _, t0) in batch)
        self.server.stats.bump("batches")
        self.server.stats.bump("batched_requests", size)
        threading.Thread(
            target=self._run_batch,
            args=(self._loop, batch),
            name="repro-serve-batch",
            daemon=True,
        ).start()

    def _run_batch(
        self,
        loop: asyncio.AbstractEventLoop,
        batch: "list[Tuple[NormalizedRequest, asyncio.Future, float]]",
    ) -> None:
        """One coalesced ``predict_batch`` per machine, on a lane thread."""
        from ..perfmodel.oracle import OracleRequest

        by_machine: Dict[str, list] = {}
        for normalized, future, _ in batch:
            by_machine.setdefault(normalized.machine, []).append((normalized, future))
        for machine, entries in by_machine.items():
            try:
                oracle = self.server._oracle(machine)
                reqs = [
                    OracleRequest.from_dict(n.workload_dict()["request"])
                    for n, _ in entries
                ]
                payloads = [
                    canonical(result.to_dict())
                    for result in oracle.predict_batch(reqs)
                ]
            except BaseException:  # noqa: BLE001 — re-run per request below
                # Any group failure (one bad request poisons request
                # construction, say) re-runs each member through the
                # unbatched compute, so every waiter sees exactly the
                # success or exception its scalar twin produces.
                for normalized, future in entries:
                    try:
                        result = self.server._compute(normalized)
                    except BaseException as exc:  # noqa: BLE001 — posted
                        _post_to_loop(loop, future, exc, None)
                    else:
                        _post_to_loop(loop, future, None, result)
                continue
            for (normalized, future), payload in zip(entries, payloads):
                _post_to_loop(loop, future, None, (payload, True))

    def snapshot(self) -> Dict[str, Any]:
        """The ``batching`` section of the ``stats`` op."""
        batches = self.batches
        batched = self.batched_requests
        return {
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "batches": batches,
            "batched_requests": batched,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "size_histogram": dict(zip(_BATCH_BUCKETS, self.size_counts)),
            "coalesce_wait_ms_total": self.coalesce_wait_s * 1e3,
            "mean_coalesce_wait_ms": (
                self.coalesce_wait_s * 1e3 / batched if batched else 0.0
            ),
        }


class ReproServer:
    """The serve daemon: normalize, admit, dedup, cache, compute, stream back."""

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        cache_dir: Optional[str] = None,
        lru_capacity: int = DEFAULT_LRU_CAPACITY,
        policy: Optional[RunPolicy] = None,
        workers: int = 1,
        resilience: Optional[ResilienceConfig] = None,
        chaos: Optional[ChaosInjector] = None,
        batch_window_ms: float = 0.0,
        batch_max: int = 64,
    ) -> None:
        disk = ResultCache(cache_dir) if cache_dir is not None else None
        self.tier = TieredResultCache(LRUTier(lru_capacity), disk)
        self.policy = policy if policy is not None else RunPolicy()
        #: Pool width handed to the trace lane's shard pool.
        self.workers = int(workers)
        self.host = host
        self.port = port
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.chaos = chaos
        self.stats = ServeStats()
        #: Analytic-lane coalescer; ``--batch-window-ms 0`` (the
        #: default) disables it and every miss takes the unbatched lane.
        self.batcher = (
            AnalyticBatcher(self, batch_window_ms, batch_max)
            if batch_window_ms > 0
            else None
        )
        self._inflight: Dict[str, asyncio.Task] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._active = {"fast": 0, "heavy": 0}
        self._connections: "set[asyncio.Task]" = set()
        self._oracles: Dict[str, Any] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.draining = False
        self.started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`close`), then
        drain gracefully."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.drain()
        await self.close()

    def request_shutdown(self) -> None:
        """Flag the daemon to drain and exit (signal-handler safe when
        called via ``loop.add_signal_handler``)."""
        self.draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work against the drain
        timeout, then cancel whatever is left (a wedged lane must not
        hold the exit hostage)."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.batcher is not None:
            self.batcher.flush_now()  # don't make the drain wait a window out
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.resilience.drain_timeout_s
        for group in (lambda: list(self._inflight.values()),
                      lambda: list(self._connections)):
            while True:
                pending = [t for t in group() if not t.done()]
                remaining = deadline - loop.time()
                if not pending or remaining <= 0:
                    break
                await asyncio.wait(pending, timeout=remaining)
        leftovers = [
            t
            for t in list(self._inflight.values()) + list(self._connections)
            if not t.done()
        ]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    async def close(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: a reader pumping lines into per-request tasks
        plus this (writer) coroutine streaming responses back in order.

        Up to ``client_window`` requests process concurrently; the
        response for request N is always written before N+1's.  A dead
        socket — reset, broken pipe, chaos ``drop_conn`` — tears down
        exactly this connection: tasks here are shield *waiters*, so
        cancelling them never touches shared computations.
        """
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        client = _ClientState(self.resilience.client_window)
        lines = LineReader(reader)
        ordered: "asyncio.Queue[Optional[Any]]" = asyncio.Queue()

        async def _serve_line(line: bytes) -> Dict[str, Any]:
            try:
                return await self.handle_line(line, client)
            finally:
                client.window.release()

        async def _read_loop() -> None:
            while True:
                try:
                    line = await lines.readline()
                except OversizedLineError as exc:
                    self.stats.bump("requests")
                    self.stats.bump("errors")
                    self.stats.bump("oversized")
                    await ordered.put(
                        error_response(None, str(exc), code="oversized")
                    )
                    continue
                if line is None:
                    break
                await client.window.acquire()
                await ordered.put(asyncio.ensure_future(_serve_line(line)))
            await ordered.put(None)

        pump = asyncio.ensure_future(_read_loop())
        dropped: "list[asyncio.Future]" = []
        try:
            while True:
                item = await ordered.get()
                if item is None:
                    break
                response = (await item) if asyncio.isfuture(item) else item
                if self.chaos is not None and self.chaos.on_response():
                    self.stats.bump("disconnects")
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    break
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self.stats.bump("disconnects")
        except asyncio.CancelledError:
            pass
        finally:
            pump.cancel()
            while not ordered.empty():
                item = ordered.get_nowait()
                if asyncio.isfuture(item):
                    item.cancel()
                    dropped.append(item)
            if dropped:
                await asyncio.gather(*dropped, return_exceptions=True)
            await asyncio.gather(pump, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if me is not None:
                self._connections.discard(me)

    async def handle_line(
        self, line: bytes, client: Optional[_ClientState] = None
    ) -> Dict[str, Any]:
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            self.stats.bump("requests")
            self.stats.bump("errors")
            return error_response(None, str(exc), code="protocol")
        return await self.handle_request(message, client)

    async def handle_request(
        self, message: Dict[str, Any], client: Optional[_ClientState] = None
    ) -> Dict[str, Any]:
        """Answer one decoded message (ops and run specs alike).

        Public so in-process callers (tests, the load generator's
        conformance pass) can exercise the full admission/dedup/cache
        path without a socket; ``client`` carries per-connection quota
        state and is None for such callers.
        """
        request_id = message.get("id")
        op = message.get("op", "run")
        # Ops count separately from run requests, so the hit/dedup
        # ratios the load generator derives from a stats snapshot are
        # exact fractions of the replayed run stream.
        if op == "ping":
            self.stats.bump("ops")
            return ok_response(request_id, op="ping")
        if op == "stats":
            self.stats.bump("ops")
            return ok_response(
                request_id,
                op="stats",
                stats=self.stats.to_dict(),
                tiers=self.tier.stats(),
                inflight=len(self._inflight),
                resilience={
                    "active": dict(self._active),
                    "draining": self.draining,
                    "breakers": {
                        kind: b.to_dict() for kind, b in self._breakers.items()
                    },
                },
                chaos=self.chaos.counts() if self.chaos is not None else None,
                batching=(
                    self.batcher.snapshot() if self.batcher is not None else None
                ),
                uptime_s=time.monotonic() - self.started_at,
            )
        if op == "shutdown":
            self.stats.bump("ops")
            self.request_shutdown()
            return ok_response(request_id, op="shutdown")
        self.stats.bump("requests")
        if op != "run":
            self.stats.bump("errors")
            return error_response(request_id, f"unknown op {op!r}", code="protocol")
        if self.draining:
            self.stats.bump("errors")
            return error_response(
                request_id, "daemon is draining", code="draining"
            )
        try:
            deadline_s = request_deadline(message)
            normalized = normalize_request(message)
        except ProtocolError as exc:
            self.stats.bump("errors")
            return error_response(request_id, str(exc), code="protocol")
        key = normalized.key()
        started = time.monotonic()

        payload, tier = self.tier.get(key)
        if tier == "lru":
            self.stats.bump("lru_hits")
            self.stats.bump("ok")
            return ok_response(request_id, key=key, source="lru", payload=payload)
        if tier == "disk":
            self.stats.bump("disk_hits")
            self.stats.bump("ok")
            return ok_response(request_id, key=key, source="disk", payload=payload)

        lane_class = "fast" if normalized.kind == "analytic" else "heavy"
        counted_heavy = False
        task = self._inflight.get(key)
        if task is not None:
            self.stats.bump("deduped")
            source = "inflight"
        else:
            # Admission and breaker checks apply only here: hits and
            # joins cost the daemon nothing it hasn't already paid for.
            breaker = self._breaker(normalized.kind)
            if not breaker.allow():
                return self._circuit_open_response(request_id, normalized, key)
            if self._active[lane_class] >= getattr(
                self.resilience, f"max_{lane_class}"
            ):
                self.stats.bump("shed")
                self.stats.bump("errors")
                return error_response(
                    request_id,
                    f"{lane_class} lane at capacity "
                    f"({self._active[lane_class]} in flight)",
                    key=key,
                    code="busy",
                    retry_after=RETRY_AFTER_S[lane_class],
                )
            if (
                client is not None
                and lane_class == "heavy"
                and client.heavy_active >= self.resilience.client_heavy_quota
            ):
                self.stats.bump("quota_shed")
                self.stats.bump("errors")
                return error_response(
                    request_id,
                    f"per-client heavy quota reached "
                    f"({client.heavy_active} in flight)",
                    key=key,
                    code="quota",
                    retry_after=RETRY_AFTER_S["heavy"],
                )
            task = asyncio.ensure_future(
                self._compute_and_store(normalized, key, deadline_s)
            )
            self._inflight[key] = task
            self._active[lane_class] += 1
            if client is not None and lane_class == "heavy":
                client.heavy_active += 1
                counted_heavy = True
            task.add_done_callback(
                lambda t, k=key, lc=lane_class: self._computation_done(t, k, lc)
            )
            source = "computed"
        try:
            # shield: cancelling THIS waiter (client gone, deadline hit)
            # must not cancel the shared computation other waiters need.
            if deadline_s is not None:
                remaining = deadline_s - (time.monotonic() - started)
                if remaining <= 0:
                    raise asyncio.TimeoutError
                payload = await asyncio.wait_for(asyncio.shield(task), remaining)
            else:
                payload = await asyncio.shield(task)
        except asyncio.TimeoutError:
            self.stats.bump("deadline_misses")
            self.stats.bump("errors")
            return error_response(
                request_id,
                f"deadline_ms expired after {deadline_s * 1e3:.0f} ms",
                key=key,
                code="deadline",
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — fail-soft boundary
            self.stats.bump("errors")
            return error_response(
                request_id, f"{type(exc).__name__}: {exc}", key=key, code="lane"
            )
        finally:
            if counted_heavy and client is not None:
                client.heavy_active -= 1
        self.stats.bump("ok")
        return ok_response(request_id, key=key, source=source, payload=payload)

    def _computation_done(self, task: asyncio.Task, key: str, lane_class: str) -> None:
        self._inflight.pop(key, None)
        self._active[lane_class] -= 1
        if not task.cancelled():
            # Mark any exception retrieved: with every waiter gone
            # (deadlines, disconnects) nobody else will look at it.
            task.exception()

    def _breaker(self, kind: str) -> CircuitBreaker:
        if kind not in self._breakers:
            self._breakers[kind] = CircuitBreaker(
                self.resilience.breaker_threshold,
                self.resilience.breaker_cooldown_s,
            )
        return self._breakers[kind]

    def _circuit_open_response(
        self, request_id: Any, normalized: NormalizedRequest, key: str
    ) -> Dict[str, Any]:
        """A breaker-open answer: degrade trace requests to the analytic
        model (clearly marked, never cached), shed everything else."""
        if normalized.kind == "trace":
            try:
                payload = self._degraded_payload(normalized)
            except Exception:  # noqa: BLE001 — fall through to the shed
                payload = None
            if payload is not None:
                self.stats.bump("degraded")
                self.stats.bump("ok")
                return ok_response(
                    request_id,
                    key=key,
                    source="degraded",
                    payload=payload,
                    degraded=True,
                )
        self.stats.bump("circuit_rejects")
        self.stats.bump("errors")
        return error_response(
            request_id,
            f"{normalized.kind} lane circuit breaker is open",
            key=key,
            code="circuit_open",
            retry_after=self.resilience.breaker_cooldown_s,
        )

    def _degraded_payload(self, normalized: NormalizedRequest) -> Dict[str, Any]:
        """The analytic stand-in for a trace request while its lane's
        breaker is open: the oracle's O(1) chase prediction for the same
        working set — availability-preserving, explicitly not the
        bit-identical simulated result."""
        from ..perfmodel.oracle import OracleRequest

        workload = normalized.workload_dict()
        result = self._oracle(normalized.machine).predict(
            OracleRequest(
                kind="chase",
                working_set=workload["working_set"],
                page_size=workload["page_size"],
            )
        )
        return canonical(result.to_dict())

    # -- compute lanes -------------------------------------------------------
    async def _compute_and_store(
        self,
        normalized: NormalizedRequest,
        key: str,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        breaker = self._breaker(normalized.kind)
        try:
            payload, cacheable = await self._in_lane(normalized, deadline_s)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        self.stats.bump("computed")
        if cacheable:
            path = self.tier.put(key, payload)
            if self.chaos is not None and path is not None:
                self.chaos.on_disk_put(path)
        return payload

    async def _in_lane(
        self, normalized: NormalizedRequest, deadline_s: Optional[float]
    ) -> Tuple[Dict[str, Any], bool]:
        """Run :meth:`_compute` on a fresh *daemon* thread.

        ``asyncio.to_thread`` would borrow a non-daemon executor thread,
        and a chaos-hung lane in one of those blocks interpreter exit
        (``shutdown_default_executor`` joins it indefinitely).  A daemon
        thread completing a loop future via ``call_soon_threadsafe``
        gives the same await semantics without the hostage situation.
        """
        if (
            self.batcher is not None
            and normalized.kind == "analytic"
            and self.chaos is None
        ):
            # Coalesced lane: chaos-armed daemons skip it so per-request
            # fault injection keeps its unbatched semantics.
            return await self.batcher.submit(normalized)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple[Dict[str, Any], bool]]" = loop.create_future()

        def _work() -> None:
            try:
                if self.chaos is not None:
                    self.chaos.on_lane(normalized.kind, deadline_s)
                result = self._compute(normalized)
            except BaseException as exc:  # noqa: BLE001 — posted to the loop
                _post_to_loop(loop, future, exc, None)
            else:
                _post_to_loop(loop, future, None, result)

        threading.Thread(target=_work, name="repro-serve-lane", daemon=True).start()
        return await future

    def _compute(self, normalized: NormalizedRequest) -> Tuple[Dict[str, Any], bool]:
        """Run one lane synchronously; returns ``(payload, cacheable)``.

        Tests monkeypatch this with a spy to count executions — the
        dedup contract is "``_compute`` runs once per distinct key".
        """
        workload = normalized.workload_dict()
        if normalized.kind == "analytic":
            from ..perfmodel.oracle import OracleRequest

            oracle = self._oracle(normalized.machine)
            result = oracle.predict(OracleRequest.from_dict(workload["request"]))
            return canonical(result.to_dict()), True
        if normalized.kind == "experiment":
            result = run_with_policy(
                workload["experiment"], self._system(normalized.machine), self.policy
            )
            # Error rows are served (fail-soft) but never cached: the
            # next request retries instead of replaying the failure.
            return experiment_payload(result), result.ok
        return self._compute_trace(normalized, workload), True

    def _compute_trace(
        self, normalized: NormalizedRequest, workload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The trace lane, retried under the daemon's :class:`RunPolicy`."""
        policy = self.policy
        last_exc: Optional[BaseException] = None
        for attempt in range(1, policy.retries + 2):
            try:
                _, result = sharded_traced_latency(
                    self._system(normalized.machine),
                    workload["working_set"],
                    page_size=workload["page_size"],
                    passes=workload["passes"],
                    seed=normalized.seed,
                    shards=workload["shards"],
                    workers=self.workers,
                    inject=workload["inject"],
                )
                return trace_payload(result)
            except Exception as exc:  # noqa: BLE001 — retried, then surfaced
                last_exc = exc
                if attempt <= policy.retries:
                    time.sleep(policy.backoff_after(attempt))
        assert last_exc is not None
        raise last_exc

    def _system(self, machine: str):
        from .protocol import get_system

        return get_system(machine)

    def _oracle(self, machine: str):
        if machine not in self._oracles:
            from ..perfmodel.oracle import AnalyticOracle

            self._oracles[machine] = AnalyticOracle(self._system(machine))
        return self._oracles[machine]


class ServerThread:
    """A running daemon on a background thread (its own event loop).

    The synchronous harnesses — pytest suites, the load generator, the
    ``--serve-perf`` benchmark — need a live server next to blocking
    client code.  Use as a context manager::

        with ServerThread(cache_dir=str(tmp)) as st:
            client = ServeClient(st.host, st.port)
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self.server = ReproServer(**server_kwargs)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.close())
            # Let in-flight work finish briefly, then cancel: a wedged
            # chaos lane must not leak the loop past the test.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(
                    asyncio.wait(pending, timeout=5)
                )
                for task in pending:
                    if not task.done():
                        task.cancel()
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("serve daemon failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
