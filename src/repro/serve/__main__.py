"""Run the serve daemon: ``python -m repro.serve [--port N] [...]``.

Binds, prints one ``listening on HOST:PORT`` line (flushed, so parents
spawning the daemon as a subprocess can scrape the bound ephemeral
port), then serves until SIGINT or a ``shutdown`` request.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..bench.runner import RunPolicy
from .daemon import DEFAULT_HOST, DEFAULT_PORT, ReproServer
from .lru import DEFAULT_LRU_CAPACITY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running simulation service over the pool + caches.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port; 0 picks an ephemeral one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk result-cache directory (default: no disk tier)",
    )
    parser.add_argument(
        "--lru-capacity", type=int, metavar="N", default=DEFAULT_LRU_CAPACITY,
        help=f"in-memory LRU entry bound (default: {DEFAULT_LRU_CAPACITY})",
    )
    parser.add_argument(
        "--workers", type=int, metavar="N", default=1,
        help="shard-pool width for the trace lane (default: 1, in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, metavar="S", default=None,
        help="per-experiment wall-clock budget (default: declared budgets)",
    )
    parser.add_argument(
        "--retries", type=int, metavar="N", default=1,
        help="extra attempts per failing computation (default: 1)",
    )
    args = parser.parse_args(argv)
    if args.lru_capacity <= 0:
        parser.error("--lru-capacity must be positive")
    if args.workers <= 0:
        parser.error("--workers must be positive")

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        lru_capacity=args.lru_capacity,
        policy=RunPolicy(timeout_s=args.timeout, retries=max(0, args.retries)),
        workers=args.workers,
    )

    async def amain() -> None:
        host, port = await server.start()
        print(f"listening on {host}:{port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
