"""Run the serve daemon: ``python -m repro.serve [--port N] [...]``.

Binds, prints one ``listening on HOST:PORT`` line (flushed, so parents
spawning the daemon as a subprocess can scrape the bound ephemeral
port), then serves until SIGTERM/SIGINT or a ``shutdown`` request —
at which point it **drains**: stops accepting, finishes (or, past
``--drain-timeout``, cancels) in-flight work, prints one flushed
``drained {...stats...}`` line and exits 0.

``--chaos SPEC`` arms the deterministic service fault injector
(:mod:`repro.serve.chaos`): seeded slow/hung/crashing compute lanes,
on-disk cache corruption and dropped connections, for the chaos suite
and the ``--chaos-perf`` benchmark.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from ..bench.runner import RunPolicy
from .chaos import build_chaos
from .daemon import DEFAULT_HOST, DEFAULT_PORT, ReproServer, ResilienceConfig
from .lru import DEFAULT_LRU_CAPACITY

_DEFAULT_RESILIENCE = ResilienceConfig()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running simulation service over the pool + caches.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port; 0 picks an ephemeral one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk result-cache directory (default: no disk tier)",
    )
    parser.add_argument(
        "--lru-capacity", type=int, metavar="N", default=DEFAULT_LRU_CAPACITY,
        help=f"in-memory LRU entry bound (default: {DEFAULT_LRU_CAPACITY})",
    )
    parser.add_argument(
        "--workers", type=int, metavar="N", default=1,
        help="shard-pool width for the trace lane (default: 1, in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, metavar="S", default=None,
        help="per-experiment wall-clock budget (default: declared budgets)",
    )
    batching = parser.add_argument_group("analytic micro-batching")
    batching.add_argument(
        "--batch-window-ms", type=float, metavar="MS", default=0.0,
        help="coalesce concurrent analytic misses for up to MS before one "
             "predict_batch call (default: 0, batching off)",
    )
    batching.add_argument(
        "--batch-max", type=int, metavar="N", default=64,
        help="flush a coalesced analytic batch at N waiters even before "
             "the window closes (default: 64)",
    )
    parser.add_argument(
        "--retries", type=int, metavar="N", default=1,
        help="extra attempts per failing computation (default: 1)",
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--max-heavy", type=int, metavar="N",
        default=_DEFAULT_RESILIENCE.max_heavy,
        help="concurrent experiment/trace computations before shedding "
             f"busy (default: {_DEFAULT_RESILIENCE.max_heavy})",
    )
    resilience.add_argument(
        "--max-fast", type=int, metavar="N",
        default=_DEFAULT_RESILIENCE.max_fast,
        help="concurrent analytic computations before shedding busy "
             f"(default: {_DEFAULT_RESILIENCE.max_fast})",
    )
    resilience.add_argument(
        "--client-window", type=int, metavar="N",
        default=_DEFAULT_RESILIENCE.client_window,
        help="requests one connection may have in processing at once "
             f"(default: {_DEFAULT_RESILIENCE.client_window})",
    )
    resilience.add_argument(
        "--client-heavy-quota", type=int, metavar="N",
        default=_DEFAULT_RESILIENCE.client_heavy_quota,
        help="heavy computations one connection may start concurrently "
             f"(default: {_DEFAULT_RESILIENCE.client_heavy_quota})",
    )
    resilience.add_argument(
        "--breaker-threshold", type=int, metavar="N",
        default=_DEFAULT_RESILIENCE.breaker_threshold,
        help="consecutive lane failures that trip its circuit breaker "
             f"(default: {_DEFAULT_RESILIENCE.breaker_threshold})",
    )
    resilience.add_argument(
        "--breaker-cooldown", type=float, metavar="S",
        default=_DEFAULT_RESILIENCE.breaker_cooldown_s,
        help="seconds an open breaker waits before half-opening "
             f"(default: {_DEFAULT_RESILIENCE.breaker_cooldown_s})",
    )
    resilience.add_argument(
        "--drain-timeout", type=float, metavar="S",
        default=_DEFAULT_RESILIENCE.drain_timeout_s,
        help="seconds a drain waits for in-flight work before cancelling "
             f"(default: {_DEFAULT_RESILIENCE.drain_timeout_s})",
    )
    chaos_group = parser.add_argument_group("chaos")
    chaos_group.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="service fault plan, e.g. "
             "'lane_error:rate=0.02;corrupt_disk:at=1,mode=bitflip' "
             "(see repro.serve.chaos)",
    )
    chaos_group.add_argument(
        "--chaos-seed", type=int, metavar="N", default=0,
        help="seed for the chaos injector's deterministic draws (default: 0)",
    )
    args = parser.parse_args(argv)
    if args.lru_capacity <= 0:
        parser.error("--lru-capacity must be positive")
    if args.workers <= 0:
        parser.error("--workers must be positive")
    if args.batch_window_ms < 0:
        parser.error("--batch-window-ms must be >= 0")
    if args.batch_max < 1:
        parser.error("--batch-max must be >= 1")
    try:
        config = ResilienceConfig(
            max_fast=args.max_fast,
            max_heavy=args.max_heavy,
            client_window=args.client_window,
            client_heavy_quota=args.client_heavy_quota,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            drain_timeout_s=args.drain_timeout,
        )
        chaos = build_chaos(args.chaos, seed=args.chaos_seed)
    except ValueError as exc:
        parser.error(str(exc))

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        lru_capacity=args.lru_capacity,
        policy=RunPolicy(timeout_s=args.timeout, retries=max(0, args.retries)),
        workers=args.workers,
        resilience=config,
        chaos=chaos,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
    )

    async def amain() -> None:
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:
                pass  # non-Unix event loop: shutdown op still drains
        if chaos is not None:
            print(f"chaos armed: {chaos.plan.describe()}", flush=True)
        print(f"listening on {host}:{port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        pass
    # One flushed line so parents (the drain tests, the loadgen) can
    # assert the exit was a drain, not a crash, and read final counters.
    print(f"drained {json.dumps(server.stats.to_dict(), sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
