"""Blocking client for the serve daemon.

One TCP connection, newline-delimited JSON both ways.  The client is
deliberately synchronous: the consumers of the service are test
harnesses, load generators and CLI scripts, which all want a plain
call-and-return API::

    with ServeClient(host, port) as client:
        response = client.run(kind="analytic",
                              request={"kind": "chase", "working_set": 4 << 20})
        payload = response["payload"]        # bit-identical to a local run
        assert response["source"] in ("computed", "lru", "disk", "inflight")

``run`` raises :class:`ServeError` when the daemon answers ``ok:
false`` (malformed spec, lane failure after retries, load shed); the
response is attached for inspection, and its ``code`` field
(:data:`~repro.serve.protocol.ERROR_CODES`) is mirrored on the
exception.  A request that outlives its socket timeout raises
:class:`ServeTimeout` and marks the connection **broken** — responses
on the wire can no longer be matched to requests — so the next call
transparently reconnects.  Pass ``_busy_retries`` to ``run`` to have
the client honor the daemon's ``retry_after`` pacing hints on ``busy``/
``quota`` sheds instead of surfacing them.

The load generator bypasses this class and pipelines raw frames itself
— see :mod:`repro.serve.loadgen`.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from .protocol import decode_message, encode_message

#: Error codes worth an automatic paced retry (load sheds, not bugs).
_RETRYABLE_CODES = ("busy", "quota")


class ServeError(RuntimeError):
    """The daemon answered a request with a structured error."""

    def __init__(self, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.response = response or {}
        #: Structured error code (``busy``, ``deadline``, ...) when the
        #: daemon sent one; None for legacy/unstructured errors.
        self.code = self.response.get("code")


class ServeTimeout(ServeError):
    """No response within the socket timeout; the connection is broken.

    After this, request/response pairing on the old socket is undefined
    (the daemon may still answer late), so the client reconnects before
    its next request rather than misattributing a stale response.
    """


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.daemon.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._broken = False
        self._next_id = 0
        self.reconnects = 0
        self._connect()

    # -- connection management -----------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._reader = self._sock.makefile("rb")
        self._broken = False

    def reconnect(self) -> None:
        """Tear down the current socket and dial a fresh one."""
        self._teardown()
        self._connect()
        self.reconnects += 1

    def _teardown(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- core ----------------------------------------------------------------
    def request(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one message and block for its response.

        A message without an ``id`` gets a connection-local sequence
        number, so responses are attributable when callers log them.
        ``timeout`` overrides the connection default for this one
        request.  A broken connection (previous timeout/reset) is
        transparently redialed first.
        """
        if self._broken or self._sock is None:
            self.reconnect()
        assert self._sock is not None and self._reader is not None
        if "id" not in message:
            message = {**message, "id": self._next_id}
            self._next_id += 1
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(encode_message(message))
            line = self._reader.readline()
        except socket.timeout:
            # The daemon may still answer later; this socket's framing
            # is no longer trustworthy.
            self._broken = True
            raise ServeTimeout(
                f"no response within {timeout or self.timeout}s"
            ) from None
        except OSError:
            self._broken = True
            raise
        finally:
            if timeout is not None and self._sock is not None:
                try:
                    self._sock.settimeout(self.timeout)
                except OSError:
                    pass
        if not line:
            self._broken = True
            raise ConnectionError("serve daemon closed the connection")
        return decode_message(line)

    def run(
        self,
        _timeout: Optional[float] = None,
        _busy_retries: int = 0,
        **spec: Any,
    ) -> Dict[str, Any]:
        """Submit one run spec; returns the full response on success.

        ``_timeout`` bounds this one call client-side; ``_busy_retries``
        re-submits up to N times on ``busy``/``quota`` sheds, sleeping
        the daemon's ``retry_after`` hint between attempts.
        """
        for attempt in range(_busy_retries + 1):
            response = self.request({"op": "run", **spec}, timeout=_timeout)
            if response.get("ok"):
                return response
            if (
                response.get("code") in _RETRYABLE_CODES
                and attempt < _busy_retries
            ):
                time.sleep(float(response.get("retry_after", 0.05)))
                continue
            raise ServeError(
                response.get("error", "request failed"), response=response
            )
        raise AssertionError("unreachable")

    # -- ops -----------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            raise ServeError(response.get("error", "stats failed"), response=response)
        return response

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting work and exit its serve loop."""
        self.request({"op": "shutdown"})

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
