"""Blocking client for the serve daemon.

One TCP connection, newline-delimited JSON both ways.  The client is
deliberately synchronous: the consumers of the service are test
harnesses, load generators and CLI scripts, which all want a plain
call-and-return API::

    with ServeClient(host, port) as client:
        response = client.run(kind="analytic",
                              request={"kind": "chase", "working_set": 4 << 20})
        payload = response["payload"]        # bit-identical to a local run
        assert response["source"] in ("computed", "lru", "disk", "inflight")

``run`` raises :class:`ServeError` when the daemon answers ``ok:
false`` (malformed spec, lane failure after retries); the response is
attached for inspection.  The load generator bypasses this class and
pipelines raw frames itself — see :mod:`repro.serve.loadgen`.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from .protocol import decode_message, encode_message


class ServeError(RuntimeError):
    """The daemon answered a request with a structured error."""

    def __init__(self, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.response = response or {}


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.daemon.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- core ----------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message and block for its response.

        A message without an ``id`` gets a connection-local sequence
        number, so responses are attributable when callers log them.
        """
        if "id" not in message:
            message = {**message, "id": self._next_id}
            self._next_id += 1
        self._sock.sendall(encode_message(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        return decode_message(line)

    def run(self, **spec: Any) -> Dict[str, Any]:
        """Submit one run spec; returns the full response on success."""
        response = self.request({"op": "run", **spec})
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "request failed"), response=response
            )
        return response

    # -- ops -----------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            raise ServeError(response.get("error", "stats failed"), response=response)
        return response

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting work and exit its serve loop."""
        self.request({"op": "shutdown"})

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
