"""Trace-driven simulation of the full POWER8 cache/memory hierarchy.

The model follows one core's view of the machine (the configuration the
paper's lmbench latency curves measure): a private store-through L1D and
store-in L2, the core's local 8 MB L3 slice, the *remote* L3 slices of
the other cores on the chip (reachable as a NUCA victim pool at higher
latency), the chip's Centaur L4, and DRAM with open-page banks.

Population policy mirrors POWER8: demand fills go to L1+L2; the L3 is
populated by L2 cast-outs (victim of L2); lines evicted from the local
L3 slice are laterally cast out into peer slices (the remote pool); L4
is a memory-side cache filled on DRAM reads.

Every access returns its latency in nanoseconds, so a pointer-chase
trace through this object directly reproduces Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from ..arch.specs import ChipSpec
from ..pmu import events as pmu_events
from ..pmu.counters import CounterBank
from .cache import Cache
from .dram import DRAMModel
from .line import line_index
from .tlb import TLB

#: Extra nanoseconds to reach a peer core's L3 slice across the on-chip
#: fabric, relative to the local slice (Figure 2's remote-L3 shoulder).
DEFAULT_REMOTE_L3_EXTRA_NS = 15.5

LEVELS = ("L1", "L2", "L3", "L3R", "L4", "DRAM")


def memory_side_cache_spec(chip: ChipSpec):
    """Geometry of the memory-side (L4) cache for ``chip``.

    Rounds the chip's L4 capacity to whole lines, floors it at 16 lines
    (a degenerate memory-side buffer for machines without an L4), and
    picks the largest associativity <= 16 that divides the line count.
    POWER8's 128 MB L4 gets exactly the 16 ways it always had, while
    arbitrary zoo geometries stay valid instead of tripping
    :class:`~repro.arch.specs.SpecError` on a non-divisible set count.
    """
    l3 = chip.core.l3_slice
    line = l3.line_size
    num_lines = max(chip.l4_capacity // line, 16)
    assoc = 16
    while assoc > 1 and num_lines % assoc:
        assoc -= 1
    return replace(l3, name="L4", capacity=num_lines * line, associativity=assoc)


class PrefetcherProtocol(Protocol):
    """Interface the hierarchy expects from a prefetch engine."""

    def observe(self, line_addr: int, is_write: bool) -> list[int]:
        """Given a demand access, return line addresses to prefetch."""
        ...


@dataclass
class AccessResult:
    """Outcome of one memory access."""

    latency_ns: float
    level: str  # which level serviced it
    translation_cycles: float


@dataclass
class TraceResult:
    """Outcome of a whole trace run through :meth:`access_trace`.

    Per-access outcomes are stored as parallel NumPy arrays; ``level_codes``
    indexes into ``level_names`` (``LEVELS`` for the single-core hierarchy).
    """

    latency_ns: np.ndarray
    level_codes: np.ndarray
    translation_cycles: np.ndarray
    level_names: Tuple[str, ...] = LEVELS

    def __len__(self) -> int:
        return int(self.latency_ns.size)

    @property
    def mean_latency_ns(self) -> float:
        return float(self.latency_ns.mean()) if self.latency_ns.size else 0.0

    def levels(self) -> List[str]:
        """Per-access servicing level names (decoded from the codes)."""
        names = self.level_names
        return [names[c] for c in self.level_codes.tolist()]

    def level_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.level_codes, minlength=len(self.level_names))
        return {name: int(counts[i]) for i, name in enumerate(self.level_names)}


@dataclass(slots=True)
class HierarchyStats:
    level_hits: Dict[str, int] = field(default_factory=lambda: {l: 0 for l in LEVELS})
    accesses: int = 0
    total_latency_ns: float = 0.0
    prefetch_issued: int = 0
    prefetch_useful: int = 0

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.accesses if self.accesses else 0.0

    def hit_fraction(self, level: str) -> float:
        return self.level_hits[level] / self.accesses if self.accesses else 0.0

    @classmethod
    def merged(cls, parts: "Iterable[HierarchyStats]") -> "HierarchyStats":
        """Sum many per-shard stats into one (``repro.parallel`` reduce).

        Integer fields sum exactly; ``total_latency_ns`` is accumulated
        in the iteration order, so callers wanting bit-reproducible
        floats must pass shards in a canonical (shard-id) order.
        """
        out = cls()
        for s in parts:
            for level, hits in s.level_hits.items():
                out.level_hits[level] = out.level_hits.get(level, 0) + hits
            out.accesses += s.accesses
            out.total_latency_ns += s.total_latency_ns
            out.prefetch_issued += s.prefetch_issued
            out.prefetch_useful += s.prefetch_useful
        return out


class MemoryHierarchy:
    """One core's path through the POWER8 memory system."""

    def __init__(
        self,
        chip: ChipSpec,
        page_size: Optional[int] = None,
        remote_l3_extra_ns: Optional[float] = None,
        prefetcher: Optional[PrefetcherProtocol] = None,
        dram: Optional[DRAMModel] = None,
        record_victims: bool = False,
        counters: bool = True,
        ras=None,
    ) -> None:
        self.chip = chip
        if page_size is None:
            page_size = chip.page_size
        if remote_l3_extra_ns is None:
            remote_l3_extra_ns = chip.remote_l3_extra_ns
        core = chip.core
        self.line_size = core.l1d.line_size
        self.l1 = Cache(core.l1d)
        self.l2 = Cache(core.l2)
        self.l3 = Cache(core.l3_slice)
        # Peer slices: a single pooled cache with the aggregate capacity
        # and proportionally more sets (same associativity).
        peers = max(chip.cores_per_chip - 1, 0)
        self._has_remote_l3 = peers > 0
        if self._has_remote_l3:
            pooled = replace(
                core.l3_slice,
                name="L3R",
                capacity=core.l3_slice.capacity * peers,
            )
            self.l3_remote = Cache(pooled)
        else:
            self.l3_remote = None
        self.l4 = Cache(memory_side_cache_spec(chip))
        self.tlb = TLB(core.tlb, page_size)
        self.dram = dram if dram is not None else DRAMModel()
        #: Optional RAS fault injector (:class:`repro.ras.FaultInjector`):
        #: wired into the DRAM (data/bank/link faults on every line
        #: access) and the TLB (parity errors on ERAT reloads).  Both
        #: sites see identical event streams in the scalar and batch
        #: engines, so injection stays bit-identical across them.
        self.ras = ras
        if ras is not None:
            self.dram.ras = ras
            self.tlb.parity_hook = ras.on_erat_miss
        self.prefetcher = prefetcher
        self.stats = HierarchyStats()
        #: Live PMU events (store refs, castouts to memory); everything
        #: else is harvested from module stats by :class:`repro.pmu.PMU`.
        self.bank = CounterBank()
        self._counters = counters
        #: Lines installed by the prefetcher that no demand access has
        #: touched yet; a prefetch is only *useful* once demanded.
        self._pf_pending: set[int] = set()
        #: Optional (level, line, dirty) stream of every line evicted from
        #: a cache, in program order — the eviction/write-back stream the
        #: equivalence tests compare across engines.
        self.victim_log: Optional[List[Tuple[str, int, bool]]] = (
            [] if record_victims else None
        )

        self._lat_l1 = chip.cycles_to_ns(core.l1d.latency_cycles)
        self._lat_l2 = chip.cycles_to_ns(core.l2.latency_cycles)
        self._lat_l3 = chip.cycles_to_ns(core.l3_slice.latency_cycles)
        self._lat_l3r = self._lat_l3 + remote_l3_extra_ns
        self._lat_l4 = chip.centaur.l4_latency_ns

    # -- public API ---------------------------------------------------------
    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Simulate one demand access; returns its serviced latency."""
        line = line_index(addr, self.line_size)
        trans_cycles = self.tlb.translate(addr)
        trans_ns = self.chip.cycles_to_ns(trans_cycles)
        latency, level = self._demand(line, is_write)
        if line in self._pf_pending:
            # First demand touch of a prefetched line: useful only if the
            # prefetch is still resident somewhere faster than DRAM.
            self._pf_pending.discard(line)
            if level != "DRAM":
                self.stats.prefetch_useful += 1
        total = latency + trans_ns
        self.stats.accesses += 1
        self.stats.level_hits[level] += 1
        self.stats.total_latency_ns += total
        if is_write and self._counters:
            self.bank[pmu_events.PM_ST_REF] += 1
        if self.prefetcher is not None:
            for pf_addr in self.prefetcher.observe(line * self.line_size, is_write):
                self._prefetch_fill(line_index(pf_addr, self.line_size))
        return AccessResult(total, level, trans_cycles)

    def access_trace(self, addrs, is_write=False) -> TraceResult:
        """Run a whole address trace; returns per-access arrays.

        This is the *reference* (per-access loop) implementation of the
        batch API; :class:`repro.mem.batch.BatchMemoryHierarchy` provides
        the vectorized engine with identical semantics.  ``is_write`` is a
        scalar or a per-access boolean array.
        """
        addrs = np.asarray(addrs, dtype=np.int64).ravel()
        n = addrs.size
        writes = _per_access_writes(is_write, n)
        lat = np.empty(n, dtype=np.float64)
        lvl = np.empty(n, dtype=np.uint8)
        trans = np.empty(n, dtype=np.float64)
        codes = {name: i for i, name in enumerate(LEVELS)}
        addr_list = addrs.tolist()
        for i in range(n):
            res = self.access(addr_list[i], writes[i] if writes is not None else False)
            lat[i] = res.latency_ns
            lvl[i] = codes[res.level]
            trans[i] = res.translation_cycles
        return TraceResult(lat, lvl, trans)

    def read(self, addr: int) -> AccessResult:
        return self.access(addr, is_write=False)

    def write(self, addr: int) -> AccessResult:
        return self.access(addr, is_write=True)

    def warm(self, addrs, is_write: bool = False) -> None:
        """Run a trace without recording statistics (cache warm-up)."""
        saved, saved_bank = self.stats, self.bank
        self.stats = HierarchyStats()
        self.bank = CounterBank()
        for a in addrs:
            self.access(a, is_write)
        self.stats, self.bank = saved, saved_bank

    # -- internals ------------------------------------------------------------
    def _demand(self, line: int, is_write: bool) -> tuple[float, str]:
        # L1 probe.  Store-through: a write hit still forwards to L2.
        if self.l1.lookup(line, is_write):
            if is_write:
                self._l2_write_through(line)
            return self._lat_l1, "L1"
        # L2 probe.
        if self.l2.lookup(line, is_write):
            self._fill_l1(line)
            return self._lat_l2, "L2"
        # Local L3 slice: hit moves the line up (it stays in L3 too —
        # POWER8's L3 is not strictly exclusive upward).
        if self.l3.lookup(line, is_write=False):
            self._fill_l2(line, dirty=is_write)
            self._fill_l1(line)
            return self._lat_l3, "L3"
        # Remote L3 pool (lateral NUCA lookup).
        if self._has_remote_l3 and self.l3_remote.lookup(line, is_write=False):
            # Migrate toward the requester: drop from the pool, fill core-side.
            dirty = self.l3_remote.is_dirty(line)
            self.l3_remote.invalidate(line)
            self._fill_l2(line, dirty=dirty or is_write)
            self._fill_l1(line)
            return self._lat_l3r, "L3R"
        # L4 (memory-side).
        if self.l4.lookup(line, is_write=False):
            self._fill_l2(line, dirty=is_write)
            self._fill_l1(line)
            return self._lat_l4, "L4"
        # DRAM.
        dram_ns = self.dram.access(line * self.line_size)
        self._fill_l4(line)
        self._fill_l2(line, dirty=is_write)
        self._fill_l1(line)
        return dram_ns, "DRAM"

    def _prefetch_fill(self, line: int) -> None:
        """Install a prefetched line into the L2 (and L4 if DRAM-sourced)."""
        self.stats.prefetch_issued += 1
        if line in self.l1 or line in self.l2:
            return
        if not (line in self.l3 or (self._has_remote_l3 and line in self.l3_remote) or line in self.l4):
            self.dram.access(line * self.line_size)
            self._fill_l4(line)
        self._fill_l2(line, dirty=False)
        # Usefulness is credited when (and if) a demand access hits the
        # line, not at install time — see access().
        self._pf_pending.add(line)

    def _l2_write_through(self, line: int) -> None:
        """Propagate a store-through write from L1 into the L2."""
        if self.l2.lookup(line, is_write=True):
            return
        # Write-allocate: bring the line into L2 from below (no latency
        # charged to the store — it retires through the store queue).
        if self.l3.lookup(line, is_write=False):
            pass
        elif self._has_remote_l3 and self.l3_remote.lookup(line, is_write=False):
            self.l3_remote.invalidate(line)
        elif self.l4.lookup(line, is_write=False):
            pass
        else:
            self.dram.access(line * self.line_size)
            self._fill_l4(line)
        self._fill_l2(line, dirty=True)

    def _fill_l1(self, line: int) -> None:
        evicted = self.l1.fill(line)  # store-through: evictions are silent drops
        if evicted is not None and self.victim_log is not None:
            self.victim_log.append(("L1", evicted[0], evicted[1]))

    def _fill_l2(self, line: int, dirty: bool) -> None:
        evicted = self.l2.fill(line, dirty)
        if evicted is not None:
            ev_line, ev_dirty = evicted
            if self.victim_log is not None:
                self.victim_log.append(("L2", ev_line, ev_dirty))
            self._castout_to_l3(ev_line, ev_dirty)

    def _castout_to_l3(self, line: int, dirty: bool) -> None:
        evicted = self.l3.fill(line, dirty)
        if evicted is not None:
            ev_line, ev_dirty = evicted
            if self.victim_log is not None:
                self.victim_log.append(("L3", ev_line, ev_dirty))
            self._lateral_castout(ev_line, ev_dirty)

    def _lateral_castout(self, line: int, dirty: bool) -> None:
        if self._has_remote_l3:
            evicted = self.l3_remote.insert_victim(line, dirty)
            if evicted is not None and self.victim_log is not None:
                self.victim_log.append(("L3R", evicted[0], evicted[1]))
        else:
            evicted = (line, dirty)
        if evicted is not None:
            ev_line, ev_dirty = evicted
            if ev_dirty:
                # Dirty data leaves the chip; lands in the L4 on its way out.
                if self._counters:
                    self.bank[pmu_events.PM_MEM_CO] += 1
                self._fill_l4(ev_line)

    def _fill_l4(self, line: int) -> None:
        evicted = self.l4.fill(line)
        # L4 evictions go to DRAM; no state to track beyond the counters.
        if evicted is not None and self.victim_log is not None:
            self.victim_log.append(("L4", evicted[0], evicted[1]))


def _per_access_writes(is_write, n: int):
    """Normalize a scalar-or-array write flag to a per-access list.

    Returns ``None`` when every access is a read (the common case, letting
    engines skip per-access indexing entirely).
    """
    if isinstance(is_write, (bool, int, np.bool_)):
        return [True] * n if is_write else None
    arr = np.asarray(is_write, dtype=bool).ravel()
    if arr.size != n:
        raise ValueError(f"is_write has {arr.size} flags for {n} addresses")
    if not arr.any():
        return None
    return arr.tolist()
